#!/usr/bin/env bash
# Loopback smoke for the downstream-inference subsystem: start pkgm_netd
# with --infer 1 on an ephemeral port, drive it with pkgm_serve --connect
# --workload mixed (recommend/classify/align interleaved with lookups),
# then assert from the server's JSON stats that every task kind was served
# and the run was protocol- and shed-clean.
#
#   infer_smoke.sh <pkgm_netd> <pkgm_serve> <workdir> [requests] [backend]
#
# The optional 5th argument pins the I/O backend ("uring" or "epoll") on
# both the daemon and the client (see loopback_smoke.sh for the degrade
# semantics of a uring pin).
set -u

NETD="$1"
SERVE="$2"
WORKDIR="$3"
REQUESTS="${4:-3000}"
BACKEND="${5:-}"

BACKEND_ARGS=()
if [ -n "$BACKEND" ]; then
  BACKEND_ARGS=(--io-backend "$BACKEND")
fi

mkdir -p "$WORKDIR"
PORT_FILE="$WORKDIR/netd.port"
CLIENT_STATS="$WORKDIR/client_stats.json"
DAEMON_STATS="$WORKDIR/daemon_stats.json"
rm -f "$PORT_FILE" "$CLIENT_STATS" "$DAEMON_STATS"

"$NETD" --port 0 --port-file "$PORT_FILE" --stats-json "$DAEMON_STATS" \
        --io-threads 2 --workers 2 --infer 1 "${BACKEND_ARGS[@]}" &
NETD_PID=$!
trap 'kill -9 $NETD_PID 2>/dev/null' EXIT

# The daemon pre-trains the PKG and the three downstream models before it
# listens; wait for the port file.
for _ in $(seq 1 600); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$NETD_PID" 2>/dev/null; then
    echo "FAIL: pkgm_netd exited before listening" >&2
    exit 1
  fi
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "FAIL: pkgm_netd never wrote its port file" >&2
  exit 1
fi
PORT=$(cat "$PORT_FILE")

"$SERVE" --connect "127.0.0.1:$PORT" --connections 2 --threads 2 \
         --workload mixed --rate 1500 --duration-requests "$REQUESTS" \
         --stats-json "$CLIENT_STATS" "${BACKEND_ARGS[@]}"
SERVE_RC=$?
if [ "$SERVE_RC" -ne 0 ]; then
  echo "FAIL: pkgm_serve --connect --workload mixed exited with $SERVE_RC" >&2
  exit 1
fi

# Graceful shutdown: SIGTERM must drain and write the final stats json.
kill -TERM "$NETD_PID"
wait "$NETD_PID"
NETD_RC=$?
trap - EXIT
if [ "$NETD_RC" -ne 0 ]; then
  echo "FAIL: pkgm_netd exited with $NETD_RC after SIGTERM" >&2
  exit 1
fi

python3 - "$CLIENT_STATS" "$DAEMON_STATS" "$REQUESTS" "$BACKEND" <<'EOF'
import json, sys

client = json.load(open(sys.argv[1]))
daemon = json.load(open(sys.argv[2]))
requests = int(sys.argv[3])
backend_pin = sys.argv[4]

net = client["net"]
assert net["protocol_errors"] == 0, f"protocol errors: {net}"
assert net["backpressure_disconnects"] == 0, f"backpressure: {net}"
assert net["requests_in"] >= requests, f"requests_in too low: {net}"
assert client["accepted"] >= requests, f"accepted too low: {client}"
# Inference requests must actually execute: nothing shed at the executor,
# and every one of the four task kinds must have completed traffic.
assert client["exec_rejected"] == 0, f"executor shed requests: {client}"
tasks = client["tasks"]
for kind in ("lookup", "recommend", "classify", "align"):
    assert tasks[kind] > 0, f"no {kind} traffic served: {tasks}"
assert client["ok"] >= requests, f"ok too low: {client}"
# The daemon's own final snapshot must agree the run was clean, and must
# report which I/O backend its loops ran on (an epoll pin never degrades).
assert daemon["net"]["protocol_errors"] == 0, daemon["net"]
assert daemon["net"]["io_backend"] in ("epoll", "io_uring"), daemon["net"]
if backend_pin == "epoll":
    assert daemon["net"]["io_backend"] == "epoll", daemon["net"]
print("infer smoke OK:",
      f"io_backend={daemon['net']['io_backend']}",
      f"tasks={tasks}",
      f"requests_in={net['requests_in']}",
      f"p99_execute_us={client['latency']['execute']['p99_us']}")
EOF
