#!/usr/bin/env bash
# Distributed-training smoke: 2 pkgm_psd shard daemons + 2 worker
# processes on loopback, trained on the same synthetic KG as a
# single-process baseline, then asserted on (a) loss parity — the
# distributed final eval hinge must land within a few percent of the
# single-process number — and (b) protocol cleanliness from the daemons'
# JSON stats (no rejects, no protocol errors, every epoch barrier
# released).
#
#   dist_smoke.sh <pkgm_psd> <pkgm_tool> <workdir> [epochs]
set -u

PSD="$1"
TOOL="$2"
WORKDIR="$3"
EPOCHS="${4:-3}"

DIM=16
LR=0.05
SEED=17
TOLERANCE=0.05   # relative eval-hinge gap allowed vs single-process

mkdir -p "$WORKDIR"
cd "$WORKDIR"
rm -f shard_*.port shard_*.json worker_*.log base.log kg.tsv

"$TOOL" generate kg.tsv 3 > /dev/null || {
  echo "FAIL: generate" >&2; exit 1; }

# Single-process baseline (2-worker hogwild, same seed budget).
"$TOOL" train kg.tsv base_model.bin --epochs "$EPOCHS" --dim "$DIM" \
        --workers 2 --optimizer sgd --lr "$LR" --seed "$SEED" \
        --eval-hinge > base.log 2>&1 || {
  echo "FAIL: baseline train" >&2; cat base.log >&2; exit 1; }
ENTITIES=$(sed -n 's/^loaded .* triples, \([0-9]*\) entities.*/\1/p' base.log)
RELATIONS=$(sed -n 's/^loaded .* triples, .* entities, \([0-9]*\) relations.*/\1/p' base.log)
BASE_HINGE=$(sed -n 's/^final eval hinge \([0-9.]*\)$/\1/p' base.log)
if [ -z "$ENTITIES" ] || [ -z "$RELATIONS" ] || [ -z "$BASE_HINGE" ]; then
  echo "FAIL: could not parse baseline output" >&2; cat base.log >&2; exit 1
fi

# Two shard daemons on ephemeral loopback ports.
PIDS=""
for S in 0 1; do
  "$PSD" --shard "$S" --num-shards 2 --entities "$ENTITIES" \
         --relations "$RELATIONS" --dim "$DIM" --model-seed "$SEED" \
         --optimizer sgd --lr "$LR" --port-file "shard_$S.port" \
         --stats-json "shard_$S.json" > "shard_$S.log" 2>&1 &
  PIDS="$PIDS $!"
done
trap 'kill -9 $PIDS 2>/dev/null' EXIT

for S in 0 1; do
  for _ in $(seq 1 100); do
    [ -s "shard_$S.port" ] && break
    sleep 0.1
  done
  if [ ! -s "shard_$S.port" ]; then
    echo "FAIL: shard $S never wrote its port file" >&2; exit 1
  fi
done
EP0="127.0.0.1:$(cat shard_0.port)"
EP1="127.0.0.1:$(cat shard_1.port)"

# Two worker processes splitting each epoch's batches, synchronized by the
# shards' epoch barriers. Worker 0 pulls the merged model and evaluates.
"$TOOL" train kg.tsv dist_model.bin --epochs "$EPOCHS" --dim "$DIM" \
        --workers 1 --optimizer sgd --lr "$LR" --seed "$SEED" \
        --connect-shards "$EP0,$EP1" --worker-index 0 --worker-procs 2 \
        --eval-hinge > worker_0.log 2>&1 &
W0=$!
"$TOOL" train kg.tsv dist_model_w1.bin --epochs "$EPOCHS" --dim "$DIM" \
        --workers 1 --optimizer sgd --lr "$LR" --seed "$SEED" \
        --connect-shards "$EP0,$EP1" --worker-index 1 --worker-procs 2 \
        > worker_1.log 2>&1 &
W1=$!
wait "$W0"; W0_RC=$?
wait "$W1"; W1_RC=$?
if [ "$W0_RC" -ne 0 ] || [ "$W1_RC" -ne 0 ]; then
  echo "FAIL: worker exited with $W0_RC/$W1_RC" >&2
  cat worker_0.log worker_1.log >&2
  exit 1
fi
DIST_HINGE=$(sed -n 's/^final eval hinge \([0-9.]*\)$/\1/p' worker_0.log)
if [ -z "$DIST_HINGE" ]; then
  echo "FAIL: worker 0 printed no eval hinge" >&2; cat worker_0.log >&2
  exit 1
fi

# Graceful drain: SIGTERM must flush the stats JSONs and exit 0.
kill -TERM $PIDS
for PID in $PIDS; do
  wait "$PID" || { echo "FAIL: shard daemon exited non-zero" >&2; exit 1; }
done
trap - EXIT

python3 - "$BASE_HINGE" "$DIST_HINGE" "$TOLERANCE" "$EPOCHS" \
    shard_0.json shard_1.json <<'EOF'
import json, sys

base, dist, tol = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
epochs = int(sys.argv[4])

gap = abs(dist - base) / base
assert gap <= tol, f"loss parity broken: base={base} dist={dist} gap={gap:.4f}"

for path in sys.argv[5:7]:
    shard = json.load(open(path))
    assert shard["rejects"] == 0, f"{path}: {shard}"
    assert shard["net"]["protocol_errors"] == 0, f"{path}: {shard['net']}"
    assert shard["barriers_released"] == epochs, f"{path}: {shard}"
    assert shard["pushes"] > 0 and shard["pulls"] > 0, f"{path}: {shard}"

print(f"dist smoke OK: base_hinge={base} dist_hinge={dist} gap={gap:.5f}")
EOF
