// pkgm_serve — stands up the online knowledge-serving subsystem end to end:
// pre-trains PKGM on a synthetic product KG, starts a KnowledgeServer, and
// drives it with a closed-loop multi-threaded synthetic traffic generator
// over a Zipf-skewed item distribution (head items dominate, as in real
// e-commerce traffic), then prints a latency/throughput/cache report.
//
//   pkgm_serve [--qps N] [--rate N] [--arrival poisson|uniform|burst]
//              [--tenants N] [--tenant-rate R] [--tenant-burst N]
//              [--coalesce 0|1] [--closed-loop]
//              [--duration-requests N] [--threads N] [--workers N]
//              [--batch N] [--cache 0|1] [--zipf S] [--deadline-us N]
//              [--queue-capacity N] [--seed N]
//              [--store path.pkgs] [--store-dtype fp32|int8]
//              [--hot-swaps N] [--swap-interval-ms N]
//              [--connect host:port] [--connections N] [--items N]
//              [--io-backend uring|epoll]
//              [--stats-json PATH] [--workload lookup|mixed]
//              [--mix-recommend R] [--mix-classify R] [--mix-align R]
//              [--num-users N] [--top-k N]
//
//   --qps 0 (default) runs closed-loop at maximum rate; a positive value
//   paces the aggregate request rate across client threads.
//
//   --rate R switches to the *open-loop* generator: requests fire at their
//   scheduled arrival instants (Poisson by default; --arrival picks the
//   process) regardless of how slow responses are, and latency is measured
//   from the intended send time — so server-induced queueing can't hide
//   behind coordinated omission. --tenants spreads traffic over N tenant
//   ids with distinct Zipf hot sets; --tenant-rate/--tenant-burst arm
//   per-tenant token-bucket quotas in the in-process server. --closed-loop
//   keeps the open-loop schedule but waits for each response before the
//   next send (the dishonest baseline, for comparison). Runs are seeded
//   and replayable.
//
//   --store exports the pre-trained model to a .pkgs embedding store,
//   memory-maps it, and serves from the mapping through a ModelRegistry
//   instead of the in-heap model. --hot-swaps N additionally exports and
//   publishes N fresh store generations (alternating fp32/int8) while
//   traffic is in flight — the zero-downtime model-refresh drill; the run
//   reports any swap-attributable failures (there must be none).
//
//   --connect host:port skips the local pipeline entirely and drives a
//   remote pkgm_netd over the wire protocol instead, through the same
//   closed loop (--connections pools client sockets; --items must match
//   the daemon's item space, default 1000). --stats-json writes the
//   server's JSON stats snapshot — fetched over the socket in connect
//   mode — to PATH at the end of the run.
//
//   --workload mixed (open-loop only) draws each arrival's task kind from
//   the configured per-type shares — recommend/classify/align inference
//   frames interleaved with lookups; lookup takes whatever share the three
//   --mix-* flags leave. In-process mode trains the three downstream
//   models and attaches the inference engine; in connect mode the remote
//   daemon must run with --infer 1. The report adds a per-task
//   completed/p50/p999 table.
//
//   SIGINT/SIGTERM stop traffic early and still print the final report.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "infer/engine.h"
#include "infer/pipeline.h"
#include "infer/registry.h"
#include "net/net_client.h"
#include "net/socket_util.h"
#include "serve/knowledge_server.h"
#include "serve/load_gen.h"
#include "serve_common.h"
#include "store/embedding_store_writer.h"
#include "store/mmap_embedding_store.h"
#include "store/model_registry.h"
#include "tasks/pipeline.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm {
namespace {

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

struct ServeFlags {
  double qps = 0.0;                  // 0 = closed loop, no pacing
  double rate = 0.0;                 // > 0 = open-loop offered rate
  std::string arrival = "poisson";   // open-loop arrival process
  int tenants = 1;                   // tenant ids in generated traffic
  double tenant_rate = 0.0;          // server-side quota refill, tokens/s
  double tenant_burst = 0.0;         // server-side bucket size; 0 = off
  bool coalesce = true;              // hot-key request coalescing
  bool closed_loop = false;          // --rate mode: wait per response
  uint64_t duration_requests = 50000;
  int threads = 4;                   // client threads
  int workers = 2;                   // server worker threads
  int batch = 16;                    // requests per SubmitBatch
  bool cache = true;
  double zipf = 1.1;                 // item-popularity skew
  int64_t deadline_us = 0;           // 0 = no deadline
  size_t queue_capacity = 256;
  uint64_t seed = 2021;
  std::string store_path;            // empty = serve the in-heap model
  store::StoreDtype store_dtype = store::StoreDtype::kFloat32;
  int hot_swaps = 0;                 // store generations published mid-run
  int swap_interval_ms = 20;
  std::string connect;               // host:port; empty = in-process server
  size_t connections = 1;            // client socket pool (connect mode)
  std::string io_backend;            // client I/O pin; "" = env + probe
  uint32_t items = 1000;             // item-space size in connect mode
  std::string stats_json_path;       // write server stats JSON here at end
  std::string workload = "lookup";   // lookup | mixed (open-loop only)
  double mix_recommend = -1.0;       // mixed: per-kind shares; < 0 = default
  double mix_classify = -1.0;
  double mix_align = -1.0;
  uint32_t num_users = 60;           // recommend user-id space
  uint32_t top_k = 3;                // classify top-k
};

int Usage() {
  std::fprintf(stderr,
               "usage: pkgm_serve [--qps N] [--rate N] "
               "[--arrival poisson|uniform|burst]\n"
               "                  [--tenants N] [--tenant-rate R] "
               "[--tenant-burst N]\n"
               "                  [--coalesce 0|1] [--closed-loop]\n"
               "                  [--duration-requests N] "
               "[--threads N]\n"
               "                  [--workers N] [--batch N] [--cache 0|1] "
               "[--zipf S]\n"
               "                  [--deadline-us N] [--queue-capacity N] "
               "[--seed N]\n"
               "                  [--store path.pkgs] "
               "[--store-dtype fp32|int8]\n"
               "                  [--hot-swaps N] [--swap-interval-ms N]\n"
               "                  [--connect host:port] [--connections N]\n"
               "                  [--io-backend uring|epoll]\n"
               "                  [--items N] [--stats-json PATH]\n"
               "                  [--workload lookup|mixed] "
               "[--mix-recommend R]\n"
               "                  [--mix-classify R] [--mix-align R]\n"
               "                  [--num-users N] [--top-k N]\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, ServeFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--qps") == 0 && (v = next())) {
      flags->qps = std::atof(v);
    } else if (std::strcmp(arg, "--rate") == 0 && (v = next())) {
      flags->rate = std::atof(v);
    } else if (std::strcmp(arg, "--arrival") == 0 && (v = next())) {
      flags->arrival = v;
    } else if (std::strcmp(arg, "--tenants") == 0 && (v = next())) {
      flags->tenants = std::atoi(v);
    } else if (std::strcmp(arg, "--tenant-rate") == 0 && (v = next())) {
      flags->tenant_rate = std::atof(v);
    } else if (std::strcmp(arg, "--tenant-burst") == 0 && (v = next())) {
      flags->tenant_burst = std::atof(v);
    } else if (std::strcmp(arg, "--coalesce") == 0 && (v = next())) {
      flags->coalesce = std::atoi(v) != 0;
    } else if (std::strcmp(arg, "--closed-loop") == 0) {
      flags->closed_loop = true;
    } else if (std::strcmp(arg, "--duration-requests") == 0 && (v = next())) {
      flags->duration_requests = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0 && (v = next())) {
      flags->threads = std::atoi(v);
    } else if (std::strcmp(arg, "--workers") == 0 && (v = next())) {
      flags->workers = std::atoi(v);
    } else if (std::strcmp(arg, "--batch") == 0 && (v = next())) {
      flags->batch = std::atoi(v);
    } else if (std::strcmp(arg, "--cache") == 0 && (v = next())) {
      flags->cache = std::atoi(v) != 0;
    } else if (std::strcmp(arg, "--zipf") == 0 && (v = next())) {
      flags->zipf = std::atof(v);
    } else if (std::strcmp(arg, "--deadline-us") == 0 && (v = next())) {
      flags->deadline_us = std::atoll(v);
    } else if (std::strcmp(arg, "--queue-capacity") == 0 && (v = next())) {
      flags->queue_capacity = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0 && (v = next())) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--store") == 0 && (v = next())) {
      flags->store_path = v;
    } else if (std::strcmp(arg, "--store-dtype") == 0 && (v = next())) {
      if (std::strcmp(v, "int8") == 0) {
        flags->store_dtype = store::StoreDtype::kInt8;
      } else if (std::strcmp(v, "fp32") == 0) {
        flags->store_dtype = store::StoreDtype::kFloat32;
      } else {
        std::fprintf(stderr, "--store-dtype must be fp32 or int8\n");
        return false;
      }
    } else if (std::strcmp(arg, "--hot-swaps") == 0 && (v = next())) {
      flags->hot_swaps = std::atoi(v);
    } else if (std::strcmp(arg, "--swap-interval-ms") == 0 && (v = next())) {
      flags->swap_interval_ms = std::atoi(v);
    } else if (std::strcmp(arg, "--connect") == 0 && (v = next())) {
      flags->connect = v;
    } else if (std::strcmp(arg, "--connections") == 0 && (v = next())) {
      flags->connections = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--io-backend") == 0 && (v = next())) {
      flags->io_backend = v;
    } else if (std::strcmp(arg, "--items") == 0 && (v = next())) {
      flags->items = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(arg, "--stats-json") == 0 && (v = next())) {
      flags->stats_json_path = v;
    } else if (std::strcmp(arg, "--workload") == 0 && (v = next())) {
      flags->workload = v;
    } else if (std::strcmp(arg, "--mix-recommend") == 0 && (v = next())) {
      flags->mix_recommend = std::atof(v);
    } else if (std::strcmp(arg, "--mix-classify") == 0 && (v = next())) {
      flags->mix_classify = std::atof(v);
    } else if (std::strcmp(arg, "--mix-align") == 0 && (v = next())) {
      flags->mix_align = std::atof(v);
    } else if (std::strcmp(arg, "--num-users") == 0 && (v = next())) {
      flags->num_users = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(arg, "--top-k") == 0 && (v = next())) {
      flags->top_k = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg);
      return false;
    }
  }
  if (flags->threads < 1 || flags->workers < 1 || flags->batch < 1) {
    std::fprintf(stderr, "--threads/--workers/--batch must be >= 1\n");
    return false;
  }
  if (flags->arrival != "poisson" && flags->arrival != "uniform" &&
      flags->arrival != "burst") {
    std::fprintf(stderr, "--arrival must be poisson, uniform or burst\n");
    return false;
  }
  if (flags->tenants < 1 || flags->tenants > 65536) {
    std::fprintf(stderr, "--tenants must be in [1, 65536]\n");
    return false;
  }
  if (flags->closed_loop && flags->rate <= 0.0) {
    std::fprintf(stderr, "--closed-loop needs --rate (the offered load)\n");
    return false;
  }
  if (flags->rate > 0.0 && flags->qps > 0.0) {
    std::fprintf(stderr, "--rate (open loop) and --qps (paced closed loop) "
                         "are mutually exclusive\n");
    return false;
  }
  if (flags->hot_swaps > 0 && flags->store_path.empty()) {
    std::fprintf(stderr, "--hot-swaps requires --store\n");
    return false;
  }
  if (!flags->connect.empty() &&
      (!flags->store_path.empty() || flags->hot_swaps > 0)) {
    std::fprintf(stderr,
                 "--connect drives a remote daemon; --store/--hot-swaps "
                 "belong to the in-process mode\n");
    return false;
  }
  if (flags->connections < 1 || flags->items < 1) {
    std::fprintf(stderr, "--connections/--items must be >= 1\n");
    return false;
  }
  if (flags->workload != "lookup" && flags->workload != "mixed") {
    std::fprintf(stderr, "--workload must be lookup or mixed\n");
    return false;
  }
  if (flags->workload == "mixed") {
    if (flags->rate <= 0.0) {
      std::fprintf(stderr,
                   "--workload mixed runs on the open-loop generator; "
                   "set --rate\n");
      return false;
    }
    // Unset shares default to 0.2 each; lookup takes the remainder.
    if (flags->mix_recommend < 0.0) flags->mix_recommend = 0.2;
    if (flags->mix_classify < 0.0) flags->mix_classify = 0.2;
    if (flags->mix_align < 0.0) flags->mix_align = 0.2;
    const double inference_share =
        flags->mix_recommend + flags->mix_classify + flags->mix_align;
    if (flags->mix_recommend > 1.0 || flags->mix_classify > 1.0 ||
        flags->mix_align > 1.0 || inference_share > 1.0) {
      std::fprintf(stderr,
                   "--mix-recommend/--mix-classify/--mix-align must each be "
                   "in [0, 1] and sum to <= 1 (lookup gets the rest)\n");
      return false;
    }
    if (flags->num_users < 1) {
      std::fprintf(stderr, "--num-users must be >= 1\n");
      return false;
    }
  } else if (flags->mix_recommend >= 0.0 || flags->mix_classify >= 0.0 ||
             flags->mix_align >= 0.0) {
    std::fprintf(stderr, "--mix-* flags need --workload mixed\n");
    return false;
  }
  return true;
}

/// Minimal field extraction from the server's flat StatsJson blob — enough
/// for the end-of-run I/O summary in connect mode without a JSON parser.
std::string JsonStringField(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = json.find('"', start);
  return end == std::string::npos ? "" : json.substr(start, end - start);
}

uint64_t JsonU64Field(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + needle.size(), nullptr, 10);
}

/// Adapts the future-returning NetClient::SubmitBatch to the load
/// generator's callback seam: a collector thread drains futures in submit
/// order (per-connection responses are FIFO anyway) and fires the
/// completion callbacks, so no generator thread ever parks on a future.
class FutureDrain {
 public:
  explicit FutureDrain(net::NetClient* client)
      : client_(client), worker_([this] { Loop(); }) {}

  ~FutureDrain() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void Submit(std::vector<serve::ServiceRequest> requests,
              std::function<void(size_t, serve::ServiceResponse)> done) {
    Item item;
    item.futures = client_->SubmitBatch(std::move(requests));
    item.done = std::move(done);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

 private:
  struct Item {
    std::vector<std::future<serve::ServiceResponse>> futures;
    std::function<void(size_t, serve::ServiceResponse)> done;
  };

  void Loop() {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) return;  // closed and drained
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      for (size_t i = 0; i < item.futures.size(); ++i) {
        item.done(i, item.futures[i].get());
      }
    }
  }

  net::NetClient* client_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool closed_ = false;
  std::thread worker_;
};

int Run(const ServeFlags& flags) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // In-process mode stands up the whole pipeline + server; connect mode
  // only needs a client — both feed the same closed loop through `submit`.
  tasks::PretrainedPkgm p;
  store::ModelRegistry registry;
  // Inference backend for --workload mixed in-process mode; declared before
  // `server` so the engine outlives the workers it serves.
  infer::InferModelRegistry infer_models;
  std::unique_ptr<infer::InferenceEngine> engine;
  uint32_t num_users = flags.num_users;
  std::unique_ptr<serve::KnowledgeServer> server;
  std::unique_ptr<net::NetClient> client;
  std::function<std::vector<std::future<serve::ServiceResponse>>(
      std::vector<serve::ServiceRequest>)>
      submit;
  uint32_t num_items = flags.items;

  if (!flags.connect.empty()) {
    std::string host;
    uint16_t port = 0;
    Status parsed = net::ParseHostPort(flags.connect, &host, &port);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--connect: %s\n", parsed.ToString().c_str());
      return 1;
    }
    net::NetClientOptions copt;
    copt.num_connections = flags.connections;
    copt.io_backend = flags.io_backend;
    auto connected = net::NetClient::Connect(host, port, copt);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect to %s failed: %s\n",
                   flags.connect.c_str(),
                   connected.status().ToString().c_str());
      return 1;
    }
    client = std::move(connected.value());
    std::printf("pkgm_serve: driving %s over %zu connection(s), "
                "%u-item space\n\n",
                flags.connect.c_str(), flags.connections, num_items);
    submit = [&client](std::vector<serve::ServiceRequest> batch) {
      return client->SubmitBatch(std::move(batch));
    };
  } else {
    std::printf("pkgm_serve: pre-training a synthetic PKG (short run) ...\n");
    Stopwatch setup;
    p = tasks::BuildAndPretrain(tool::ServePipelineOptions(flags.seed));
    num_items = p.services->num_items();
    std::printf("ready in %.1fs: %u items, dim %u, condensed dim %u\n\n",
                setup.ElapsedSeconds(), num_items, p.model->dim(),
                p.services->CondensedDim(core::ServiceMode::kAll));

    serve::KnowledgeServerOptions sopt;
    sopt.num_workers = static_cast<size_t>(flags.workers);
    sopt.queue_capacity = flags.queue_capacity;
    sopt.enable_cache = flags.cache;
    sopt.enable_coalescing = flags.coalesce && flags.cache;
    sopt.tenant_rate = flags.tenant_rate;
    sopt.tenant_burst = flags.tenant_burst;

    if (!flags.store_path.empty()) {
      auto gen = tool::ExportGeneration(*p.model, *p.services,
                                        flags.store_path, flags.store_dtype,
                                        /*generation=*/1);
      if (gen == nullptr) return 1;
      registry.Publish(gen->source, gen->provider, gen->info);
      std::printf("serving from %s store %s (%s bytes, mmap)\n\n",
                  store::StoreDtypeName(flags.store_dtype),
                  flags.store_path.c_str(),
                  WithThousandsSeparators(gen->info.file_bytes).c_str());
      server = std::make_unique<serve::KnowledgeServer>(&registry, sopt);
    } else {
      server =
          std::make_unique<serve::KnowledgeServer>(p.services.get(), sopt);
    }
    if (flags.workload == "mixed") {
      std::printf("training downstream models "
                  "(recommend/classify/align) ...\n");
      Stopwatch infer_setup;
      infer::InferPipelineOptions iopt;
      iopt.seed = flags.seed + 100;
      infer::InferBundle bundle = infer::TrainInferModels(p, iopt);
      num_users = bundle.num_users;
      infer_models.PublishRecommender(std::move(bundle.recommender),
                                      bundle.variant);
      infer_models.PublishClassifier(std::move(bundle.classifier),
                                     bundle.variant);
      infer_models.PublishAligner(std::move(bundle.aligner), bundle.variant);
      if (!flags.store_path.empty()) {
        engine = std::make_unique<infer::InferenceEngine>(
            &infer_models, &registry, std::move(bundle.titles));
      } else {
        engine = std::make_unique<infer::InferenceEngine>(
            &infer_models, p.services.get(), std::move(bundle.titles));
      }
      server->AttachInferExecutor(engine.get());
      std::printf("inference ready in %.1fs: %u users, %u classes\n\n",
                  infer_setup.ElapsedSeconds(), num_users, bundle.num_classes);
    }
    server->Start();
    submit = [&server](std::vector<serve::ServiceRequest> batch) {
      return server->SubmitBatch(std::move(batch));
    };
  }

  // Closed-loop traffic: each client thread submits a batch, blocks on all
  // its futures, then submits the next — so offered load adapts to service
  // capacity and --qps only adds pacing on top.
  const uint64_t per_thread =
      (flags.duration_requests + flags.threads - 1) / flags.threads;
  const double per_thread_qps = flags.qps / flags.threads;
  ZipfSampler zipf(num_items, flags.zipf);

  std::mutex histo_mu;
  // Client-observed latency: submit → response (closed loop) or intended
  // send → response (open loop). Bucketed so p999 stays readable at any
  // request count.
  Histogram latency_us{HistogramMode::kBucketed};
  std::atomic<uint64_t> sent{0}, ok{0}, rejected{0}, expired{0}, hits{0},
      net_errors{0}, quota_shed{0};

  // Model-refresh drill: while clients hammer the server, keep exporting
  // and publishing fresh store generations (alternating dtype, distinct
  // files — an mmap'd store must never be overwritten in place). In-flight
  // requests finish on the generation they pinned; a swap must never fail
  // a request.
  std::atomic<bool> traffic_done{false};
  std::atomic<int> swaps_done{0}, swap_failures{0};
  std::vector<std::string> swap_files;
  std::thread swapper;
  if (flags.hot_swaps > 0) {
    for (int i = 0; i < flags.hot_swaps; ++i) {
      swap_files.push_back(flags.store_path + ".gen" + std::to_string(i + 2));
    }
    swapper = std::thread([&] {
      for (int i = 0; i < flags.hot_swaps; ++i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(flags.swap_interval_ms));
        if (traffic_done.load(std::memory_order_relaxed)) break;
        const store::StoreDtype dtype = (i % 2 == 0)
                                            ? store::StoreDtype::kInt8
                                            : store::StoreDtype::kFloat32;
        auto gen = tool::ExportGeneration(*p.model, *p.services,
                                          swap_files[i], dtype,
                                          static_cast<uint64_t>(i) + 2);
        if (gen == nullptr) {
          ++swap_failures;
          continue;
        }
        registry.Publish(gen->source, gen->provider, gen->info);
        ++swaps_done;
      }
    });
  }

  Stopwatch wall;
  double wall_s_override = -1.0;
  if (flags.rate > 0.0) {
    // Open-loop traffic through the shared load generator.
    serve::LoadGenOptions lopt;
    lopt.rate_qps = flags.rate;
    lopt.total_requests = flags.duration_requests;
    lopt.threads = static_cast<size_t>(flags.threads);
    lopt.arrival = flags.arrival == "uniform"
                       ? serve::ArrivalProcess::kUniform
                       : flags.arrival == "burst"
                             ? serve::ArrivalProcess::kBurst
                             : serve::ArrivalProcess::kPoisson;
    lopt.zipf_s = flags.zipf;
    lopt.num_items = num_items;
    lopt.num_tenants = static_cast<uint16_t>(flags.tenants);
    lopt.deadline_us = flags.deadline_us > 0
                           ? static_cast<uint32_t>(flags.deadline_us)
                           : 0;
    lopt.seed = flags.seed;
    lopt.open_loop = !flags.closed_loop;
    if (flags.workload == "mixed") {
      lopt.mix[1] = flags.mix_recommend;
      lopt.mix[2] = flags.mix_classify;
      lopt.mix[3] = flags.mix_align;
      lopt.mix[0] =
          1.0 - (flags.mix_recommend + flags.mix_classify + flags.mix_align);
      lopt.num_users = num_users;
      lopt.top_k = flags.top_k;
    }

    serve::AsyncSubmitFn async_submit;
    std::unique_ptr<FutureDrain> drain;
    if (client != nullptr) {
      drain = std::make_unique<FutureDrain>(client.get());
      async_submit =
          [&drain](std::vector<serve::ServiceRequest> requests,
                   std::function<void(size_t, serve::ServiceResponse)> done) {
            drain->Submit(std::move(requests), std::move(done));
          };
    } else {
      async_submit =
          [&server](std::vector<serve::ServiceRequest> requests,
                    std::function<void(size_t, serve::ServiceResponse)> done) {
            server->SubmitBatchAsync(std::move(requests), std::move(done));
          };
    }
    serve::LoadGenReport lg = serve::RunLoadGen(lopt, async_submit);
    drain.reset();
    sent = lg.submitted;
    ok = lg.ok;
    rejected = lg.rejected;
    expired = lg.deadline_exceeded;
    hits = lg.cache_hits;
    net_errors = lg.network_error;
    quota_shed = lg.quota_rejected;
    latency_us.Merge(lg.latency_us);
    wall_s_override = lg.elapsed_s;
    std::printf("open loop: offered %.0f qps (%s arrivals, %d tenant(s)), "
                "achieved %.0f qps%s\n",
                lg.offered_qps, serve::ArrivalProcessName(lopt.arrival),
                flags.tenants, lg.achieved_qps,
                flags.closed_loop ? " [closed-loop measurement]" : "");
    if (flags.workload == "mixed") {
      TablePrinter mix_table(
          {"task", "completed", "ok", "p50 us", "p99 us", "p999 us"});
      for (uint8_t k = 0; k <= serve::kMaxTaskKind; ++k) {
        if (lg.task_completed[k] == 0) continue;
        const Histogram& h = lg.task_latency_us[k];
        mix_table.AddRow({serve::TaskKindName(static_cast<serve::TaskKind>(k)),
                          std::to_string(lg.task_completed[k]),
                          std::to_string(lg.task_ok[k]),
                          StrFormat("%.1f", h.Percentile(0.5)),
                          StrFormat("%.1f", h.Percentile(0.99)),
                          StrFormat("%.1f", h.Percentile(0.999))});
      }
      std::printf("\nper-task mix:\n%s\n", mix_table.ToString().c_str());
    }
  } else {
  std::vector<std::thread> clients;
  Rng seeder(flags.seed);
  for (int c = 0; c < flags.threads; ++c) {
    Rng rng = seeder.Fork();
    clients.emplace_back([&, rng]() mutable {
      std::vector<double> batch_latencies;
      const auto start = serve::ServeClock::now();
      uint64_t submitted = 0;
      while (submitted < per_thread && g_signal.load() == 0) {
        const uint64_t batch_size =
            std::min<uint64_t>(flags.batch, per_thread - submitted);
        std::vector<serve::ServiceRequest> batch(batch_size);
        for (auto& request : batch) {
          // Zipf ranks are most-popular-first; use the rank as the item id.
          request.item = static_cast<uint32_t>(zipf.Sample(&rng));
          request.mode = core::ServiceMode::kAll;
          request.form = serve::ServiceForm::kCondensed;
          if (flags.deadline_us > 0) {
            request.deadline = serve::ServeClock::now() +
                               std::chrono::microseconds(flags.deadline_us);
          }
        }
        const auto submit_time = serve::ServeClock::now();
        auto futures = submit(std::move(batch));
        batch_latencies.clear();
        for (auto& future : futures) {
          serve::ServiceResponse response = future.get();
          const double us = std::chrono::duration<double, std::micro>(
                                serve::ServeClock::now() - submit_time)
                                .count();
          batch_latencies.push_back(us);
          switch (response.code) {
            case serve::ResponseCode::kOk:
              ++ok;
              if (response.cache_hit) ++hits;
              break;
            case serve::ResponseCode::kRejected: ++rejected; break;
            case serve::ResponseCode::kDeadlineExceeded: ++expired; break;
            case serve::ResponseCode::kInvalidItem: break;
            case serve::ResponseCode::kNetworkError: ++net_errors; break;
            case serve::ResponseCode::kQuotaExceeded: ++quota_shed; break;
          }
        }
        submitted += batch_size;
        {
          std::lock_guard<std::mutex> lock(histo_mu);
          for (double us : batch_latencies) latency_us.Record(us);
        }
        if (per_thread_qps > 0.0) {
          // Pace: sleep until this thread's cumulative schedule catches up.
          const double target_s =
              static_cast<double>(submitted) / per_thread_qps;
          const auto target =
              start + std::chrono::duration_cast<serve::ServeClock::duration>(
                          std::chrono::duration<double>(target_s));
          std::this_thread::sleep_until(target);
        }
      }
      sent += submitted;
    });
  }
  for (auto& t : clients) t.join();
  }  // closed-loop branch
  const double wall_s =
      wall_s_override > 0.0 ? wall_s_override : wall.ElapsedSeconds();
  traffic_done.store(true);
  if (swapper.joinable()) swapper.join();

  // Grab the server-side stats snapshot before the drain tears state down;
  // in connect mode it is fetched over the wire from the live daemon.
  std::string stats_json;
  if (!flags.stats_json_path.empty()) {
    if (client != nullptr) {
      auto fetched = client->ServerStatsJson();
      if (fetched.ok()) {
        stats_json = std::move(fetched.value());
      } else {
        std::fprintf(stderr, "stats fetch failed: %s\n",
                     fetched.status().ToString().c_str());
      }
    } else {
      stats_json = server->StatsJson();
    }
  }
  if (server != nullptr) server->Stop();

  if (g_signal.load() != 0) {
    std::printf("\ninterrupted (%s): traffic stopped early\n",
                ::strsignal(g_signal.load()));
  }
  const uint64_t total = sent.load();
  if (flags.hot_swaps > 0) {
    std::printf("hot swaps: %d published under traffic, %d export failures "
                "(final generation %llu)\n",
                swaps_done.load(), swap_failures.load(),
                static_cast<unsigned long long>(registry.generation()));
    for (const std::string& file : swap_files) std::remove(file.c_str());
  }
  std::printf(
      "traffic: %s requests in %.2fs over %d client threads "
      "(batch %d, zipf %.2f, %s)\n",
      WithThousandsSeparators(total).c_str(), wall_s, flags.threads,
      flags.batch, flags.zipf,
      flags.rate > 0
          ? StrFormat("%s loop at %.0f qps",
                      flags.closed_loop ? "closed" : "open", flags.rate)
                .c_str()
          : flags.qps > 0
                ? StrFormat("paced at %.0f qps", flags.qps).c_str()
                : "closed loop");
  std::printf("throughput: %.0f requests/s\n\n",
              static_cast<double>(total) / wall_s);

  TablePrinter t({"metric", "value"});
  t.AddRow({"ok", std::to_string(ok.load())});
  t.AddRow({"rejected", std::to_string(rejected.load())});
  t.AddRow({"quota shed", std::to_string(quota_shed.load())});
  t.AddRow({"deadline expired", std::to_string(expired.load())});
  const uint64_t answered = ok.load();
  t.AddRow({"cache hit rate",
            answered == 0
                ? std::string("-")
                : StrFormat("%.1f%%", 100.0 * static_cast<double>(hits.load()) /
                                          static_cast<double>(answered))});
  auto percentile = [&latency_us](double q) {
    return latency_us.count() == 0 ? std::string("-")
                                   : StrFormat("%.1f", latency_us.Percentile(q));
  };
  t.AddRow({"client p50 us", percentile(0.5)});
  t.AddRow({"client p95 us", percentile(0.95)});
  t.AddRow({"client p99 us", percentile(0.99)});
  t.AddRow({"client p999 us", percentile(0.999)});
  t.AddRow({"client mean us", StrFormat("%.1f", latency_us.Mean())});
  if (client != nullptr) {
    t.AddRow({"network errors", std::to_string(net_errors.load())});
  }
  std::printf("%s\n", t.ToString().c_str());

  if (server != nullptr) {
    std::printf("server-side stats:\n%s\n", server->StatsReport().c_str());
  }
  if (client != nullptr) {
    // End-of-run I/O accounting from the remote daemon: which backend its
    // event loops ran on and what the frame stream cost in syscalls.
    std::string io_json = stats_json;
    if (io_json.empty()) {
      auto fetched = client->ServerStatsJson();
      if (fetched.ok()) io_json = std::move(fetched.value());
    }
    const std::string backend = JsonStringField(io_json, "io_backend");
    if (!backend.empty()) {
      const uint64_t waits = JsonU64Field(io_json, "io_wait_calls");
      const uint64_t recvs = JsonU64Field(io_json, "io_recv_syscalls");
      const uint64_t sends = JsonU64Field(io_json, "io_send_syscalls");
      const uint64_t submissions =
          JsonU64Field(io_json, "io_recv_submissions") +
          JsonU64Field(io_json, "io_send_submissions");
      const uint64_t frames = JsonU64Field(io_json, "frames_in") +
                              JsonU64Field(io_json, "frames_out");
      const uint64_t syscalls = waits + recvs + sends;
      std::printf(
          "remote server i/o: %s backend — %s waits, %s recv + %s send "
          "syscalls, %s ring submissions, %.2f frames/syscall\n\n",
          backend.c_str(), WithThousandsSeparators(waits).c_str(),
          WithThousandsSeparators(recvs).c_str(),
          WithThousandsSeparators(sends).c_str(),
          WithThousandsSeparators(submissions).c_str(),
          static_cast<double>(frames) /
              static_cast<double>(syscalls > 0 ? syscalls : 1));
    }
  }
  if (!flags.stats_json_path.empty() && !stats_json.empty()) {
    std::FILE* f = std::fopen(flags.stats_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.stats_json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", stats_json.c_str());
    std::fclose(f);
    std::printf("server stats json written to %s\n",
                flags.stats_json_path.c_str());
  }
  return net_errors.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  pkgm::ServeFlags flags;
  if (!pkgm::ParseFlags(argc, argv, &flags)) return pkgm::Usage();
  return pkgm::Run(flags);
}
