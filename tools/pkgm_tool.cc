// pkgm_tool — command-line driver for the PKGM library.
//
//   pkgm_tool generate  <out.tsv>  [seed]        synthesize a product KG
//   pkgm_tool pretrain  <kg.tsv> <model.bin> [epochs] [dim]
//                                               pre-train PKGM on a TSV KG
//   pkgm_tool train     <kg.tsv> <model.bin> [--epochs N] [--dim N]
//                       [--workers N] [--optimizer adam|sgd] [--lr F]
//                       [--batch N] [--margin F] [--seed N] [--store out.pkgs]
//                       [--distributed N | --connect-shards h:p,h:p,...]
//                       [--worker-index I --worker-procs P] [--inflight N]
//                       [--psd-binary PATH] [--eval-hinge]
//                                               flag-driven training front
//                                               end; --workers > 1 runs the
//                                               pipelined sharded trainer;
//                                               --distributed N spawns N
//                                               pkgm_psd shard daemons and
//                                               trains through the wire
//                                               protocol (--connect-shards
//                                               joins daemons already
//                                               running, e.g. from another
//                                               worker process)
//   pkgm_tool eval      <kg.tsv> <model.bin> [fraction]
//                                               filtered link prediction on a
//                                               random holdout of the KG
//   pkgm_tool complete  <kg.tsv> <model.bin> <head> <relation> [topk]
//                                               answer (head, relation, ?)
//                                               in vector space
//   pkgm_tool export-store <model.bin> <out.pkgs> [fp32|int8] [generation]
//                                               export a checkpoint into the
//                                               mmap-servable .pkgs store
//   pkgm_tool inspect-store <store.pkgs>        dump header/sections and
//                                               verify the payload checksum
//   pkgm_tool quantize-store <in.pkgs> <out.pkgs>
//                                               re-encode an fp32 store int8
//   pkgm_tool build-kg-index <kg.tsv> <out.pkgt>
//                                               sort a TSV KG into the
//                                               mmap-servable .pkgt triple
//                                               index (SPO/POS/OSP)
//   pkgm_tool inspect-kg-index <index.pkgt>     dump the index header and
//                                               verify checksum + structure
//   pkgm_tool bench-kernels [dim]               detected SIMD ISA + per-op
//                                               micro-bench vs scalar
//   pkgm_tool export-infer-model <out_prefix> [--seed N] [--generation N]
//                                               pre-train the serving-scale
//                                               PKG, train the three
//                                               downstream models and write
//                                               <prefix>.{recommend,classify,
//                                               align}.pkgi (checksummed,
//                                               self-checked by reload)
//   pkgm_tool inspect-infer-model <model.pkgi>  print the .pkgi header +
//                                               config as JSON; verifies
//                                               the payload checksum
//
// The TSV format is "head\trelation\ttail", one triple per line (see
// kg/io.h); `generate` emits a compatible file so the whole loop runs
// without external data. `train` also accepts a `.pkgt` index in place of
// the TSV and streams triples from the mapping.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/link_prediction.h"
#include "core/pkgm_model.h"
#include "core/sharded_trainer.h"
#include "core/trainer.h"
#include "dist/dist_trainer.h"
#include "dist/local_cluster.h"
#include "infer/model_file.h"
#include "infer/pipeline.h"
#include "kg/io.h"
#include "kg/mmap_triple_index.h"
#include "kg/split.h"
#include "kg/synthetic_pkg.h"
#include "kg/triple_index_writer.h"
#include "store/embedding_store_writer.h"
#include "store/mmap_embedding_store.h"
#include "store/store_format.h"
#include "serve_common.h"
#include "tensor/simd/kernel_bench.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pkgm {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pkgm_tool generate <out.tsv> [seed]\n"
               "  pkgm_tool pretrain <kg.tsv> <model.bin> [epochs] [dim]\n"
               "  pkgm_tool train <kg.tsv> <model.bin> [--epochs N] [--dim N]"
               " [--workers N]\n"
               "            [--optimizer adam|sgd] [--lr F] [--batch N]"
               " [--margin F] [--seed N]\n"
               "            [--store out.pkgs]"
               " [--distributed N | --connect-shards h:p,...]\n"
               "            [--worker-index I --worker-procs P] [--inflight N]"
               " [--psd-binary PATH]\n"
               "            [--eval-hinge]\n"
               "  pkgm_tool eval <kg.tsv> <model.bin> [holdout_fraction]\n"
               "  pkgm_tool complete <kg.tsv> <model.bin> <head> <relation> "
               "[topk]\n"
               "  pkgm_tool export-store <model.bin> <out.pkgs> [fp32|int8] "
               "[generation]\n"
               "  pkgm_tool inspect-store <store.pkgs>\n"
               "  pkgm_tool quantize-store <in.pkgs> <out.pkgs>\n"
               "  pkgm_tool build-kg-index <kg.tsv> <out.pkgt>\n"
               "  pkgm_tool inspect-kg-index <index.pkgt>\n"
               "  pkgm_tool bench-kernels [dim]\n"
               "  pkgm_tool export-infer-model <out_prefix> [--seed N] "
               "[--generation N]\n"
               "  pkgm_tool inspect-infer-model <model.pkgi>\n");
  return 2;
}

bool HasSuffix(const char* s, const char* suffix) {
  const size_t n = std::strlen(s), m = std::strlen(suffix);
  return n >= m && std::strcmp(s + (n - m), suffix) == 0;
}

/// Loads a TSV KG; exits with a message on failure.
kg::TripleStore MustLoad(const std::string& path, kg::Vocab* entities,
                         kg::Vocab* relations) {
  auto store = kg::ImportTriplesTsv(path, entities, relations);
  if (!store.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 store.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("loaded %zu triples, %u entities, %u relations from %s\n",
              store->size(), entities->size(), relations->size(),
              path.c_str());
  return std::move(store.value());
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string out_path = argv[0];
  kg::SyntheticPkgOptions opt;
  opt.seed = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 42;
  opt.num_categories = 12;
  opt.items_per_category = 200;
  kg::SyntheticPkg pkg = kg::SyntheticPkgGenerator(opt).Generate();
  Status s = kg::ExportTriplesTsv(pkg.observed, pkg.entities, pkg.relations,
                                  out_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu triples to %s (seed %llu)\n", pkg.observed.size(),
              out_path.c_str(), static_cast<unsigned long long>(opt.seed));
  return 0;
}

int CmdPretrain(int argc, char** argv) {
  if (argc < 2) return Usage();
  kg::Vocab entities, relations;
  kg::TripleStore store = MustLoad(argv[0], &entities, &relations);
  const uint32_t epochs = argc >= 3 ? std::atoi(argv[2]) : 30;
  const uint32_t dim = argc >= 4 ? std::atoi(argv[3]) : 32;

  core::PkgmModelOptions mopt;
  mopt.num_entities = entities.size();
  mopt.num_relations = relations.size();
  mopt.dim = dim;
  core::PkgmModel model(mopt);
  core::TrainerOptions topt;
  topt.learning_rate = 0.05f;
  core::Trainer trainer(&model, &store, topt);

  Stopwatch sw;
  for (uint32_t e = 1; e <= epochs; ++e) {
    core::EpochStats stats = trainer.RunEpoch();
    if (e == 1 || e % 5 == 0 || e == epochs) {
      std::printf("epoch %3u  mean hinge %.4f  (%.0f triples/s)\n", e,
                  stats.mean_hinge, stats.triples_per_second);
    }
  }
  std::printf("trained in %.1fs\n", sw.ElapsedSeconds());

  Status s = model.SaveToFile(argv[1]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", argv[1]);
  return 0;
}

/// pkgm_psd next to the running pkgm_tool binary (the usual build layout);
/// falls back to PATH lookup semantics of execv (i.e. none) otherwise.
std::string DefaultPsdBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "pkgm_psd";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "pkgm_psd";
  return path.substr(0, slash + 1) + "pkgm_psd";
}

std::vector<std::string> SplitCommaList(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Flag-driven training front end. Unlike the positional `pretrain` command
// it exposes the full hyper-parameter surface and, with --workers > 1,
// runs the pipelined hogwild ShardedTrainer (SGD only — asynchronous row
// publication has no per-row Adam state). --distributed / --connect-shards
// switch to parameter-server training over the wire protocol: the shard
// daemons apply the updates, so Adam is available at any worker count.
int CmdTrain(int argc, char** argv) {
  if (argc < 2) return Usage();
  uint32_t epochs = 10, dim = 32, workers = 1, batch = 512;
  float lr = 0.05f, margin = 2.0f;
  uint64_t seed = 17;
  bool adam = true;
  const char* store_out = nullptr;
  uint32_t distributed = 0;          // > 0: spawn this many shard daemons
  std::vector<std::string> connect_shards;
  uint32_t worker_index = 0, worker_procs = 1;
  uint32_t inflight = 4;
  std::string psd_binary;
  bool eval_hinge = false;

  for (int i = 2; i < argc; ++i) {
    const auto flag_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--epochs")) {
      epochs = std::atoi(v);
    } else if (const char* v = flag_value("--dim")) {
      dim = std::atoi(v);
    } else if (const char* v = flag_value("--workers")) {
      workers = std::atoi(v);
    } else if (const char* v = flag_value("--batch")) {
      batch = std::atoi(v);
    } else if (const char* v = flag_value("--lr")) {
      lr = std::atof(v);
    } else if (const char* v = flag_value("--margin")) {
      margin = std::atof(v);
    } else if (const char* v = flag_value("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--store")) {
      store_out = v;
    } else if (const char* v = flag_value("--distributed")) {
      distributed = std::atoi(v);
    } else if (const char* v = flag_value("--connect-shards")) {
      connect_shards = SplitCommaList(v);
    } else if (const char* v = flag_value("--worker-index")) {
      worker_index = std::atoi(v);
    } else if (const char* v = flag_value("--worker-procs")) {
      worker_procs = std::atoi(v);
    } else if (const char* v = flag_value("--inflight")) {
      inflight = std::atoi(v);
    } else if (const char* v = flag_value("--psd-binary")) {
      psd_binary = v;
    } else if (std::strcmp(argv[i], "--eval-hinge") == 0) {
      eval_hinge = true;
    } else if (const char* v = flag_value("--optimizer")) {
      if (std::strcmp(v, "adam") == 0) {
        adam = true;
      } else if (std::strcmp(v, "sgd") == 0) {
        adam = false;
      } else {
        std::fprintf(stderr, "unknown optimizer %s (want adam or sgd)\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (epochs == 0 || dim == 0 || workers == 0 || batch == 0) return Usage();
  const bool dist_mode = distributed > 0 || !connect_shards.empty();
  if (distributed > 0 && !connect_shards.empty()) {
    std::fprintf(stderr,
                 "--distributed and --connect-shards are mutually "
                 "exclusive\n");
    return 2;
  }
  if (worker_procs == 0 || worker_index >= worker_procs) {
    std::fprintf(stderr, "--worker-index must be < --worker-procs\n");
    return 2;
  }
  if (!dist_mode && worker_procs > 1) {
    std::fprintf(stderr,
                 "--worker-procs needs --distributed or --connect-shards\n");
    return 2;
  }
  if (workers > 1 && adam && !dist_mode) {
    std::printf("note: --workers %u forces --optimizer sgd (the sharded "
                "trainer publishes rows asynchronously; the parameter "
                "servers of --distributed apply updates centrally, so Adam "
                "stays available there)\n",
                workers);
    adam = false;
  }

  // Triples come from a TSV (dictionary-encoded at load) or, with a .pkgt
  // argument, straight from the mmap index — the trainers only see the
  // TripleSource seam either way.
  kg::Vocab entities, relations;
  std::optional<kg::TripleStore> tsv_store;
  std::optional<kg::MmapTripleIndex> index;
  const kg::TripleSource* source = nullptr;
  uint32_t num_entities = 0, num_relations = 0;
  if (HasSuffix(argv[0], ".pkgt")) {
    auto opened = kg::MmapTripleIndex::Open(argv[0]);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    index.emplace(std::move(opened.value()));
    source = &*index;
    num_entities = index->MaxEntityId();
    num_relations = index->MaxRelationId();
    std::printf("mapped %s triples, %u entities, %u relations from %s\n",
                WithThousandsSeparators(index->NumTriples()).c_str(),
                num_entities, num_relations, argv[0]);
  } else {
    tsv_store.emplace(MustLoad(argv[0], &entities, &relations));
    source = &*tsv_store;
    num_entities = entities.size();
    num_relations = relations.size();
  }

  core::PkgmModelOptions mopt;
  mopt.num_entities = num_entities;
  mopt.num_relations = num_relations;
  mopt.dim = dim;
  mopt.seed = seed;
  std::printf("training d=%u, %u epoch(s), %u worker(s), %s, lr %g, "
              "batch %u, margin %g, seed %llu, kernels %s\n",
              dim, epochs, workers, adam ? "adam" : "sgd",
              static_cast<double>(lr), batch, static_cast<double>(margin),
              static_cast<unsigned long long>(seed), simd::ActiveIsaName());

  const auto report = [&](uint32_t e, const core::EpochStats& s) {
    if (e == 1 || e % 5 == 0 || e == epochs) {
      std::printf("epoch %3u  mean hinge %.4f  active %s  (%.0f triples/s)\n",
                  e, s.mean_hinge,
                  WithThousandsSeparators(s.active_pairs).c_str(),
                  s.triples_per_second);
      std::fflush(stdout);
    }
  };
  const auto save_and_export = [&](const core::PkgmModel& m) -> int {
    Status s = m.SaveToFile(argv[1]);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written to %s\n", argv[1]);
    if (store_out != nullptr) {
      Status ws = store::EmbeddingStoreWriter(store::StoreWriterOptions{})
                      .Write(m, store_out);
      if (!ws.ok()) {
        std::fprintf(stderr, "%s\n", ws.ToString().c_str());
        return 1;
      }
      std::printf("servable store written to %s\n", store_out);
    }
    return 0;
  };

  Stopwatch sw;
  if (dist_mode) {
    // Spawn the shard fleet when asked; otherwise join daemons another
    // process (or operator) already started.
    std::optional<dist::LocalShardCluster> cluster;
    std::vector<std::string> endpoints = connect_shards;
    if (distributed > 0) {
      char work_dir[] = "/tmp/pkgm_psd_XXXXXX";
      if (::mkdtemp(work_dir) == nullptr) {
        std::fprintf(stderr, "cannot create a scratch dir for port files\n");
        return 1;
      }
      dist::LocalShardClusterOptions copt;
      copt.psd_binary = psd_binary.empty() ? DefaultPsdBinary() : psd_binary;
      copt.work_dir = work_dir;
      copt.num_shards = distributed;
      copt.model = mopt;
      copt.optimizer =
          adam ? core::OptimizerKind::kAdam : core::OptimizerKind::kSgd;
      copt.learning_rate = lr;
      cluster.emplace(std::move(copt));
      Status st = cluster->Start();
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      endpoints = cluster->endpoints();
      std::printf("spawned %u shard daemon(s)\n", distributed);
    }

    dist::DistTrainerOptions dopt;
    dopt.shard_endpoints = endpoints;
    dopt.num_workers = workers;
    dopt.worker_process_index = worker_index;
    dopt.num_worker_processes = worker_procs;
    dopt.batch_size = batch;
    dopt.learning_rate = lr;
    dopt.margin = margin;
    dopt.seed = seed;
    dopt.max_inflight_pushes = inflight;
    dist::DistTrainer trainer(source, dopt);
    Status st = trainer.Connect();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("connected to %zu shard(s), worker process %u/%u, "
                "inflight bound %u\n",
                endpoints.size(), worker_index, worker_procs, inflight);
    for (uint32_t e = 1; e <= epochs; ++e) {
      StatusOr<core::EpochStats> stats = trainer.RunEpoch();
      if (!stats.ok()) {
        std::fprintf(stderr, "epoch %u: %s\n", e,
                     stats.status().ToString().c_str());
        return 1;
      }
      report(e, stats.value());
    }
    std::printf("trained in %.1fs (%llu pulls, %llu pushes)\n",
                sw.ElapsedSeconds(),
                static_cast<unsigned long long>(trainer.pulls()),
                static_cast<unsigned long long>(trainer.pushes()));
    // Refresh the replica so the checkpoint is the shards' merged state.
    st = trainer.PullFullModel();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (eval_hinge) {
      std::printf("final eval hinge %.6f\n", trainer.EvaluateMeanHinge());
    }
    return save_and_export(*trainer.replica());
  }

  core::PkgmModel model(mopt);
  if (workers > 1) {
    core::ShardedTrainerOptions sopt;
    sopt.num_workers = workers;
    sopt.batch_size = batch;
    sopt.learning_rate = lr;
    sopt.margin = margin;
    sopt.seed = seed;
    core::ShardedTrainer trainer(&model, source, sopt);
    for (uint32_t e = 1; e <= epochs; ++e) report(e, trainer.RunEpoch());
  } else {
    core::TrainerOptions topt;
    topt.batch_size = batch;
    topt.learning_rate = lr;
    topt.margin = margin;
    topt.seed = seed;
    topt.optimizer =
        adam ? core::OptimizerKind::kAdam : core::OptimizerKind::kSgd;
    core::Trainer trainer(&model, source, topt);
    for (uint32_t e = 1; e <= epochs; ++e) report(e, trainer.RunEpoch());
  }
  std::printf("trained in %.1fs\n", sw.ElapsedSeconds());
  if (eval_hinge) {
    // The same derived validation stream DistTrainer::EvaluateMeanHinge
    // uses, so single-process and distributed runs print comparable
    // numbers for the same seed.
    core::TrainerOptions eopt;
    eopt.margin = margin;
    eopt.seed = seed;
    eopt.optimizer = core::OptimizerKind::kSgd;  // eval touches no state
    core::Trainer evaluator(&model, source, eopt);
    std::vector<kg::Triple> triples;
    source->AppendTriples(&triples);
    std::printf("final eval hinge %.6f\n",
                evaluator.EvaluateMeanHinge(triples));
  }
  return save_and_export(model);
}

int CmdEval(int argc, char** argv) {
  if (argc < 2) return Usage();
  kg::Vocab entities, relations;
  kg::TripleStore store = MustLoad(argv[0], &entities, &relations);
  auto model = core::PkgmModel::LoadFromFile(argv[1]);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const double fraction = argc >= 3 ? std::atof(argv[2]) : 0.05;

  Rng rng(7);
  kg::TripleSplit split = kg::SplitTriples(store, 1.0 - fraction, 0.0, &rng);
  std::printf("evaluating filtered tail ranking on %zu held triples "
              "(model was trained on the full file; this measures fit)\n",
              split.test.size());

  core::LinkPredictionEvaluator::Options eopt;
  core::LinkPredictionEvaluator eval(&model.value(), &store, eopt);
  auto result = eval.EvaluateTails(split.test);
  std::printf("MRR %.4f | Hits@1 %.4f | Hits@3 %.4f | Hits@10 %.4f | "
              "mean rank %.1f\n",
              result.mrr, result.hits[1], result.hits[3], result.hits[10],
              result.mean_rank);
  return 0;
}

int CmdComplete(int argc, char** argv) {
  if (argc < 4) return Usage();
  kg::Vocab entities, relations;
  kg::TripleStore store = MustLoad(argv[0], &entities, &relations);
  auto model = core::PkgmModel::LoadFromFile(argv[1]);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const uint32_t head = entities.Find(argv[2]);
  const uint32_t relation = relations.Find(argv[3]);
  if (head == kg::kInvalidId || relation == kg::kInvalidId) {
    std::fprintf(stderr, "unknown head or relation name\n");
    return 1;
  }
  const size_t topk = argc >= 5 ? std::atoi(argv[4]) : 5;

  std::vector<float> q(model->dim());
  model->TripleQueryVector(head, relation, q.data());
  std::vector<std::pair<float, kg::EntityId>> scored;
  scored.reserve(model->num_entities());
  for (kg::EntityId e = 0; e < model->num_entities(); ++e) {
    if (e == head) continue;
    scored.emplace_back(model->TailDistance(relation, q.data(),
                                            model->entity(e)),
                        e);
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + std::min(topk, scored.size()),
                    scored.end());
  std::printf("(%s, %s, ?) top-%zu completions:\n", argv[2], argv[3], topk);
  for (size_t i = 0; i < std::min(topk, scored.size()); ++i) {
    const bool known = store.Contains(head, relation, scored[i].second);
    std::printf("  %zu. %-30s dist %.4f%s\n", i + 1,
                entities.Name(scored[i].second).c_str(), scored[i].first,
                known ? "  [in KG]" : "  [inferred]");
  }
  return 0;
}

int CmdExportStore(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto model = core::PkgmModel::LoadFromFile(argv[0]);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  store::StoreWriterOptions wopt;
  if (argc >= 3) {
    if (std::strcmp(argv[2], "int8") == 0) {
      wopt.dtype = store::StoreDtype::kInt8;
    } else if (std::strcmp(argv[2], "fp32") != 0) {
      std::fprintf(stderr, "unknown dtype %s (want fp32 or int8)\n", argv[2]);
      return 2;
    }
  }
  if (argc >= 4) wopt.generation = std::strtoull(argv[3], nullptr, 10);

  Stopwatch sw;
  Status s = store::EmbeddingStoreWriter(wopt).Write(model.value(), argv[1]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto opened = store::MmapEmbeddingStore::Open(argv[1]);
  if (!opened.ok()) {
    std::fprintf(stderr, "export self-check failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("exported %u entities x %u relations (d=%u) as %s gen %llu "
              "to %s: %llu bytes in %.2fs\n",
              opened->num_entities(), opened->num_relations(), opened->dim(),
              store::StoreDtypeName(opened->dtype()),
              static_cast<unsigned long long>(opened->generation()), argv[1],
              static_cast<unsigned long long>(opened->file_size()),
              sw.ElapsedSeconds());
  return 0;
}

int CmdInspectStore(int argc, char** argv) {
  if (argc < 1) return Usage();
  // Open without the checksum pass first so the header prints even for a
  // store whose payload is damaged; verify explicitly afterwards.
  store::MmapStoreOptions mopt;
  mopt.verify_checksum = false;
  auto opened = store::MmapEmbeddingStore::Open(argv[0], mopt);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  const store::StoreHeader& h = opened->header();
  std::printf("store            %s\n", argv[0]);
  std::printf("format version   %u\n", h.version);
  std::printf("dtype            %s\n", store::StoreDtypeName(opened->dtype()));
  std::printf("dim              %u\n", h.dim);
  std::printf("entities         %u\n", h.num_entities);
  std::printf("relations        %u\n", h.num_relations);
  std::printf("scorer           %u\n", h.scorer);
  std::printf("relation module  %s\n", h.has_relation_module() ? "yes" : "no");
  std::printf("hyperplanes      %s\n", h.has_hyperplanes() ? "yes" : "no");
  std::printf("generation       %llu\n",
              static_cast<unsigned long long>(h.generation));
  std::printf("file size        %llu bytes\n",
              static_cast<unsigned long long>(h.file_size));
  auto section = [](const char* name, uint64_t offset) {
    if (offset == 0) {
      std::printf("%-16s -\n", name);
    } else {
      std::printf("%-16s offset %llu\n", name,
                  static_cast<unsigned long long>(offset));
    }
  };
  section("entity section", h.entity_offset);
  section("relation sect.", h.relation_offset);
  section("transfer sect.", h.transfer_offset);
  section("hyperplane sec.", h.hyperplane_offset);
  Status s = opened->VerifyChecksum();
  std::printf("checksum         %s\n", s.ok() ? "OK" : s.ToString().c_str());
  return s.ok() ? 0 : 1;
}

int CmdQuantizeStore(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto opened = store::MmapEmbeddingStore::Open(argv[0]);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  if (opened->dtype() == store::StoreDtype::kInt8) {
    std::fprintf(stderr, "%s is already int8\n", argv[0]);
    return 1;
  }
  store::StoreWriterOptions wopt;
  wopt.dtype = store::StoreDtype::kInt8;
  wopt.generation = opened->generation();
  Status s = store::EmbeddingStoreWriter(wopt).Write(opened.value(), argv[1]);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto out = store::MmapEmbeddingStore::Open(argv[1]);
  if (!out.ok()) {
    std::fprintf(stderr, "quantize self-check failed: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  std::printf("quantized %s (%llu bytes) -> %s (%llu bytes, %.1f%%)\n",
              argv[0], static_cast<unsigned long long>(opened->file_size()),
              argv[1], static_cast<unsigned long long>(out->file_size()),
              100.0 * static_cast<double>(out->file_size()) /
                  static_cast<double>(opened->file_size()));
  return 0;
}

int CmdBuildKgIndex(int argc, char** argv) {
  if (argc < 2) return Usage();
  kg::Vocab entities, relations;
  kg::TripleStore store = MustLoad(argv[0], &entities, &relations);

  auto stats = kg::TripleIndexWriter().Write(store, argv[1]);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "indexed %s triples in %.2fs (%.0f triples/s): "
      "%llu SPO / %llu POS / %llu OSP runs, %s bytes -> %s\n",
      WithThousandsSeparators(stats->num_triples).c_str(), stats->seconds,
      static_cast<double>(stats->num_triples) / stats->seconds,
      static_cast<unsigned long long>(stats->spo_runs),
      static_cast<unsigned long long>(stats->pos_runs),
      static_cast<unsigned long long>(stats->osp_runs),
      WithThousandsSeparators(stats->file_bytes).c_str(), argv[1]);

  // Self-check: reopen with full checksum verification so a build that
  // produced an unreadable index fails here, not at serving time.
  auto opened = kg::MmapTripleIndex::Open(argv[1]);
  if (!opened.ok()) {
    std::fprintf(stderr, "self-check failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("self-check OK (checksum verified, %u entities, %u relations)\n",
              opened->MaxEntityId(), opened->MaxRelationId());
  return 0;
}

int CmdInspectKgIndex(int argc, char** argv) {
  if (argc < 1) return Usage();
  // Open without the checksum pass first so the header prints even for an
  // index whose payload is damaged; verify explicitly afterwards.
  kg::MmapTripleIndexOptions mopt;
  mopt.verify_checksum = false;
  auto opened = kg::MmapTripleIndex::Open(argv[0], mopt);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  const kg::PkgtHeader& h = opened->header();
  std::printf("index            %s\n", argv[0]);
  std::printf("format version   %u\n", h.version);
  std::printf("triples          %s\n",
              WithThousandsSeparators(h.num_triples).c_str());
  std::printf("entities         %u\n", h.num_entities);
  std::printf("relations        %u\n", h.num_relations);
  std::printf("file size        %s bytes\n",
              WithThousandsSeparators(h.file_size).c_str());
  const auto perm = [](const char* name, const kg::PkgtPermutation& p) {
    std::printf("%-16s %llu runs, keys at %llu, values at %llu\n", name,
                static_cast<unsigned long long>(p.num_runs),
                static_cast<unsigned long long>(p.keys_offset),
                static_cast<unsigned long long>(p.values_offset));
  };
  perm("SPO", h.spo);
  perm("POS", h.pos);
  perm("OSP", h.osp);
  Status cs = opened->VerifyChecksum();
  std::printf("checksum         %s\n", cs.ok() ? "OK" : cs.ToString().c_str());
  Status vs = opened->Validate();
  std::printf("structure        %s\n", vs.ok() ? "OK" : vs.ToString().c_str());
  return cs.ok() && vs.ok() ? 0 : 1;
}

// Self-contained downstream-model packaging: pre-trains the serving-scale
// synthetic PKG (the same pipeline pkgm_netd --infer runs), trains the
// three downstream models, and writes one versioned, checksummed .pkgi per
// task. Each file is reloaded as a self-check, so a prefix this command
// accepts is guaranteed loadable by a serving process.
int CmdExportInferModel(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string prefix = argv[0];
  uint64_t seed = 2021;
  uint64_t generation = 1;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = flag_value("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--generation")) {
      generation = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("pre-training the serving-scale PKG (seed %llu) ...\n",
              static_cast<unsigned long long>(seed));
  Stopwatch sw;
  tasks::PretrainedPkgm p =
      tasks::BuildAndPretrain(tool::ServePipelineOptions(seed));
  infer::InferPipelineOptions iopt;
  iopt.seed = seed + 100;
  infer::InferBundle bundle = infer::TrainInferModels(p, iopt);
  std::printf("trained in %.1fs: %u items, %u users, %u classes\n",
              sw.ElapsedSeconds(), p.services->num_items(), bundle.num_users,
              bundle.num_classes);

  const auto save_one = [&](Status status, const std::string& path) -> int {
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    auto loaded = infer::LoadInferModel(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: self-check reload failed: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%s, gen %llu, %s bytes, self-check OK)\n",
                path.c_str(), InferTaskName(loaded->task),
                static_cast<unsigned long long>(loaded->generation),
                WithThousandsSeparators(loaded->file_bytes).c_str());
    return 0;
  };

  const std::string rec_path = prefix + ".recommend.pkgi";
  if (save_one(infer::SaveRecommenderModel(bundle.recommender, bundle.variant,
                                           generation, rec_path),
               rec_path) != 0) {
    return 1;
  }
  const std::string cls_path = prefix + ".classify.pkgi";
  if (save_one(infer::SaveClassifierModel(bundle.classifier, bundle.variant,
                                          generation, cls_path),
               cls_path) != 0) {
    return 1;
  }
  const std::string aln_path = prefix + ".align.pkgi";
  if (save_one(infer::SaveAlignerModel(bundle.aligner, bundle.variant,
                                       generation, aln_path),
               aln_path) != 0) {
    return 1;
  }
  return 0;
}

int CmdInspectInferModel(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto json = infer::InspectInferModel(argv[0]);
  if (!json.ok()) {
    std::fprintf(stderr, "%s\n", json.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", json->c_str());
  return 0;
}

int CmdBenchKernels(int argc, char** argv) {
  const size_t dim = argc >= 1 ? std::strtoul(argv[0], nullptr, 10) : 64;
  if (dim == 0) return Usage();
  const size_t batch_rows = 256;

  std::printf("detected ISA    %s\n",
              simd::KernelIsaName(simd::DetectBestIsa()));
  std::printf("active kernels  %s", simd::ActiveIsaName());
  if (const char* env = std::getenv("PKGM_KERNEL")) {
    std::printf("  (PKGM_KERNEL=%s)", env);
  }
  std::printf("\ndim %zu, batch %zu rows; GB/s counts bytes touched per "
              "call\n\n",
              dim, batch_rows);

  std::vector<const simd::KernelTable*> tables = {&simd::ScalarKernels()};
  if (const simd::KernelTable* t = simd::Avx2Kernels()) tables.push_back(t);
  if (const simd::KernelTable* t = simd::Avx512Kernels()) tables.push_back(t);
  if (const simd::KernelTable* t = simd::NeonKernels()) tables.push_back(t);

  std::vector<std::vector<simd::KernelBenchResult>> runs;
  for (const simd::KernelTable* t : tables) {
    runs.push_back(simd::RunKernelBench(*t, dim, batch_rows));
  }

  // Header: one ns/GBps/speedup column group per table.
  std::printf("%-18s", "op");
  for (const simd::KernelTable* t : tables) {
    std::printf(" | %7s ns   GB/s     x", simd::KernelIsaName(t->isa));
  }
  std::printf("\n");
  for (size_t op = 0; op < runs[0].size(); ++op) {
    std::printf("%-18s", runs[0][op].op);
    for (size_t ti = 0; ti < tables.size(); ++ti) {
      const auto& r = runs[ti][op];
      std::printf(" | %10.1f %6.2f %5.2f", r.ns_per_op, r.gbps,
                  runs[0][op].ns_per_op / r.ns_per_op);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  if (argc < 2) return pkgm::Usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "generate") == 0) {
    return pkgm::CmdGenerate(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "pretrain") == 0) {
    return pkgm::CmdPretrain(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "train") == 0) {
    return pkgm::CmdTrain(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "eval") == 0) return pkgm::CmdEval(argc - 2, argv + 2);
  if (std::strcmp(cmd, "complete") == 0) {
    return pkgm::CmdComplete(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "export-store") == 0) {
    return pkgm::CmdExportStore(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "inspect-store") == 0) {
    return pkgm::CmdInspectStore(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "quantize-store") == 0) {
    return pkgm::CmdQuantizeStore(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "build-kg-index") == 0) {
    return pkgm::CmdBuildKgIndex(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "inspect-kg-index") == 0) {
    return pkgm::CmdInspectKgIndex(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "bench-kernels") == 0) {
    return pkgm::CmdBenchKernels(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "export-infer-model") == 0) {
    return pkgm::CmdExportInferModel(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "inspect-infer-model") == 0) {
    return pkgm::CmdInspectInferModel(argc - 2, argv + 2);
  }
  return pkgm::Usage();
}
