// pkgm_netd — the network serving daemon: pre-trains PKGM on the same
// synthetic product KG pkgm_serve uses, stands up a KnowledgeServer, and
// exposes it over TCP via the PKGM wire protocol (src/net/). Remote
// clients (pkgm_serve --connect, or anything linking NetClient) then drive
// it across the socket.
//
//   pkgm_netd [--port N] [--bind ADDR] [--io-threads N] [--workers N]
//             [--cache 0|1] [--queue-capacity N] [--seed N]
//             [--store path.pkgs] [--store-dtype fp32|int8]
//             [--idle-timeout-ms N] [--max-outbox-mb N] [--reuseport 0|1]
//             [--port-file PATH] [--run-seconds N] [--stats-json PATH]
//             [--io-backend uring|epoll]
//
//   --io-backend pins the event-loop I/O backend; unset, PKGM_NET_IO and
//   then a runtime probe decide (io_uring where the kernel has it, epoll
//   otherwise). The listening line reports which backend actually serves.
//
//   --port 0 (default) binds an ephemeral port; --port-file writes the
//   bound port for scripted callers. --run-seconds 0 (default) serves
//   until SIGINT/SIGTERM. Either way shutdown is a graceful drain: the
//   listener closes, accepted requests complete and flush, then the final
//   StatsReport prints (and --stats-json writes the JSON snapshot).

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "infer/engine.h"
#include "infer/pipeline.h"
#include "infer/registry.h"
#include "net/net_server.h"
#include "serve/knowledge_server.h"
#include "store/model_registry.h"
#include "serve_common.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pkgm {
namespace {

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

struct NetdFlags {
  uint16_t port = 0;  // ephemeral by default
  std::string bind = "127.0.0.1";
  int io_threads = 2;
  int workers = 2;
  bool cache = true;
  size_t queue_capacity = 256;
  uint64_t seed = 2021;
  std::string store_path;
  store::StoreDtype store_dtype = store::StoreDtype::kFloat32;
  int idle_timeout_ms = 0;
  int max_outbox_mb = 8;
  bool reuseport = false;
  std::string port_file;
  int run_seconds = 0;  // 0 = until signal
  std::string stats_json_path;
  /// Train + serve the three downstream-inference tasks (wire v3 frames).
  bool infer = false;
  /// "uring" / "epoll" pin; "" defers to PKGM_NET_IO + runtime probe.
  std::string io_backend;
};

int Usage() {
  std::fprintf(stderr,
               "usage: pkgm_netd [--port N] [--bind ADDR] [--io-threads N]\n"
               "                 [--workers N] [--cache 0|1] "
               "[--queue-capacity N]\n"
               "                 [--seed N] [--store path.pkgs] "
               "[--store-dtype fp32|int8]\n"
               "                 [--idle-timeout-ms N] [--max-outbox-mb N]\n"
               "                 [--reuseport 0|1] [--port-file PATH]\n"
               "                 [--run-seconds N] [--stats-json PATH]\n"
               "                 [--infer 0|1] [--io-backend uring|epoll]\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, NetdFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--port") == 0 && (v = next())) {
      flags->port = static_cast<uint16_t>(std::atoi(v));
    } else if (std::strcmp(arg, "--bind") == 0 && (v = next())) {
      flags->bind = v;
    } else if (std::strcmp(arg, "--io-threads") == 0 && (v = next())) {
      flags->io_threads = std::atoi(v);
    } else if (std::strcmp(arg, "--workers") == 0 && (v = next())) {
      flags->workers = std::atoi(v);
    } else if (std::strcmp(arg, "--cache") == 0 && (v = next())) {
      flags->cache = std::atoi(v) != 0;
    } else if (std::strcmp(arg, "--queue-capacity") == 0 && (v = next())) {
      flags->queue_capacity = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0 && (v = next())) {
      flags->seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--store") == 0 && (v = next())) {
      flags->store_path = v;
    } else if (std::strcmp(arg, "--store-dtype") == 0 && (v = next())) {
      if (std::strcmp(v, "int8") == 0) {
        flags->store_dtype = store::StoreDtype::kInt8;
      } else if (std::strcmp(v, "fp32") == 0) {
        flags->store_dtype = store::StoreDtype::kFloat32;
      } else {
        std::fprintf(stderr, "--store-dtype must be fp32 or int8\n");
        return false;
      }
    } else if (std::strcmp(arg, "--idle-timeout-ms") == 0 && (v = next())) {
      flags->idle_timeout_ms = std::atoi(v);
    } else if (std::strcmp(arg, "--max-outbox-mb") == 0 && (v = next())) {
      flags->max_outbox_mb = std::atoi(v);
    } else if (std::strcmp(arg, "--reuseport") == 0 && (v = next())) {
      flags->reuseport = std::atoi(v) != 0;
    } else if (std::strcmp(arg, "--port-file") == 0 && (v = next())) {
      flags->port_file = v;
    } else if (std::strcmp(arg, "--run-seconds") == 0 && (v = next())) {
      flags->run_seconds = std::atoi(v);
    } else if (std::strcmp(arg, "--stats-json") == 0 && (v = next())) {
      flags->stats_json_path = v;
    } else if (std::strcmp(arg, "--infer") == 0 && (v = next())) {
      flags->infer = std::atoi(v) != 0;
    } else if (std::strcmp(arg, "--io-backend") == 0 && (v = next())) {
      flags->io_backend = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg);
      return false;
    }
  }
  if (flags->io_threads < 1 || flags->workers < 1) {
    std::fprintf(stderr, "--io-threads/--workers must be >= 1\n");
    return false;
  }
  return true;
}

int Run(const NetdFlags& flags) {
  std::printf("pkgm_netd: pre-training a synthetic PKG (short run) ...\n");
  Stopwatch setup;
  tasks::PretrainedPkgm p =
      tasks::BuildAndPretrain(tool::ServePipelineOptions(flags.seed));
  std::printf("ready in %.1fs: %u items, dim %u\n", setup.ElapsedSeconds(),
              p.services->num_items(), p.model->dim());

  serve::KnowledgeServerOptions sopt;
  sopt.num_workers = static_cast<size_t>(flags.workers);
  sopt.queue_capacity = flags.queue_capacity;
  sopt.enable_cache = flags.cache;

  store::ModelRegistry registry;
  std::unique_ptr<serve::KnowledgeServer> server;
  if (!flags.store_path.empty()) {
    auto gen = tool::ExportGeneration(*p.model, *p.services, flags.store_path,
                                      flags.store_dtype, /*generation=*/1);
    if (gen == nullptr) return 1;
    registry.Publish(gen->source, gen->provider, gen->info);
    std::printf("serving from %s store %s (%s bytes, mmap)\n",
                store::StoreDtypeName(flags.store_dtype),
                flags.store_path.c_str(),
                WithThousandsSeparators(gen->info.file_bytes).c_str());
    server = std::make_unique<serve::KnowledgeServer>(&registry, sopt);
  } else {
    server = std::make_unique<serve::KnowledgeServer>(p.services.get(), sopt);
  }

  // The inference backend (wire v3 Recommend/Classify/Align). Must outlive
  // the KnowledgeServer's workers; server->Stop() below joins them before
  // these locals die.
  infer::InferModelRegistry infer_models;
  std::unique_ptr<infer::InferenceEngine> engine;
  if (flags.infer) {
    std::printf("pkgm_netd: training downstream models "
                "(recommend/classify/align) ...\n");
    Stopwatch infer_setup;
    infer::InferPipelineOptions iopt;
    iopt.seed = flags.seed + 100;
    infer::InferBundle bundle = infer::TrainInferModels(p, iopt);
    const uint32_t num_users = bundle.num_users;
    const uint32_t num_classes = bundle.num_classes;
    infer_models.PublishRecommender(std::move(bundle.recommender),
                                    bundle.variant);
    infer_models.PublishClassifier(std::move(bundle.classifier),
                                   bundle.variant);
    infer_models.PublishAligner(std::move(bundle.aligner), bundle.variant);
    if (!flags.store_path.empty()) {
      engine = std::make_unique<infer::InferenceEngine>(
          &infer_models, &registry, std::move(bundle.titles));
    } else {
      engine = std::make_unique<infer::InferenceEngine>(
          &infer_models, p.services.get(), std::move(bundle.titles));
    }
    server->AttachInferExecutor(engine.get());
    std::printf("inference ready in %.1fs: %u users, %u classes\n",
                infer_setup.ElapsedSeconds(), num_users, num_classes);
  }
  server->Start();

  net::NetServerOptions nopt;
  nopt.bind_address = flags.bind;
  nopt.port = flags.port;
  nopt.num_io_threads = static_cast<size_t>(flags.io_threads);
  nopt.idle_timeout_ms = flags.idle_timeout_ms;
  nopt.max_outbox_bytes = static_cast<size_t>(flags.max_outbox_mb) << 20;
  nopt.reuseport = flags.reuseport;
  nopt.io_backend = flags.io_backend;
  net::NetServer net_server(server.get(), nopt);
  Status started = net_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "pkgm_netd: %s\n", started.ToString().c_str());
    server->Stop();
    return 1;
  }
  std::printf("listening on %s:%u (%d io threads, %d workers, %s i/o)\n",
              flags.bind.c_str(), net_server.port(), flags.io_threads,
              flags.workers, net_server.net_counters().io_backend.c_str());
  std::fflush(stdout);

  if (!flags.port_file.empty()) {
    // Write-then-rename so a polling client never reads a partial file.
    const std::string tmp = flags.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pkgm_netd: cannot write %s\n",
                   flags.port_file.c_str());
      net_server.Stop();
      server->Stop();
      return 1;
    }
    std::fprintf(f, "%u\n", net_server.port());
    std::fclose(f);
    std::rename(tmp.c_str(), flags.port_file.c_str());
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  const auto start = std::chrono::steady_clock::now();
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (flags.run_seconds > 0 &&
        std::chrono::steady_clock::now() - start >=
            std::chrono::seconds(flags.run_seconds)) {
      break;
    }
  }
  const int signum = g_signal.load();
  std::printf("\npkgm_netd: %s — draining ...\n",
              signum != 0 ? ::strsignal(signum) : "run time elapsed");

  net_server.Stop();  // graceful: in-flight requests complete and flush
  const std::string stats_json = net_server.StatsJson();
  const std::string stats_report = net_server.StatsReport();
  server->Stop();

  std::printf("final stats:\n%s\n", stats_report.c_str());
  if (!flags.stats_json_path.empty()) {
    std::FILE* f = std::fopen(flags.stats_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pkgm_netd: cannot write %s\n",
                   flags.stats_json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", stats_json.c_str());
    std::fclose(f);
    std::printf("stats json written to %s\n", flags.stats_json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  pkgm::NetdFlags flags;
  if (!pkgm::ParseFlags(argc, argv, &flags)) return pkgm::Usage();
  return pkgm::Run(flags);
}
