// Helpers shared by the serving tools (pkgm_serve, pkgm_netd): the
// serving-scale synthetic pipeline and the export-to-mmap-store path.
#ifndef PKGM_TOOLS_SERVE_COMMON_H_
#define PKGM_TOOLS_SERVE_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pkgm_model.h"
#include "core/service.h"
#include "store/embedding_store_writer.h"
#include "store/mmap_embedding_store.h"
#include "store/model_registry.h"
#include "tasks/pipeline.h"

namespace pkgm::tool {

/// Serving-scale pipeline: small KG, few epochs — the served vectors only
/// need to exist, not to be good, so pre-training is kept short.
inline tasks::PipelineOptions ServePipelineOptions(uint64_t seed) {
  tasks::PipelineOptions opt;
  opt.pkg.seed = seed;
  opt.pkg.num_categories = 8;
  opt.pkg.items_per_category = 125;  // 1000 items
  opt.dim = 32;
  opt.pretrain_epochs = 3;
  opt.service_k = 10;
  opt.seed = seed;
  return opt;
}

/// Exports `model` as store generation file `path`, mmaps it, and builds a
/// ServingGeneration whose provider mirrors the pipeline's item/key-relation
/// mapping. Returns nullptr (with a message) on failure.
inline std::shared_ptr<const store::ServingGeneration> ExportGeneration(
    const core::PkgmModel& model, const core::ServiceVectorProvider& services,
    const std::string& path, store::StoreDtype dtype, uint64_t generation) {
  store::StoreWriterOptions wopt;
  wopt.dtype = dtype;
  wopt.generation = generation;
  Status s = store::EmbeddingStoreWriter(wopt).Write(model, path);
  if (!s.ok()) {
    std::fprintf(stderr, "store export failed: %s\n", s.ToString().c_str());
    return nullptr;
  }
  auto opened = store::MmapEmbeddingStore::Open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 opened.status().ToString().c_str());
    return nullptr;
  }
  auto source =
      std::make_shared<store::MmapEmbeddingStore>(std::move(opened.value()));

  std::vector<kg::EntityId> items;
  std::vector<std::vector<kg::RelationId>> keys;
  items.reserve(services.num_items());
  keys.reserve(services.num_items());
  for (uint32_t i = 0; i < services.num_items(); ++i) {
    items.push_back(services.item_entity(i));
    keys.push_back(services.key_relations(i));
  }
  auto provider = std::make_shared<core::ServiceVectorProvider>(
      source.get(), std::move(items), std::move(keys));

  auto gen = std::make_shared<store::ServingGeneration>();
  gen->source = source;
  gen->provider = provider;
  gen->info.load_mode =
      dtype == store::StoreDtype::kInt8 ? "mmap-int8" : "mmap-fp32";
  gen->info.dtype = dtype;
  gen->info.file_bytes = source->file_size();
  gen->info.path = path;
  return gen;
}

}  // namespace pkgm::tool

#endif  // PKGM_TOOLS_SERVE_COMMON_H_
