// pkgm_psd — the parameter-server shard daemon of distributed training:
// owns one shard of the embedding tables (full-shape model, shared init
// seed, serves/updates only the rows with id % num_shards == shard) behind
// the v2 wire frames kShardInfo / kPullRows / kPushGrads / kBarrier,
// served by the same epoll NetServer as pkgm_netd. Workers (DistTrainer,
// `pkgm_tool train --distributed` or --connect-shards) drive it remotely.
//
//   pkgm_psd --shard N --num-shards N --entities N --relations N
//            [--dim N] [--scorer transe|distmult|complex|transh]
//            [--no-relation-module] [--model-seed N]
//            [--optimizer sgd|adam] [--lr F] [--no-normalize-entities]
//            [--port N] [--bind ADDR] [--io-threads N]
//            [--port-file PATH] [--run-seconds N] [--stats-json PATH]
//
//   --port 0 (default) binds an ephemeral port; --port-file publishes the
//   bound port write-then-rename for scripted callers (LocalShardCluster,
//   dist_smoke.sh). Shutdown on SIGINT/SIGTERM (or --run-seconds) aborts
//   parked barriers first, then drains the NetServer gracefully.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "dist/param_server.h"
#include "net/net_server.h"
#include "util/string_util.h"

namespace pkgm {
namespace {

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

struct PsdFlags {
  dist::ParamServerOptions ps;
  uint16_t port = 0;  // ephemeral by default
  std::string bind = "127.0.0.1";
  int io_threads = 1;
  std::string port_file;
  int run_seconds = 0;  // 0 = until signal
  std::string stats_json_path;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: pkgm_psd --shard N --num-shards N --entities N --relations N\n"
      "                [--dim N] [--scorer transe|distmult|complex|transh]\n"
      "                [--no-relation-module] [--model-seed N]\n"
      "                [--optimizer sgd|adam] [--lr F]\n"
      "                [--no-normalize-entities] [--port N] [--bind ADDR]\n"
      "                [--io-threads N] [--port-file PATH]\n"
      "                [--run-seconds N] [--stats-json PATH]\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, PsdFlags* flags) {
  bool have_shard = false, have_num_shards = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--shard") == 0 && (v = next())) {
      flags->ps.shard_index = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      have_shard = true;
    } else if (std::strcmp(arg, "--num-shards") == 0 && (v = next())) {
      flags->ps.num_shards = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      have_num_shards = true;
    } else if (std::strcmp(arg, "--entities") == 0 && (v = next())) {
      flags->ps.model.num_entities =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(arg, "--relations") == 0 && (v = next())) {
      flags->ps.model.num_relations =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(arg, "--dim") == 0 && (v = next())) {
      flags->ps.model.dim = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(arg, "--scorer") == 0 && (v = next())) {
      if (std::strcmp(v, "transe") == 0) {
        flags->ps.model.scorer = core::TripleScorerKind::kTransE;
      } else if (std::strcmp(v, "distmult") == 0) {
        flags->ps.model.scorer = core::TripleScorerKind::kDistMult;
      } else if (std::strcmp(v, "complex") == 0) {
        flags->ps.model.scorer = core::TripleScorerKind::kComplEx;
      } else if (std::strcmp(v, "transh") == 0) {
        flags->ps.model.scorer = core::TripleScorerKind::kTransH;
      } else {
        std::fprintf(stderr, "unknown scorer %s\n", v);
        return false;
      }
    } else if (std::strcmp(arg, "--no-relation-module") == 0) {
      flags->ps.model.use_relation_module = false;
    } else if (std::strcmp(arg, "--model-seed") == 0 && (v = next())) {
      flags->ps.model.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--optimizer") == 0 && (v = next())) {
      if (std::strcmp(v, "adam") == 0) {
        flags->ps.optimizer = core::OptimizerKind::kAdam;
      } else if (std::strcmp(v, "sgd") == 0) {
        flags->ps.optimizer = core::OptimizerKind::kSgd;
      } else {
        std::fprintf(stderr, "unknown optimizer %s (want adam or sgd)\n", v);
        return false;
      }
    } else if (std::strcmp(arg, "--lr") == 0 && (v = next())) {
      flags->ps.learning_rate = std::strtof(v, nullptr);
    } else if (std::strcmp(arg, "--no-normalize-entities") == 0) {
      flags->ps.normalize_entities = false;
    } else if (std::strcmp(arg, "--port") == 0 && (v = next())) {
      flags->port = static_cast<uint16_t>(std::atoi(v));
    } else if (std::strcmp(arg, "--bind") == 0 && (v = next())) {
      flags->bind = v;
    } else if (std::strcmp(arg, "--io-threads") == 0 && (v = next())) {
      flags->io_threads = std::atoi(v);
    } else if (std::strcmp(arg, "--port-file") == 0 && (v = next())) {
      flags->port_file = v;
    } else if (std::strcmp(arg, "--run-seconds") == 0 && (v = next())) {
      flags->run_seconds = std::atoi(v);
    } else if (std::strcmp(arg, "--stats-json") == 0 && (v = next())) {
      flags->stats_json_path = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg);
      return false;
    }
  }
  if (!have_shard || !have_num_shards ||
      flags->ps.shard_index >= flags->ps.num_shards) {
    std::fprintf(stderr, "--shard must be < --num-shards (both required)\n");
    return false;
  }
  if (flags->ps.model.num_entities == 0 ||
      flags->ps.model.num_relations == 0) {
    std::fprintf(stderr, "--entities and --relations are required\n");
    return false;
  }
  if (flags->io_threads < 1) {
    std::fprintf(stderr, "--io-threads must be >= 1\n");
    return false;
  }
  return true;
}

int Run(const PsdFlags& flags) {
  std::printf(
      "pkgm_psd: shard %u/%u, %u entities x %u relations, dim %u, %s\n",
      flags.ps.shard_index, flags.ps.num_shards,
      flags.ps.model.num_entities, flags.ps.model.num_relations,
      flags.ps.model.dim,
      flags.ps.optimizer == core::OptimizerKind::kAdam ? "adam" : "sgd");
  dist::ParamServer shard(flags.ps);

  net::NetServerOptions nopt;
  nopt.bind_address = flags.bind;
  nopt.port = flags.port;
  nopt.num_io_threads = static_cast<size_t>(flags.io_threads);
  net::NetServer net_server(&shard, nopt);
  Status started = net_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "pkgm_psd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u (%d io threads)\n", flags.bind.c_str(),
              net_server.port(), flags.io_threads);
  std::fflush(stdout);

  if (!flags.port_file.empty()) {
    // Write-then-rename so a polling client never reads a partial file.
    const std::string tmp = flags.port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pkgm_psd: cannot write %s\n",
                   flags.port_file.c_str());
      shard.AbortBarriers();
      net_server.Stop();
      return 1;
    }
    std::fprintf(f, "%u\n", net_server.port());
    std::fclose(f);
    std::rename(tmp.c_str(), flags.port_file.c_str());
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  const auto start = std::chrono::steady_clock::now();
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (flags.run_seconds > 0 &&
        std::chrono::steady_clock::now() - start >=
            std::chrono::seconds(flags.run_seconds)) {
      break;
    }
  }
  const int signum = g_signal.load();
  std::printf("\npkgm_psd: %s — draining ...\n",
              signum != 0 ? ::strsignal(signum) : "run time elapsed");

  // Order matters: parked barrier responds count as outstanding frames,
  // so they must be aborted before the drain waits on them.
  shard.AbortBarriers();
  net_server.Stop();
  const std::string stats_json = net_server.StatsJson();

  std::printf("final stats: %s\n", stats_json.c_str());
  if (!flags.stats_json_path.empty()) {
    std::FILE* f = std::fopen(flags.stats_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "pkgm_psd: cannot write %s\n",
                   flags.stats_json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", stats_json.c_str());
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace pkgm

int main(int argc, char** argv) {
  pkgm::PsdFlags flags;
  if (!pkgm::ParseFlags(argc, argv, &flags)) return pkgm::Usage();
  return pkgm::Run(flags);
}
