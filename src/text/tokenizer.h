#ifndef PKGM_TEXT_TOKENIZER_H_
#define PKGM_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pkgm::text {

/// Special token ids shared by the tokenizer and TinyBert.
inline constexpr uint32_t kPadId = 0;
inline constexpr uint32_t kClsId = 1;
inline constexpr uint32_t kSepId = 2;
inline constexpr uint32_t kUnkId = 3;
inline constexpr uint32_t kMaskId = 4;
inline constexpr uint32_t kNumSpecialTokens = 5;

/// Whitespace word tokenizer with a frequency-built vocabulary. Mirrors the
/// role of BERT's WordPiece at our synthetic-title scale, where titles are
/// already sequences of attribute words.
class Tokenizer {
 public:
  Tokenizer();

  /// Adds every whitespace token of `text` to the frequency table.
  void CountCorpusLine(std::string_view text);

  /// Freezes the vocabulary: tokens with frequency >= min_count get ids
  /// (after the 5 special tokens), most-frequent first.
  void BuildVocab(uint32_t min_count = 1);

  /// Restores a vocabulary previously captured via names() — the full
  /// ordered token list including the 5 special tokens at ids 0..4. Used by
  /// the .pkgi model loader so a deserialized tokenizer encodes exactly
  /// like the one it was saved from.
  void LoadVocab(std::vector<std::string> names);

  /// The ordered token list (id -> name), specials first. Valid once built.
  const std::vector<std::string>& names() const { return names_; }

  /// Token ids for `text`; unknown words map to [UNK]. Vocab must be built.
  std::vector<uint32_t> Encode(std::string_view text) const;

  /// Id for a single token, or kUnkId.
  uint32_t TokenId(std::string_view token) const;

  /// Inverse lookup (for debugging / MLM inspection).
  const std::string& TokenName(uint32_t id) const;

  uint32_t vocab_size() const { return static_cast<uint32_t>(names_.size()); }
  bool built() const { return built_; }

 private:
  std::unordered_map<std::string, uint64_t> freq_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
  bool built_ = false;
};

/// Builds a fixed-length BERT-style input: [CLS] tokens... [SEP] padded to
/// max_len (truncating tokens to max_len-2 as the paper does with 127-word
/// titles). Returns ids and the valid (unpadded) length via out-param.
std::vector<uint32_t> BuildSingleInput(const std::vector<uint32_t>& tokens,
                                       size_t max_len, size_t* valid_len);

/// Pair input: [CLS] a... [SEP] b... [SEP], each side truncated to
/// (max_len-3)/2 tokens (paper: 63 per title), padded to max_len.
/// segment_ids gets 0 for the first sentence (incl. [CLS] and first [SEP])
/// and 1 for the second.
std::vector<uint32_t> BuildPairInput(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b,
                                     size_t max_len, size_t* valid_len,
                                     std::vector<uint32_t>* segment_ids);

}  // namespace pkgm::text

#endif  // PKGM_TEXT_TOKENIZER_H_
