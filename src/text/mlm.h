#ifndef PKGM_TEXT_MLM_H_
#define PKGM_TEXT_MLM_H_

#include <cstdint>
#include <vector>

#include "nn/linear.h"
#include "nn/optimizer.h"
#include "text/tiny_bert.h"
#include "util/rng.h"

namespace pkgm::text {

/// Masked-language-model pre-training for TinyBert — the stand-in for
/// "released pre-trained BERT": downstream tasks start from an encoder that
/// has already learned title statistics, rather than from random weights.
///
/// Standard BERT recipe: 15% of tokens are selected; of those 80% become
/// [MASK], 10% a random token, 10% stay; the decoder predicts the original
/// token at the selected positions.
struct MlmOptions {
  double select_prob = 0.15;
  double mask_prob = 0.80;
  double random_prob = 0.10;  // remainder keeps the original token
  float learning_rate = 1e-3f;
  uint32_t epochs = 2;
  uint64_t seed = 31;
};

class MlmPretrainer {
 public:
  /// `bert` must outlive the pretrainer. Builds a decoder head
  /// (dim -> vocab) trained jointly with the encoder.
  MlmPretrainer(TinyBert* bert, const MlmOptions& options);

  /// Pre-trains on a corpus of already-encoded inputs (each a [CLS] ...
  /// sequence). Returns the mean MLM loss of the final epoch.
  float Pretrain(const std::vector<EncodedInput>& corpus);

  /// One masked step on a single input; returns the loss (0 when no token
  /// was selected). Exposed for tests.
  float Step(const EncodedInput& input, Rng* rng);

 private:
  TinyBert* bert_;
  MlmOptions options_;
  nn::Linear decoder_;
  nn::AdamOptimizer optimizer_;
  Rng rng_;
};

}  // namespace pkgm::text

#endif  // PKGM_TEXT_MLM_H_
