#include "text/title_generator.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::text {

TitleGenerator::TitleGenerator(const kg::SyntheticPkg* pkg,
                               TitleGeneratorOptions options)
    : pkg_(pkg), options_(options) {
  PKGM_CHECK(pkg != nullptr);
  PKGM_CHECK_GE(options.max_filler, options.min_filler);
}

std::string TitleGenerator::Generate(uint32_t item_index, Rng* rng) const {
  PKGM_CHECK_LT(item_index, pkg_->items.size());
  const kg::ItemInfo& item = pkg_->items[item_index];
  std::vector<std::string> words;

  // Noisy subset of attribute values, possibly under synonym surface forms.
  for (const auto& [rel, value] : item.attributes) {
    if (!rng->Bernoulli(options_.attribute_mention_prob)) continue;
    const std::string& base = pkg_->entities.Name(value);
    if (options_.synonyms_per_value > 0 && rng->Bernoulli(options_.synonym_prob)) {
      words.push_back(StrFormat(
          "%s~alt%u", base.c_str(),
          static_cast<uint32_t>(rng->Uniform(options_.synonyms_per_value))));
    } else {
      words.push_back(base);
    }
  }

  // Category-correlated filler (real titles carry category vocabulary).
  if (options_.category_filler_vocab > 0) {
    words.push_back(StrFormat(
        "catword_%u_%u", item.category,
        static_cast<uint32_t>(rng->Uniform(options_.category_filler_vocab))));
  }

  // Generic marketing filler.
  const uint32_t fillers =
      options_.min_filler +
      static_cast<uint32_t>(
          rng->Uniform(options_.max_filler - options_.min_filler + 1));
  for (uint32_t i = 0; i < fillers; ++i) {
    words.push_back(StrFormat(
        "promo_%u",
        static_cast<uint32_t>(rng->Uniform(options_.filler_vocab))));
  }

  if (options_.shuffle_words) rng->Shuffle(&words);
  return Join(words, " ");
}

std::string TitleGenerator::Stable(uint32_t item_index) const {
  uint64_t seed = options_.stable_seed;
  seed ^= (static_cast<uint64_t>(item_index) + 1) * 0x9e3779b97f4a7c15ULL;
  Rng rng(seed);
  return Generate(item_index, &rng);
}

}  // namespace pkgm::text
