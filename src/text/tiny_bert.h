#ifndef PKGM_TEXT_TINY_BERT_H_
#define PKGM_TEXT_TINY_BERT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/parameter.h"
#include "nn/transformer.h"
#include "tensor/vec.h"
#include "util/rng.h"

namespace pkgm::text {

/// Configuration of the from-scratch BERT-style encoder. The paper uses
/// Google's Chinese BERT-base (12 layers, hidden 768); this laptop-scale
/// stand-in keeps the same architecture (token+position+segment embeddings,
/// post-LN transformer blocks, [CLS] pooling) at a few layers and d=64.
struct TinyBertConfig {
  uint32_t vocab_size = 0;
  uint32_t dim = 64;
  uint32_t layers = 2;
  uint32_t heads = 4;
  uint32_t ff_dim = 128;
  uint32_t max_len = 64;
  uint32_t num_segments = 2;
  uint64_t seed = 29;
};

/// One encoder input. Only the first `valid_len` positions are processed
/// (padding beyond it is ignored entirely).
///
/// `injected` implements the paper's service-vector integration for
/// sequence models (Fig. 2 / §III-B2): each (position, vector) pair
/// *replaces the token embedding* at that position with an externally
/// provided d-dim vector ("embedding look up is unnecessary for service
/// vectors"). Position and segment embeddings are still added, and — per
/// the paper's fine-tuning protocol — no gradient flows back into the
/// injected vectors.
struct EncodedInput {
  std::vector<uint32_t> token_ids;
  /// Empty means all-zero segments.
  std::vector<uint32_t> segment_ids;
  size_t valid_len = 0;
  std::vector<std::pair<size_t, Vec>> injected;
};

/// Miniature BERT encoder with manual backprop. The classification /
/// pair-classification heads live with the downstream tasks; MLM
/// pre-training lives in text/mlm.h.
///
/// Statefulness: Encode* caches intermediates; each Backward* must follow
/// its own Encode* with the same input (one sequence at a time).
class TinyBert {
 public:
  explicit TinyBert(const TinyBertConfig& config);

  const TinyBertConfig& config() const { return config_; }
  uint32_t dim() const { return config_.dim; }

  /// Runs the encoder and copies the [CLS] (position 0) representation.
  void EncodeCls(const EncodedInput& in, Vec* cls);

  /// Backprop when the loss depends only on the [CLS] vector.
  void BackwardFromCls(const EncodedInput& in, const Vec& dcls);

  /// Full sequence output: valid_len x dim.
  void EncodeSequence(const EncodedInput& in, Mat* seq_out);

  /// Backprop from a full-sequence gradient (valid_len x dim).
  void BackwardSequence(const EncodedInput& in, const Mat& dseq);

  /// All trainable parameters (embeddings + encoder).
  std::vector<nn::Parameter*> Params();

  nn::Embedding& token_embedding() { return tok_emb_; }

 private:
  /// Builds LN(tok + pos + seg) with injected-vector substitution;
  /// valid_len x dim.
  void BuildInputEmbeddings(const EncodedInput& in);

  TinyBertConfig config_;
  nn::Embedding tok_emb_;
  nn::Embedding pos_emb_;
  nn::Embedding seg_emb_;
  nn::LayerNorm emb_ln_;
  nn::TransformerEncoder encoder_;

  // Forward caches.
  Mat emb_sum_;  // pre-LN embedding sum
  Mat emb_out_;  // encoder input
  Mat seq_out_;  // encoder output
};

}  // namespace pkgm::text

#endif  // PKGM_TEXT_TINY_BERT_H_
