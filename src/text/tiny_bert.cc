#include "text/tiny_bert.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::text {

namespace {
Rng MakeRng(uint64_t seed) { return Rng(seed); }
}  // namespace

TinyBert::TinyBert(const TinyBertConfig& config)
    : config_(config),
      tok_emb_([&] {
        Rng r = MakeRng(config.seed);
        return nn::Embedding(config.vocab_size, config.dim, &r, "bert.tok");
      }()),
      pos_emb_([&] {
        Rng r = MakeRng(config.seed + 1);
        return nn::Embedding(config.max_len, config.dim, &r, "bert.pos");
      }()),
      seg_emb_([&] {
        Rng r = MakeRng(config.seed + 2);
        return nn::Embedding(config.num_segments, config.dim, &r, "bert.seg");
      }()),
      emb_ln_(config.dim, "bert.emb_ln"),
      encoder_([&] {
        Rng r = MakeRng(config.seed + 3);
        return nn::TransformerEncoder(config.layers, config.dim, config.heads,
                                      config.ff_dim, &r, "bert.enc");
      }()) {
  PKGM_CHECK_GT(config.vocab_size, 0u);
  PKGM_CHECK_EQ(config.dim % config.heads, 0u);
}

void TinyBert::BuildInputEmbeddings(const EncodedInput& in) {
  const size_t t = in.valid_len;
  const uint32_t d = config_.dim;
  PKGM_CHECK_GT(t, 0u);
  PKGM_CHECK_LE(t, in.token_ids.size());
  PKGM_CHECK_LE(t, config_.max_len);

  if (emb_sum_.rows() != t || emb_sum_.cols() != d) emb_sum_ = Mat(t, d);

  // Which positions take an injected external vector instead of a token
  // embedding.
  std::vector<const float*> injected_at(t, nullptr);
  for (const auto& [pos, vec] : in.injected) {
    PKGM_CHECK_LT(pos, t);
    PKGM_CHECK_EQ(vec.size(), d);
    injected_at[pos] = vec.data();
  }

  for (size_t i = 0; i < t; ++i) {
    float* row = emb_sum_.Row(i);
    const float* tok = injected_at[i] != nullptr
                           ? injected_at[i]
                           : tok_emb_.Row(in.token_ids[i]);
    const float* pos = pos_emb_.Row(static_cast<uint32_t>(i));
    const uint32_t seg =
        in.segment_ids.empty() ? 0 : in.segment_ids[i];
    const float* sg = seg_emb_.Row(seg);
    for (uint32_t j = 0; j < d; ++j) row[j] = tok[j] + pos[j] + sg[j];
  }
  emb_ln_.Forward(emb_sum_, &emb_out_);
}

void TinyBert::EncodeSequence(const EncodedInput& in, Mat* seq_out) {
  BuildInputEmbeddings(in);
  encoder_.Forward(emb_out_, in.valid_len, &seq_out_);
  *seq_out = seq_out_;
}

void TinyBert::EncodeCls(const EncodedInput& in, Vec* cls) {
  BuildInputEmbeddings(in);
  encoder_.Forward(emb_out_, in.valid_len, &seq_out_);
  cls->Resize(config_.dim);
  const float* row = seq_out_.Row(0);
  for (uint32_t j = 0; j < config_.dim; ++j) (*cls)[j] = row[j];
}

void TinyBert::BackwardSequence(const EncodedInput& in, const Mat& dseq) {
  const size_t t = in.valid_len;
  const uint32_t d = config_.dim;
  PKGM_CHECK_EQ(dseq.rows(), t);
  PKGM_CHECK_EQ(dseq.cols(), d);

  Mat demb_out;
  encoder_.Backward(dseq, &demb_out);

  Mat demb_sum;
  emb_ln_.Backward(emb_sum_, demb_out, &demb_sum);

  std::vector<bool> injected_at(t, false);
  for (const auto& [pos, vec] : in.injected) injected_at[pos] = true;

  for (size_t i = 0; i < t; ++i) {
    const float* g = demb_sum.Row(i);
    // Service vectors stay fixed during fine-tuning (paper §III-B4), so
    // injected positions contribute no token-table gradient.
    if (!injected_at[i]) {
      Axpy(d, 1.0f, g, tok_emb_.table().grad.Row(in.token_ids[i]));
    }
    Axpy(d, 1.0f, g, pos_emb_.table().grad.Row(i));
    const uint32_t seg = in.segment_ids.empty() ? 0 : in.segment_ids[i];
    Axpy(d, 1.0f, g, seg_emb_.table().grad.Row(seg));
  }
}

void TinyBert::BackwardFromCls(const EncodedInput& in, const Vec& dcls) {
  PKGM_CHECK_EQ(dcls.size(), config_.dim);
  Mat dseq(in.valid_len, config_.dim);
  float* row = dseq.Row(0);
  for (uint32_t j = 0; j < config_.dim; ++j) row[j] = dcls[j];
  BackwardSequence(in, dseq);
}

std::vector<nn::Parameter*> TinyBert::Params() {
  std::vector<nn::Parameter*> params;
  tok_emb_.Params(&params);
  pos_emb_.Params(&params);
  seg_emb_.Params(&params);
  emb_ln_.Params(&params);
  encoder_.Params(&params);
  return params;
}

}  // namespace pkgm::text
