#ifndef PKGM_TEXT_TITLE_GENERATOR_H_
#define PKGM_TEXT_TITLE_GENERATOR_H_

#include <string>
#include <vector>

#include "kg/synthetic_pkg.h"
#include "util/rng.h"

namespace pkgm::text {

/// Synthesizes shop-manager-style item titles from the KG ground truth —
/// the substitution for Taobao's seller-written titles. The causal structure
/// the downstream tasks rely on is preserved:
///
///   * a title mentions a *noisy subset* of the item's attribute values
///     (sellers omit things), so titles carry partial knowledge;
///   * the same product sold by different shops yields *different* titles
///     (word dropout, synonym variants, marketing filler, shuffling);
///   * category-correlated filler words give classification extra signal,
///     as real category-specific vocabulary does.
struct TitleGeneratorOptions {
  /// Probability that each attribute value appears in the title.
  double attribute_mention_prob = 0.85;
  /// Probability a mentioned value is replaced by a synonym surface form
  /// ("<value>~alt<k>"), simulating seller vocabulary variation.
  double synonym_prob = 0.10;
  uint32_t synonyms_per_value = 3;
  /// Marketing filler words drawn per title.
  uint32_t min_filler = 0;
  uint32_t max_filler = 2;
  /// Size of the global filler vocabulary.
  uint32_t filler_vocab = 60;
  /// Size of each category's private filler vocabulary.
  uint32_t category_filler_vocab = 8;
  /// Shuffle the word order of the finished title.
  bool shuffle_words = true;
  /// Seed for the stable per-item titles returned by Stable().
  uint64_t stable_seed = 97;
};

class TitleGenerator {
 public:
  /// `pkg` must outlive the generator.
  TitleGenerator(const kg::SyntheticPkg* pkg, TitleGeneratorOptions options);

  /// A title for item `item_index`; repeated calls give different surface
  /// forms of the same underlying item (deterministic via `rng`). Used for
  /// corpus augmentation (e.g. MLM pre-training).
  std::string Generate(uint32_t item_index, Rng* rng) const;

  /// THE title of item `item_index`: every call returns the same string
  /// (derived from stable_seed + item index). Items on a marketplace have
  /// one fixed seller-written title, so the downstream datasets use this.
  std::string Stable(uint32_t item_index) const;

 private:
  const kg::SyntheticPkg* pkg_;
  TitleGeneratorOptions options_;
};

}  // namespace pkgm::text

#endif  // PKGM_TEXT_TITLE_GENERATOR_H_
