#include "text/mlm.h"

#include "nn/losses.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace pkgm::text {

namespace {

std::vector<nn::Parameter*> JointParams(TinyBert* bert, nn::Linear* decoder) {
  std::vector<nn::Parameter*> params = bert->Params();
  decoder->Params(&params);
  return params;
}

nn::AdamOptimizer::Options AdamOptions(float lr) {
  nn::AdamOptimizer::Options opt;
  opt.lr = lr;
  return opt;
}

}  // namespace

MlmPretrainer::MlmPretrainer(TinyBert* bert, const MlmOptions& options)
    : bert_(bert),
      options_(options),
      decoder_([&] {
        Rng r(options.seed);
        return nn::Linear(bert->dim(), bert->config().vocab_size, &r,
                          "mlm.decoder");
      }()),
      optimizer_(JointParams(bert, &decoder_), AdamOptions(options.learning_rate)),
      rng_(options.seed + 1) {
  PKGM_CHECK(bert != nullptr);
}

float MlmPretrainer::Step(const EncodedInput& input, Rng* rng) {
  // Select maskable positions: skip [CLS]/[SEP]/[PAD] specials.
  EncodedInput masked = input;
  std::vector<size_t> positions;
  std::vector<uint32_t> originals;
  for (size_t i = 0; i < input.valid_len; ++i) {
    const uint32_t tok = input.token_ids[i];
    if (tok < kNumSpecialTokens) continue;
    if (!rng->Bernoulli(options_.select_prob)) continue;
    positions.push_back(i);
    originals.push_back(tok);
    const double u = rng->UniformDouble();
    if (u < options_.mask_prob) {
      masked.token_ids[i] = kMaskId;
    } else if (u < options_.mask_prob + options_.random_prob) {
      masked.token_ids[i] = static_cast<uint32_t>(
          rng->Uniform(bert_->config().vocab_size));
    }  // else: keep original.
  }
  if (positions.empty()) return 0.0f;

  Mat seq;
  bert_->EncodeSequence(masked, &seq);

  // Gather selected rows and decode to vocab logits.
  Mat gathered(positions.size(), bert_->dim());
  for (size_t p = 0; p < positions.size(); ++p) {
    const float* src = seq.Row(positions[p]);
    float* dst = gathered.Row(p);
    for (uint32_t j = 0; j < bert_->dim(); ++j) dst[j] = src[j];
  }
  Mat logits;
  decoder_.Forward(gathered, &logits);

  Mat dlogits;
  const float loss = nn::SoftmaxCrossEntropy(logits, originals, &dlogits);

  Mat dgathered;
  decoder_.Backward(gathered, dlogits, &dgathered);

  Mat dseq(seq.rows(), seq.cols());
  for (size_t p = 0; p < positions.size(); ++p) {
    const float* src = dgathered.Row(p);
    float* dst = dseq.Row(positions[p]);
    for (uint32_t j = 0; j < bert_->dim(); ++j) dst[j] += src[j];
  }
  bert_->BackwardSequence(masked, dseq);
  optimizer_.Step();
  return loss;
}

float MlmPretrainer::Pretrain(const std::vector<EncodedInput>& corpus) {
  float last_epoch_mean = 0.0f;
  for (uint32_t e = 0; e < options_.epochs; ++e) {
    double sum = 0.0;
    uint64_t n = 0;
    for (const EncodedInput& input : corpus) {
      const float loss = Step(input, &rng_);
      if (loss > 0.0f) {
        sum += loss;
        ++n;
      }
    }
    last_epoch_mean = n > 0 ? static_cast<float>(sum / n) : 0.0f;
  }
  return last_epoch_mean;
}

}  // namespace pkgm::text
