#include "text/tokenizer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::text {

Tokenizer::Tokenizer() {
  names_ = {"[PAD]", "[CLS]", "[SEP]", "[UNK]", "[MASK]"};
  for (uint32_t i = 0; i < names_.size(); ++i) ids_[names_[i]] = i;
}

void Tokenizer::CountCorpusLine(std::string_view text) {
  PKGM_CHECK(!built_) << "vocab already built";
  for (const std::string& tok : SplitWhitespace(text)) {
    ++freq_[tok];
  }
}

void Tokenizer::BuildVocab(uint32_t min_count) {
  PKGM_CHECK(!built_);
  std::vector<std::pair<std::string, uint64_t>> sorted(freq_.begin(),
                                                       freq_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (auto& [tok, count] : sorted) {
    if (count < min_count) continue;
    if (ids_.count(tok)) continue;  // guard against special-token collisions
    ids_[tok] = static_cast<uint32_t>(names_.size());
    names_.push_back(tok);
  }
  freq_.clear();
  built_ = true;
}

void Tokenizer::LoadVocab(std::vector<std::string> names) {
  PKGM_CHECK(!built_);
  PKGM_CHECK_GE(names.size(), static_cast<size_t>(kNumSpecialTokens));
  names_ = std::move(names);
  ids_.clear();
  for (uint32_t i = 0; i < names_.size(); ++i) ids_[names_[i]] = i;
  freq_.clear();
  built_ = true;
}

std::vector<uint32_t> Tokenizer::Encode(std::string_view text) const {
  PKGM_CHECK(built_) << "call BuildVocab first";
  std::vector<uint32_t> out;
  for (const std::string& tok : SplitWhitespace(text)) {
    out.push_back(TokenId(tok));
  }
  return out;
}

uint32_t Tokenizer::TokenId(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kUnkId : it->second;
}

const std::string& Tokenizer::TokenName(uint32_t id) const {
  PKGM_CHECK_LT(id, names_.size());
  return names_[id];
}

std::vector<uint32_t> BuildSingleInput(const std::vector<uint32_t>& tokens,
                                       size_t max_len, size_t* valid_len) {
  PKGM_CHECK_GE(max_len, 3u);
  std::vector<uint32_t> out;
  out.reserve(max_len);
  out.push_back(kClsId);
  const size_t keep = std::min(tokens.size(), max_len - 2);
  for (size_t i = 0; i < keep; ++i) out.push_back(tokens[i]);
  out.push_back(kSepId);
  *valid_len = out.size();
  out.resize(max_len, kPadId);
  return out;
}

std::vector<uint32_t> BuildPairInput(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b,
                                     size_t max_len, size_t* valid_len,
                                     std::vector<uint32_t>* segment_ids) {
  PKGM_CHECK_GE(max_len, 5u);
  const size_t per_side = (max_len - 3) / 2;
  const size_t keep_a = std::min(a.size(), per_side);
  const size_t keep_b = std::min(b.size(), per_side);

  std::vector<uint32_t> out;
  out.reserve(max_len);
  segment_ids->clear();
  segment_ids->reserve(max_len);

  out.push_back(kClsId);
  segment_ids->push_back(0);
  for (size_t i = 0; i < keep_a; ++i) {
    out.push_back(a[i]);
    segment_ids->push_back(0);
  }
  out.push_back(kSepId);
  segment_ids->push_back(0);
  for (size_t i = 0; i < keep_b; ++i) {
    out.push_back(b[i]);
    segment_ids->push_back(1);
  }
  out.push_back(kSepId);
  segment_ids->push_back(1);

  *valid_len = out.size();
  out.resize(max_len, kPadId);
  segment_ids->resize(max_len, 0);
  return out;
}

}  // namespace pkgm::text
