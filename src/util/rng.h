#ifndef PKGM_UTIL_RNG_H_
#define PKGM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace pkgm {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
/// Advances *state and returns the next 64-bit output.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic pseudo-random generator (xoshiro256**). Every source of
/// randomness in PKGM flows through an explicitly seeded Rng so runs are
/// reproducible; no use of std::random_device or global generators.
///
/// Not thread-safe: each worker thread gets its own Rng (see Fork()).
class Rng {
 public:
  /// Seeds the four lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box-Muller (caches the second value).
  float Normal();

  /// Normal with the given mean and standard deviation.
  float Normal(float mean, float stddev);

  /// Bernoulli with probability p of true.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (s >= 0; s == 0 is
  /// uniform). Uses inverse-CDF sampling over precomputable weights; for
  /// repeated sampling from the same distribution prefer ZipfSampler.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir-free partial
  /// Fisher-Yates). Requires k <= n. Result order is random.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Derives an independent child generator; used to hand one Rng per
  /// worker thread deterministically.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

/// Alias-method sampler over an arbitrary discrete distribution: O(1) per
/// sample after O(n) build. Used for frequency-weighted negative sampling
/// and as the fast path inside ZipfSampler.
class AliasSampler {
 public:
  /// Builds from (unnormalized, non-negative) weights; at least one weight
  /// must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  uint64_t Sample(Rng* rng) const;

  uint64_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// Precomputed Zipf sampler: O(1) per sample over n categories with
/// exponent s (alias table). Rank 0 is the most popular. The inverse-CDF
/// path is retained as a test oracle — same distribution, different (and
/// slower, O(log n)) draw algorithm and RNG consumption.
class ZipfSampler {
 public:
  /// Requires n > 0, s >= 0.
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [0, n) in O(1). This is the path load generators use;
  /// per-sample cost must not grow with the catalog so the client can
  /// saturate the server.
  uint64_t Sample(Rng* rng) const;

  /// Draws a rank in [0, n) by binary search over the CDF. Statistical
  /// oracle for Sample(); not used on hot paths.
  uint64_t SampleInverseCdf(Rng* rng) const;

  uint64_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  AliasSampler alias_;
};

}  // namespace pkgm

#endif  // PKGM_UTIL_RNG_H_
