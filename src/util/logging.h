#ifndef PKGM_UTIL_LOGGING_H_
#define PKGM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pkgm {

/// Log severities, lowest to highest. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum severity; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message collector. Emits on destruction; aborts for
/// kFatal. Used via the PKGM_LOG / PKGM_CHECK macros only.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement's stream expression.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace pkgm

#define PKGM_LOG(level)                                                     \
  if (::pkgm::LogLevel::k##level < ::pkgm::GetLogLevel())                   \
    ;                                                                       \
  else                                                                      \
    ::pkgm::internal::LogMessage(::pkgm::LogLevel::k##level, __FILE__,      \
                                 __LINE__)                                  \
        .stream()

/// Asserts an invariant that only a programming error can violate.
/// Always on (release included): database-style defensive checking.
#define PKGM_CHECK(cond)                                                    \
  if (cond)                                                                 \
    ;                                                                       \
  else                                                                      \
    ::pkgm::internal::LogMessage(::pkgm::LogLevel::kFatal, __FILE__,        \
                                 __LINE__)                                  \
            .stream()                                                       \
        << "Check failed: " #cond " "

#define PKGM_CHECK_OP(a, b, op)                                             \
  if ((a)op(b))                                                             \
    ;                                                                       \
  else                                                                      \
    ::pkgm::internal::LogMessage(::pkgm::LogLevel::kFatal, __FILE__,        \
                                 __LINE__)                                  \
            .stream()                                                       \
        << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b)  \
        << ") "

#define PKGM_CHECK_EQ(a, b) PKGM_CHECK_OP(a, b, ==)
#define PKGM_CHECK_NE(a, b) PKGM_CHECK_OP(a, b, !=)
#define PKGM_CHECK_LT(a, b) PKGM_CHECK_OP(a, b, <)
#define PKGM_CHECK_LE(a, b) PKGM_CHECK_OP(a, b, <=)
#define PKGM_CHECK_GT(a, b) PKGM_CHECK_OP(a, b, >)
#define PKGM_CHECK_GE(a, b) PKGM_CHECK_OP(a, b, >=)

/// Checks that a Status-returning expression succeeded.
#define PKGM_CHECK_OK(expr)                                                 \
  do {                                                                      \
    ::pkgm::Status _pkgm_check_status = (expr);                             \
    PKGM_CHECK(_pkgm_check_status.ok()) << _pkgm_check_status.ToString();   \
  } while (0)

#endif  // PKGM_UTIL_LOGGING_H_
