#ifndef PKGM_UTIL_THREAD_POOL_H_
#define PKGM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pkgm {

/// Fixed-size worker pool. Tasks are std::function<void()>; Wait() blocks
/// until every submitted task has finished. Used by the sharded PKGM trainer
/// to simulate the paper's multi-worker setup and by batch evaluators.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all in-flight tasks complete.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits. `fn` must be
  /// safe to call concurrently. Convenience for data-parallel loops.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when work arrives / shutdown
  std::condition_variable done_cv_;   // signaled when a task finishes
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace pkgm

#endif  // PKGM_UTIL_THREAD_POOL_H_
