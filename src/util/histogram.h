#ifndef PKGM_UTIL_HISTOGRAM_H_
#define PKGM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pkgm {

/// Storage strategy for a Histogram.
enum class HistogramMode {
  /// Every sample retained; percentiles are exact (sort on read). Memory
  /// grows with the sample count — the test oracle and the right choice
  /// for small/offline sample sets.
  kExact,
  /// Bounded log-linear buckets: O(1) record, O(buckets) memory no matter
  /// how many samples, mergeable across threads, percentiles accurate to
  /// the bucket width (<= ~3% relative error above 1.0, exact min/max).
  /// The choice for always-on serving telemetry, where p999/p9999 must be
  /// read from millions of samples without retaining them.
  kBucketed,
};

/// Streaming summary statistics plus percentile estimation over recorded
/// samples. Used for latency reporting and for validating the statistical
/// shape of synthetic datasets in tests.
///
/// Thread safety: Record/Merge require external synchronization (callers
/// either hold a lock, as ServerStats does, or record into thread-local
/// instances and Merge at the end). The read-side API (Percentile,
/// Summary, ...) is const and non-mutating in both modes, so any number of
/// threads may interrogate a histogram that is no longer being written.
class Histogram {
 public:
  /// Exact mode by default (the historical behavior).
  Histogram() = default;
  explicit Histogram(HistogramMode mode);

  HistogramMode mode() const { return mode_; }

  void Record(double value);

  /// Folds `other` into this histogram. Both must share the same mode;
  /// bucketed merge is O(buckets) (counts add), exact merge appends the
  /// retained samples. The idiom for multi-threaded recording: one
  /// bucketed histogram per thread, merged after the run.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double Stddev() const;

  /// Percentile (q in [0, 1]). Exact mode sorts a copy of the retained
  /// samples (non-mutating — safe under concurrent readers); bucketed mode
  /// interpolates within the covering bucket. Prefer Percentiles() when
  /// reading several quantiles from an exact histogram.
  double Percentile(double q) const;

  /// Batch percentile read: one sort (exact) / one cumulative walk
  /// (bucketed) no matter how many quantiles are asked for.
  std::vector<double> Percentiles(const std::vector<double>& qs) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string Summary() const;

 private:
  // Log-linear bucket layout: bucket 0 holds values < 1.0; above that,
  // each power-of-two octave is split into kSubBuckets linear sub-buckets.
  // 40 octaves of microseconds reach ~12.7 days — far past any latency the
  // serving path can produce; larger values clamp into the last bucket.
  static constexpr int kSubBuckets = 32;
  static constexpr int kOctaves = 40;
  static constexpr size_t kNumBuckets =
      1 + static_cast<size_t>(kOctaves) * kSubBuckets;

  static size_t BucketIndex(double value);
  /// [lower, upper) value range covered by bucket `index`.
  static void BucketBounds(size_t index, double* lower, double* upper);

  HistogramMode mode_ = HistogramMode::kExact;
  /// Exact mode only.
  std::vector<double> samples_;
  /// Bucketed mode only (sized kNumBuckets on construction).
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pkgm

#endif  // PKGM_UTIL_HISTOGRAM_H_
