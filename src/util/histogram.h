#ifndef PKGM_UTIL_HISTOGRAM_H_
#define PKGM_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pkgm {

/// Streaming summary statistics plus percentile estimation over recorded
/// samples. Used for latency reporting and for validating the statistical
/// shape of synthetic datasets in tests.
class Histogram {
 public:
  Histogram() = default;

  void Record(double value);

  uint64_t count() const { return static_cast<uint64_t>(samples_.size()); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double Stddev() const;

  /// Exact percentile (q in [0, 1]) by sorting the retained samples.
  double Percentile(double q) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string Summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace pkgm

#endif  // PKGM_UTIL_HISTOGRAM_H_
