#include "util/table_printer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm {

namespace {
constexpr const char* kSeparatorSentinel = "\x01";
}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PKGM_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PKGM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  PKGM_CHECK_EQ(values.size() + 1, header_.size());
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(StrFormat("%.*f", precision, v));
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.push_back({kSeparatorSentinel}); }

std::string TablePrinter::ToString() const {
  const size_t cols = header_.size();
  std::vector<size_t> width(cols);
  for (size_t c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    for (size_t c = 0; c < cols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (size_t c = 0; c < cols; ++c) {
      s.append(width[c] + 2, '-');
      s.push_back('+');
    }
    s.push_back('\n');
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < cols; ++c) {
      s.push_back(' ');
      s.append(row[c]);
      s.append(width[c] - row[c].size() + 1, ' ');
      s.push_back('|');
    }
    s.push_back('\n');
    return s;
  };

  std::string out = hline();
  out += render_row(header_);
  out += hline();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      out += hline();
    } else {
      out += render_row(row);
    }
  }
  out += hline();
  return out;
}

}  // namespace pkgm
