#ifndef PKGM_UTIL_STATUS_H_
#define PKGM_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pkgm {

/// Error codes used across the PKGM library. Mirrors the RocksDB/Arrow
/// convention of status-based error handling instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code ("Ok", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A Status is the result of a fallible operation: either OK or an error code
/// plus a message. Cheap to copy in the OK case. All public PKGM APIs that can
/// fail at runtime (I/O, parsing, user input validation) return Status or
/// StatusOr<T>; programmer errors use PKGM_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr but minimal: access via value() / operator* after
/// checking ok().
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pkgm

/// Propagates a non-OK status to the caller: `PKGM_RETURN_IF_ERROR(DoThing());`
#define PKGM_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::pkgm::Status _pkgm_status = (expr);          \
    if (!_pkgm_status.ok()) return _pkgm_status;   \
  } while (0)

#endif  // PKGM_UTIL_STATUS_H_
