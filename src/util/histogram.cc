#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm {

Histogram::Histogram(HistogramMode mode) : mode_(mode) {
  if (mode_ == HistogramMode::kBucketed) buckets_.assign(kNumBuckets, 0);
}

size_t Histogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  int exp = 0;
  // frexp returns m in [0.5, 1) with value = m * 2^exp, so exp >= 1 here.
  double mantissa = std::frexp(value, &exp);
  int octave = exp - 1;
  if (octave >= kOctaves) return kNumBuckets - 1;
  // mantissa in [0.5, 1) → sub in [0, kSubBuckets).
  int sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(octave) * kSubBuckets +
         static_cast<size_t>(sub);
}

void Histogram::BucketBounds(size_t index, double* lower, double* upper) {
  if (index == 0) {
    *lower = 0.0;
    *upper = 1.0;
    return;
  }
  size_t i = index - 1;
  size_t octave = i / kSubBuckets;
  size_t sub = i % kSubBuckets;
  double base = std::ldexp(1.0, static_cast<int>(octave));  // 2^octave
  double width = base / kSubBuckets;
  *lower = base + width * static_cast<double>(sub);
  *upper = base + width * static_cast<double>(sub + 1);
}

void Histogram::Record(double value) {
  if (mode_ == HistogramMode::kExact) {
    samples_.push_back(value);
  } else {
    ++buckets_[BucketIndex(value)];
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  PKGM_CHECK(mode_ == other.mode_);
  if (other.count_ == 0) return;
  if (mode_ == HistogramMode::kExact) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  } else {
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double Histogram::min() const {
  PKGM_CHECK_GT(count_, 0u);
  return min_;
}

double Histogram::max() const {
  PKGM_CHECK_GT(count_, 0u);
  return max_;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::Stddev() const {
  if (count_ < 2) return 0.0;
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::Percentile(double q) const { return Percentiles({q})[0]; }

std::vector<double> Histogram::Percentiles(const std::vector<double>& qs) const {
  PKGM_CHECK_GT(count_, 0u);
  for (double q : qs) {
    PKGM_CHECK_GE(q, 0.0);
    PKGM_CHECK_LE(q, 1.0);
  }
  std::vector<double> out(qs.size(), 0.0);
  if (mode_ == HistogramMode::kExact) {
    // Sort a copy: Percentile stays const and data-race-free under
    // concurrent readers (the previous sort-in-place-on-read design raced
    // when two threads called Summary() on the same histogram).
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    for (size_t k = 0; k < qs.size(); ++k) {
      // Nearest-rank with linear interpolation.
      double pos = qs[k] * static_cast<double>(sorted.size() - 1);
      size_t lo = static_cast<size_t>(pos);
      size_t hi = std::min(lo + 1, sorted.size() - 1);
      double frac = pos - static_cast<double>(lo);
      out[k] = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    }
    return out;
  }
  // Bucketed: one cumulative walk answers all quantiles. Within the
  // covering bucket, interpolate linearly by rank; clamp to the exact
  // min/max so the tails never report values outside the observed range.
  std::vector<size_t> order(qs.size());
  for (size_t k = 0; k < qs.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(),
            [&qs](size_t a, size_t b) { return qs[a] < qs[b]; });
  uint64_t cum = 0;
  size_t bucket = 0;
  for (size_t k : order) {
    // Target rank in [1, count_].
    uint64_t target = static_cast<uint64_t>(
        std::ceil(qs[k] * static_cast<double>(count_)));
    if (target == 0) target = 1;
    while (bucket < kNumBuckets && cum + buckets_[bucket] < target) {
      cum += buckets_[bucket];
      ++bucket;
    }
    if (bucket >= kNumBuckets) {
      out[k] = max_;
      continue;
    }
    double lower = 0.0, upper = 0.0;
    BucketBounds(bucket, &lower, &upper);
    double frac = buckets_[bucket] > 0
                      ? static_cast<double>(target - cum) /
                            static_cast<double>(buckets_[bucket])
                      : 0.0;
    double v = lower + (upper - lower) * frac;
    out[k] = std::min(std::max(v, min_), max_);
  }
  return out;
}

std::string Histogram::Summary() const {
  if (count_ == 0) return "count=0";
  std::vector<double> p = Percentiles({0.50, 0.95, 0.99, 0.999});
  return StrFormat(
      "count=%llu mean=%.4g p50=%.4g p95=%.4g p99=%.4g p999=%.4g max=%.4g",
      static_cast<unsigned long long>(count()), Mean(), p[0], p[1], p[2],
      p[3], max());
}

}  // namespace pkgm
