#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm {

void Histogram::Record(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
  sum_sq_ += value * value;
}

double Histogram::min() const {
  PKGM_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  PKGM_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  double n = static_cast<double>(samples_.size());
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Histogram::Percentile(double q) const {
  PKGM_CHECK(!samples_.empty());
  PKGM_CHECK_GE(q, 0.0);
  PKGM_CHECK_LE(q, 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank with linear interpolation.
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary() const {
  if (samples_.empty()) return "count=0";
  return StrFormat("count=%llu mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
                   static_cast<unsigned long long>(count()), Mean(),
                   Percentile(0.50), Percentile(0.95), Percentile(0.99),
                   max());
}

}  // namespace pkgm
