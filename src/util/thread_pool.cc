#include "util/thread_pool.h"

#include <atomic>

#include "util/logging.h"

namespace pkgm {

ThreadPool::ThreadPool(size_t num_threads) {
  PKGM_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PKGM_CHECK(!shutdown_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so tiny bodies do not drown in queue overhead.
  const size_t chunks = std::min(n, threads_.size() * 4);
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace pkgm
