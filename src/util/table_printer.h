#ifndef PKGM_UTIL_TABLE_PRINTER_H_
#define PKGM_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace pkgm {

/// Renders aligned ASCII tables, used by the benchmark harness to print
/// reproductions of the paper's result tables.
///
///   TablePrinter t({"Method", "Hit@1", "Hit@3"});
///   t.AddRow({"BERT", "71.03", "84.91"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles to `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Inserts a horizontal separator line before the next row.
  void AddSeparator();

  /// Renders the table with box-drawing dashes and pipes.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Each row is either a data row or the sentinel {"\x01"} for a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pkgm

#endif  // PKGM_UTIL_TABLE_PRINTER_H_
