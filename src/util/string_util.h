#ifndef PKGM_UTIL_STRING_UTIL_H_
#define PKGM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pkgm {

/// Splits on a single delimiter character. Empty fields are preserved:
/// Split("a,,b", ',') -> {"a", "", "b"}. Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with a delimiter string.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable count, e.g. 1234567 -> "1,234,567".
std::string WithThousandsSeparators(uint64_t n);

}  // namespace pkgm

#endif  // PKGM_UTIL_STRING_UTIL_H_
