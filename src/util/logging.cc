#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace pkgm {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so concurrent worker threads do not interleave lines.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kFatal:
      return 'F';
  }
  return '?';
}

// Strips directories: "src/kg/triple_store.cc" -> "triple_store.cc".
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  auto now = std::chrono::system_clock::now();
  std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);
  stream_ << LevelLetter(level) << ' ' << ts << ' ' << Basename(file) << ':'
          << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace pkgm
