#include "util/rng.h"

#include <cmath>

namespace pkgm {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  PKGM_CHECK_GT(n, 0u);
  // Lemire's method with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  PKGM_CHECK_LT(lo, hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo)));
}

float Rng::UniformFloat() {
  return static_cast<float>(Next() >> 40) * (1.0f / 16777216.0f);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + (hi - lo) * UniformFloat();
}

float Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 shifted away from 0 to keep log finite.
  float u1 = UniformFloat();
  float u2 = UniformFloat();
  if (u1 < 1e-12f) u1 = 1e-12f;
  float mag = std::sqrt(-2.0f * std::log(u1));
  cached_normal_ = mag * std::sin(6.28318530717958647692f * u2);
  has_cached_normal_ = true;
  return mag * std::cos(6.28318530717958647692f * u2);
}

float Rng::Normal(float mean, float stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(this);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  PKGM_CHECK_LE(k, n);
  // Floyd's algorithm would avoid O(n) memory, but n is small in our uses;
  // partial Fisher-Yates over an index array keeps it simple and exact.
  std::vector<uint64_t> idx(n);
  for (uint64_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + Uniform(n - i);
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

namespace {
std::vector<double> ZipfWeights(uint64_t n, double s) {
  PKGM_CHECK_GT(n, 0u);
  PKGM_CHECK_GE(s, 0.0);
  std::vector<double> w(n);
  for (uint64_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return w;
}
}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s)
    : alias_(ZipfWeights(n, s)) {
  std::vector<double> w = ZipfWeights(n, s);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += w[i];
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;
}

uint64_t ZipfSampler::Sample(Rng* rng) const { return alias_.Sample(rng); }

uint64_t ZipfSampler::SampleInverseCdf(Rng* rng) const {
  double u = rng->UniformDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  PKGM_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    PKGM_CHECK_GE(w, 0.0);
    total += w;
  }
  PKGM_CHECK_GT(total, 0.0);
  prob_.resize(n);
  alias_.assign(n, 0);
  // Scaled probabilities; Vose's stable construction.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;
    small.pop_back();
  }
}

uint64_t AliasSampler::Sample(Rng* rng) const {
  uint64_t i = rng->Uniform(prob_.size());
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace pkgm
