#ifndef PKGM_UTIL_STOPWATCH_H_
#define PKGM_UTIL_STOPWATCH_H_

#include <chrono>

namespace pkgm {

/// Wall-clock stopwatch for coarse timing of training phases and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pkgm

#endif  // PKGM_UTIL_STOPWATCH_H_
