#ifndef PKGM_NET_NET_SERVER_H_
#define PKGM_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/io_backend.h"
#include "net/socket_util.h"
#include "net/wire.h"
#include "serve/knowledge_server.h"
#include "serve/server_stats.h"
#include "util/status.h"

namespace pkgm::net {

struct NetServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  /// Event-loop threads. Connections are assigned round-robin at accept
  /// time and stay on their thread for life (no cross-thread socket I/O).
  size_t num_io_threads = 2;
  /// Frames whose payload declares more than this are protocol errors.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection bound on buffered-but-unsent response bytes. A reader
  /// too slow to keep its outbox under the bound is disconnected rather
  /// than allowed to pin server memory (slow-reader backpressure).
  size_t max_outbox_bytes = 8u << 20;
  /// Connections with no traffic and no in-flight work for this long are
  /// closed. 0 disables the idle reaper.
  int idle_timeout_ms = 0;
  int listen_backlog = 128;
  /// SO_REUSEPORT on the listener, so multiple server processes can share
  /// a port for kernel-level load spreading.
  bool reuseport = false;
  /// Stop(): how long the graceful drain may take before remaining
  /// connections are force-closed.
  int drain_timeout_ms = 5000;
  /// Kernel send-buffer size for accepted sockets; 0 keeps the default
  /// (tests shrink it to exercise the outbox bound deterministically).
  int so_sndbuf_bytes = 0;
  /// I/O backend override: "uring", "epoll", or "" to defer to the
  /// PKGM_NET_IO environment variable and then the runtime probe. A uring
  /// request on a kernel without support falls back to epoll with one
  /// warning (see SelectIoBackend).
  std::string io_backend;
};

/// Server-side extension seam: application logic for frame types the
/// serving switch does not own (the v2 parameter-server frames). A
/// NetServer built over a FrameHandler keeps all of the transport — epoll
/// loops, framing, backpressure, drain — and routes request frames here.
class FrameHandler {
 public:
  /// Completes one frame with a fully encoded response frame. May be
  /// invoked synchronously from HandleFrame or later from any thread, at
  /// most once; extra invocations are ignored. The response is posted to
  /// the connection's I/O thread (the connection may have died — the
  /// response is then dropped).
  using Respond = std::function<void(std::string)>;

  virtual ~FrameHandler() = default;

  /// Called on the connection's I/O thread for every routable request
  /// frame. Return true if the frame was accepted (a response via
  /// `respond` is then owed — a held respond counts as an outstanding
  /// frame, and NetServer::Stop() waits for it, so any response a handler
  /// parks long-term (e.g. a barrier) must be completed or abandoned by
  /// the handler before Stop()); return false to have the server answer
  /// kError/kUnsupported without calling respond. Destroying every copy
  /// of a respond without invoking it also completes the frame (the peer
  /// gets no reply and sees the eventual close); invoking or dropping a
  /// respond after the NetServer is destroyed is undefined.
  virtual bool HandleFrame(const Frame& frame, Respond respond) = 0;

  /// JSON stats snapshot served for kStats frames when no KnowledgeServer
  /// is attached.
  virtual std::string StatsJson() { return "{}"; }
};

/// The TCP front end of the serving subsystem: a non-blocking event loop
/// that decodes wire-protocol frames into ServiceRequest batches, submits
/// them to a KnowledgeServer — whose admission control, deadlines, cache
/// and registry hot swap are untouched — and completes responses
/// asynchronously. How readiness/completion is obtained lives behind the
/// IoBackend seam: epoll (portable) or io_uring (batched submission, one
/// syscall per loop iteration), selected per NetServerOptions::io_backend /
/// PKGM_NET_IO / runtime probe.
///
/// Threading model: N I/O threads each own an IoBackend instance and a set
/// of connections; thread 0 additionally owns the listener. A request frame
/// is decoded on its connection's I/O thread and submitted via
/// SubmitBatchAsync; the knowledge-server worker that finishes the last
/// request of the frame encodes the response and posts it back to the
/// owning I/O thread (eventfd wakeup), which writes it out. An I/O thread
/// therefore never blocks on compute, and a socket is only ever touched by
/// its owning thread.
///
/// Failure containment: a malformed frame (bad magic/version/CRC/oversize
/// or garbled payload) closes exactly the offending connection; an unknown
/// frame type gets a kError response and the connection survives.
///
/// Stop() drains gracefully: the listener closes, reading stops, every
/// request already accepted completes and its response is flushed, then
/// connections close. Stop() does not stop the KnowledgeServer (the caller
/// owns that ordering; the knowledge server must keep running until
/// Stop() returns so in-flight requests can complete).
class NetServer {
 public:
  explicit NetServer(serve::KnowledgeServer* server,
                     NetServerOptions options = {});
  /// Transport-only server: frames are routed to `handler` instead of a
  /// KnowledgeServer (kPing/kStats still answered by the transport;
  /// kGetVectors is refused with kError). `handler` must outlive Stop().
  explicit NetServer(FrameHandler* handler, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and spawns the I/O threads.
  Status Start();

  /// Graceful drain (see class comment). Idempotent.
  void Stop();

  /// Bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Snapshot of the connection/frame/backpressure counters.
  serve::NetCounters net_counters() const;

  /// Combined knowledge-server + network counters, ASCII / JSON.
  std::string StatsReport() const;
  std::string StatsJson() const;

 private:
  struct Connection;
  struct IoThread;
  struct FrameState;
  struct HandlerRespondState;
  struct LoopHandler;

  Status BuildIoThreads(IoBackendKind kind);
  void IoLoop(size_t thread_index);
  void AddConnection(IoThread& io, int fd);
  void AcceptNew(IoThread& io);
  /// Consumes the cross-thread mailboxes (new fds, posted completions).
  void DrainMailboxes(IoThread& io);
  /// Backend delivered `len` received bytes for `tag`: feed the decoder and
  /// process complete frames.
  void OnConnData(IoThread& io, uint64_t tag, const char* data, size_t len);
  /// Backend finished an async send: retire `n` written bytes (or close on
  /// a negative errno) and continue flushing.
  void OnSendComplete(IoThread& io, uint64_t tag, int64_t n);
  /// Returns false when the frame killed the connection.
  bool HandleFrame(IoThread& io, Connection& conn, Frame frame);
  /// Routes one request frame to handler_ (kError/kUnsupported when absent
  /// or refused). Returns false when the frame killed the connection.
  bool RouteToHandler(IoThread& io, Connection& conn, Frame frame);
  /// Appends bytes to the outbox, flushes opportunistically and applies
  /// the backpressure bound. Returns false when the connection was closed.
  bool SendOnLoop(IoThread& io, Connection& conn, std::string bytes);
  /// Returns false on a fatal write error (connection closed).
  bool FlushOutbox(IoThread& io, Connection& conn);
  /// Retires `n` sent bytes from the outbox front (partial frames keep an
  /// offset) and bumps the byte counters.
  void RetireOutboxBytes(Connection& conn, size_t n);
  void CloseConnection(IoThread& io, uint64_t conn_id);
  /// Worker-side: hand an encoded response frame to the owning I/O thread.
  void PostCompletion(size_t thread_index, uint64_t conn_id,
                      std::string bytes);
  void SignalThread(IoThread& io);

  /// Exactly one of server_/handler_ is non-null, per constructor.
  serve::KnowledgeServer* const server_;
  FrameHandler* const handler_;
  const NetServerOptions options_;

  ScopedFd listener_;
  uint16_t port_ = 0;
  /// Resolved backend name ("epoll" / "io_uring"), valid after Start().
  std::string io_backend_name_;
  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::atomic<uint64_t> next_conn_id_{2};  // 0 = listener tag, 1 = eventfd tag
  std::atomic<size_t> next_io_thread_{0};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool stopped_ = false;
  /// Request frames submitted to the knowledge server whose completion has
  /// not yet been posted back; Stop() waits for zero so no worker callback
  /// can touch a dead NetServer.
  std::atomic<uint64_t> outstanding_frames_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> requests_in_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> backpressure_disconnects_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
};

}  // namespace pkgm::net

#endif  // PKGM_NET_NET_SERVER_H_
