#include "net/io_backend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "net/uring.h"
#include "util/logging.h"

namespace pkgm::net {
namespace {

std::atomic<int> g_uring_probe_override{-1};
std::atomic<bool> g_fallback_logged{false};

/// The fallback is logged once per process — a daemon with N I/O threads
/// must not emit N identical warnings.
void LogFallbackOnce(const char* reason) {
  bool expected = false;
  if (g_fallback_logged.compare_exchange_strong(expected, true)) {
    PKGM_LOG(Warning) << "io_uring unavailable (" << reason
                      << "); falling back to the epoll backend";
  }
}

}  // namespace

const char* IoBackendKindName(IoBackendKind kind) {
  return kind == IoBackendKind::kUring ? "io_uring" : "epoll";
}

bool UringAvailable() {
  const int forced = g_uring_probe_override.load(std::memory_order_acquire);
  if (forced >= 0) return forced != 0;
  return UringSupported();
}

void SetUringProbeOverrideForTesting(int forced) {
  g_uring_probe_override.store(forced, std::memory_order_release);
  if (forced == -1) g_fallback_logged.store(false, std::memory_order_release);
}

IoBackendKind SelectIoBackend(const std::string& override_opt) {
  std::string choice = override_opt;
  if (choice.empty()) {
    const char* env = std::getenv("PKGM_NET_IO");
    if (env != nullptr) choice = env;
  }
  if (choice == "epoll") return IoBackendKind::kEpoll;
  if (choice == "uring" || choice == "io_uring") {
    if (UringAvailable()) return IoBackendKind::kUring;
    LogFallbackOnce("requested via PKGM_NET_IO but probe failed");
    return IoBackendKind::kEpoll;
  }
  if (!choice.empty()) {
    PKGM_LOG(Warning) << "unknown PKGM_NET_IO value '" << choice
                      << "' (want uring or epoll); probing";
  }
  // Default: probe. uring when the kernel has it, epoll otherwise (the
  // portable path stays the fallback, silently — absence of io_uring on an
  // old kernel is normal, not warning-worthy).
  return UringAvailable() ? IoBackendKind::kUring : IoBackendKind::kEpoll;
}

std::unique_ptr<IoBackend> CreateIoBackend(IoBackendKind kind) {
  if (kind == IoBackendKind::kUring) return CreateUringBackend();
  return CreateEpollBackend();
}

}  // namespace pkgm::net
