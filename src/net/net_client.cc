#include "net/net_client.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/client_io.h"
#include "net/socket_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::net {
namespace {

using Clock = std::chrono::steady_clock;

serve::ServiceResponse NetworkErrorResponse() {
  serve::ServiceResponse response;
  response.code = serve::ResponseCode::kNetworkError;
  return response;
}

}  // namespace

/// One pooled connection. The submitting thread writes frames under `mu`;
/// a dedicated reader thread matches response frames back by correlation
/// id. Teardown is owned by the reader: writers that hit an error only
/// shutdown() the socket (waking the reader), never close it, so the fd
/// cannot be pulled out from under a blocked read.
struct NetClient::Conn {
  std::mutex mu;
  ScopedFd fd;
  /// The I/O path (plain or io_uring), created once per connection and
  /// reused across reconnects: its writer side runs under `mu`, its reader
  /// side only on the reader thread, and a new reader is spawned only
  /// after the old one joined — so the raw pointer the reader captures
  /// stays valid for its whole life.
  std::unique_ptr<ClientConnIo> io;
  std::thread reader;

  struct PendingBatch {
    std::vector<std::promise<serve::ServiceResponse>> promises;
  };
  std::unordered_map<uint64_t, PendingBatch> pending;
  std::unordered_map<uint64_t, std::promise<StatusOr<std::string>>>
      pending_stats;
  std::unordered_map<uint64_t, std::promise<Status>> pending_pings;
  std::unordered_map<uint64_t, std::promise<StatusOr<Frame>>> pending_frames;

  /// Reconnect backoff: doubled on every failed connect attempt, reset on
  /// success and on a clean teardown of a previously working connection.
  int backoff_ms = 0;
  Clock::time_point next_attempt{};
};

NetClient::NetClient(NetClientOptions options) : options_(options) {
  next_correlation_.store(options_.start_correlation_id);
}

NetClient::~NetClient() {
  closing_.store(true, std::memory_order_release);
  for (auto& conn : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->fd.valid()) ::shutdown(conn->fd.get(), SHUT_RDWR);
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port, NetClientOptions options) {
  PKGM_CHECK(options.num_connections >= 1);
  std::unique_ptr<NetClient> client(new NetClient(options));
  client->host_ = host;
  client->port_ = port;
  for (size_t i = 0; i < options.num_connections; ++i) {
    client->conns_.push_back(std::make_unique<Conn>());
  }
  for (auto& conn : client->conns_) {
    auto fd = ConnectTcp(host, port, options.connect_timeout_ms);
    if (!fd.ok()) return fd.status();
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->fd = std::move(fd.value());
    conn->io = CreateClientIo(options.io_backend);
    Conn* raw = conn.get();
    NetClient* raw_client = client.get();
    conn->reader = std::thread([raw_client, raw] {
      raw_client->ReaderLoop(*raw);
    });
  }
  return client;
}

NetClient::Conn& NetClient::PickConn() {
  return *conns_[next_conn_.fetch_add(1) % conns_.size()];
}

Status NetClient::SendFrame(Conn& conn, const std::string& frame) {
  iovec iov;
  iov.iov_base = const_cast<char*>(frame.data());
  iov.iov_len = frame.size();
  return SendFrames(conn, &iov, 1);
}

Status NetClient::SendFrames(Conn& conn, const iovec* iov, int iovcnt) {
  // Caller holds conn.mu.
  if (closing_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("client is shutting down");
  }
  if (!conn.fd.valid()) {
    // The reader tore the previous socket down; reconnect under backoff.
    const Clock::time_point now = Clock::now();
    if (now < conn.next_attempt) {
      return Status::IoError("connection down, reconnect backoff active");
    }
    auto fd = ConnectTcp(host_, port_, options_.connect_timeout_ms);
    if (!fd.ok()) {
      conn.backoff_ms = conn.backoff_ms == 0
                            ? options_.reconnect_backoff_initial_ms
                            : std::min(conn.backoff_ms * 2,
                                       options_.reconnect_backoff_max_ms);
      conn.next_attempt = now + std::chrono::milliseconds(conn.backoff_ms);
      return fd.status();
    }
    conn.backoff_ms = 0;
    if (conn.reader.joinable()) conn.reader.join();  // exited with the old fd
    conn.fd = std::move(fd.value());
    Conn* raw = &conn;
    conn.reader = std::thread([this, raw] { ReaderLoop(*raw); });
  }
  const Status status = conn.io->SendAll(conn.fd.get(), iov, iovcnt);
  if (!status.ok()) {
    // Wake the reader; it fails the pending entries (including this
    // frame's, which the caller registered before sending) and closes.
    ::shutdown(conn.fd.get(), SHUT_RDWR);
  }
  return status;
}

std::future<serve::ServiceResponse> NetClient::Submit(
    serve::ServiceRequest request) {
  std::vector<serve::ServiceRequest> one;
  one.push_back(request);
  auto futures = SubmitBatch(std::move(one));
  return std::move(futures.front());
}

std::vector<std::future<serve::ServiceResponse>> NetClient::SubmitBatch(
    std::vector<serve::ServiceRequest> requests) {
  std::vector<std::future<serve::ServiceResponse>> futures;
  if (requests.empty()) return futures;
  futures.reserve(requests.size());
  // Futures are claimed up front in submission order; moving a promise
  // into a per-frame pending entry keeps its shared state, so the caller's
  // future ordering is independent of how the batch splits into frames.
  std::vector<std::promise<serve::ServiceResponse>> promises(requests.size());
  for (auto& promise : promises) futures.push_back(promise.get_future());

  // Each task kind travels in its own typed frame (wire v3) with its own
  // correlation id; a pure-lookup batch still costs exactly one frame.
  std::vector<size_t> by_kind[serve::kMaxTaskKind + 1];
  for (size_t i = 0; i < requests.size(); ++i) {
    by_kind[static_cast<uint8_t>(requests[i].task)].push_back(i);
  }

  const auto now = serve::ServeClock::now();
  Conn& conn = PickConn();
  std::lock_guard<std::mutex> lock(conn.mu);
  // Encode every typed frame and register its pending entry first, then
  // ship the whole batch in one gathered submission: a mixed-kind batch
  // costs one send syscall (or one ring submission), not one per kind.
  std::vector<std::string> frames;
  std::vector<uint64_t> correlation_ids;
  for (uint8_t kind = 0; kind <= serve::kMaxTaskKind; ++kind) {
    const std::vector<size_t>& indices = by_kind[kind];
    if (indices.empty()) continue;
    std::vector<serve::ServiceRequest> sub;
    sub.reserve(indices.size());
    for (size_t i : indices) sub.push_back(requests[i]);

    const uint64_t correlation_id = next_correlation_.fetch_add(1);
    std::string frame;
    switch (static_cast<serve::TaskKind>(kind)) {
      case serve::TaskKind::kLookup:
        frame = EncodeGetVectors(correlation_id, sub, now);
        break;
      case serve::TaskKind::kRecommend:
        frame = EncodeRecommend(correlation_id, sub, now);
        break;
      case serve::TaskKind::kClassify:
        frame = EncodeClassify(correlation_id, sub, now);
        break;
      case serve::TaskKind::kAlign:
        frame = EncodeAlign(correlation_id, sub, now);
        break;
    }

    Conn::PendingBatch batch;
    batch.promises.reserve(indices.size());
    for (size_t i : indices) batch.promises.push_back(std::move(promises[i]));
    conn.pending.emplace(correlation_id, std::move(batch));
    frames.push_back(std::move(frame));
    correlation_ids.push_back(correlation_id);
  }

  std::vector<iovec> iov(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    iov[i].iov_base = const_cast<char*>(frames[i].data());
    iov[i].iov_len = frames[i].size();
  }
  const Status status =
      SendFrames(conn, iov.data(), static_cast<int>(iov.size()));
  if (!status.ok()) {
    // If the write started, the reader owns failing the entries; if we
    // never had a socket, fail them here.
    if (!conn.fd.valid()) {
      for (uint64_t correlation_id : correlation_ids) {
        auto it = conn.pending.find(correlation_id);
        if (it == conn.pending.end()) continue;
        network_errors_ += it->second.promises.size();
        for (auto& promise : it->second.promises) {
          promise.set_value(NetworkErrorResponse());
        }
        conn.pending.erase(it);
      }
    }
  }
  return futures;
}

StatusOr<std::string> NetClient::ServerStatsJson(int timeout_ms) {
  const uint64_t correlation_id = next_correlation_.fetch_add(1);
  Conn& conn = PickConn();
  std::future<StatusOr<std::string>> future;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    auto [it, inserted] = conn.pending_stats.emplace(
        correlation_id, std::promise<StatusOr<std::string>>());
    future = it->second.get_future();
    const Status status =
        SendFrame(conn, EncodeControl(FrameType::kStats, correlation_id));
    if (!status.ok() && !conn.fd.valid()) {
      conn.pending_stats.erase(correlation_id);
      return status;
    }
  }
  if (future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
      std::future_status::ready) {
    std::lock_guard<std::mutex> lock(conn.mu);
    if (conn.pending_stats.erase(correlation_id) > 0) {
      return Status::IoError("stats request timed out");
    }
  }
  return future.get();
}

Status NetClient::Ping(int timeout_ms) {
  const uint64_t correlation_id = next_correlation_.fetch_add(1);
  Conn& conn = PickConn();
  std::future<Status> future;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    auto [it, inserted] =
        conn.pending_pings.emplace(correlation_id, std::promise<Status>());
    future = it->second.get_future();
    const Status status =
        SendFrame(conn, EncodeControl(FrameType::kPing, correlation_id));
    if (!status.ok() && !conn.fd.valid()) {
      conn.pending_pings.erase(correlation_id);
      return status;
    }
  }
  if (future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
      std::future_status::ready) {
    std::lock_guard<std::mutex> lock(conn.mu);
    if (conn.pending_pings.erase(correlation_id) > 0) {
      return Status::IoError("ping timed out");
    }
  }
  return future.get();
}

std::future<StatusOr<Frame>> NetClient::CallFrame(
    uint64_t correlation_id, const std::string& frame_bytes) {
  Conn& conn = PickConn();
  std::lock_guard<std::mutex> lock(conn.mu);
  auto [it, inserted] = conn.pending_frames.emplace(
      correlation_id, std::promise<StatusOr<Frame>>());
  if (!inserted) {
    // Correlation id already in flight on this connection (wraparound hit
    // an unanswered id): refuse rather than corrupt the matching.
    std::promise<StatusOr<Frame>> failed;
    failed.set_value(Status::FailedPrecondition(
        StrFormat("correlation id %llu already in flight",
                  static_cast<unsigned long long>(correlation_id))));
    return failed.get_future();
  }
  std::future<StatusOr<Frame>> future = it->second.get_future();
  const Status status = SendFrame(conn, frame_bytes);
  if (!status.ok()) {
    // Same split as SubmitBatch: once bytes may have hit the socket, the
    // reader owns failing the entry; a never-connected socket fails here.
    auto found = conn.pending_frames.find(correlation_id);
    if (found != conn.pending_frames.end() && !conn.fd.valid()) {
      found->second.set_value(status);
      conn.pending_frames.erase(found);
    }
  }
  return future;
}

void NetClient::FailPending(Conn& conn) {
  // Caller holds conn.mu.
  for (auto& [correlation_id, batch] : conn.pending) {
    network_errors_ += batch.promises.size();
    for (auto& promise : batch.promises) {
      promise.set_value(NetworkErrorResponse());
    }
  }
  conn.pending.clear();
  for (auto& [correlation_id, promise] : conn.pending_stats) {
    promise.set_value(Status::IoError("connection lost"));
  }
  conn.pending_stats.clear();
  for (auto& [correlation_id, promise] : conn.pending_pings) {
    promise.set_value(Status::IoError("connection lost"));
  }
  conn.pending_pings.clear();
  for (auto& [correlation_id, promise] : conn.pending_frames) {
    ++network_errors_;
    promise.set_value(Status::IoError("connection lost"));
  }
  conn.pending_frames.clear();
}

void NetClient::ReaderLoop(Conn& conn) {
  FrameDecoder decoder(options_.max_frame_bytes);
  const int fd = conn.fd.get();          // stable: only the reader closes it
  ClientConnIo* io = conn.io.get();      // stable: replaced only after join
  bool healthy = true;

  while (healthy) {
    const char* data = nullptr;
    const ssize_t n = io->Recv(fd, &data);
    if (n <= 0) break;  // EOF or error (EINTR retried inside): tear down
    decoder.Feed(data, static_cast<size_t>(n));

    Frame frame;
    std::string error;
    while (healthy) {
      const FrameDecoder::Result result = decoder.Next(&frame, &error);
      if (result == FrameDecoder::Result::kNeedMore) break;
      if (result == FrameDecoder::Result::kError) {
        healthy = false;  // server sent garbage; the stream is gone
        break;
      }
      switch (frame.type) {
        case FrameType::kVectors:
        case FrameType::kRecommendReply:
        case FrameType::kClassifyReply:
        case FrameType::kAlignReply: {
          std::vector<serve::ServiceResponse> responses;
          Status decode_status;
          switch (frame.type) {
            case FrameType::kClassifyReply:
              decode_status = DecodeClassifyReply(frame.payload, &responses);
              break;
            case FrameType::kRecommendReply:
            case FrameType::kAlignReply:
              decode_status = DecodeScoreReply(frame.payload, &responses);
              break;
            default:
              decode_status = DecodeVectors(frame.payload, &responses);
              break;
          }
          if (!decode_status.ok()) {
            healthy = false;
            break;
          }
          Conn::PendingBatch batch;
          {
            std::lock_guard<std::mutex> lock(conn.mu);
            auto it = conn.pending.find(frame.correlation_id);
            if (it == conn.pending.end()) break;  // late/unknown: drop
            batch = std::move(it->second);
            conn.pending.erase(it);
          }
          if (responses.size() != batch.promises.size()) {
            // Count mismatch is a protocol violation; fail this batch and
            // give up on the stream.
            network_errors_ += batch.promises.size();
            for (auto& promise : batch.promises) {
              promise.set_value(NetworkErrorResponse());
            }
            healthy = false;
            break;
          }
          for (size_t i = 0; i < responses.size(); ++i) {
            batch.promises[i].set_value(std::move(responses[i]));
          }
          break;
        }
        case FrameType::kStatsJson: {
          std::promise<StatusOr<std::string>> promise;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(conn.mu);
            auto it = conn.pending_stats.find(frame.correlation_id);
            if (it != conn.pending_stats.end()) {
              promise = std::move(it->second);
              conn.pending_stats.erase(it);
              found = true;
            }
          }
          if (found) promise.set_value(std::move(frame.payload));
          break;
        }
        case FrameType::kPong: {
          std::promise<Status> promise;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(conn.mu);
            auto it = conn.pending_pings.find(frame.correlation_id);
            if (it != conn.pending_pings.end()) {
              promise = std::move(it->second);
              conn.pending_pings.erase(it);
              found = true;
            }
          }
          if (found) promise.set_value(Status::Ok());
          break;
        }
        case FrameType::kRows:
        case FrameType::kPushAck:
        case FrameType::kShardInfoReply:
        case FrameType::kBarrierReply: {
          std::promise<StatusOr<Frame>> promise;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(conn.mu);
            auto it = conn.pending_frames.find(frame.correlation_id);
            if (it != conn.pending_frames.end()) {
              promise = std::move(it->second);
              conn.pending_frames.erase(it);
              found = true;
            }
          }
          if (found) promise.set_value(std::move(frame));
          break;
        }
        case FrameType::kError: {
          WireCode code;
          std::string message;
          if (!DecodeError(frame.payload, &code, &message).ok()) {
            healthy = false;
            break;
          }
          std::lock_guard<std::mutex> lock(conn.mu);
          auto it = conn.pending.find(frame.correlation_id);
          if (it != conn.pending.end()) {
            for (auto& promise : it->second.promises) {
              serve::ServiceResponse response;
              response.code = ResponseCodeFromWire(code);
              promise.set_value(std::move(response));
            }
            conn.pending.erase(it);
            break;
          }
          auto stats_it = conn.pending_stats.find(frame.correlation_id);
          if (stats_it != conn.pending_stats.end()) {
            stats_it->second.set_value(
                Status::IoError(StrFormat("server error: %s",
                                          message.c_str())));
            conn.pending_stats.erase(stats_it);
            break;
          }
          auto ping_it = conn.pending_pings.find(frame.correlation_id);
          if (ping_it != conn.pending_pings.end()) {
            ping_it->second.set_value(
                Status::IoError(StrFormat("server error: %s",
                                          message.c_str())));
            conn.pending_pings.erase(ping_it);
            break;
          }
          auto frame_it = conn.pending_frames.find(frame.correlation_id);
          if (frame_it != conn.pending_frames.end()) {
            frame_it->second.set_value(
                Status::IoError(StrFormat("server error: %s",
                                          message.c_str())));
            conn.pending_frames.erase(frame_it);
          }
          break;
        }
        default:
          // Request-direction frames from a server: protocol violation.
          healthy = false;
          break;
      }
    }
  }

  // Sole teardown point: close the socket and fail whatever was in flight.
  std::lock_guard<std::mutex> lock(conn.mu);
  conn.fd.Reset();
  FailPending(conn);
}

}  // namespace pkgm::net
