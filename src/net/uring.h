#ifndef PKGM_NET_URING_H_
#define PKGM_NET_URING_H_

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/socket.h>

#include <cstdint>
#include <cstring>

#include "util/status.h"

namespace pkgm::net {

/// Minimal io_uring wrapper over the raw syscalls (the toolchain image has
/// kernel headers but no liburing). One submission queue + one completion
/// queue, single-threaded: exactly one thread may touch a UringQueue. The
/// queue refuses to initialize unless the kernel grants the features the
/// backends rely on:
///   - SINGLE_MMAP   (one mmap covers both rings; 5.4+)
///   - NODROP        (CQ overflow is buffered, never silently dropped; 5.5+)
///   - EXT_ARG       (timed waits without a timeout SQE; 5.11+)
///
/// Ops are identified by the caller-chosen 64-bit user_data; completions are
/// drained with ForEachCompletion. SQEs queued via GetSqe() are published to
/// the kernel by the next Submit()/SubmitAndWait().
class UringQueue {
 public:
  UringQueue() = default;
  ~UringQueue();

  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Creates the ring with `entries` SQ slots (rounded up to a power of
  /// two by the kernel) and a 4x CQ. Fails with FailedPrecondition when
  /// io_uring is unavailable or lacks the required features, IoError on
  /// resource errors (e.g. RLIMIT_MEMLOCK).
  Status Init(unsigned entries);

  bool valid() const { return ring_fd_ >= 0; }

  /// Next free SQE, zeroed, or nullptr when the SQ is full even after
  /// flushing queued entries to the kernel.
  io_uring_sqe* GetSqe();

  /// Publishes queued SQEs to the kernel without waiting. No-op (Ok) when
  /// nothing is queued, so callers can flush unconditionally.
  Status Submit();

  /// Publishes queued SQEs and waits for at least `min_complete`
  /// completions or the timeout (milliseconds; < 0 waits indefinitely,
  /// 0 polls). A timeout or signal is Ok — the caller just drains whatever
  /// arrived. `min_complete` > 1 is completion coalescing: trade a bounded
  /// wait for fewer, fuller enter syscalls.
  Status SubmitAndWait(int timeout_ms, unsigned min_complete = 1);

  /// Drains every pending CQE into `fn(user_data, res, flags)`. Returns the
  /// number of completions consumed. Entries are copied out before `fn`
  /// runs, so `fn` may queue new SQEs.
  template <typename Fn>
  unsigned ForEachCompletion(Fn&& fn) {
    unsigned drained = 0;
    // Batch through a small stack buffer: advancing the CQ head as we copy
    // lets the kernel flush buffered overflow (NODROP) into the freed slots
    // on the next enter.
    Completion batch[64];
    unsigned n;
    while ((n = PopCompletions(batch, 64)) > 0) {
      for (unsigned i = 0; i < n; ++i) {
        fn(batch[i].user_data, batch[i].res, batch[i].flags);
      }
      drained += n;
    }
    return drained;
  }

  /// io_uring_enter invocations (each is one syscall; the uring backend's
  /// whole syscall budget).
  uint64_t enter_calls() const { return enter_calls_; }

  /// SQEs handed out (== ops submitted once flushed).
  uint64_t sqes_issued() const { return sqes_issued_; }

 private:
  struct Completion {
    uint64_t user_data;
    int32_t res;
    uint32_t flags;
  };

  unsigned PopCompletions(Completion* out, unsigned max);
  int Enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            const void* arg, size_t argsz);
  void Close();

  int ring_fd_ = -1;

  // SQ ring (mmap'd, shared with the kernel).
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_flags_ = nullptr;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  /// Local (unpublished) tail; published to *sq_tail_ on submit.
  unsigned sqe_tail_ = 0;

  // CQ ring (same mmap under SINGLE_MMAP).
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  uint64_t enter_calls_ = 0;
  uint64_t sqes_issued_ = 0;
};

/// True when this kernel/container can create a UringQueue with the
/// required feature set (result cached after the first probe).
bool UringSupported();

// --- SQE prep helpers (mirror liburing's io_uring_prep_*) ------------------

inline void PrepRecv(io_uring_sqe* sqe, int fd, void* buf, size_t len,
                     uint64_t user_data) {
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->user_data = user_data;
}

inline void PrepSendmsg(io_uring_sqe* sqe, int fd, const msghdr* msg,
                        uint64_t user_data) {
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(msg);
  sqe->len = 1;
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = user_data;
}

inline void PrepRead(io_uring_sqe* sqe, int fd, void* buf, size_t len,
                     uint64_t user_data) {
  sqe->opcode = IORING_OP_READ;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->user_data = user_data;
}

inline void PrepPollIn(io_uring_sqe* sqe, int fd, uint64_t user_data) {
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = POLLIN;
  sqe->user_data = user_data;
}

/// Cancels the in-flight op whose user_data matches `target`. Completes
/// -ENOENT when nothing matches — harmless.
inline void PrepCancel(io_uring_sqe* sqe, uint64_t target,
                       uint64_t user_data) {
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target;
  sqe->user_data = user_data;
}

}  // namespace pkgm::net

#endif  // PKGM_NET_URING_H_
