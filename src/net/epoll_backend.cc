// The portable readiness backend: level-triggered epoll, one read()/
// sendmsg() per readiness edge — exactly the loop NetServer::IoThread ran
// before the IoBackend seam existed, now with syscall accounting so the
// io_uring comparison is measurable.
#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <unordered_map>

#include "net/io_backend.h"
#include "net/socket_util.h"
#include "util/string_util.h"

namespace pkgm::net {
namespace {

// epoll user-data tags for the two non-connection fds. Connection tags
// start at 2 (NetServer's conn-id space), so there is no collision.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeupTag = 1;
constexpr size_t kReadChunkBytes = 64 * 1024;

class EpollBackend : public IoBackend {
 public:
  const char* name() const override { return "epoll"; }

  Status Init(IoEventHandler* handler, int wakeup_fd) override {
    handler_ = handler;
    wakeup_fd_ = wakeup_fd;
    epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      return Status::IoError(
          StrFormat("epoll_create1: %s", std::strerror(errno)));
    }
    return Ctl(EPOLL_CTL_ADD, wakeup_fd, EPOLLIN, kWakeupTag);
  }

  Status AttachListener(int fd) override {
    listener_fd_ = fd;
    return Ctl(EPOLL_CTL_ADD, fd, EPOLLIN, kListenerTag);
  }

  void DetachListener() override {
    if (listener_fd_ < 0) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listener_fd_, nullptr);
    listener_fd_ = -1;
  }

  Status AddConnection(uint64_t tag, int fd, bool want_recv) override {
    Conn conn;
    conn.fd = fd;
    conn.want_recv = want_recv;
    const Status status =
        Ctl(EPOLL_CTL_ADD, fd, want_recv ? EPOLLIN : 0u, tag);
    if (status.ok()) conns_.emplace(tag, conn);
    return status;
  }

  void PauseRecv(uint64_t tag) override {
    auto it = conns_.find(tag);
    if (it == conns_.end() || !it->second.want_recv) return;
    it->second.want_recv = false;
    UpdateMask(tag, it->second);
  }

  void RemoveConnection(uint64_t tag) override {
    auto it = conns_.find(tag);
    if (it == conns_.end()) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd, nullptr);
    conns_.erase(it);
  }

  SendResult SubmitSend(uint64_t tag, int fd, const iovec* iov,
                        int iovcnt) override {
    msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    // MSG_NOSIGNAL: a peer that closed mid-write must surface EPIPE, not
    // kill the process with SIGPIPE.
    send_syscalls_.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n > 0) return {SendResult::Kind::kSent, static_cast<size_t>(n)};
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      auto it = conns_.find(tag);
      if (it != conns_.end() && !it->second.want_send) {
        it->second.want_send = true;
        UpdateMask(tag, it->second);
      }
      return {SendResult::Kind::kWouldBlock, 0};
    }
    return {SendResult::Kind::kError, 0};  // EPIPE/ECONNRESET/...
  }

  void Poll(int timeout_ms) override {
    epoll_event events[64];
    wait_calls_.fetch_add(1, std::memory_order_relaxed);
    const int n_events =
        ::epoll_wait(epoll_fd_.get(), events, 64, timeout_ms);
    for (int i = 0; i < n_events; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (listener_fd_ >= 0) handler_->OnAcceptReady();
        continue;
      }
      if (tag == kWakeupTag) {
        uint64_t counter;
        [[maybe_unused]] ssize_t r =
            ::read(wakeup_fd_, &counter, sizeof(counter));
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        handler_->OnWakeup();
        continue;
      }
      if (conns_.find(tag) == conns_.end()) continue;  // stale event
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        handler_->OnPeerClosed(tag);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        ReadReady(tag);
        if (conns_.find(tag) == conns_.end()) continue;  // closed in OnData
      }
      if (events[i].events & EPOLLOUT) {
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;
        // One-shot semantics: disarm before the callback; a send that
        // would-blocks again re-arms.
        if (it->second.want_send) {
          it->second.want_send = false;
          UpdateMask(tag, it->second);
        }
        handler_->OnSendSpace(tag);
      }
    }
  }

  IoBackendStats stats() const override {
    IoBackendStats s;
    s.wait_calls = wait_calls_.load(std::memory_order_relaxed);
    s.recv_syscalls = recv_syscalls_.load(std::memory_order_relaxed);
    s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Conn {
    int fd = -1;
    bool want_recv = true;
    bool want_send = false;
  };

  Status Ctl(int op, int fd, uint32_t event_mask, uint64_t tag) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = event_mask;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_.get(), op, fd, &ev) < 0) {
      return Status::IoError(
          StrFormat("epoll_ctl: %s", std::strerror(errno)));
    }
    return Status::Ok();
  }

  void UpdateMask(uint64_t tag, const Conn& conn) {
    Ctl(EPOLL_CTL_MOD, conn.fd,
        (conn.want_recv ? EPOLLIN : 0u) | (conn.want_send ? EPOLLOUT : 0u),
        tag);
  }

  /// Level-triggered read: drain the socket in 64K chunks, handing each to
  /// the handler as it lands (the handler may close the connection midway).
  void ReadReady(uint64_t tag) {
    char buf[kReadChunkBytes];
    while (true) {
      auto it = conns_.find(tag);
      if (it == conns_.end() || !it->second.want_recv) return;
      recv_syscalls_.fetch_add(1, std::memory_order_relaxed);
      const ssize_t n = ::read(it->second.fd, buf, sizeof(buf));
      if (n > 0) {
        handler_->OnData(tag, buf, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < sizeof(buf)) return;  // drained
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      handler_->OnPeerClosed(tag);  // EOF or hard error
      return;
    }
  }

  IoEventHandler* handler_ = nullptr;
  ScopedFd epoll_fd_;
  int wakeup_fd_ = -1;
  int listener_fd_ = -1;
  std::unordered_map<uint64_t, Conn> conns_;

  // Relaxed atomics: bumped only by the loop thread, read cross-thread by
  // stats snapshots.
  std::atomic<uint64_t> wait_calls_{0};
  std::atomic<uint64_t> recv_syscalls_{0};
  std::atomic<uint64_t> send_syscalls_{0};
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace

std::unique_ptr<IoBackend> CreateEpollBackend() {
  return std::make_unique<EpollBackend>();
}

}  // namespace pkgm::net
