#include "net/net_server.h"

#include <errno.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::net {
namespace {

constexpr int kPollWaitMs = 100;

using Clock = std::chrono::steady_clock;

/// Encodes the response frame matching a request frame's reply type. The
/// lookup path answers kVectors; the inference kinds answer their typed
/// replies (score entries for recommend/align, top-k lists for classify).
std::string EncodeReplyFrame(FrameType reply_type, uint64_t correlation_id,
                             const std::vector<serve::ServiceResponse>& slots) {
  switch (reply_type) {
    case FrameType::kRecommendReply:
    case FrameType::kAlignReply:
      return EncodeScoreReply(reply_type, correlation_id, slots);
    case FrameType::kClassifyReply:
      return EncodeClassifyReply(correlation_id, slots);
    default:
      return EncodeVectors(correlation_id, slots);
  }
}

}  // namespace

/// One TCP connection, owned exclusively by its I/O thread.
struct NetServer::Connection {
  uint64_t id = 0;
  ScopedFd fd;
  FrameDecoder decoder;
  /// Encoded-but-unsent response bytes, oldest first. front() may be
  /// partially written (outbox_offset).
  std::deque<std::string> outbox;
  size_t outbox_offset = 0;
  size_t outbox_bytes = 0;
  /// Request frames submitted to the knowledge server whose response has
  /// not yet been appended to the outbox.
  uint64_t in_flight_frames = 0;
  Clock::time_point last_activity;
  /// An async (kAsync) send is in flight with the backend; its bytes stay
  /// in the outbox until OnSendComplete retires them, so send_inflight
  /// implies a non-empty outbox and the drain condition is unchanged.
  bool send_inflight = false;
  bool reading = true;

  explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

/// Per-thread event loop state. `conns` and `backend` are touched only by
/// the owning thread; `inbox_fds`/`completions` are the cross-thread
/// mailboxes.
struct NetServer::IoThread {
  size_t index = 0;
  ScopedFd event_fd;
  std::thread thread;

  std::mutex mu;
  std::vector<int> inbox_fds;
  struct Completion {
    uint64_t conn_id;
    std::string bytes;
  };
  std::vector<Completion> completions;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
  std::unique_ptr<LoopHandler> loop_handler;
  /// Declared last: destroyed first, while the handler, connections and
  /// eventfd it references are still alive.
  std::unique_ptr<IoBackend> backend;
};

/// Adapts backend callbacks onto the server's loop methods for one thread.
struct NetServer::LoopHandler : public IoEventHandler {
  NetServer* server = nullptr;
  IoThread* io = nullptr;

  void OnAcceptReady() override {
    if (!server->draining_.load(std::memory_order_acquire)) {
      server->AcceptNew(*io);
    }
  }
  void OnWakeup() override { server->DrainMailboxes(*io); }
  void OnData(uint64_t tag, const char* data, size_t len) override {
    server->OnConnData(*io, tag, data, len);
  }
  void OnPeerClosed(uint64_t tag) override {
    server->CloseConnection(*io, tag);
  }
  void OnSendComplete(uint64_t tag, int64_t n) override {
    server->OnSendComplete(*io, tag, n);
  }
  void OnSendSpace(uint64_t tag) override {
    auto it = io->conns.find(tag);
    if (it == io->conns.end()) return;
    server->FlushOutbox(*io, *it->second);
  }
};

/// Completion state shared by the per-request callbacks of one request
/// frame: the worker finishing the frame's last request encodes the
/// response and posts it to the connection's I/O thread.
struct NetServer::FrameState {
  NetServer* server;
  size_t thread_index;
  uint64_t conn_id;
  uint64_t correlation_id;
  /// Which response frame type answers this request frame.
  FrameType reply_type;
  std::vector<serve::ServiceResponse> slots;
  std::atomic<size_t> remaining;
};

/// One routed frame's completion token: enforces respond-at-most-once and
/// carries the addressing a worker thread needs to post the response back.
struct NetServer::HandlerRespondState {
  NetServer* server;
  size_t thread_index;
  uint64_t conn_id;
  std::atomic<bool> responded{false};

  // A respond dropped without ever being invoked still completes its
  // frame: the peer simply gets no reply (it sees the close or times
  // out). Without this, a handler that abandons a parked respond would
  // wedge Stop()'s outstanding-frame wait forever.
  ~HandlerRespondState() {
    if (!responded.load(std::memory_order_acquire)) {
      --server->outstanding_frames_;
    }
  }
};

NetServer::NetServer(serve::KnowledgeServer* server, NetServerOptions options)
    : server_(server), handler_(nullptr), options_(std::move(options)) {
  PKGM_CHECK(server != nullptr);
  PKGM_CHECK(options_.num_io_threads >= 1);
}

NetServer::NetServer(FrameHandler* handler, NetServerOptions options)
    : server_(nullptr), handler_(handler), options_(std::move(options)) {
  PKGM_CHECK(handler != nullptr);
  PKGM_CHECK(options_.num_io_threads >= 1);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::BuildIoThreads(IoBackendKind kind) {
  for (size_t i = 0; i < options_.num_io_threads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->event_fd.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!io->event_fd.valid()) {
      return Status::IoError(StrFormat("eventfd: %s", std::strerror(errno)));
    }
    io->loop_handler = std::make_unique<LoopHandler>();
    io->loop_handler->server = this;
    io->loop_handler->io = io.get();
    io->backend = CreateIoBackend(kind);
    Status status =
        io->backend->Init(io->loop_handler.get(), io->event_fd.get());
    if (!status.ok()) return status;
    if (i == 0) {
      status = io->backend->AttachListener(listener_.get());
      if (!status.ok()) return status;
    }
    io_threads_.push_back(std::move(io));
  }
  return Status::Ok();
}

Status NetServer::Start() {
  PKGM_CHECK(!started_) << "NetServer::Start called twice";
  auto listener =
      ListenTcp(options_.bind_address, options_.port, options_.listen_backlog,
                options_.reuseport, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());

  IoBackendKind kind = SelectIoBackend(options_.io_backend);
  Status built = BuildIoThreads(kind);
  if (!built.ok() && kind == IoBackendKind::kUring) {
    // The probe passed but a real ring did not come up (e.g. a memlock
    // limit hit with full-size rings). All threads must agree on a
    // backend, so rebuild everything on epoll.
    PKGM_LOG(Warning) << "io_uring backend init failed ("
                      << built.ToString() << "); falling back to epoll";
    io_threads_.clear();
    kind = IoBackendKind::kEpoll;
    built = BuildIoThreads(kind);
  }
  if (!built.ok()) return built;
  io_backend_name_ = IoBackendKindName(kind);

  for (size_t i = 0; i < io_threads_.size(); ++i) {
    io_threads_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
  started_ = true;
  return Status::Ok();
}

void NetServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  draining_.store(true, std::memory_order_release);
  for (auto& io : io_threads_) SignalThread(*io);
  for (auto& io : io_threads_) {
    if (io->thread.joinable()) io->thread.join();
  }
  // No worker callback may outlive the server object: wait for every
  // submitted frame's completion to be posted (the knowledge server keeps
  // draining; its Stop() is the caller's, ordered after this).
  while (outstanding_frames_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  listener_.Reset();
}

void NetServer::SignalThread(IoThread& io) {
  const uint64_t one = 1;
  // The eventfd outlives the threads (owned by this object), so a wakeup
  // racing shutdown lands harmlessly in its counter.
  [[maybe_unused]] ssize_t n =
      ::write(io.event_fd.get(), &one, sizeof(one));
}

void NetServer::PostCompletion(size_t thread_index, uint64_t conn_id,
                               std::string bytes) {
  IoThread& io = *io_threads_[thread_index];
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(io.mu);
    was_empty = io.completions.empty() && io.inbox_fds.empty();
    io.completions.push_back({conn_id, std::move(bytes)});
  }
  // Signal only the empty -> non-empty transition: a signal already in
  // flight guarantees a drain that will pick this item up too, and skipping
  // the redundant write spares the loop one wakeup round per burst.
  if (was_empty) SignalThread(io);
}

void NetServer::AddConnection(IoThread& io, int raw_fd) {
  ScopedFd fd(raw_fd);
  if (!SetNonBlocking(fd.get()).ok() || !SetTcpNoDelay(fd.get()).ok()) {
    return;  // peer already gone; nothing accepted yet to roll back
  }
  if (options_.so_sndbuf_bytes > 0) {
    SetSendBufferBytes(fd.get(), options_.so_sndbuf_bytes);
  }
  auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
  conn->id = next_conn_id_.fetch_add(1);
  conn->fd = std::move(fd);
  conn->last_activity = Clock::now();
  // A connection accepted mid-drain is immediately read-disabled; it will
  // be closed by the drain sweep.
  conn->reading = !draining_.load(std::memory_order_acquire);

  if (!io.backend->AddConnection(conn->id, conn->fd.get(), conn->reading)
           .ok()) {
    return;
  }
  ++connections_accepted_;
  io.conns.emplace(conn->id, std::move(conn));
}

void NetServer::AcceptNew(IoThread& io) {
  while (true) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr,
                             SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: try later
    const size_t target = next_io_thread_.fetch_add(1) % io_threads_.size();
    if (target == io.index) {
      AddConnection(io, fd);
    } else {
      IoThread& other = *io_threads_[target];
      bool was_empty;
      {
        std::lock_guard<std::mutex> lock(other.mu);
        was_empty = other.completions.empty() && other.inbox_fds.empty();
        other.inbox_fds.push_back(fd);
      }
      if (was_empty) SignalThread(other);
    }
  }
}

void NetServer::CloseConnection(IoThread& io, uint64_t conn_id) {
  auto it = io.conns.find(conn_id);
  if (it == io.conns.end()) return;
  // RemoveConnection runs while the fd is still open (the backend must
  // flush/cancel kernel ops that reference it); the erase then closes it.
  io.backend->RemoveConnection(conn_id);
  io.conns.erase(it);  // ScopedFd closes the socket
  ++connections_closed_;
}

void NetServer::RetireOutboxBytes(Connection& conn, size_t n) {
  if (n == 0) return;
  bytes_out_ += static_cast<uint64_t>(n);
  conn.outbox_bytes -= n;
  conn.last_activity = Clock::now();
  // Retire fully-sent frames; a partial tail becomes the new front with
  // its offset advanced.
  while (n > 0) {
    const size_t front_remaining =
        conn.outbox.front().size() - conn.outbox_offset;
    if (n >= front_remaining) {
      n -= front_remaining;
      conn.outbox.pop_front();
      conn.outbox_offset = 0;
    } else {
      conn.outbox_offset += n;
      n = 0;
    }
  }
}

bool NetServer::FlushOutbox(IoThread& io, Connection& conn) {
  // One async send at a time per connection: its bytes stay queued until
  // OnSendComplete retires them and resumes the flush.
  if (conn.send_inflight) return true;
  // Gather up to kFlushIovecs queued frames per submission: under
  // pipelined load the outbox routinely holds many small response frames,
  // and one gathered send drains what used to take one send() each.
  constexpr int kFlushIovecs = 64;
  while (!conn.outbox.empty()) {
    struct iovec iov[kFlushIovecs];
    int iovcnt = 0;
    for (const std::string& entry : conn.outbox) {
      if (iovcnt == kFlushIovecs) break;
      const size_t offset = iovcnt == 0 ? conn.outbox_offset : 0;
      iov[iovcnt].iov_base =
          const_cast<char*>(entry.data()) + offset;
      iov[iovcnt].iov_len = entry.size() - offset;
      ++iovcnt;
    }
    const SendResult result =
        io.backend->SubmitSend(conn.id, conn.fd.get(), iov, iovcnt);
    switch (result.kind) {
      case SendResult::Kind::kSent:
        RetireOutboxBytes(conn, result.bytes);
        continue;
      case SendResult::Kind::kWouldBlock:
        return true;  // backend calls OnSendSpace when a retry can progress
      case SendResult::Kind::kAsync:
        conn.send_inflight = true;
        return true;  // OnSendComplete retires and resumes
      case SendResult::Kind::kError:
        CloseConnection(io, conn.id);  // EPIPE/ECONNRESET/...
        return false;
    }
  }
  return true;
}

void NetServer::OnSendComplete(IoThread& io, uint64_t tag, int64_t n) {
  auto it = io.conns.find(tag);
  if (it == io.conns.end()) return;
  Connection& conn = *it->second;
  conn.send_inflight = false;
  if (n < 0) {
    CloseConnection(io, tag);
    return;
  }
  RetireOutboxBytes(conn, static_cast<size_t>(n));
  FlushOutbox(io, conn);
}

bool NetServer::SendOnLoop(IoThread& io, Connection& conn,
                           std::string bytes) {
  ++frames_out_;
  conn.outbox_bytes += bytes.size();
  conn.outbox.push_back(std::move(bytes));
  if (!FlushOutbox(io, conn)) return false;
  if (conn.outbox_bytes > options_.max_outbox_bytes) {
    // Slow reader: the kernel buffer and our bound are both full. Cutting
    // the connection sheds the memory instead of queueing without limit.
    ++backpressure_disconnects_;
    CloseConnection(io, conn.id);
    return false;
  }
  return true;
}

bool NetServer::HandleFrame(IoThread& io, Connection& conn, Frame frame) {
  ++frames_in_;
  switch (frame.type) {
    case FrameType::kPing:
      return SendOnLoop(io, conn,
                        EncodeControl(FrameType::kPong, frame.correlation_id));
    case FrameType::kStats:
      return SendOnLoop(io, conn,
                        EncodeStatsJson(frame.correlation_id, StatsJson()));
    case FrameType::kGetVectors:
    case FrameType::kRecommend:
    case FrameType::kClassify:
    case FrameType::kAlign: {
      if (server_ == nullptr) {
        return SendOnLoop(io, conn,
                          EncodeError(frame.correlation_id,
                                      WireCode::kUnsupported,
                                      "no knowledge server attached"));
      }
      // All four request kinds share one lifecycle: decode, submit the
      // batch to the knowledge server, encode the matching typed reply
      // when the last request of the frame completes.
      std::vector<serve::ServiceRequest> requests;
      const auto now = serve::ServeClock::now();
      Status status;
      FrameType reply_type;
      switch (frame.type) {
        case FrameType::kRecommend:
          status = DecodeRecommend(frame.payload, now, &requests);
          reply_type = FrameType::kRecommendReply;
          break;
        case FrameType::kClassify:
          status = DecodeClassify(frame.payload, now, &requests);
          reply_type = FrameType::kClassifyReply;
          break;
        case FrameType::kAlign:
          status = DecodeAlign(frame.payload, now, &requests);
          reply_type = FrameType::kAlignReply;
          break;
        default:
          status = DecodeGetVectors(frame.payload, now, &requests);
          reply_type = FrameType::kVectors;
          break;
      }
      if (!status.ok()) {
        ++protocol_errors_;
        CloseConnection(io, conn.id);
        return false;
      }
      requests_in_ += requests.size();
      if (requests.empty()) {
        return SendOnLoop(
            io, conn, EncodeReplyFrame(reply_type, frame.correlation_id, {}));
      }
      auto state = std::make_shared<FrameState>();
      state->server = this;
      state->thread_index = io.index;
      state->conn_id = conn.id;
      state->correlation_id = frame.correlation_id;
      state->reply_type = reply_type;
      state->slots.resize(requests.size());
      state->remaining.store(requests.size(), std::memory_order_relaxed);
      ++conn.in_flight_frames;
      ++outstanding_frames_;
      server_->SubmitBatchAsync(
          std::move(requests),
          [state](size_t index, serve::ServiceResponse response) {
            state->slots[index] = std::move(response);
            if (state->remaining.fetch_sub(1) == 1) {
              NetServer* server = state->server;
              std::string encoded = EncodeReplyFrame(
                  state->reply_type, state->correlation_id, state->slots);
              server->PostCompletion(state->thread_index, state->conn_id,
                                     std::move(encoded));
              // Last touch of the NetServer: once this hits zero, Stop()
              // may return and the object may die.
              --server->outstanding_frames_;
            }
          });
      return true;
    }
    case FrameType::kPullRows:
    case FrameType::kPushGrads:
    case FrameType::kShardInfo:
    case FrameType::kBarrier:
      return RouteToHandler(io, conn, std::move(frame));
    case FrameType::kVectors:
    case FrameType::kStatsJson:
    case FrameType::kPong:
    case FrameType::kRows:
    case FrameType::kPushAck:
    case FrameType::kShardInfoReply:
    case FrameType::kBarrierReply:
    case FrameType::kRecommendReply:
    case FrameType::kClassifyReply:
    case FrameType::kAlignReply:
      // Response frames arriving at the server: confused peer, but the
      // stream is intact — answer with an error and keep the connection.
      return SendOnLoop(io, conn,
                        EncodeError(frame.correlation_id,
                                    WireCode::kUnsupported,
                                    "response frame sent to server"));
    case FrameType::kError:
      return true;  // ignore
  }
  // Unknown type byte: header + CRC were valid, so the stream is in sync;
  // reply kError for forward compatibility and keep the connection.
  return SendOnLoop(io, conn,
                    EncodeError(frame.correlation_id, WireCode::kUnsupported,
                                "unknown frame type"));
}

bool NetServer::RouteToHandler(IoThread& io, Connection& conn, Frame frame) {
  if (handler_ == nullptr) {
    return SendOnLoop(io, conn,
                      EncodeError(frame.correlation_id, WireCode::kUnsupported,
                                  "no frame handler attached"));
  }
  // Same accounting as kGetVectors: the frame is outstanding until its
  // response is posted, and Stop() waits for zero — which is exactly the
  // drain guarantee a pushed gradient batch needs.
  ++conn.in_flight_frames;
  ++outstanding_frames_;
  auto state = std::make_shared<HandlerRespondState>();
  state->server = this;
  state->thread_index = io.index;
  state->conn_id = conn.id;
  FrameHandler::Respond respond = [state](std::string bytes) {
    bool expected = false;
    if (!state->responded.compare_exchange_strong(expected, true)) return;
    NetServer* server = state->server;
    server->PostCompletion(state->thread_index, state->conn_id,
                           std::move(bytes));
    // Last touch of the NetServer (see the kGetVectors completion).
    --server->outstanding_frames_;
  };
  if (handler_->HandleFrame(frame, std::move(respond))) return true;
  // Refused: the handler did not take the respond obligation.
  --conn.in_flight_frames;
  --outstanding_frames_;
  return SendOnLoop(io, conn,
                    EncodeError(frame.correlation_id, WireCode::kUnsupported,
                                "frame refused by handler"));
}

void NetServer::OnConnData(IoThread& io, uint64_t tag, const char* data,
                           size_t len) {
  auto it = io.conns.find(tag);
  if (it == io.conns.end()) return;
  Connection& conn = *it->second;
  // Bytes that race the drain cutoff are dropped: the peer's new requests
  // are not accepted mid-drain (same as the pre-seam read-disable).
  if (!conn.reading) return;
  bytes_in_ += static_cast<uint64_t>(len);
  conn.last_activity = Clock::now();
  conn.decoder.Feed(data, len);
  Frame frame;
  std::string error;
  while (true) {
    const FrameDecoder::Result result = conn.decoder.Next(&frame, &error);
    if (result == FrameDecoder::Result::kNeedMore) return;
    if (result == FrameDecoder::Result::kError) {
      // Malformed frame: the stream is unrecoverable, close exactly this
      // connection. Everyone else is unaffected.
      ++protocol_errors_;
      CloseConnection(io, conn.id);
      return;
    }
    if (!HandleFrame(io, conn, std::move(frame))) return;
  }
}

void NetServer::DrainMailboxes(IoThread& io) {
  std::vector<int> fds;
  std::vector<IoThread::Completion> completions;
  {
    std::lock_guard<std::mutex> lock(io.mu);
    fds.swap(io.inbox_fds);
    completions.swap(io.completions);
  }
  for (int fd : fds) AddConnection(io, fd);
  for (auto& completion : completions) {
    auto it = io.conns.find(completion.conn_id);
    if (it == io.conns.end()) continue;  // connection died first
    Connection& conn = *it->second;
    PKGM_CHECK(conn.in_flight_frames > 0);
    --conn.in_flight_frames;
    SendOnLoop(io, conn, std::move(completion.bytes));
  }
}

void NetServer::IoLoop(size_t thread_index) {
  IoThread& io = *io_threads_[thread_index];
  bool drain_seen = false;
  Clock::time_point drain_deadline{};
  Clock::time_point last_idle_scan = Clock::now();

  while (true) {
    // One backend iteration: wait for events (epoll_wait, or one
    // submit-and-wait io_uring_enter) and dispatch them through the
    // LoopHandler callbacks.
    io.backend->Poll(kPollWaitMs);
    const bool draining = draining_.load(std::memory_order_acquire);

    if (draining && !drain_seen) {
      drain_seen = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
      if (thread_index == 0 && listener_.valid()) {
        io.backend->DetachListener();
        // The fd itself is closed by Stop() after every thread has joined.
        ::shutdown(listener_.get(), SHUT_RDWR);
      }
      for (auto& [id, conn] : io.conns) {
        if (conn->reading) {
          conn->reading = false;
          io.backend->PauseRecv(id);
        }
      }
    }

    const Clock::time_point now = Clock::now();
    const auto idle_scan_interval = std::chrono::milliseconds(
        std::min(1000, std::max(50, options_.idle_timeout_ms / 2)));
    if (!draining && options_.idle_timeout_ms > 0 &&
        now - last_idle_scan > idle_scan_interval) {
      last_idle_scan = now;
      const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
      std::vector<uint64_t> idle;
      for (const auto& [id, conn] : io.conns) {
        if (conn->in_flight_frames == 0 && conn->outbox.empty() &&
            now - conn->last_activity > timeout) {
          idle.push_back(id);
        }
      }
      for (uint64_t id : idle) {
        ++idle_disconnects_;
        CloseConnection(io, id);
      }
    }

    if (drain_seen) {
      const bool expired = now > drain_deadline;
      std::vector<uint64_t> closable;
      for (const auto& [id, conn] : io.conns) {
        if (expired ||
            (conn->in_flight_frames == 0 && conn->outbox.empty())) {
          closable.push_back(id);
        }
      }
      for (uint64_t id : closable) CloseConnection(io, id);
      if (io.conns.empty()) return;
    }
  }
}

serve::NetCounters NetServer::net_counters() const {
  serve::NetCounters net;
  net.connections_accepted = connections_accepted_.load();
  net.connections_closed = connections_closed_.load();
  net.connections_active =
      net.connections_accepted - net.connections_closed;
  net.frames_in = frames_in_.load();
  net.frames_out = frames_out_.load();
  net.bytes_in = bytes_in_.load();
  net.bytes_out = bytes_out_.load();
  net.requests_in = requests_in_.load();
  net.protocol_errors = protocol_errors_.load();
  net.backpressure_disconnects = backpressure_disconnects_.load();
  net.idle_disconnects = idle_disconnects_.load();
  net.io_backend = io_backend_name_;
  for (const auto& io : io_threads_) {
    if (io->backend == nullptr) continue;
    const IoBackendStats s = io->backend->stats();
    net.io_wait_calls += s.wait_calls;
    net.io_recv_syscalls += s.recv_syscalls;
    net.io_send_syscalls += s.send_syscalls;
    net.io_recv_submissions += s.recv_submissions;
    net.io_send_submissions += s.send_submissions;
    net.io_wakeups += s.wakeups;
  }
  return net;
}

std::string NetServer::StatsReport() const {
  if (server_ == nullptr) return StatsJson();
  serve::CacheStats cache_stats;
  const serve::CacheStats* cache_ptr = nullptr;
  if (server_->cache() != nullptr) {
    cache_stats = server_->cache()->Stats();
    cache_ptr = &cache_stats;
  }
  const serve::NetCounters net = net_counters();
  return server_->stats().ToTable(server_->queue_depth(), cache_ptr, &net);
}

std::string NetServer::StatsJson() const {
  if (server_ == nullptr) {
    // Transport-only server: splice the net counters into the handler's
    // own JSON object so one snapshot carries both.
    const serve::NetCounters net = net_counters();
    std::string inner = handler_->StatsJson();
    // Strip the handler object's braces; tolerate an empty "{}" snapshot.
    std::string fields;
    const size_t open = inner.find('{');
    const size_t close = inner.rfind('}');
    if (open != std::string::npos && close != std::string::npos &&
        close > open + 1) {
      fields = inner.substr(open + 1, close - open - 1);
    }
    std::string json = "{\"net\": {";
    json += StrFormat(
        "\"connections_accepted\": %llu, \"connections_closed\": %llu, "
        "\"frames_in\": %llu, \"frames_out\": %llu, \"bytes_in\": %llu, "
        "\"bytes_out\": %llu, \"protocol_errors\": %llu, "
        "\"backpressure_disconnects\": %llu, \"idle_disconnects\": %llu, "
        "\"io_backend\": \"%s\", \"io_wait_calls\": %llu, "
        "\"io_recv_syscalls\": %llu, \"io_send_syscalls\": %llu, "
        "\"io_recv_submissions\": %llu, \"io_send_submissions\": %llu}",
        static_cast<unsigned long long>(net.connections_accepted),
        static_cast<unsigned long long>(net.connections_closed),
        static_cast<unsigned long long>(net.frames_in),
        static_cast<unsigned long long>(net.frames_out),
        static_cast<unsigned long long>(net.bytes_in),
        static_cast<unsigned long long>(net.bytes_out),
        static_cast<unsigned long long>(net.protocol_errors),
        static_cast<unsigned long long>(net.backpressure_disconnects),
        static_cast<unsigned long long>(net.idle_disconnects),
        net.io_backend.c_str(),
        static_cast<unsigned long long>(net.io_wait_calls),
        static_cast<unsigned long long>(net.io_recv_syscalls),
        static_cast<unsigned long long>(net.io_send_syscalls),
        static_cast<unsigned long long>(net.io_recv_submissions),
        static_cast<unsigned long long>(net.io_send_submissions));
    if (!fields.empty()) {
      json += ", ";
      json += fields;
    }
    json += "}";
    return json;
  }
  serve::CacheStats cache_stats;
  const serve::CacheStats* cache_ptr = nullptr;
  if (server_->cache() != nullptr) {
    cache_stats = server_->cache()->Stats();
    cache_ptr = &cache_stats;
  }
  const serve::NetCounters net = net_counters();
  return server_->stats().StatsJson(server_->queue_depth(), cache_ptr, &net);
}

}  // namespace pkgm::net
