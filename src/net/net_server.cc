#include "net/net_server.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::net {
namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kEventFdTag = 1;
constexpr int kEpollWaitMs = 100;
constexpr size_t kReadChunkBytes = 64 * 1024;

using Clock = std::chrono::steady_clock;

/// Encodes the response frame matching a request frame's reply type. The
/// lookup path answers kVectors; the inference kinds answer their typed
/// replies (score entries for recommend/align, top-k lists for classify).
std::string EncodeReplyFrame(FrameType reply_type, uint64_t correlation_id,
                             const std::vector<serve::ServiceResponse>& slots) {
  switch (reply_type) {
    case FrameType::kRecommendReply:
    case FrameType::kAlignReply:
      return EncodeScoreReply(reply_type, correlation_id, slots);
    case FrameType::kClassifyReply:
      return EncodeClassifyReply(correlation_id, slots);
    default:
      return EncodeVectors(correlation_id, slots);
  }
}

}  // namespace

/// One TCP connection, owned exclusively by its I/O thread.
struct NetServer::Connection {
  uint64_t id = 0;
  ScopedFd fd;
  FrameDecoder decoder;
  /// Encoded-but-unsent response bytes, oldest first. front() may be
  /// partially written (outbox_offset).
  std::deque<std::string> outbox;
  size_t outbox_offset = 0;
  size_t outbox_bytes = 0;
  /// Request frames submitted to the knowledge server whose response has
  /// not yet been appended to the outbox.
  uint64_t in_flight_frames = 0;
  Clock::time_point last_activity;
  bool want_write = false;
  bool reading = true;

  explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

/// Per-thread event loop state. `conns` is touched only by the owning
/// thread; `inbox_fds`/`completions` are the cross-thread mailboxes.
struct NetServer::IoThread {
  size_t index = 0;
  ScopedFd epoll_fd;
  ScopedFd event_fd;
  std::thread thread;

  std::mutex mu;
  std::vector<int> inbox_fds;
  struct Completion {
    uint64_t conn_id;
    std::string bytes;
  };
  std::vector<Completion> completions;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
};

/// Completion state shared by the per-request callbacks of one request
/// frame: the worker finishing the frame's last request encodes the
/// response and posts it to the connection's I/O thread.
struct NetServer::FrameState {
  NetServer* server;
  size_t thread_index;
  uint64_t conn_id;
  uint64_t correlation_id;
  /// Which response frame type answers this request frame.
  FrameType reply_type;
  std::vector<serve::ServiceResponse> slots;
  std::atomic<size_t> remaining;
};

/// One routed frame's completion token: enforces respond-at-most-once and
/// carries the addressing a worker thread needs to post the response back.
struct NetServer::HandlerRespondState {
  NetServer* server;
  size_t thread_index;
  uint64_t conn_id;
  std::atomic<bool> responded{false};

  // A respond dropped without ever being invoked still completes its
  // frame: the peer simply gets no reply (it sees the close or times
  // out). Without this, a handler that abandons a parked respond would
  // wedge Stop()'s outstanding-frame wait forever.
  ~HandlerRespondState() {
    if (!responded.load(std::memory_order_acquire)) {
      --server->outstanding_frames_;
    }
  }
};

NetServer::NetServer(serve::KnowledgeServer* server, NetServerOptions options)
    : server_(server), handler_(nullptr), options_(std::move(options)) {
  PKGM_CHECK(server != nullptr);
  PKGM_CHECK(options_.num_io_threads >= 1);
}

NetServer::NetServer(FrameHandler* handler, NetServerOptions options)
    : server_(nullptr), handler_(handler), options_(std::move(options)) {
  PKGM_CHECK(handler != nullptr);
  PKGM_CHECK(options_.num_io_threads >= 1);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  PKGM_CHECK(!started_) << "NetServer::Start called twice";
  auto listener =
      ListenTcp(options_.bind_address, options_.port, options_.listen_backlog,
                options_.reuseport, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());

  for (size_t i = 0; i < options_.num_io_threads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->epoll_fd.Reset(::epoll_create1(EPOLL_CLOEXEC));
    if (!io->epoll_fd.valid()) {
      return Status::IoError(StrFormat("epoll_create1: %s",
                                       std::strerror(errno)));
    }
    io->event_fd.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!io->event_fd.valid()) {
      return Status::IoError(StrFormat("eventfd: %s", std::strerror(errno)));
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kEventFdTag;
    if (::epoll_ctl(io->epoll_fd.get(), EPOLL_CTL_ADD, io->event_fd.get(),
                    &ev) < 0) {
      return Status::IoError(StrFormat("epoll_ctl(eventfd): %s",
                                       std::strerror(errno)));
    }
    if (i == 0) {
      epoll_event lev;
      std::memset(&lev, 0, sizeof(lev));
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerTag;
      if (::epoll_ctl(io->epoll_fd.get(), EPOLL_CTL_ADD, listener_.get(),
                      &lev) < 0) {
        return Status::IoError(StrFormat("epoll_ctl(listener): %s",
                                         std::strerror(errno)));
      }
    }
    io_threads_.push_back(std::move(io));
  }
  for (size_t i = 0; i < io_threads_.size(); ++i) {
    io_threads_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
  started_ = true;
  return Status::Ok();
}

void NetServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  draining_.store(true, std::memory_order_release);
  for (auto& io : io_threads_) SignalThread(*io);
  for (auto& io : io_threads_) {
    if (io->thread.joinable()) io->thread.join();
  }
  // No worker callback may outlive the server object: wait for every
  // submitted frame's completion to be posted (the knowledge server keeps
  // draining; its Stop() is the caller's, ordered after this).
  while (outstanding_frames_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  listener_.Reset();
}

void NetServer::SignalThread(IoThread& io) {
  const uint64_t one = 1;
  // The eventfd outlives the threads (owned by this object), so a wakeup
  // racing shutdown lands harmlessly in its counter.
  [[maybe_unused]] ssize_t n =
      ::write(io.event_fd.get(), &one, sizeof(one));
}

void NetServer::PostCompletion(size_t thread_index, uint64_t conn_id,
                               std::string bytes) {
  IoThread& io = *io_threads_[thread_index];
  {
    std::lock_guard<std::mutex> lock(io.mu);
    io.completions.push_back({conn_id, std::move(bytes)});
  }
  SignalThread(io);
}

void NetServer::AddConnection(IoThread& io, int raw_fd) {
  ScopedFd fd(raw_fd);
  if (!SetNonBlocking(fd.get()).ok() || !SetTcpNoDelay(fd.get()).ok()) {
    return;  // peer already gone; nothing accepted yet to roll back
  }
  if (options_.so_sndbuf_bytes > 0) {
    SetSendBufferBytes(fd.get(), options_.so_sndbuf_bytes);
  }
  auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
  conn->id = next_conn_id_.fetch_add(1);
  conn->fd = std::move(fd);
  conn->last_activity = Clock::now();
  // A connection accepted mid-drain is immediately read-disabled; it will
  // be closed by the drain sweep.
  conn->reading = !draining_.load(std::memory_order_acquire);

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = conn->reading ? static_cast<uint32_t>(EPOLLIN) : 0u;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(io.epoll_fd.get(), EPOLL_CTL_ADD, conn->fd.get(), &ev) <
      0) {
    return;
  }
  ++connections_accepted_;
  io.conns.emplace(conn->id, std::move(conn));
}

void NetServer::AcceptNew(IoThread& io) {
  while (true) {
    const int fd = ::accept4(listener_.get(), nullptr, nullptr,
                             SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: try later
    const size_t target = next_io_thread_.fetch_add(1) % io_threads_.size();
    if (target == io.index) {
      AddConnection(io, fd);
    } else {
      IoThread& other = *io_threads_[target];
      {
        std::lock_guard<std::mutex> lock(other.mu);
        other.inbox_fds.push_back(fd);
      }
      SignalThread(other);
    }
  }
}

void NetServer::UpdateEpollMask(IoThread& io, Connection& conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn.reading ? EPOLLIN : 0u) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(io.epoll_fd.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void NetServer::CloseConnection(IoThread& io, uint64_t conn_id) {
  auto it = io.conns.find(conn_id);
  if (it == io.conns.end()) return;
  ::epoll_ctl(io.epoll_fd.get(), EPOLL_CTL_DEL, it->second->fd.get(),
              nullptr);
  io.conns.erase(it);  // ScopedFd closes the socket
  ++connections_closed_;
}

bool NetServer::FlushOutbox(IoThread& io, Connection& conn) {
  // Gather up to kFlushIovecs queued frames per syscall: under pipelined
  // load the outbox routinely holds many small response frames, and one
  // writev drains what used to take one send() each.
  constexpr int kFlushIovecs = 64;
  while (!conn.outbox.empty()) {
    struct iovec iov[kFlushIovecs];
    int iovcnt = 0;
    for (const std::string& entry : conn.outbox) {
      if (iovcnt == kFlushIovecs) break;
      const size_t offset = iovcnt == 0 ? conn.outbox_offset : 0;
      iov[iovcnt].iov_base =
          const_cast<char*>(entry.data()) + offset;
      iov[iovcnt].iov_len = entry.size() - offset;
      ++iovcnt;
    }
    // MSG_NOSIGNAL: a peer that closed mid-write must surface EPIPE, not
    // kill the process with SIGPIPE.
    struct msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn.fd.get(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_ += static_cast<uint64_t>(n);
      conn.outbox_bytes -= static_cast<size_t>(n);
      conn.last_activity = Clock::now();
      // Retire fully-sent frames; a partial tail becomes the new front
      // with its offset advanced.
      size_t sent_bytes = static_cast<size_t>(n);
      while (sent_bytes > 0) {
        const size_t front_remaining =
            conn.outbox.front().size() - conn.outbox_offset;
        if (sent_bytes >= front_remaining) {
          sent_bytes -= front_remaining;
          conn.outbox.pop_front();
          conn.outbox_offset = 0;
        } else {
          conn.outbox_offset += sent_bytes;
          sent_bytes = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        UpdateEpollMask(io, conn);
      }
      return true;
    }
    CloseConnection(io, conn.id);  // EPIPE/ECONNRESET/...
    return false;
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpollMask(io, conn);
  }
  return true;
}

bool NetServer::SendOnLoop(IoThread& io, Connection& conn,
                           std::string bytes) {
  ++frames_out_;
  conn.outbox_bytes += bytes.size();
  conn.outbox.push_back(std::move(bytes));
  if (!FlushOutbox(io, conn)) return false;
  if (conn.outbox_bytes > options_.max_outbox_bytes) {
    // Slow reader: the kernel buffer and our bound are both full. Cutting
    // the connection sheds the memory instead of queueing without limit.
    ++backpressure_disconnects_;
    CloseConnection(io, conn.id);
    return false;
  }
  return true;
}

bool NetServer::HandleFrame(IoThread& io, Connection& conn, Frame frame) {
  ++frames_in_;
  switch (frame.type) {
    case FrameType::kPing:
      return SendOnLoop(io, conn,
                        EncodeControl(FrameType::kPong, frame.correlation_id));
    case FrameType::kStats:
      return SendOnLoop(io, conn,
                        EncodeStatsJson(frame.correlation_id, StatsJson()));
    case FrameType::kGetVectors:
    case FrameType::kRecommend:
    case FrameType::kClassify:
    case FrameType::kAlign: {
      if (server_ == nullptr) {
        return SendOnLoop(io, conn,
                          EncodeError(frame.correlation_id,
                                      WireCode::kUnsupported,
                                      "no knowledge server attached"));
      }
      // All four request kinds share one lifecycle: decode, submit the
      // batch to the knowledge server, encode the matching typed reply
      // when the last request of the frame completes.
      std::vector<serve::ServiceRequest> requests;
      const auto now = serve::ServeClock::now();
      Status status;
      FrameType reply_type;
      switch (frame.type) {
        case FrameType::kRecommend:
          status = DecodeRecommend(frame.payload, now, &requests);
          reply_type = FrameType::kRecommendReply;
          break;
        case FrameType::kClassify:
          status = DecodeClassify(frame.payload, now, &requests);
          reply_type = FrameType::kClassifyReply;
          break;
        case FrameType::kAlign:
          status = DecodeAlign(frame.payload, now, &requests);
          reply_type = FrameType::kAlignReply;
          break;
        default:
          status = DecodeGetVectors(frame.payload, now, &requests);
          reply_type = FrameType::kVectors;
          break;
      }
      if (!status.ok()) {
        ++protocol_errors_;
        CloseConnection(io, conn.id);
        return false;
      }
      requests_in_ += requests.size();
      if (requests.empty()) {
        return SendOnLoop(
            io, conn, EncodeReplyFrame(reply_type, frame.correlation_id, {}));
      }
      auto state = std::make_shared<FrameState>();
      state->server = this;
      state->thread_index = io.index;
      state->conn_id = conn.id;
      state->correlation_id = frame.correlation_id;
      state->reply_type = reply_type;
      state->slots.resize(requests.size());
      state->remaining.store(requests.size(), std::memory_order_relaxed);
      ++conn.in_flight_frames;
      ++outstanding_frames_;
      server_->SubmitBatchAsync(
          std::move(requests),
          [state](size_t index, serve::ServiceResponse response) {
            state->slots[index] = std::move(response);
            if (state->remaining.fetch_sub(1) == 1) {
              NetServer* server = state->server;
              std::string encoded = EncodeReplyFrame(
                  state->reply_type, state->correlation_id, state->slots);
              server->PostCompletion(state->thread_index, state->conn_id,
                                     std::move(encoded));
              // Last touch of the NetServer: once this hits zero, Stop()
              // may return and the object may die.
              --server->outstanding_frames_;
            }
          });
      return true;
    }
    case FrameType::kPullRows:
    case FrameType::kPushGrads:
    case FrameType::kShardInfo:
    case FrameType::kBarrier:
      return RouteToHandler(io, conn, std::move(frame));
    case FrameType::kVectors:
    case FrameType::kStatsJson:
    case FrameType::kPong:
    case FrameType::kRows:
    case FrameType::kPushAck:
    case FrameType::kShardInfoReply:
    case FrameType::kBarrierReply:
    case FrameType::kRecommendReply:
    case FrameType::kClassifyReply:
    case FrameType::kAlignReply:
      // Response frames arriving at the server: confused peer, but the
      // stream is intact — answer with an error and keep the connection.
      return SendOnLoop(io, conn,
                        EncodeError(frame.correlation_id,
                                    WireCode::kUnsupported,
                                    "response frame sent to server"));
    case FrameType::kError:
      return true;  // ignore
  }
  // Unknown type byte: header + CRC were valid, so the stream is in sync;
  // reply kError for forward compatibility and keep the connection.
  return SendOnLoop(io, conn,
                    EncodeError(frame.correlation_id, WireCode::kUnsupported,
                                "unknown frame type"));
}

bool NetServer::RouteToHandler(IoThread& io, Connection& conn, Frame frame) {
  if (handler_ == nullptr) {
    return SendOnLoop(io, conn,
                      EncodeError(frame.correlation_id, WireCode::kUnsupported,
                                  "no frame handler attached"));
  }
  // Same accounting as kGetVectors: the frame is outstanding until its
  // response is posted, and Stop() waits for zero — which is exactly the
  // drain guarantee a pushed gradient batch needs.
  ++conn.in_flight_frames;
  ++outstanding_frames_;
  auto state = std::make_shared<HandlerRespondState>();
  state->server = this;
  state->thread_index = io.index;
  state->conn_id = conn.id;
  FrameHandler::Respond respond = [state](std::string bytes) {
    bool expected = false;
    if (!state->responded.compare_exchange_strong(expected, true)) return;
    NetServer* server = state->server;
    server->PostCompletion(state->thread_index, state->conn_id,
                           std::move(bytes));
    // Last touch of the NetServer (see the kGetVectors completion).
    --server->outstanding_frames_;
  };
  if (handler_->HandleFrame(frame, std::move(respond))) return true;
  // Refused: the handler did not take the respond obligation.
  --conn.in_flight_frames;
  --outstanding_frames_;
  return SendOnLoop(io, conn,
                    EncodeError(frame.correlation_id, WireCode::kUnsupported,
                                "frame refused by handler"));
}

void NetServer::ReadAndProcess(IoThread& io, Connection& conn) {
  char buf[kReadChunkBytes];
  while (conn.reading) {
    const ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      bytes_in_ += static_cast<uint64_t>(n);
      conn.last_activity = Clock::now();
      conn.decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained the socket
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error. Responses for frames already submitted would go
    // nowhere the peer reads; drop the connection.
    CloseConnection(io, conn.id);
    return;
  }
  Frame frame;
  std::string error;
  while (true) {
    const FrameDecoder::Result result = conn.decoder.Next(&frame, &error);
    if (result == FrameDecoder::Result::kNeedMore) return;
    if (result == FrameDecoder::Result::kError) {
      // Malformed frame: the stream is unrecoverable, close exactly this
      // connection. Everyone else is unaffected.
      ++protocol_errors_;
      CloseConnection(io, conn.id);
      return;
    }
    if (!HandleFrame(io, conn, std::move(frame))) return;
  }
}

void NetServer::IoLoop(size_t thread_index) {
  IoThread& io = *io_threads_[thread_index];
  bool drain_seen = false;
  Clock::time_point drain_deadline{};
  Clock::time_point last_idle_scan = Clock::now();
  epoll_event events[64];

  while (true) {
    const int n_events =
        ::epoll_wait(io.epoll_fd.get(), events, 64, kEpollWaitMs);
    const bool draining = draining_.load(std::memory_order_acquire);

    if (draining && !drain_seen) {
      drain_seen = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
      if (thread_index == 0 && listener_.valid()) {
        ::epoll_ctl(io.epoll_fd.get(), EPOLL_CTL_DEL, listener_.get(),
                    nullptr);
        // The fd itself is closed by Stop() after every thread has joined.
        ::shutdown(listener_.get(), SHUT_RDWR);
      }
      for (auto& [id, conn] : io.conns) {
        if (conn->reading) {
          conn->reading = false;
          UpdateEpollMask(io, *conn);
        }
      }
    }

    for (int i = 0; i < n_events; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (!draining) AcceptNew(io);
        continue;
      }
      if (tag == kEventFdTag) {
        uint64_t counter;
        [[maybe_unused]] ssize_t r =
            ::read(io.event_fd.get(), &counter, sizeof(counter));
        std::vector<int> fds;
        std::vector<IoThread::Completion> completions;
        {
          std::lock_guard<std::mutex> lock(io.mu);
          fds.swap(io.inbox_fds);
          completions.swap(io.completions);
        }
        for (int fd : fds) AddConnection(io, fd);
        for (auto& completion : completions) {
          auto it = io.conns.find(completion.conn_id);
          if (it == io.conns.end()) continue;  // connection died first
          Connection& conn = *it->second;
          PKGM_CHECK(conn.in_flight_frames > 0);
          --conn.in_flight_frames;
          SendOnLoop(io, conn, std::move(completion.bytes));
        }
        continue;
      }
      auto it = io.conns.find(tag);
      if (it == io.conns.end()) continue;  // stale event for a closed conn
      Connection& conn = *it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(io, conn.id);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        ReadAndProcess(io, conn);
        // The connection may be gone; re-find before using it again.
        it = io.conns.find(tag);
        if (it == io.conns.end()) continue;
      }
      if (events[i].events & EPOLLOUT) FlushOutbox(io, *it->second);
    }

    const Clock::time_point now = Clock::now();
    const auto idle_scan_interval = std::chrono::milliseconds(
        std::min(1000, std::max(50, options_.idle_timeout_ms / 2)));
    if (!draining && options_.idle_timeout_ms > 0 &&
        now - last_idle_scan > idle_scan_interval) {
      last_idle_scan = now;
      const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
      std::vector<uint64_t> idle;
      for (const auto& [id, conn] : io.conns) {
        if (conn->in_flight_frames == 0 && conn->outbox.empty() &&
            now - conn->last_activity > timeout) {
          idle.push_back(id);
        }
      }
      for (uint64_t id : idle) {
        ++idle_disconnects_;
        CloseConnection(io, id);
      }
    }

    if (drain_seen) {
      const bool expired = now > drain_deadline;
      std::vector<uint64_t> closable;
      for (const auto& [id, conn] : io.conns) {
        if (expired ||
            (conn->in_flight_frames == 0 && conn->outbox.empty())) {
          closable.push_back(id);
        }
      }
      for (uint64_t id : closable) CloseConnection(io, id);
      if (io.conns.empty()) return;
    }
  }
}

serve::NetCounters NetServer::net_counters() const {
  serve::NetCounters net;
  net.connections_accepted = connections_accepted_.load();
  net.connections_closed = connections_closed_.load();
  net.connections_active =
      net.connections_accepted - net.connections_closed;
  net.frames_in = frames_in_.load();
  net.frames_out = frames_out_.load();
  net.bytes_in = bytes_in_.load();
  net.bytes_out = bytes_out_.load();
  net.requests_in = requests_in_.load();
  net.protocol_errors = protocol_errors_.load();
  net.backpressure_disconnects = backpressure_disconnects_.load();
  net.idle_disconnects = idle_disconnects_.load();
  return net;
}

std::string NetServer::StatsReport() const {
  if (server_ == nullptr) return StatsJson();
  serve::CacheStats cache_stats;
  const serve::CacheStats* cache_ptr = nullptr;
  if (server_->cache() != nullptr) {
    cache_stats = server_->cache()->Stats();
    cache_ptr = &cache_stats;
  }
  const serve::NetCounters net = net_counters();
  return server_->stats().ToTable(server_->queue_depth(), cache_ptr, &net);
}

std::string NetServer::StatsJson() const {
  if (server_ == nullptr) {
    // Transport-only server: splice the net counters into the handler's
    // own JSON object so one snapshot carries both.
    const serve::NetCounters net = net_counters();
    std::string inner = handler_->StatsJson();
    // Strip the handler object's braces; tolerate an empty "{}" snapshot.
    std::string fields;
    const size_t open = inner.find('{');
    const size_t close = inner.rfind('}');
    if (open != std::string::npos && close != std::string::npos &&
        close > open + 1) {
      fields = inner.substr(open + 1, close - open - 1);
    }
    std::string json = "{\"net\": {";
    json += StrFormat(
        "\"connections_accepted\": %llu, \"connections_closed\": %llu, "
        "\"frames_in\": %llu, \"frames_out\": %llu, \"bytes_in\": %llu, "
        "\"bytes_out\": %llu, \"protocol_errors\": %llu, "
        "\"backpressure_disconnects\": %llu, \"idle_disconnects\": %llu}",
        static_cast<unsigned long long>(net.connections_accepted),
        static_cast<unsigned long long>(net.connections_closed),
        static_cast<unsigned long long>(net.frames_in),
        static_cast<unsigned long long>(net.frames_out),
        static_cast<unsigned long long>(net.bytes_in),
        static_cast<unsigned long long>(net.bytes_out),
        static_cast<unsigned long long>(net.protocol_errors),
        static_cast<unsigned long long>(net.backpressure_disconnects),
        static_cast<unsigned long long>(net.idle_disconnects));
    if (!fields.empty()) {
      json += ", ";
      json += fields;
    }
    json += "}";
    return json;
  }
  serve::CacheStats cache_stats;
  const serve::CacheStats* cache_ptr = nullptr;
  if (server_->cache() != nullptr) {
    cache_stats = server_->cache()->Stats();
    cache_ptr = &cache_stats;
  }
  const serve::NetCounters net = net_counters();
  return server_->stats().StatsJson(server_->queue_depth(), cache_ptr, &net);
}

}  // namespace pkgm::net
