#ifndef PKGM_NET_IO_BACKEND_H_
#define PKGM_NET_IO_BACKEND_H_

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace pkgm::net {

/// Outcome of IoBackend::SubmitSend.
struct SendResult {
  enum class Kind {
    /// `bytes` were written synchronously (possibly a partial write); the
    /// caller may retire them and submit more.
    kSent,
    /// Nothing was accepted; the backend will call OnSendSpace(tag) when a
    /// retry can make progress.
    kWouldBlock,
    /// The backend accepted (a prefix of) the data asynchronously and will
    /// call OnSendComplete(tag, n) with the byte count actually written.
    /// Until then the caller must not submit another send for this tag.
    kAsync,
    /// Fatal socket error; the caller should close the connection.
    kError,
  };
  Kind kind = Kind::kError;
  size_t bytes = 0;
};

/// Callbacks an IoBackend delivers from inside Poll(), always on the loop
/// thread. A handler may add/remove connections and submit sends reentrantly;
/// after any callback the backend re-checks that the connection still exists
/// before touching it again.
class IoEventHandler {
 public:
  virtual ~IoEventHandler() = default;

  /// The listener has pending connections; the handler accept()s them.
  virtual void OnAcceptReady() = 0;
  /// The wakeup eventfd fired (cross-thread mailboxes have work).
  virtual void OnWakeup() = 0;
  /// `len` bytes arrived on connection `tag`. The buffer is only valid for
  /// the duration of the call.
  virtual void OnData(uint64_t tag, const char* data, size_t len) = 0;
  /// EOF or a fatal read/write error on connection `tag`.
  virtual void OnPeerClosed(uint64_t tag) = 0;
  /// An async send finished; `n` is the byte count written (>= 0) or a
  /// negative errno on failure.
  virtual void OnSendComplete(uint64_t tag, int64_t n) = 0;
  /// A previously would-blocked send can be retried.
  virtual void OnSendSpace(uint64_t tag) = 0;
};

/// Per-loop syscall accounting, summed across loops into
/// serve::NetCounters so the uring win is measurable, not anecdotal.
struct IoBackendStats {
  /// Blocking waits: epoll_wait calls, or io_uring_enter calls (every
  /// enter — waits and submit-only flushes — is one syscall).
  uint64_t wait_calls = 0;
  /// recv-side syscalls (read()); 0 on io_uring, where receives ride the
  /// ring.
  uint64_t recv_syscalls = 0;
  /// send-side syscalls (sendmsg()); 0 on io_uring.
  uint64_t send_syscalls = 0;
  /// RECV / SENDMSG submissions queued to the ring (io_uring only).
  uint64_t recv_submissions = 0;
  uint64_t send_submissions = 0;
  /// Wakeup-eventfd signals consumed.
  uint64_t wakeups = 0;
};

/// The I/O backend seam: everything about *how* readiness/completion is
/// obtained for one event loop lives behind this interface, so the
/// NetServer loop (connection ownership, outbox, drain, idle reaping) is
/// backend-agnostic. One instance per I/O thread; not thread-safe — every
/// method runs on the owning loop thread.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// "epoll" or "io_uring".
  virtual const char* name() const = 0;

  /// `wakeup_fd` is an eventfd other threads write to; the backend turns
  /// its readability into OnWakeup(). The handler must outlive the backend.
  virtual Status Init(IoEventHandler* handler, int wakeup_fd) = 0;

  /// Watches the (non-blocking) listener; readiness => OnAcceptReady().
  virtual Status AttachListener(int fd) = 0;
  virtual void DetachListener() = 0;

  /// Registers connection `tag`/`fd`. When `want_recv`, incoming bytes are
  /// delivered via OnData until PauseRecv.
  virtual Status AddConnection(uint64_t tag, int fd, bool want_recv) = 0;

  /// Stops delivering OnData for `tag` (drain mode). There is no resume.
  virtual void PauseRecv(uint64_t tag) = 0;

  /// Unregisters `tag`. Must be called while `fd` is still open — the
  /// backend flushes or cancels any queued kernel ops that reference the fd
  /// before returning, so the caller may close it immediately after.
  virtual void RemoveConnection(uint64_t tag) = 0;

  /// Sends the gathered iovecs on connection `tag`. See SendResult; a
  /// kAsync backend may accept only a prefix (bounded copy).
  virtual SendResult SubmitSend(uint64_t tag, int fd, const iovec* iov,
                                int iovcnt) = 0;

  /// Runs one loop iteration: waits up to `timeout_ms` for events and
  /// delivers them to the handler.
  virtual void Poll(int timeout_ms) = 0;

  virtual IoBackendStats stats() const = 0;
};

enum class IoBackendKind { kEpoll, kUring };

const char* IoBackendKindName(IoBackendKind kind);

/// True when io_uring with the required features is usable here (cached
/// probe; see SetUringProbeOverrideForTesting).
bool UringAvailable();

/// Test hook: 0 forces the probe to report unavailable, 1 available, -1
/// restores the real probe.
void SetUringProbeOverrideForTesting(int forced);

/// Picks the backend: `override_opt` (from NetServerOptions) wins, then the
/// PKGM_NET_IO environment variable ("uring" / "epoll", mirroring
/// PKGM_KERNEL), then the runtime probe (uring when available). A uring
/// request on a kernel without support logs one warning and falls back to
/// epoll.
IoBackendKind SelectIoBackend(const std::string& override_opt = "");

std::unique_ptr<IoBackend> CreateIoBackend(IoBackendKind kind);

/// Implementations (epoll_backend.cc / uring_backend.cc).
std::unique_ptr<IoBackend> CreateEpollBackend();
std::unique_ptr<IoBackend> CreateUringBackend();

}  // namespace pkgm::net

#endif  // PKGM_NET_IO_BACKEND_H_
