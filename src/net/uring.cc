#include "net/uring.h"

#include <errno.h>
#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>

#include "util/string_util.h"

namespace pkgm::net {
namespace {

// glibc has no wrappers for the io_uring syscalls.
int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

constexpr unsigned kRequiredFeatures =
    IORING_FEAT_SINGLE_MMAP | IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;

inline unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

inline void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

UringQueue::~UringQueue() { Close(); }

void UringQueue::Close() {
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    sq_ring_ = nullptr;
  }
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
    sqes_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
}

Status UringQueue::Init(unsigned entries) {
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  p.flags = IORING_SETUP_CQSIZE;
  p.cq_entries = entries * 4;

  const int fd = SysIoUringSetup(entries, &p);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOSYS || err == EPERM || err == EINVAL) {
      // Missing syscall, seccomp, or a kernel too old for CQSIZE: this is
      // "no io_uring here", not a transient failure.
      return Status::FailedPrecondition(
          StrFormat("io_uring_setup: %s", std::strerror(err)));
    }
    return Status::IoError(
        StrFormat("io_uring_setup: %s", std::strerror(err)));
  }
  if ((p.features & kRequiredFeatures) != kRequiredFeatures) {
    ::close(fd);
    return Status::FailedPrecondition(
        StrFormat("io_uring lacks required features (have 0x%x)",
                  p.features));
  }
  ring_fd_ = fd;

  // SINGLE_MMAP: one mapping covers both rings; size is the larger of the
  // two layouts.
  const size_t sq_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  const size_t cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  sq_ring_bytes_ = sq_bytes > cq_bytes ? sq_bytes : cq_bytes;
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    Close();
    return Status::IoError(
        StrFormat("io_uring ring mmap: %s", std::strerror(errno)));
  }
  sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    Close();
    return Status::IoError(
        StrFormat("io_uring sqe mmap: %s", std::strerror(errno)));
  }

  char* ring = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(ring + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(ring + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(ring + p.sq_off.ring_mask);
  sq_entries_ = *reinterpret_cast<unsigned*>(ring + p.sq_off.ring_entries);
  sq_flags_ = reinterpret_cast<unsigned*>(ring + p.sq_off.flags);
  sq_array_ = reinterpret_cast<unsigned*>(ring + p.sq_off.array);
  cq_head_ = reinterpret_cast<unsigned*>(ring + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(ring + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(ring + p.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(ring + p.cq_off.cqes);
  sqe_tail_ = *sq_tail_;
  return Status::Ok();
}

io_uring_sqe* UringQueue::GetSqe() {
  if (sqe_tail_ - LoadAcquire(sq_head_) >= sq_entries_) {
    // SQ full: flush what's queued so the kernel frees slots.
    Submit();
    if (sqe_tail_ - LoadAcquire(sq_head_) >= sq_entries_) return nullptr;
  }
  io_uring_sqe* sqe = &sqes_[sqe_tail_ & sq_mask_];
  sq_array_[sqe_tail_ & sq_mask_] = sqe_tail_ & sq_mask_;
  ++sqe_tail_;
  ++sqes_issued_;
  std::memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

int UringQueue::Enter(unsigned to_submit, unsigned min_complete,
                      unsigned flags, const void* arg, size_t argsz) {
  ++enter_calls_;
  return SysIoUringEnter(ring_fd_, to_submit, min_complete, flags, arg,
                         argsz);
}

Status UringQueue::Submit() {
  StoreRelease(sq_tail_, sqe_tail_);
  const unsigned to_submit = sqe_tail_ - LoadAcquire(sq_head_);
  if (to_submit == 0) return Status::Ok();
  const int ret = Enter(to_submit, 0, 0, nullptr, 0);
  if (ret < 0 && errno != EINTR && errno != EBUSY && errno != EAGAIN) {
    return Status::IoError(
        StrFormat("io_uring_enter(submit): %s", std::strerror(errno)));
  }
  return Status::Ok();
}

Status UringQueue::SubmitAndWait(int timeout_ms, unsigned min_complete) {
  StoreRelease(sq_tail_, sqe_tail_);
  const unsigned to_submit = sqe_tail_ - LoadAcquire(sq_head_);
  // Completions may already be sitting in the CQ; a wait with min_complete
  // of 1 still returns immediately in that case, so no pre-check needed.
  unsigned flags = IORING_ENTER_GETEVENTS;
  io_uring_getevents_arg arg;
  std::memset(&arg, 0, sizeof(arg));
  __kernel_timespec ts;
  const void* argp = nullptr;
  size_t argsz = 0;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    flags |= IORING_ENTER_EXT_ARG;
    argp = &arg;
    argsz = sizeof(arg);
  }
  const int ret = Enter(to_submit, min_complete, flags, argp, argsz);
  if (ret < 0) {
    const int err = errno;
    // ETIME: the wait timed out. EINTR: signal. EBUSY/EAGAIN: the CQ is
    // backed up (NODROP buffering) — the caller's drain frees it.
    if (err == ETIME || err == EINTR || err == EBUSY || err == EAGAIN) {
      return Status::Ok();
    }
    return Status::IoError(
        StrFormat("io_uring_enter(wait): %s", std::strerror(err)));
  }
  return Status::Ok();
}

unsigned UringQueue::PopCompletions(Completion* out, unsigned max) {
  const unsigned head = *cq_head_;
  const unsigned tail = LoadAcquire(cq_tail_);
  unsigned n = tail - head;
  if (n == 0) return 0;
  if (n > max) n = max;
  for (unsigned i = 0; i < n; ++i) {
    const io_uring_cqe& cqe = cqes_[(head + i) & cq_mask_];
    out[i].user_data = cqe.user_data;
    out[i].res = cqe.res;
    out[i].flags = cqe.flags;
  }
  StoreRelease(cq_head_, head + n);
  return n;
}

bool UringSupported() {
  static const bool supported = [] {
    UringQueue probe;
    return probe.Init(8).ok();
  }();
  return supported;
}

}  // namespace pkgm::net
