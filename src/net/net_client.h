#ifndef PKGM_NET_NET_CLIENT_H_
#define PKGM_NET_NET_CLIENT_H_

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "serve/request.h"
#include "util/status.h"

namespace pkgm::net {

struct NetClientOptions {
  /// Pooled TCP connections; batches are spread round-robin and pipelined
  /// per connection (many request frames in flight, matched back by
  /// correlation id).
  size_t num_connections = 1;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int connect_timeout_ms = 5000;
  /// Reconnect backoff after a connection failure: exponential between
  /// these bounds, applied on the next submit that needs the connection.
  int reconnect_backoff_initial_ms = 50;
  int reconnect_backoff_max_ms = 2000;
  /// First correlation id handed out. Production keeps the default; tests
  /// pin it near UINT64_MAX to exercise wraparound.
  uint64_t start_correlation_id = 1;
  /// I/O backend override for this client's sockets: "uring", "epoll"
  /// (plain blocking syscalls), or "" to defer to PKGM_NET_IO and then the
  /// runtime probe (see CreateClientIo).
  std::string io_backend;
};

/// Client library for the PKGM wire protocol — the downstream-task side of
/// the deployment story: task code links this, not the model.
///
/// Mirrors the KnowledgeServer submit API (futures per request), so the
/// traffic driver runs the same closed loop against either. A batch is
/// partitioned by task kind into typed frames — lookups in one
/// kGetVectors, each inference kind (wire v3) in its own kRecommend /
/// kClassify / kAlign frame — and the futures resolve, in submission
/// order, as the matching reply frames arrive. Requests in flight when a
/// connection dies resolve with kNetworkError (at-most-once; the client
/// never replays).
///
/// Thread-safe: any number of threads may submit concurrently.
class NetClient {
 public:
  /// Connects `options.num_connections` sockets to host:port.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      const std::string& host, uint16_t port, NetClientOptions options = {});

  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  std::future<serve::ServiceResponse> Submit(serve::ServiceRequest request);

  /// One wire frame; futures resolve in submission order semantics
  /// identical to KnowledgeServer::SubmitBatch.
  std::vector<std::future<serve::ServiceResponse>> SubmitBatch(
      std::vector<serve::ServiceRequest> requests);

  /// Round-trips a kStats probe; returns the server's StatsJson() blob.
  StatusOr<std::string> ServerStatsJson(int timeout_ms = 5000);

  /// Round-trips a kPing health probe.
  Status Ping(int timeout_ms = 5000);

  /// Claims a fresh correlation id for CallFrame.
  uint64_t NextCorrelationId() { return next_correlation_.fetch_add(1); }

  /// Generic pipelined request/reply for the v2 frames: sends the fully
  /// encoded `frame_bytes` (built with `correlation_id` from
  /// NextCorrelationId()) and resolves with the matching reply frame
  /// (kRows, kPushAck, kShardInfoReply, kBarrierReply). A kError reply or
  /// a lost connection resolves with a non-ok status. Many calls may be in
  /// flight per connection; replies match by correlation id, so they may
  /// resolve out of order.
  std::future<StatusOr<Frame>> CallFrame(uint64_t correlation_id,
                                         const std::string& frame_bytes);

  /// Requests that came back kNetworkError (connection failures), kept
  /// client-side so load generators can assert clean runs.
  uint64_t network_errors() const { return network_errors_.load(); }

 private:
  struct Conn;
  explicit NetClient(NetClientOptions options);

  Conn& PickConn();
  /// Sends an encoded frame on `conn`, reconnecting first if it is dead.
  /// Registration of the pending entry must happen before calling.
  Status SendFrame(Conn& conn, const std::string& frame);
  /// Gathered variant: every frame in `iov` goes out in one submission
  /// (one sendmsg, or one io_uring send), so a multi-kind batch costs one
  /// syscall instead of one per typed frame.
  Status SendFrames(Conn& conn, const iovec* iov, int iovcnt);
  void ReaderLoop(Conn& conn);
  /// Fails every pending entry on `conn` with kNetworkError.
  void FailPending(Conn& conn);

  const NetClientOptions options_;
  std::string host_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<uint64_t> next_correlation_{1};
  std::atomic<size_t> next_conn_{0};
  std::atomic<uint64_t> network_errors_{0};
  std::atomic<bool> closing_{false};
};

}  // namespace pkgm::net

#endif  // PKGM_NET_NET_CLIENT_H_
