#include "net/wire.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__linux__)
#include <arm_acle.h>
#include <sys/auxv.h>
#endif

#include "util/string_util.h"

namespace pkgm::net {
namespace {

// ------------------------------------------------ little-endian plumbing --

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF32(float v, std::string* out) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits, out);
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kHostLittleEndian = true;
#else
constexpr bool kHostLittleEndian = false;
#endif

// Bulk little-endian runs: on little-endian hosts the wire layout matches
// memory, so row payloads (the gradient-push hot path) move with a single
// memcpy instead of a per-word loop.
void PutU32Run(const uint32_t* v, size_t n, std::string* out) {
  if (n == 0) return;
  if (kHostLittleEndian) {
    out->append(reinterpret_cast<const char*>(v), n * sizeof(uint32_t));
  } else {
    for (size_t i = 0; i < n; ++i) PutU32(v[i], out);
  }
}

void PutF32Run(const float* v, size_t n, std::string* out) {
  if (n == 0) return;
  if (kHostLittleEndian) {
    out->append(reinterpret_cast<const char*>(v), n * sizeof(float));
  } else {
    for (size_t i = 0; i < n; ++i) PutF32(v[i], out);
  }
}

/// Bounds-checked sequential reader over a payload. Every Read* returns
/// false instead of running past the end, so decoders degrade to a clean
/// Corruption status on truncated or garbled frames.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = Byte(0) | (Byte(1) << 8) | (Byte(2) << 16) | (Byte(3) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo, hi;
    if (remaining() < 8 || !ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadF32(float* v) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadU32Run(uint32_t* out, size_t n) {
    if (n == 0) return true;
    if (remaining() < n * sizeof(uint32_t)) return false;
    if (kHostLittleEndian) {
      std::memcpy(out, data_.data() + pos_, n * sizeof(uint32_t));
      pos_ += n * sizeof(uint32_t);
      return true;
    }
    for (size_t i = 0; i < n; ++i) {
      if (!ReadU32(&out[i])) return false;
    }
    return true;
  }

  bool ReadF32Run(float* out, size_t n) {
    if (n == 0) return true;
    if (remaining() < n * sizeof(float)) return false;
    if (kHostLittleEndian) {
      std::memcpy(out, data_.data() + pos_, n * sizeof(float));
      pos_ += n * sizeof(float);
      return true;
    }
    for (size_t i = 0; i < n; ++i) {
      if (!ReadF32(&out[i])) return false;
    }
    return true;
  }

  /// The rest of the payload as a view (consumes it).
  std::string_view ReadRemainder() {
    std::string_view rest = data_.substr(pos_);
    pos_ = data_.size();
    return rest;
  }

 private:
  uint32_t Byte(size_t i) const {
    return static_cast<uint8_t>(data_[pos_ + i]);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------------- CRC32C --

struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78;  // Castagnoli, reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

constexpr size_t kGetVectorsEntryBytes = 12;
constexpr size_t kVectorsEntryHeaderBytes = 8;
// The three v3 inference request kinds share one 16-byte entry layout:
// two u32 task operands, u8 mode, u8 reserved, u16 tenant, u32 deadline.
constexpr size_t kInferRequestEntryBytes = 16;
constexpr size_t kScoreReplyEntryBytes = 8;
constexpr size_t kClassifyReplyEntryHeaderBytes = 4;

Status Truncated(const char* what) {
  return Status::Corruption(StrFormat("truncated %s payload", what));
}

// Relative-deadline wire encoding shared by every request codec: 0 means
// "no deadline"; an already-expired deadline clamps to 1 so it stays
// distinguishable from none.
uint32_t RelativeDeadlineMicros(serve::ServeClock::time_point deadline,
                                serve::ServeClock::time_point now) {
  if (deadline == serve::ServeClock::time_point::max()) return 0;
  const auto remaining =
      std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
  if (remaining.count() <= 0) return 1;
  return static_cast<uint32_t>(std::min<int64_t>(
      remaining.count(), std::numeric_limits<uint32_t>::max()));
}

serve::ServeClock::time_point AbsoluteDeadline(
    uint32_t deadline_micros, serve::ServeClock::time_point now) {
  return deadline_micros == 0
             ? serve::ServeClock::time_point::max()
             : now + std::chrono::microseconds(deadline_micros);
}

#if defined(__x86_64__) || defined(__i386__)
// SSE4.2 path: the dedicated crc32 instruction, 8 bytes per issue on the
// aligned body. Compiled with a per-function target attribute so the TU
// itself needs no -msse4.2; only ever called after the runtime
// __builtin_cpu_supports check below.
__attribute__((target("sse4.2")))
uint32_t Crc32cSse42(const void* data, size_t len, uint32_t crc) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t c = ~crc;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
    c = _mm_crc32_u64(c, word);
    bytes += 8;
    len -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (len > 0) {
    c32 = _mm_crc32_u8(c32, *bytes);
    ++bytes;
    --len;
  }
  return ~c32;
}
#elif defined(__aarch64__) && defined(__linux__)
// ARMv8 CRC extension path; gated at runtime on HWCAP_CRC32.
__attribute__((target("+crc")))
uint32_t Crc32cArmv8(const void* data, size_t len, uint32_t crc) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
    c = __crc32cd(c, word);
    bytes += 8;
    len -= 8;
  }
  while (len > 0) {
    c = __crc32cb(c, *bytes);
    ++bytes;
    --len;
  }
  return ~c;
}
#endif

using Crc32cFn = uint32_t (*)(const void*, size_t, uint32_t);

struct Crc32cImpl {
  Crc32cFn fn;
  const char* name;
};

Crc32cImpl PickCrc32cImpl() {
  const char* env = std::getenv("PKGM_CRC32C");
  if (env != nullptr && std::string_view(env) == "sw") {
    return {&Crc32cSoftware, "software"};
  }
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse4.2")) {
    return {&Crc32cSse42, "sse4.2"};
  }
#elif defined(__aarch64__) && defined(__linux__)
  if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) {
    return {&Crc32cArmv8, "armv8-crc"};
  }
#endif
  return {&Crc32cSoftware, "software"};
}

const Crc32cImpl& ActiveCrc32c() {
  static const Crc32cImpl impl = PickCrc32cImpl();
  return impl;
}

}  // namespace

uint32_t Crc32cSoftware(const void* data, size_t len, uint32_t crc) {
  static const Crc32cTable table;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  return ActiveCrc32c().fn(data, len, crc);
}

const char* Crc32cImplName() { return ActiveCrc32c().name; }

WireCode WireCodeFromResponse(serve::ResponseCode code) {
  switch (code) {
    case serve::ResponseCode::kOk: return WireCode::kOk;
    case serve::ResponseCode::kRejected: return WireCode::kRejected;
    case serve::ResponseCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case serve::ResponseCode::kInvalidItem: return WireCode::kInvalidItem;
    case serve::ResponseCode::kNetworkError: return WireCode::kNetworkError;
    case serve::ResponseCode::kQuotaExceeded: return WireCode::kQuotaExceeded;
  }
  return WireCode::kNetworkError;
}

serve::ResponseCode ResponseCodeFromWire(WireCode code) {
  switch (code) {
    case WireCode::kOk: return serve::ResponseCode::kOk;
    case WireCode::kRejected: return serve::ResponseCode::kRejected;
    case WireCode::kDeadlineExceeded:
      return serve::ResponseCode::kDeadlineExceeded;
    case WireCode::kInvalidItem: return serve::ResponseCode::kInvalidItem;
    case WireCode::kQuotaExceeded: return serve::ResponseCode::kQuotaExceeded;
    case WireCode::kNetworkError:
    case WireCode::kUnsupported:
      return serve::ResponseCode::kNetworkError;
  }
  return serve::ResponseCode::kNetworkError;
}

void AppendFrame(FrameType type, uint64_t correlation_id,
                 std::string_view payload, std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  PutU32(kWireMagic, out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU16(0, out);  // flags
  PutU64(correlation_id, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Crc32c(payload.data(), payload.size()), out);
  out->append(payload);
}

std::string EncodeGetVectors(
    uint64_t correlation_id, const std::vector<serve::ServiceRequest>& requests,
    serve::ServeClock::time_point now) {
  std::string payload;
  payload.reserve(4 + requests.size() * kGetVectorsEntryBytes);
  PutU32(static_cast<uint32_t>(requests.size()), &payload);
  for (const serve::ServiceRequest& request : requests) {
    PutU32(request.item, &payload);
    PutU8(static_cast<uint8_t>(request.mode), &payload);
    PutU8(static_cast<uint8_t>(request.form), &payload);
    PutU16(request.tenant, &payload);
    uint32_t deadline_micros = 0;
    if (request.deadline != serve::ServeClock::time_point::max()) {
      const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
          request.deadline - now);
      // Clamp into [1, u32max]: 0 is the "no deadline" sentinel, so an
      // already-expired deadline must stay distinguishable from none.
      if (remaining.count() <= 0) {
        deadline_micros = 1;
      } else {
        deadline_micros = static_cast<uint32_t>(std::min<int64_t>(
            remaining.count(), std::numeric_limits<uint32_t>::max()));
      }
    }
    PutU32(deadline_micros, &payload);
  }
  std::string frame;
  AppendFrame(FrameType::kGetVectors, correlation_id, payload, &frame);
  return frame;
}

std::string EncodeVectors(
    uint64_t correlation_id,
    const std::vector<serve::ServiceResponse>& responses) {
  std::string payload;
  PutU32(static_cast<uint32_t>(responses.size()), &payload);
  for (const serve::ServiceResponse& response : responses) {
    PutU8(static_cast<uint8_t>(WireCodeFromResponse(response.code)), &payload);
    PutU8(response.cache_hit ? 1 : 0, &payload);
    PutU16(0, &payload);
    PutU32(static_cast<uint32_t>(response.vectors.size()), &payload);
    for (const Vec& vec : response.vectors) {
      PutU32(static_cast<uint32_t>(vec.size()), &payload);
      for (size_t i = 0; i < vec.size(); ++i) PutF32(vec[i], &payload);
    }
  }
  std::string frame;
  AppendFrame(FrameType::kVectors, correlation_id, payload, &frame);
  return frame;
}

std::string EncodeError(uint64_t correlation_id, WireCode code,
                        std::string_view message) {
  std::string payload;
  PutU8(static_cast<uint8_t>(code), &payload);
  payload.append(message);
  std::string frame;
  AppendFrame(FrameType::kError, correlation_id, payload, &frame);
  return frame;
}

std::string EncodeStatsJson(uint64_t correlation_id, std::string_view json) {
  std::string frame;
  AppendFrame(FrameType::kStatsJson, correlation_id, json, &frame);
  return frame;
}

std::string EncodeControl(FrameType type, uint64_t correlation_id) {
  std::string frame;
  AppendFrame(type, correlation_id, {}, &frame);
  return frame;
}

void FrameDecoder::Feed(const void* data, size_t len) {
  // Compact once consumption passes half the buffer so the stream cannot
  // grow it without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), len);
}

FrameDecoder::Result FrameDecoder::Next(Frame* frame, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "stream already failed protocol validation";
    return Result::kError;
  }
  const std::string_view view =
      std::string_view(buffer_).substr(consumed_);
  if (view.size() < kFrameHeaderBytes) return Result::kNeedMore;

  Cursor header(view.substr(0, kFrameHeaderBytes));
  uint32_t magic, payload_len, crc;
  uint8_t version, type;
  uint16_t flags;
  uint64_t correlation_id;
  header.ReadU32(&magic);
  header.ReadU8(&version);
  header.ReadU8(&type);
  header.ReadU16(&flags);
  header.ReadU64(&correlation_id);
  header.ReadU32(&payload_len);
  header.ReadU32(&crc);

  auto fail = [&](std::string message) {
    poisoned_ = true;
    if (error != nullptr) *error = std::move(message);
    return Result::kError;
  };
  if (magic != kWireMagic) {
    return fail(StrFormat("bad magic 0x%08x", magic));
  }
  if (version != kWireVersion) {
    return fail(StrFormat("unsupported wire version %u", version));
  }
  if (flags != 0) {
    return fail(StrFormat("non-zero reserved flags 0x%04x", flags));
  }
  if (payload_len > max_frame_bytes_) {
    return fail(StrFormat("payload length %u exceeds cap %zu", payload_len,
                          max_frame_bytes_));
  }
  if (view.size() < kFrameHeaderBytes + payload_len) return Result::kNeedMore;

  const std::string_view payload =
      view.substr(kFrameHeaderBytes, payload_len);
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return fail("payload CRC32C mismatch");
  }
  frame->type = static_cast<FrameType>(type);
  frame->correlation_id = correlation_id;
  frame->payload.assign(payload.data(), payload.size());
  consumed_ += kFrameHeaderBytes + payload_len;
  return Result::kFrame;
}

Status DecodeGetVectors(std::string_view payload,
                        serve::ServeClock::time_point now,
                        std::vector<serve::ServiceRequest>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated("kGetVectors");
  // Allocation guard: the declared count must fit in the bytes actually
  // present before any reserve happens.
  if (static_cast<uint64_t>(count) * kGetVectorsEntryBytes !=
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kGetVectors count %u disagrees with payload size %zu",
                  count, payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t item, deadline_micros;
    uint8_t mode, form;
    uint16_t tenant;
    if (!cursor.ReadU32(&item) || !cursor.ReadU8(&mode) ||
        !cursor.ReadU8(&form) || !cursor.ReadU16(&tenant) ||
        !cursor.ReadU32(&deadline_micros)) {
      return Truncated("kGetVectors");
    }
    if (mode > static_cast<uint8_t>(core::ServiceMode::kAll)) {
      return Status::Corruption(StrFormat("invalid service mode %u", mode));
    }
    if (form > static_cast<uint8_t>(serve::ServiceForm::kCondensed)) {
      return Status::Corruption(StrFormat("invalid service form %u", form));
    }
    serve::ServiceRequest request;
    request.item = item;
    request.mode = static_cast<core::ServiceMode>(mode);
    request.form = static_cast<serve::ServiceForm>(form);
    request.tenant = tenant;
    request.deadline = deadline_micros == 0
                           ? serve::ServeClock::time_point::max()
                           : now + std::chrono::microseconds(deadline_micros);
    out->push_back(request);
  }
  return Status::Ok();
}

Status DecodeVectors(std::string_view payload,
                     std::vector<serve::ServiceResponse>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated("kVectors");
  if (static_cast<uint64_t>(count) * kVectorsEntryHeaderBytes >
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kVectors count %u exceeds payload size %zu", count,
                  payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t code, hit_flags;
    uint16_t reserved;
    uint32_t num_vectors;
    if (!cursor.ReadU8(&code) || !cursor.ReadU8(&hit_flags) ||
        !cursor.ReadU16(&reserved) || !cursor.ReadU32(&num_vectors)) {
      return Truncated("kVectors");
    }
    if (code > kMaxWireCode) {
      return Status::Corruption(StrFormat("invalid wire code %u", code));
    }
    // Each vector costs at least its 4-byte length prefix.
    if (static_cast<uint64_t>(num_vectors) * 4 > cursor.remaining()) {
      return Status::Corruption(
          StrFormat("kVectors entry declares %u vectors with %zu bytes left",
                    num_vectors, cursor.remaining()));
    }
    serve::ServiceResponse response;
    response.code = ResponseCodeFromWire(static_cast<WireCode>(code));
    response.cache_hit = (hit_flags & 1) != 0;
    response.vectors.reserve(num_vectors);
    for (uint32_t v = 0; v < num_vectors; ++v) {
      uint32_t len;
      if (!cursor.ReadU32(&len)) return Truncated("kVectors");
      if (static_cast<uint64_t>(len) * 4 > cursor.remaining()) {
        return Status::Corruption(
            StrFormat("kVectors vector length %u exceeds %zu bytes left", len,
                      cursor.remaining()));
      }
      std::vector<float> values(len);
      for (uint32_t j = 0; j < len; ++j) {
        if (!cursor.ReadF32(&values[j])) return Truncated("kVectors");
      }
      response.vectors.emplace_back(std::move(values));
    }
    out->push_back(std::move(response));
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kVectors entries");
  }
  return Status::Ok();
}

Status DecodeError(std::string_view payload, WireCode* code,
                   std::string* message) {
  Cursor cursor(payload);
  uint8_t raw;
  if (!cursor.ReadU8(&raw)) return Truncated("kError");
  if (raw > kMaxWireCode) {
    return Status::Corruption(StrFormat("invalid wire code %u", raw));
  }
  *code = static_cast<WireCode>(raw);
  const std::string_view rest = cursor.ReadRemainder();
  message->assign(rest.data(), rest.size());
  return Status::Ok();
}

// ------------------------------------- distributed-training frames (v2) --

std::string EncodePullRows(uint64_t correlation_id,
                           const std::vector<PullSection>& sections) {
  std::string payload;
  size_t bytes = 4;
  for (const PullSection& s : sections) bytes += 5 + 4 * s.ids.size();
  payload.reserve(bytes);
  PutU32(static_cast<uint32_t>(sections.size()), &payload);
  for (const PullSection& s : sections) {
    PutU8(static_cast<uint8_t>(s.table), &payload);
    PutU32(static_cast<uint32_t>(s.ids.size()), &payload);
    PutU32Run(s.ids.data(), s.ids.size(), &payload);
  }
  std::string frame;
  AppendFrame(FrameType::kPullRows, correlation_id, payload, &frame);
  return frame;
}

Status DecodePullRows(std::string_view payload,
                      std::vector<PullSection>* out) {
  Cursor cursor(payload);
  uint32_t num_sections;
  if (!cursor.ReadU32(&num_sections)) return Truncated("kPullRows");
  // Each section costs at least its 5-byte header.
  if (static_cast<uint64_t>(num_sections) * 5 > cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kPullRows declares %u sections with %zu bytes left",
                  num_sections, cursor.remaining()));
  }
  out->clear();
  out->reserve(num_sections);
  for (uint32_t s = 0; s < num_sections; ++s) {
    uint8_t table;
    uint32_t count;
    if (!cursor.ReadU8(&table) || !cursor.ReadU32(&count)) {
      return Truncated("kPullRows");
    }
    if (table > kMaxParamTable) {
      return Status::Corruption(StrFormat("invalid param table %u", table));
    }
    if (static_cast<uint64_t>(count) * 4 > cursor.remaining()) {
      return Status::Corruption(
          StrFormat("kPullRows section declares %u ids with %zu bytes left",
                    count, cursor.remaining()));
    }
    PullSection section;
    section.table = static_cast<ParamTable>(table);
    section.ids.resize(count);
    if (!cursor.ReadU32Run(section.ids.data(), count)) {
      return Truncated("kPullRows");
    }
    out->push_back(std::move(section));
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kPullRows sections");
  }
  return Status::Ok();
}

std::string EncodeRows(uint64_t correlation_id,
                       const std::vector<RowsSection>& sections) {
  std::string payload;
  size_t bytes = 4;
  for (const RowsSection& s : sections) {
    bytes += 13 + 4 * s.ids.size() + 4 * s.values.size();
  }
  payload.reserve(bytes);
  PutU32(static_cast<uint32_t>(sections.size()), &payload);
  for (const RowsSection& s : sections) {
    PutU8(static_cast<uint8_t>(s.table), &payload);
    PutU32(s.row_size, &payload);
    PutU32(static_cast<uint32_t>(s.ids.size()), &payload);
    PutU32Run(s.ids.data(), s.ids.size(), &payload);
    PutF32Run(s.values.data(), s.values.size(), &payload);
  }
  std::string frame;
  AppendFrame(FrameType::kRows, correlation_id, payload, &frame);
  return frame;
}

Status DecodeRows(std::string_view payload, std::vector<RowsSection>* out) {
  Cursor cursor(payload);
  uint32_t num_sections;
  if (!cursor.ReadU32(&num_sections)) return Truncated("kRows");
  // Each section costs at least its 9-byte header.
  if (static_cast<uint64_t>(num_sections) * 9 > cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kRows declares %u sections with %zu bytes left",
                  num_sections, cursor.remaining()));
  }
  out->clear();
  out->reserve(num_sections);
  for (uint32_t s = 0; s < num_sections; ++s) {
    uint8_t table;
    uint32_t row_size, count;
    if (!cursor.ReadU8(&table) || !cursor.ReadU32(&row_size) ||
        !cursor.ReadU32(&count)) {
      return Truncated("kRows");
    }
    if (table > kMaxParamTable) {
      return Status::Corruption(StrFormat("invalid param table %u", table));
    }
    // Entry cost: 4-byte id + row_size floats. Dividing (rather than
    // multiplying count * entry) keeps the guard overflow-proof.
    const uint64_t entry_bytes = 4 + static_cast<uint64_t>(row_size) * 4;
    if (count > 0 && entry_bytes > cursor.remaining() / count) {
      return Status::Corruption(StrFormat(
          "kRows section declares %u rows of %u floats with %zu bytes left",
          count, row_size, cursor.remaining()));
    }
    RowsSection section;
    section.table = static_cast<ParamTable>(table);
    section.row_size = row_size;
    section.ids.resize(count);
    section.values.resize(static_cast<size_t>(count) * row_size);
    if (!cursor.ReadU32Run(section.ids.data(), count) ||
        !cursor.ReadF32Run(section.values.data(), section.values.size())) {
      return Truncated("kRows");
    }
    out->push_back(std::move(section));
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kRows sections");
  }
  return Status::Ok();
}

std::string EncodePushGrads(uint64_t correlation_id, float scale,
                            uint32_t epoch, std::string_view arena_blob) {
  std::string payload;
  payload.reserve(8 + arena_blob.size());
  PutF32(scale, &payload);
  PutU32(epoch, &payload);
  payload.append(arena_blob);
  std::string frame;
  AppendFrame(FrameType::kPushGrads, correlation_id, payload, &frame);
  return frame;
}

Status DecodePushGrads(std::string_view payload, float* scale,
                       uint32_t* epoch, std::string_view* arena_blob) {
  Cursor cursor(payload);
  if (!cursor.ReadF32(scale) || !cursor.ReadU32(epoch)) {
    return Truncated("kPushGrads");
  }
  *arena_blob = cursor.ReadRemainder();
  return Status::Ok();
}

std::string EncodePushAck(uint64_t correlation_id, uint32_t rows_applied) {
  std::string payload;
  PutU32(rows_applied, &payload);
  std::string frame;
  AppendFrame(FrameType::kPushAck, correlation_id, payload, &frame);
  return frame;
}

Status DecodePushAck(std::string_view payload, uint32_t* rows_applied) {
  Cursor cursor(payload);
  if (!cursor.ReadU32(rows_applied)) return Truncated("kPushAck");
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kPushAck");
  }
  return Status::Ok();
}

std::string EncodeShardInfoReply(uint64_t correlation_id,
                                 const ShardInfo& info) {
  std::string payload;
  payload.reserve(36);
  PutU32(info.shard_index, &payload);
  PutU32(info.num_shards, &payload);
  PutU32(info.num_entities, &payload);
  PutU32(info.num_relations, &payload);
  PutU32(info.dim, &payload);
  PutU8(info.scorer, &payload);
  PutU8(info.use_relation_module ? 1 : 0, &payload);
  PutU8(info.optimizer, &payload);
  PutU8(0, &payload);  // reserved
  PutF32(info.learning_rate, &payload);
  PutU64(info.model_seed, &payload);
  std::string frame;
  AppendFrame(FrameType::kShardInfoReply, correlation_id, payload, &frame);
  return frame;
}

Status DecodeShardInfoReply(std::string_view payload, ShardInfo* out) {
  Cursor cursor(payload);
  uint8_t relation_module, reserved;
  if (!cursor.ReadU32(&out->shard_index) || !cursor.ReadU32(&out->num_shards) ||
      !cursor.ReadU32(&out->num_entities) ||
      !cursor.ReadU32(&out->num_relations) || !cursor.ReadU32(&out->dim) ||
      !cursor.ReadU8(&out->scorer) || !cursor.ReadU8(&relation_module) ||
      !cursor.ReadU8(&out->optimizer) || !cursor.ReadU8(&reserved) ||
      !cursor.ReadF32(&out->learning_rate) ||
      !cursor.ReadU64(&out->model_seed)) {
    return Truncated("kShardInfoReply");
  }
  if (relation_module > 1) {
    return Status::Corruption(
        StrFormat("invalid relation-module flag %u", relation_module));
  }
  if (reserved != 0) {
    return Status::Corruption("non-zero reserved kShardInfoReply field");
  }
  if (out->num_shards == 0 || out->shard_index >= out->num_shards) {
    return Status::Corruption(StrFormat("invalid shard index %u of %u",
                                        out->shard_index, out->num_shards));
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kShardInfoReply");
  }
  out->use_relation_module = relation_module != 0;
  return Status::Ok();
}

std::string EncodeBarrier(uint64_t correlation_id, uint32_t epoch,
                          uint32_t num_workers) {
  std::string payload;
  PutU32(epoch, &payload);
  PutU32(num_workers, &payload);
  std::string frame;
  AppendFrame(FrameType::kBarrier, correlation_id, payload, &frame);
  return frame;
}

Status DecodeBarrier(std::string_view payload, uint32_t* epoch,
                     uint32_t* num_workers) {
  Cursor cursor(payload);
  if (!cursor.ReadU32(epoch) || !cursor.ReadU32(num_workers)) {
    return Truncated("kBarrier");
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kBarrier");
  }
  return Status::Ok();
}

std::string EncodeBarrierReply(uint64_t correlation_id, uint32_t epoch,
                               uint32_t workers_arrived) {
  std::string payload;
  PutU32(epoch, &payload);
  PutU32(workers_arrived, &payload);
  std::string frame;
  AppendFrame(FrameType::kBarrierReply, correlation_id, payload, &frame);
  return frame;
}

Status DecodeBarrierReply(std::string_view payload, uint32_t* epoch,
                          uint32_t* workers_arrived) {
  Cursor cursor(payload);
  if (!cursor.ReadU32(epoch) || !cursor.ReadU32(workers_arrived)) {
    return Truncated("kBarrierReply");
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kBarrierReply");
  }
  return Status::Ok();
}

// ------------------------------------------ inference frames (v3) --------

namespace {

// Shared encoder for the three inference request frames, which differ only
// in the two u32 task operands carried per entry.
std::string EncodeInferRequests(
    FrameType type, uint64_t correlation_id,
    const std::vector<serve::ServiceRequest>& requests,
    serve::ServeClock::time_point now,
    uint32_t (*op_a)(const serve::ServiceRequest&),
    uint32_t (*op_b)(const serve::ServiceRequest&)) {
  std::string payload;
  payload.reserve(4 + requests.size() * kInferRequestEntryBytes);
  PutU32(static_cast<uint32_t>(requests.size()), &payload);
  for (const serve::ServiceRequest& request : requests) {
    PutU32(op_a(request), &payload);
    PutU32(op_b(request), &payload);
    PutU8(static_cast<uint8_t>(request.mode), &payload);
    PutU8(0, &payload);  // reserved
    PutU16(request.tenant, &payload);
    PutU32(RelativeDeadlineMicros(request.deadline, now), &payload);
  }
  std::string frame;
  AppendFrame(type, correlation_id, payload, &frame);
  return frame;
}

// Shared decoder for the fixed-size inference request entries; `fill`
// stores the two operands into the half-built request.
Status DecodeInferRequests(
    std::string_view payload, serve::ServeClock::time_point now,
    const char* what, serve::TaskKind task,
    void (*fill)(uint32_t a, uint32_t b, serve::ServiceRequest*),
    std::vector<serve::ServiceRequest>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated(what);
  // Allocation guard: entries are fixed-size, so the declared count must
  // match the bytes actually present exactly, before any reserve happens.
  // Trailing bytes fail this same check.
  if (static_cast<uint64_t>(count) * kInferRequestEntryBytes !=
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("%s count %u disagrees with payload size %zu", what, count,
                  payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t a, b, deadline_micros;
    uint8_t mode, reserved;
    uint16_t tenant;
    if (!cursor.ReadU32(&a) || !cursor.ReadU32(&b) || !cursor.ReadU8(&mode) ||
        !cursor.ReadU8(&reserved) || !cursor.ReadU16(&tenant) ||
        !cursor.ReadU32(&deadline_micros)) {
      return Truncated(what);
    }
    if (mode > static_cast<uint8_t>(core::ServiceMode::kAll)) {
      return Status::Corruption(StrFormat("invalid service mode %u", mode));
    }
    if (reserved != 0) {
      return Status::Corruption(
          StrFormat("%s reserved byte %u must be 0", what, reserved));
    }
    serve::ServiceRequest request;
    request.task = task;
    request.mode = static_cast<core::ServiceMode>(mode);
    request.form = serve::ServiceForm::kCondensed;
    request.tenant = tenant;
    request.deadline = AbsoluteDeadline(deadline_micros, now);
    fill(a, b, &request);
    out->push_back(request);
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeRecommend(uint64_t correlation_id,
                            const std::vector<serve::ServiceRequest>& requests,
                            serve::ServeClock::time_point now) {
  return EncodeInferRequests(
      FrameType::kRecommend, correlation_id, requests, now,
      [](const serve::ServiceRequest& r) { return r.user; },
      [](const serve::ServiceRequest& r) { return r.item; });
}

Status DecodeRecommend(std::string_view payload,
                       serve::ServeClock::time_point now,
                       std::vector<serve::ServiceRequest>* out) {
  return DecodeInferRequests(
      payload, now, "kRecommend", serve::TaskKind::kRecommend,
      [](uint32_t a, uint32_t b, serve::ServiceRequest* r) {
        r->user = a;
        r->item = b;
      },
      out);
}

std::string EncodeClassify(uint64_t correlation_id,
                           const std::vector<serve::ServiceRequest>& requests,
                           serve::ServeClock::time_point now) {
  return EncodeInferRequests(
      FrameType::kClassify, correlation_id, requests, now,
      [](const serve::ServiceRequest& r) { return r.item; },
      [](const serve::ServiceRequest& r) { return r.top_k; });
}

Status DecodeClassify(std::string_view payload,
                      serve::ServeClock::time_point now,
                      std::vector<serve::ServiceRequest>* out) {
  return DecodeInferRequests(
      payload, now, "kClassify", serve::TaskKind::kClassify,
      [](uint32_t a, uint32_t b, serve::ServiceRequest* r) {
        r->item = a;
        r->top_k = b;
      },
      out);
}

std::string EncodeAlign(uint64_t correlation_id,
                        const std::vector<serve::ServiceRequest>& requests,
                        serve::ServeClock::time_point now) {
  return EncodeInferRequests(
      FrameType::kAlign, correlation_id, requests, now,
      [](const serve::ServiceRequest& r) { return r.item; },
      [](const serve::ServiceRequest& r) { return r.item_b; });
}

Status DecodeAlign(std::string_view payload, serve::ServeClock::time_point now,
                   std::vector<serve::ServiceRequest>* out) {
  return DecodeInferRequests(
      payload, now, "kAlign", serve::TaskKind::kAlign,
      [](uint32_t a, uint32_t b, serve::ServiceRequest* r) {
        r->item = a;
        r->item_b = b;
      },
      out);
}

std::string EncodeScoreReply(
    FrameType type, uint64_t correlation_id,
    const std::vector<serve::ServiceResponse>& responses) {
  std::string payload;
  payload.reserve(4 + responses.size() * kScoreReplyEntryBytes);
  PutU32(static_cast<uint32_t>(responses.size()), &payload);
  for (const serve::ServiceResponse& response : responses) {
    PutU8(static_cast<uint8_t>(WireCodeFromResponse(response.code)), &payload);
    PutU8(response.cache_hit ? 1 : 0, &payload);
    PutU16(0, &payload);
    PutF32(response.score, &payload);
  }
  std::string frame;
  AppendFrame(type, correlation_id, payload, &frame);
  return frame;
}

Status DecodeScoreReply(std::string_view payload,
                        std::vector<serve::ServiceResponse>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated("score reply");
  // Fixed-size entries: exact match doubles as the trailing-byte check.
  if (static_cast<uint64_t>(count) * kScoreReplyEntryBytes !=
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("score reply count %u disagrees with payload size %zu",
                  count, payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t code, flags;
    uint16_t reserved;
    float score;
    if (!cursor.ReadU8(&code) || !cursor.ReadU8(&flags) ||
        !cursor.ReadU16(&reserved) || !cursor.ReadF32(&score)) {
      return Truncated("score reply");
    }
    if (code > kMaxWireCode) {
      return Status::Corruption(StrFormat("invalid wire code %u", code));
    }
    if (reserved != 0) {
      return Status::Corruption(StrFormat(
          "score reply reserved field %u must be 0", reserved));
    }
    serve::ServiceResponse response;
    response.code = ResponseCodeFromWire(static_cast<WireCode>(code));
    response.cache_hit = (flags & 1) != 0;
    response.score = score;
    out->push_back(std::move(response));
  }
  return Status::Ok();
}

std::string EncodeClassifyReply(
    uint64_t correlation_id,
    const std::vector<serve::ServiceResponse>& responses) {
  std::string payload;
  PutU32(static_cast<uint32_t>(responses.size()), &payload);
  for (const serve::ServiceResponse& response : responses) {
    PutU8(static_cast<uint8_t>(WireCodeFromResponse(response.code)), &payload);
    PutU8(response.cache_hit ? 1 : 0, &payload);
    const uint16_t k = static_cast<uint16_t>(std::min<size_t>(
        response.class_ids.size(), std::numeric_limits<uint16_t>::max()));
    PutU16(k, &payload);
    for (uint16_t j = 0; j < k; ++j) {
      PutU32(response.class_ids[j], &payload);
      PutF32(j < response.class_probs.size() ? response.class_probs[j] : 0.0f,
             &payload);
    }
  }
  std::string frame;
  AppendFrame(FrameType::kClassifyReply, correlation_id, payload, &frame);
  return frame;
}

Status DecodeClassifyReply(std::string_view payload,
                           std::vector<serve::ServiceResponse>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated("kClassifyReply");
  // Entries are variable-size; charge each at least its fixed header
  // before any reserve happens.
  if (static_cast<uint64_t>(count) * kClassifyReplyEntryHeaderBytes >
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kClassifyReply count %u exceeds payload size %zu", count,
                  payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t code, flags;
    uint16_t k;
    if (!cursor.ReadU8(&code) || !cursor.ReadU8(&flags) ||
        !cursor.ReadU16(&k)) {
      return Truncated("kClassifyReply");
    }
    if (code > kMaxWireCode) {
      return Status::Corruption(StrFormat("invalid wire code %u", code));
    }
    // Each class costs 8 bytes (u32 id + f32 prob).
    if (static_cast<uint64_t>(k) * 8 > cursor.remaining()) {
      return Status::Corruption(StrFormat(
          "kClassifyReply entry declares %u classes with %zu bytes left", k,
          cursor.remaining()));
    }
    serve::ServiceResponse response;
    response.code = ResponseCodeFromWire(static_cast<WireCode>(code));
    response.cache_hit = (flags & 1) != 0;
    response.class_ids.resize(k);
    response.class_probs.resize(k);
    for (uint16_t j = 0; j < k; ++j) {
      if (!cursor.ReadU32(&response.class_ids[j]) ||
          !cursor.ReadF32(&response.class_probs[j])) {
        return Truncated("kClassifyReply");
      }
    }
    out->push_back(std::move(response));
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kClassifyReply entries");
  }
  return Status::Ok();
}

}  // namespace pkgm::net
