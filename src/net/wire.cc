#include "net/wire.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "util/string_util.h"

namespace pkgm::net {
namespace {

// ------------------------------------------------ little-endian plumbing --

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF32(float v, std::string* out) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits, out);
}

/// Bounds-checked sequential reader over a payload. Every Read* returns
/// false instead of running past the end, so decoders degrade to a clean
/// Corruption status on truncated or garbled frames.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = Byte(0) | (Byte(1) << 8) | (Byte(2) << 16) | (Byte(3) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo, hi;
    if (remaining() < 8 || !ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadF32(float* v) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// The rest of the payload as a view (consumes it).
  std::string_view ReadRemainder() {
    std::string_view rest = data_.substr(pos_);
    pos_ = data_.size();
    return rest;
  }

 private:
  uint32_t Byte(size_t i) const {
    return static_cast<uint8_t>(data_[pos_ + i]);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------------- CRC32C --

struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78;  // Castagnoli, reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

constexpr size_t kGetVectorsEntryBytes = 12;
constexpr size_t kVectorsEntryHeaderBytes = 8;

Status Truncated(const char* what) {
  return Status::Corruption(StrFormat("truncated %s payload", what));
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  static const Crc32cTable table;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

WireCode WireCodeFromResponse(serve::ResponseCode code) {
  switch (code) {
    case serve::ResponseCode::kOk: return WireCode::kOk;
    case serve::ResponseCode::kRejected: return WireCode::kRejected;
    case serve::ResponseCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case serve::ResponseCode::kInvalidItem: return WireCode::kInvalidItem;
    case serve::ResponseCode::kNetworkError: return WireCode::kNetworkError;
  }
  return WireCode::kNetworkError;
}

serve::ResponseCode ResponseCodeFromWire(WireCode code) {
  switch (code) {
    case WireCode::kOk: return serve::ResponseCode::kOk;
    case WireCode::kRejected: return serve::ResponseCode::kRejected;
    case WireCode::kDeadlineExceeded:
      return serve::ResponseCode::kDeadlineExceeded;
    case WireCode::kInvalidItem: return serve::ResponseCode::kInvalidItem;
    case WireCode::kNetworkError:
    case WireCode::kUnsupported:
      return serve::ResponseCode::kNetworkError;
  }
  return serve::ResponseCode::kNetworkError;
}

void AppendFrame(FrameType type, uint64_t correlation_id,
                 std::string_view payload, std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  PutU32(kWireMagic, out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU16(0, out);  // flags
  PutU64(correlation_id, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Crc32c(payload.data(), payload.size()), out);
  out->append(payload);
}

std::string EncodeGetVectors(
    uint64_t correlation_id, const std::vector<serve::ServiceRequest>& requests,
    serve::ServeClock::time_point now) {
  std::string payload;
  payload.reserve(4 + requests.size() * kGetVectorsEntryBytes);
  PutU32(static_cast<uint32_t>(requests.size()), &payload);
  for (const serve::ServiceRequest& request : requests) {
    PutU32(request.item, &payload);
    PutU8(static_cast<uint8_t>(request.mode), &payload);
    PutU8(static_cast<uint8_t>(request.form), &payload);
    PutU16(0, &payload);
    uint32_t deadline_micros = 0;
    if (request.deadline != serve::ServeClock::time_point::max()) {
      const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
          request.deadline - now);
      // Clamp into [1, u32max]: 0 is the "no deadline" sentinel, so an
      // already-expired deadline must stay distinguishable from none.
      if (remaining.count() <= 0) {
        deadline_micros = 1;
      } else {
        deadline_micros = static_cast<uint32_t>(std::min<int64_t>(
            remaining.count(), std::numeric_limits<uint32_t>::max()));
      }
    }
    PutU32(deadline_micros, &payload);
  }
  std::string frame;
  AppendFrame(FrameType::kGetVectors, correlation_id, payload, &frame);
  return frame;
}

std::string EncodeVectors(
    uint64_t correlation_id,
    const std::vector<serve::ServiceResponse>& responses) {
  std::string payload;
  PutU32(static_cast<uint32_t>(responses.size()), &payload);
  for (const serve::ServiceResponse& response : responses) {
    PutU8(static_cast<uint8_t>(WireCodeFromResponse(response.code)), &payload);
    PutU8(response.cache_hit ? 1 : 0, &payload);
    PutU16(0, &payload);
    PutU32(static_cast<uint32_t>(response.vectors.size()), &payload);
    for (const Vec& vec : response.vectors) {
      PutU32(static_cast<uint32_t>(vec.size()), &payload);
      for (size_t i = 0; i < vec.size(); ++i) PutF32(vec[i], &payload);
    }
  }
  std::string frame;
  AppendFrame(FrameType::kVectors, correlation_id, payload, &frame);
  return frame;
}

std::string EncodeError(uint64_t correlation_id, WireCode code,
                        std::string_view message) {
  std::string payload;
  PutU8(static_cast<uint8_t>(code), &payload);
  payload.append(message);
  std::string frame;
  AppendFrame(FrameType::kError, correlation_id, payload, &frame);
  return frame;
}

std::string EncodeStatsJson(uint64_t correlation_id, std::string_view json) {
  std::string frame;
  AppendFrame(FrameType::kStatsJson, correlation_id, json, &frame);
  return frame;
}

std::string EncodeControl(FrameType type, uint64_t correlation_id) {
  std::string frame;
  AppendFrame(type, correlation_id, {}, &frame);
  return frame;
}

void FrameDecoder::Feed(const void* data, size_t len) {
  // Compact once consumption passes half the buffer so the stream cannot
  // grow it without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), len);
}

FrameDecoder::Result FrameDecoder::Next(Frame* frame, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "stream already failed protocol validation";
    return Result::kError;
  }
  const std::string_view view =
      std::string_view(buffer_).substr(consumed_);
  if (view.size() < kFrameHeaderBytes) return Result::kNeedMore;

  Cursor header(view.substr(0, kFrameHeaderBytes));
  uint32_t magic, payload_len, crc;
  uint8_t version, type;
  uint16_t flags;
  uint64_t correlation_id;
  header.ReadU32(&magic);
  header.ReadU8(&version);
  header.ReadU8(&type);
  header.ReadU16(&flags);
  header.ReadU64(&correlation_id);
  header.ReadU32(&payload_len);
  header.ReadU32(&crc);

  auto fail = [&](std::string message) {
    poisoned_ = true;
    if (error != nullptr) *error = std::move(message);
    return Result::kError;
  };
  if (magic != kWireMagic) {
    return fail(StrFormat("bad magic 0x%08x", magic));
  }
  if (version != kWireVersion) {
    return fail(StrFormat("unsupported wire version %u", version));
  }
  if (flags != 0) {
    return fail(StrFormat("non-zero reserved flags 0x%04x", flags));
  }
  if (payload_len > max_frame_bytes_) {
    return fail(StrFormat("payload length %u exceeds cap %zu", payload_len,
                          max_frame_bytes_));
  }
  if (view.size() < kFrameHeaderBytes + payload_len) return Result::kNeedMore;

  const std::string_view payload =
      view.substr(kFrameHeaderBytes, payload_len);
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return fail("payload CRC32C mismatch");
  }
  frame->type = static_cast<FrameType>(type);
  frame->correlation_id = correlation_id;
  frame->payload.assign(payload.data(), payload.size());
  consumed_ += kFrameHeaderBytes + payload_len;
  return Result::kFrame;
}

Status DecodeGetVectors(std::string_view payload,
                        serve::ServeClock::time_point now,
                        std::vector<serve::ServiceRequest>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated("kGetVectors");
  // Allocation guard: the declared count must fit in the bytes actually
  // present before any reserve happens.
  if (static_cast<uint64_t>(count) * kGetVectorsEntryBytes !=
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kGetVectors count %u disagrees with payload size %zu",
                  count, payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t item, deadline_micros;
    uint8_t mode, form;
    uint16_t reserved;
    if (!cursor.ReadU32(&item) || !cursor.ReadU8(&mode) ||
        !cursor.ReadU8(&form) || !cursor.ReadU16(&reserved) ||
        !cursor.ReadU32(&deadline_micros)) {
      return Truncated("kGetVectors");
    }
    if (mode > static_cast<uint8_t>(core::ServiceMode::kAll)) {
      return Status::Corruption(StrFormat("invalid service mode %u", mode));
    }
    if (form > static_cast<uint8_t>(serve::ServiceForm::kCondensed)) {
      return Status::Corruption(StrFormat("invalid service form %u", form));
    }
    if (reserved != 0) {
      return Status::Corruption("non-zero reserved request field");
    }
    serve::ServiceRequest request;
    request.item = item;
    request.mode = static_cast<core::ServiceMode>(mode);
    request.form = static_cast<serve::ServiceForm>(form);
    request.deadline = deadline_micros == 0
                           ? serve::ServeClock::time_point::max()
                           : now + std::chrono::microseconds(deadline_micros);
    out->push_back(request);
  }
  return Status::Ok();
}

Status DecodeVectors(std::string_view payload,
                     std::vector<serve::ServiceResponse>* out) {
  Cursor cursor(payload);
  uint32_t count;
  if (!cursor.ReadU32(&count)) return Truncated("kVectors");
  if (static_cast<uint64_t>(count) * kVectorsEntryHeaderBytes >
      cursor.remaining()) {
    return Status::Corruption(
        StrFormat("kVectors count %u exceeds payload size %zu", count,
                  payload.size()));
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t code, hit_flags;
    uint16_t reserved;
    uint32_t num_vectors;
    if (!cursor.ReadU8(&code) || !cursor.ReadU8(&hit_flags) ||
        !cursor.ReadU16(&reserved) || !cursor.ReadU32(&num_vectors)) {
      return Truncated("kVectors");
    }
    if (code > static_cast<uint8_t>(WireCode::kUnsupported)) {
      return Status::Corruption(StrFormat("invalid wire code %u", code));
    }
    // Each vector costs at least its 4-byte length prefix.
    if (static_cast<uint64_t>(num_vectors) * 4 > cursor.remaining()) {
      return Status::Corruption(
          StrFormat("kVectors entry declares %u vectors with %zu bytes left",
                    num_vectors, cursor.remaining()));
    }
    serve::ServiceResponse response;
    response.code = ResponseCodeFromWire(static_cast<WireCode>(code));
    response.cache_hit = (hit_flags & 1) != 0;
    response.vectors.reserve(num_vectors);
    for (uint32_t v = 0; v < num_vectors; ++v) {
      uint32_t len;
      if (!cursor.ReadU32(&len)) return Truncated("kVectors");
      if (static_cast<uint64_t>(len) * 4 > cursor.remaining()) {
        return Status::Corruption(
            StrFormat("kVectors vector length %u exceeds %zu bytes left", len,
                      cursor.remaining()));
      }
      std::vector<float> values(len);
      for (uint32_t j = 0; j < len; ++j) {
        if (!cursor.ReadF32(&values[j])) return Truncated("kVectors");
      }
      response.vectors.emplace_back(std::move(values));
    }
    out->push_back(std::move(response));
  }
  if (!cursor.done()) {
    return Status::Corruption("trailing bytes after kVectors entries");
  }
  return Status::Ok();
}

Status DecodeError(std::string_view payload, WireCode* code,
                   std::string* message) {
  Cursor cursor(payload);
  uint8_t raw;
  if (!cursor.ReadU8(&raw)) return Truncated("kError");
  if (raw > static_cast<uint8_t>(WireCode::kUnsupported)) {
    return Status::Corruption(StrFormat("invalid wire code %u", raw));
  }
  *code = static_cast<WireCode>(raw);
  const std::string_view rest = cursor.ReadRemainder();
  message->assign(rest.data(), rest.size());
  return Status::Ok();
}

}  // namespace pkgm::net
