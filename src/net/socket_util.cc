#include "net/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace pkgm::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

void ScopedFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

Status SetTcpNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

Status SetSendBufferBytes(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) < 0) {
    return Errno("setsockopt(SO_SNDBUF)");
  }
  return Status::Ok();
}

StatusOr<ScopedFd> ListenTcp(const std::string& address, uint16_t port,
                             int backlog, bool reuseport,
                             uint16_t* bound_port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
          0) {
    return Errno("setsockopt(SO_REUSEPORT)");
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad bind address '%s'", address.c_str()));
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  PKGM_RETURN_IF_ERROR(SetNonBlocking(fd.get()));

  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

StatusOr<ScopedFd> ConnectTcp(const std::string& host, uint16_t port,
                              int timeout_ms) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                               &result);
  if (rc != 0) {
    return Status::IoError(StrFormat("getaddrinfo(%s): %s", host.c_str(),
                                     ::gai_strerror(rc)));
  }

  Status last_error = Status::IoError("no addresses resolved");
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    ScopedFd fd(::socket(ai->ai_family,
                         ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         ai->ai_protocol));
    if (!fd.valid()) {
      last_error = Errno("socket");
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) < 0 &&
        errno != EINPROGRESS) {
      last_error = Errno("connect");
      continue;
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      last_error = ready == 0 ? Status::IoError("connect timed out")
                              : Errno("poll");
      continue;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      last_error = Errno("getsockopt(SO_ERROR)");
      continue;
    }
    if (so_error != 0) {
      last_error = Status::IoError(
          StrFormat("connect: %s", std::strerror(so_error)));
      continue;
    }
    // Back to blocking mode: the client library uses blocking writes and a
    // dedicated reader thread per connection.
    const int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
      last_error = Errno("fcntl(~O_NONBLOCK)");
      continue;
    }
    const Status nodelay = SetTcpNoDelay(fd.get());
    if (!nodelay.ok()) {
      last_error = nodelay;
      continue;
    }
    ::freeaddrinfo(result);
    return fd;
  }
  ::freeaddrinfo(result);
  return last_error;
}

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument(
        StrFormat("expected host:port, got '%s'", spec.c_str()));
  }
  char* end = nullptr;
  const unsigned long value =
      std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return Status::InvalidArgument(
        StrFormat("bad port in '%s'", spec.c_str()));
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::Ok();
}

}  // namespace pkgm::net
