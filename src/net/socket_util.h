#ifndef PKGM_NET_SOCKET_UTIL_H_
#define PKGM_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace pkgm::net {

/// Owning file descriptor: closes on destruction, move-only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

/// Disables Nagle on a TCP socket (the protocol is request/response with
/// its own batching; coalescing delay only adds latency).
Status SetTcpNoDelay(int fd);

/// Shrinks the kernel send buffer (tests use this to exercise the
/// userspace outbox bound with little traffic).
Status SetSendBufferBytes(int fd, int bytes);

/// Creates a TCP listener bound to address:port (port 0 = ephemeral),
/// non-blocking, SO_REUSEADDR, optionally SO_REUSEPORT. On success returns
/// the listening fd; *bound_port receives the actual port.
StatusOr<ScopedFd> ListenTcp(const std::string& address, uint16_t port,
                             int backlog, bool reuseport,
                             uint16_t* bound_port);

/// Blocking TCP connect with a timeout; the returned socket is in blocking
/// mode with TCP_NODELAY set.
StatusOr<ScopedFd> ConnectTcp(const std::string& host, uint16_t port,
                              int timeout_ms);

/// Splits "host:port"; fails on a missing or non-numeric port.
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

}  // namespace pkgm::net

#endif  // PKGM_NET_SOCKET_UTIL_H_
