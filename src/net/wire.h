#ifndef PKGM_NET_WIRE_H_
#define PKGM_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.h"
#include "util/status.h"

namespace pkgm::net {

/// PKGM wire protocol v1 — the versioned binary framing the network serving
/// subsystem speaks. Every frame is a fixed 24-byte little-endian header
/// followed by `payload_len` payload bytes:
///
///   offset  size  field
///   0       4     magic            0x4d474b50 ("PKGM" on the wire)
///   4       1     version          kWireVersion
///   5       1     type             FrameType
///   6       2     flags            reserved, must be 0
///   8       8     correlation_id   echoed verbatim in the response frame
///   16      4     payload_len      bytes following the header
///   20      4     payload_crc32c   CRC32C over the payload bytes
///
/// Integrity policy: a header that fails validation (bad magic, unknown
/// version, non-zero flags, payload_len over the negotiated cap) or a
/// payload that fails its CRC means the byte stream can no longer be
/// trusted — the receiver closes the connection. An *unknown frame type*
/// with a valid header and CRC leaves the stream in sync; the server
/// answers it with a kError frame and keeps the connection (forward
/// compatibility).
constexpr uint32_t kWireMagic = 0x4d474b50;
constexpr uint8_t kWireVersion = 1;
constexpr size_t kFrameHeaderBytes = 24;
/// Default cap on payload_len; NetServer/NetClient make it configurable.
constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : uint8_t {
  /// Client → server: batched service-vector request.
  kGetVectors = 1,
  /// Server → client: one response entry per request, submission order.
  kVectors = 2,
  /// Client → server: stats probe (empty payload).
  kStats = 3,
  /// Server → client: ServerStats::StatsJson() bytes as the payload.
  kStatsJson = 4,
  /// Client → server: health probe (empty payload).
  kPing = 5,
  /// Server → client: health probe answer (empty payload).
  kPong = 6,
  /// Server → client: connection-level error (WireCode + message). Sent
  /// for recoverable protocol conditions (e.g. unknown frame type).
  kError = 7,
};

/// Per-request terminal status on the wire; extends serve::ResponseCode
/// with protocol-level conditions.
enum class WireCode : uint8_t {
  kOk = 0,
  kRejected = 1,
  kDeadlineExceeded = 2,
  kInvalidItem = 3,
  /// Never sent by the server; the client library reports local connection
  /// failures with this code.
  kNetworkError = 4,
  /// The server did not understand the frame (unknown type).
  kUnsupported = 5,
};

WireCode WireCodeFromResponse(serve::ResponseCode code);
serve::ResponseCode ResponseCodeFromWire(WireCode code);

/// CRC32C (Castagnoli) over `len` bytes, table-driven software
/// implementation; `crc` seeds chained computation (pass 0 to start).
uint32_t Crc32c(const void* data, size_t len, uint32_t crc = 0);

/// A decoded frame: type + correlation id + raw payload bytes. Payload
/// interpretation is per-type via the Decode* functions below.
struct Frame {
  FrameType type = FrameType::kError;
  uint64_t correlation_id = 0;
  std::string payload;
};

// ------------------------------------------------------------- encoding --

/// Appends a complete frame (header + payload) to `out`.
void AppendFrame(FrameType type, uint64_t correlation_id,
                 std::string_view payload, std::string* out);

/// kGetVectors payload: u32 count, then per request
/// {u32 item, u8 mode, u8 form, u16 reserved, u32 deadline_micros}.
/// Deadlines travel as *relative* microseconds-from-now (clocks are not
/// comparable across machines); 0 means no deadline, and an
/// already-expired absolute deadline is clamped to 1 so expiry survives
/// the trip.
std::string EncodeGetVectors(uint64_t correlation_id,
                             const std::vector<serve::ServiceRequest>& requests,
                             serve::ServeClock::time_point now);

/// kVectors payload: u32 count, then per entry {u8 code, u8 flags
/// (bit0 = cache_hit), u16 reserved, u32 num_vectors, num_vectors *
/// {u32 len, len * f32}}.
std::string EncodeVectors(uint64_t correlation_id,
                          const std::vector<serve::ServiceResponse>& responses);

/// kError payload: u8 code, then the message bytes to the payload end.
std::string EncodeError(uint64_t correlation_id, WireCode code,
                        std::string_view message);

/// kStatsJson payload: the JSON bytes verbatim.
std::string EncodeStatsJson(uint64_t correlation_id, std::string_view json);

/// Empty-payload frame (kStats, kPing, kPong).
std::string EncodeControl(FrameType type, uint64_t correlation_id);

// ------------------------------------------------------------- decoding --

/// Incremental frame extraction over a byte stream: feed arbitrarily
/// fragmented reads, pull complete validated frames out. Single-owner
/// (one per connection), not thread-safe.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `len` more stream bytes.
  void Feed(const void* data, size_t len);

  enum class Result {
    /// A complete frame was validated and moved into *frame.
    kFrame,
    /// The buffer does not hold a complete frame yet.
    kNeedMore,
    /// Protocol violation (bad magic/version/flags/length/CRC). The stream
    /// is unrecoverable; *error names the violation. The caller must close
    /// the connection — further Next() calls keep returning kError.
    kError,
  };

  Result Next(Frame* frame, std::string* error);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// Inverse of EncodeGetVectors: reconstructs absolute deadlines against
/// `now`. Fails on truncated/garbled payloads or out-of-range enum values;
/// `count` is validated against the payload size before any allocation.
Status DecodeGetVectors(std::string_view payload,
                        serve::ServeClock::time_point now,
                        std::vector<serve::ServiceRequest>* out);

/// Inverse of EncodeVectors. Every length is validated against the
/// remaining payload before allocation, so a hostile frame cannot force an
/// allocation larger than the frame itself.
Status DecodeVectors(std::string_view payload,
                     std::vector<serve::ServiceResponse>* out);

Status DecodeError(std::string_view payload, WireCode* code,
                   std::string* message);

}  // namespace pkgm::net

#endif  // PKGM_NET_WIRE_H_
