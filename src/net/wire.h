#ifndef PKGM_NET_WIRE_H_
#define PKGM_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.h"
#include "util/status.h"

namespace pkgm::net {

/// PKGM wire protocol v2 — the versioned binary framing the network serving
/// and distributed-training subsystems speak. Every frame is a fixed
/// 24-byte little-endian header followed by `payload_len` payload bytes:
///
///   offset  size  field
///   0       4     magic            0x4d474b50 ("PKGM" on the wire)
///   4       1     version          kWireVersion
///   5       1     type             FrameType
///   6       2     flags            reserved, must be 0
///   8       8     correlation_id   echoed verbatim in the response frame
///   16      4     payload_len      bytes following the header
///   20      4     payload_crc32c   CRC32C over the payload bytes
///
/// Integrity policy: a header that fails validation (bad magic, unknown
/// version, non-zero flags, payload_len over the negotiated cap) or a
/// payload that fails its CRC means the byte stream can no longer be
/// trusted — the receiver closes the connection. An *unknown frame type*
/// with a valid header and CRC leaves the stream in sync; the server
/// answers it with a kError frame and keeps the connection (forward
/// compatibility).
constexpr uint32_t kWireMagic = 0x4d474b50;
/// v2 added the parameter-server frames (kPullRows .. kBarrierReply); v3
/// added the downstream-inference frames (kRecommend .. kAlignReply). Both
/// ends of a deployment ship from one tree, so the decoder requires an
/// exact version match; a v1/v2 peer is cut off at the header — an old
/// peer can never misparse an inference frame as something it knows.
constexpr uint8_t kWireVersion = 3;
constexpr size_t kFrameHeaderBytes = 24;
/// Default cap on payload_len; NetServer/NetClient make it configurable.
constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

enum class FrameType : uint8_t {
  /// Client → server: batched service-vector request.
  kGetVectors = 1,
  /// Server → client: one response entry per request, submission order.
  kVectors = 2,
  /// Client → server: stats probe (empty payload).
  kStats = 3,
  /// Server → client: ServerStats::StatsJson() bytes as the payload.
  kStatsJson = 4,
  /// Client → server: health probe (empty payload).
  kPing = 5,
  /// Server → client: health probe answer (empty payload).
  kPong = 6,
  /// Server → client: connection-level error (WireCode + message). Sent
  /// for recoverable protocol conditions (e.g. unknown frame type).
  kError = 7,

  // --- v2: distributed parameter-server training (src/dist/) ---

  /// Worker → param server: fetch embedding rows by id, grouped into
  /// per-table sections.
  kPullRows = 8,
  /// Param server → worker: the requested rows (ids echoed back).
  kRows = 9,
  /// Worker → param server: a serialized GradArena of touched-row gradient
  /// deltas for rows this shard owns, plus the batch scale factor.
  kPushGrads = 10,
  /// Param server → worker: push applied. Workers bound the number of
  /// unacknowledged pushes per shard (the staleness bound).
  kPushAck = 11,
  /// Worker → param server: shard/model configuration probe (empty).
  kShardInfo = 12,
  /// Param server → worker: shard index/count + model shape + optimizer.
  kShardInfoReply = 13,
  /// Worker → param server: epoch barrier. The server holds the reply
  /// until every expected worker has arrived at the same epoch.
  kBarrier = 14,
  /// Param server → worker: barrier released.
  kBarrierReply = 15,

  // --- v3: downstream-task inference (src/infer/) ---

  /// Client → server: batched NCF recommendation scoring (user, item).
  kRecommend = 16,
  /// Server → client: one {code, score} entry per request, in order.
  kRecommendReply = 17,
  /// Client → server: batched item classification (item, top_k).
  kClassify = 18,
  /// Server → client: one {code, top-k (class, prob) list} per request.
  kClassifyReply = 19,
  /// Client → server: batched item alignment (item, item_b).
  kAlign = 20,
  /// Server → client: one {code, score} entry per request, in order.
  kAlignReply = 21,
};

/// Per-request terminal status on the wire; extends serve::ResponseCode
/// with protocol-level conditions.
enum class WireCode : uint8_t {
  kOk = 0,
  kRejected = 1,
  kDeadlineExceeded = 2,
  kInvalidItem = 3,
  /// Never sent by the server; the client library reports local connection
  /// failures with this code.
  kNetworkError = 4,
  /// The server did not understand the frame (unknown type).
  kUnsupported = 5,
  /// The request's tenant exhausted its admission quota (token bucket).
  kQuotaExceeded = 6,
};

/// Highest WireCode value; decoders reject anything above it.
inline constexpr uint8_t kMaxWireCode =
    static_cast<uint8_t>(WireCode::kQuotaExceeded);

WireCode WireCodeFromResponse(serve::ResponseCode code);
serve::ResponseCode ResponseCodeFromWire(WireCode code);

/// CRC32C (Castagnoli) over `len` bytes; `crc` seeds chained computation
/// (pass 0 to start). Dispatches once per process to the hardware CRC32C
/// instructions where available (SSE4.2 on x86-64, the ARMv8 CRC
/// extension) and to the table-driven software implementation otherwise;
/// setting PKGM_CRC32C=sw in the environment pins the software path. Both
/// paths produce identical values — the checksum is on the per-batch
/// gradient push path, and the software implementation is kept as the
/// parity oracle the hardware path is tested against.
uint32_t Crc32c(const void* data, size_t len, uint32_t crc = 0);

/// The table-driven reference implementation (always available).
uint32_t Crc32cSoftware(const void* data, size_t len, uint32_t crc = 0);

/// Name of the CRC32C implementation Crc32c() dispatches to: "sse4.2",
/// "armv8-crc" or "software".
const char* Crc32cImplName();

/// A decoded frame: type + correlation id + raw payload bytes. Payload
/// interpretation is per-type via the Decode* functions below.
struct Frame {
  FrameType type = FrameType::kError;
  uint64_t correlation_id = 0;
  std::string payload;
};

// ------------------------------------------------------------- encoding --

/// Appends a complete frame (header + payload) to `out`.
void AppendFrame(FrameType type, uint64_t correlation_id,
                 std::string_view payload, std::string* out);

/// kGetVectors payload: u32 count, then per request
/// {u32 item, u8 mode, u8 form, u16 tenant, u32 deadline_micros}.
/// The tenant field (ex-reserved; older clients always sent 0, which is
/// the default tenant — wire-compatible) feeds per-tenant admission
/// quotas on the server.
/// Deadlines travel as *relative* microseconds-from-now (clocks are not
/// comparable across machines); 0 means no deadline, and an
/// already-expired absolute deadline is clamped to 1 so expiry survives
/// the trip.
std::string EncodeGetVectors(uint64_t correlation_id,
                             const std::vector<serve::ServiceRequest>& requests,
                             serve::ServeClock::time_point now);

/// kVectors payload: u32 count, then per entry {u8 code, u8 flags
/// (bit0 = cache_hit), u16 reserved, u32 num_vectors, num_vectors *
/// {u32 len, len * f32}}.
std::string EncodeVectors(uint64_t correlation_id,
                          const std::vector<serve::ServiceResponse>& responses);

/// kError payload: u8 code, then the message bytes to the payload end.
std::string EncodeError(uint64_t correlation_id, WireCode code,
                        std::string_view message);

/// kStatsJson payload: the JSON bytes verbatim.
std::string EncodeStatsJson(uint64_t correlation_id, std::string_view json);

/// Empty-payload frame (kStats, kPing, kPong).
std::string EncodeControl(FrameType type, uint64_t correlation_id);

// ------------------------------------------------------------- decoding --

/// Incremental frame extraction over a byte stream: feed arbitrarily
/// fragmented reads, pull complete validated frames out. Single-owner
/// (one per connection), not thread-safe.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `len` more stream bytes.
  void Feed(const void* data, size_t len);

  enum class Result {
    /// A complete frame was validated and moved into *frame.
    kFrame,
    /// The buffer does not hold a complete frame yet.
    kNeedMore,
    /// Protocol violation (bad magic/version/flags/length/CRC). The stream
    /// is unrecoverable; *error names the violation. The caller must close
    /// the connection — further Next() calls keep returning kError.
    kError,
  };

  Result Next(Frame* frame, std::string* error);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

/// Inverse of EncodeGetVectors: reconstructs absolute deadlines against
/// `now`. Fails on truncated/garbled payloads or out-of-range enum values;
/// `count` is validated against the payload size before any allocation.
Status DecodeGetVectors(std::string_view payload,
                        serve::ServeClock::time_point now,
                        std::vector<serve::ServiceRequest>* out);

/// Inverse of EncodeVectors. Every length is validated against the
/// remaining payload before allocation, so a hostile frame cannot force an
/// allocation larger than the frame itself.
Status DecodeVectors(std::string_view payload,
                     std::vector<serve::ServiceResponse>* out);

Status DecodeError(std::string_view payload, WireCode* code,
                   std::string* message);

// ------------------------------------- distributed-training frames (v2) --

/// Which parameter table a pull/push section addresses. Values are wire
/// bytes; keep them dense and stable.
enum class ParamTable : uint8_t {
  kEntity = 0,
  kRelation = 1,
  kTransfer = 2,
  kHyperplane = 3,
};
constexpr uint8_t kMaxParamTable = 3;

/// One per-table group of row ids in a kPullRows request.
struct PullSection {
  ParamTable table = ParamTable::kEntity;
  std::vector<uint32_t> ids;
};

/// One per-table group of rows in a kRows response; `values` holds
/// ids.size() rows of `row_size` floats, in id order.
struct RowsSection {
  ParamTable table = ParamTable::kEntity;
  uint32_t row_size = 0;
  std::vector<uint32_t> ids;
  std::vector<float> values;
};

/// Shard/model configuration announced by a parameter server, so workers
/// can validate that every shard agrees with the local replica before
/// training starts.
struct ShardInfo {
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  uint32_t num_entities = 0;
  uint32_t num_relations = 0;
  uint32_t dim = 0;
  uint8_t scorer = 0;              ///< core::TripleScorerKind byte
  bool use_relation_module = true;
  uint8_t optimizer = 0;           ///< core::OptimizerKind byte
  float learning_rate = 0.0f;
  uint64_t model_seed = 0;
};

/// kPullRows payload: u32 num_sections, then per section {u8 table,
/// u32 count, count * u32 id}.
std::string EncodePullRows(uint64_t correlation_id,
                           const std::vector<PullSection>& sections);
Status DecodePullRows(std::string_view payload,
                      std::vector<PullSection>* out);

/// kRows payload: u32 num_sections, then per section {u8 table,
/// u32 row_size, u32 count, count * u32 id, count * row_size * f32}.
/// Ids and values travel as two contiguous runs so both sides memcpy.
std::string EncodeRows(uint64_t correlation_id,
                       const std::vector<RowsSection>& sections);
Status DecodeRows(std::string_view payload, std::vector<RowsSection>* out);

/// kPushGrads payload: f32 scale, u32 epoch, then a serialized GradArena
/// blob (see core::SerializeGradArena) to the payload end. The blob keeps
/// its own corruption-rejecting header; this codec treats it as bytes.
std::string EncodePushGrads(uint64_t correlation_id, float scale,
                            uint32_t epoch, std::string_view arena_blob);
Status DecodePushGrads(std::string_view payload, float* scale,
                       uint32_t* epoch, std::string_view* arena_blob);

/// kPushAck payload: u32 rows_applied.
std::string EncodePushAck(uint64_t correlation_id, uint32_t rows_applied);
Status DecodePushAck(std::string_view payload, uint32_t* rows_applied);

/// kShardInfoReply payload: the ShardInfo fields in declaration order
/// (u32 x5, u8 scorer, u8 relation_module, u8 optimizer, u8 reserved,
/// f32 lr, u64 seed). kShardInfo itself is an empty-payload probe
/// (EncodeControl).
std::string EncodeShardInfoReply(uint64_t correlation_id,
                                 const ShardInfo& info);
Status DecodeShardInfoReply(std::string_view payload, ShardInfo* out);

/// kBarrier payload: u32 epoch, u32 num_workers (the arrival count the
/// server waits for; every worker of one epoch must announce the same).
std::string EncodeBarrier(uint64_t correlation_id, uint32_t epoch,
                          uint32_t num_workers);
Status DecodeBarrier(std::string_view payload, uint32_t* epoch,
                     uint32_t* num_workers);

/// kBarrierReply payload: u32 epoch, u32 workers_arrived.
std::string EncodeBarrierReply(uint64_t correlation_id, uint32_t epoch,
                               uint32_t workers_arrived);
Status DecodeBarrierReply(std::string_view payload, uint32_t* epoch,
                          uint32_t* workers_arrived);

// ------------------------------------------ inference frames (v3) --------

/// kRecommend payload: u32 count, then per request {u32 user, u32 item,
/// u8 mode, u8 reserved (must be 0), u16 tenant, u32 deadline_micros}.
/// Deadlines use the same relative-microsecond convention as
/// EncodeGetVectors. Every request's `task` must be TaskKind::kRecommend.
std::string EncodeRecommend(uint64_t correlation_id,
                            const std::vector<serve::ServiceRequest>& requests,
                            serve::ServeClock::time_point now);
Status DecodeRecommend(std::string_view payload,
                       serve::ServeClock::time_point now,
                       std::vector<serve::ServiceRequest>* out);

/// kRecommendReply / kAlignReply payload: u32 count, then per entry
/// {u8 code, u8 flags (bit0 = cache_hit), u16 reserved (must be 0),
/// f32 score}. The count is validated against the exact payload size
/// before any allocation; trailing bytes are rejected.
std::string EncodeScoreReply(FrameType type, uint64_t correlation_id,
                             const std::vector<serve::ServiceResponse>& responses);
Status DecodeScoreReply(std::string_view payload,
                        std::vector<serve::ServiceResponse>* out);

/// kClassify payload: u32 count, then per request {u32 item, u32 top_k,
/// u8 mode, u8 reserved (must be 0), u16 tenant, u32 deadline_micros}.
std::string EncodeClassify(uint64_t correlation_id,
                           const std::vector<serve::ServiceRequest>& requests,
                           serve::ServeClock::time_point now);
Status DecodeClassify(std::string_view payload,
                      serve::ServeClock::time_point now,
                      std::vector<serve::ServiceRequest>* out);

/// kClassifyReply payload: u32 count, then per entry {u8 code, u8 flags
/// (bit0 = cache_hit), u16 k, k * {u32 class_id, f32 prob}}. Variable-size
/// entries: the count is checked against the minimum entry size before
/// allocation and every k against the remaining bytes.
std::string EncodeClassifyReply(uint64_t correlation_id,
                                const std::vector<serve::ServiceResponse>& responses);
Status DecodeClassifyReply(std::string_view payload,
                           std::vector<serve::ServiceResponse>* out);

/// kAlign payload: u32 count, then per request {u32 item, u32 item_b,
/// u8 mode, u8 reserved (must be 0), u16 tenant, u32 deadline_micros}.
std::string EncodeAlign(uint64_t correlation_id,
                        const std::vector<serve::ServiceRequest>& requests,
                        serve::ServeClock::time_point now);
Status DecodeAlign(std::string_view payload, serve::ServeClock::time_point now,
                   std::vector<serve::ServiceRequest>* out);

}  // namespace pkgm::net

#endif  // PKGM_NET_WIRE_H_
