// The io_uring completion backend: receives are armed as per-connection
// RECV SQEs into backend-owned 64K buffers, sends are copied into a
// per-connection bounce buffer and submitted as SENDMSG SQEs, the wakeup
// eventfd is a re-armed READ, and the listener is a re-armed one-shot
// POLL_ADD — so one io_uring_enter per loop iteration replaces
// epoll_wait + one read()/sendmsg() per ready connection.
//
// Lifetime rules the kernel imposes:
//  - An in-flight SQE's buffers must outlive the op. Send data is therefore
//    COPIED into the backend (never borrowed from the caller's outbox), and
//    a removed connection becomes a zombie until its canceled ops complete.
//  - A queued-but-unsubmitted SQE holds a raw fd number, so
//    RemoveConnection flushes the SQ before the caller may close the fd
//    (submitted ops hold a kernel file reference and are fd-reuse safe).
#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/io_backend.h"
#include "net/uring.h"
#include "util/logging.h"

namespace pkgm::net {
namespace {

constexpr unsigned kRingEntries = 256;
constexpr size_t kRecvBufBytes = 64 * 1024;
/// Upper bound on bytes copied per SENDMSG submission: bounds the
/// double-buffer memory per connection; the caller re-flushes the rest on
/// completion.
constexpr size_t kMaxSendCopyBytes = 256 * 1024;

// user_data = (tag << 2) | op. Connection tags start at 2, so tags 0/1 are
// free for the backend's own ops.
constexpr uint64_t kOpRecv = 0;
constexpr uint64_t kOpSend = 1;
constexpr uint64_t kUdWake = (0u << 2) | 2u;
constexpr uint64_t kUdAccept = (0u << 2) | 3u;
constexpr uint64_t kUdCancel = (1u << 2) | 3u;

class UringBackend : public IoBackend {
 public:
  ~UringBackend() override { Shutdown(); }

  const char* name() const override { return "io_uring"; }

  Status Init(IoEventHandler* handler, int wakeup_fd) override {
    handler_ = handler;
    wakeup_fd_ = wakeup_fd;
    Status status = ring_.Init(kRingEntries);
    if (!status.ok()) return status;
    wake_buf_ = std::make_unique<uint64_t>(0);
    ArmWakeRead();
    return Status::Ok();
  }

  Status AttachListener(int fd) override {
    listener_fd_ = fd;
    ArmAcceptPoll();
    return Status::Ok();
  }

  void DetachListener() override {
    listener_fd_ = -1;
    if (accept_armed_) QueueCancel(kUdAccept);
  }

  Status AddConnection(uint64_t tag, int fd, bool want_recv) override {
    auto conn = std::make_unique<ConnIo>();
    conn->fd = fd;
    conn->recv_buf.resize(kRecvBufBytes);
    conn->recv_paused = !want_recv;
    ConnIo* raw = conn.get();
    conns_.emplace(tag, std::move(conn));
    if (want_recv) ArmRecv(tag, raw);
    return Status::Ok();
  }

  void PauseRecv(uint64_t tag) override {
    auto it = conns_.find(tag);
    if (it == conns_.end()) return;
    ConnIo& conn = *it->second;
    if (conn.recv_paused) return;
    conn.recv_paused = true;
    if (conn.recv_armed) QueueCancel((tag << 2) | kOpRecv);
  }

  void RemoveConnection(uint64_t tag) override {
    auto it = conns_.find(tag);
    if (it == conns_.end()) return;
    ConnIo& conn = *it->second;
    conn.recv_paused = true;
    conn.zombie = true;
    if (conn.recv_armed) QueueCancel((tag << 2) | kOpRecv);
    if (conn.send_inflight) QueueCancel((tag << 2) | kOpSend);
    // Flush the SQ while the fd is still open: once submitted, in-flight
    // ops hold a kernel file reference and survive (or cancel) safely even
    // if the caller closes the fd and the number is reused.
    ring_.Submit();
    SyncStats();
    if (!conn.recv_armed && !conn.send_inflight) {
      conns_.erase(it);  // nothing in flight: no zombie needed
    }
  }

  SendResult SubmitSend(uint64_t tag, int fd, const iovec* iov,
                        int iovcnt) override {
    auto it = conns_.find(tag);
    if (it == conns_.end()) return {SendResult::Kind::kError, 0};
    ConnIo& conn = *it->second;
    if (conn.send_inflight) return {SendResult::Kind::kWouldBlock, 0};
    io_uring_sqe* sqe = ring_.GetSqe();
    if (sqe == nullptr) {
      // Ring saturated even after a flush (CQ backed up). Retry from the
      // next Poll iteration, after the drain frees it.
      retry_send_space_.push_back(tag);
      return {SendResult::Kind::kWouldBlock, 0};
    }
    conn.send_buf.clear();
    for (int i = 0; i < iovcnt && conn.send_buf.size() < kMaxSendCopyBytes;
         ++i) {
      const size_t room = kMaxSendCopyBytes - conn.send_buf.size();
      const size_t take = iov[i].iov_len < room ? iov[i].iov_len : room;
      conn.send_buf.append(static_cast<const char*>(iov[i].iov_base), take);
    }
    conn.send_iov.iov_base = conn.send_buf.data();
    conn.send_iov.iov_len = conn.send_buf.size();
    std::memset(&conn.send_msg, 0, sizeof(conn.send_msg));
    conn.send_msg.msg_iov = &conn.send_iov;
    conn.send_msg.msg_iovlen = 1;
    PrepSendmsg(sqe, fd, &conn.send_msg, (tag << 2) | kOpSend);
    conn.send_inflight = true;
    send_submissions_.fetch_add(1, std::memory_order_relaxed);
    return {SendResult::Kind::kAsync, conn.send_buf.size()};
  }

  void Poll(int timeout_ms) override {
    // Re-arm anything that couldn't get an SQE last iteration.
    if (!retry_recv_arm_.empty()) {
      std::vector<uint64_t> retry;
      retry.swap(retry_recv_arm_);
      for (uint64_t tag : retry) {
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;
        ConnIo& conn = *it->second;
        if (!conn.zombie && !conn.recv_paused && !conn.recv_armed) {
          ArmRecv(tag, &conn);
        }
      }
    }
    if (!retry_send_space_.empty()) {
      std::vector<uint64_t> retry;
      retry.swap(retry_send_space_);
      for (uint64_t tag : retry) {
        if (conns_.find(tag) != conns_.end()) handler_->OnSendSpace(tag);
      }
    }
    // Free peek first: CQEs the kernel already published are visible in the
    // mmap'd CQ without a syscall, and the follow-up SQEs their dispatch
    // queues (recv re-arms, responses) are NOT flushed here — they ride the
    // next blocking enter. Deferral is self-limiting: unpublished ops
    // produce no completions, so a busy burst drains the CQ within a few
    // iterations and falls through to the enter that publishes everything.
    // Net effect: an iteration that finds ready work costs zero syscalls.
    const unsigned ready = ring_.ForEachCompletion(
        [this](uint64_t ud, int32_t res, uint32_t) { Dispatch(ud, res); });
    if (ready > 0) {
      last_round_cqes_ = ready;
      SyncStats();
      return;
    }
    // The single syscall of the iteration: submit every queued SQE and wait
    // for completions (or the timeout that paces drain/idle sweeps). Under
    // dense traffic, coalesce: wait for a batch sized to the previous
    // round, bounded by a 2 ms moderation window, so one enter carries many
    // completions instead of returning on the first (the delay is invisible
    // under load, where queueing dominates, and the density signal decays
    // the moment a round comes back small). Sparse traffic keeps
    // min_complete 1 and pays zero added latency.
    unsigned min_complete = 1;
    int wait_ms = timeout_ms;
    if (last_round_cqes_ >= 2) {
      min_complete = last_round_cqes_ < 8 ? last_round_cqes_ : 8;
      if (wait_ms < 0 || wait_ms > 2) wait_ms = 2;
    }
    const Status waited = ring_.SubmitAndWait(wait_ms, min_complete);
    if (!waited.ok()) {
      PKGM_LOG(Error) << "io_uring wait failed: " << waited.ToString();
    }
    last_round_cqes_ = ring_.ForEachCompletion(
        [this](uint64_t ud, int32_t res, uint32_t) { Dispatch(ud, res); });
    SyncStats();
  }

  IoBackendStats stats() const override {
    IoBackendStats s;
    s.wait_calls = enter_calls_.load(std::memory_order_relaxed);
    s.recv_submissions = recv_submissions_.load(std::memory_order_relaxed);
    s.send_submissions = send_submissions_.load(std::memory_order_relaxed);
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Per-connection kernel-op state. recv_buf / send_buf are the buffers
  /// in-flight ops write/read; they (and this struct) must outlive the ops.
  struct ConnIo {
    int fd = -1;
    bool recv_armed = false;
    bool recv_paused = false;
    bool send_inflight = false;
    /// Removed by the caller but with ops still in flight; events are
    /// swallowed and the struct is reaped when the last op completes.
    bool zombie = false;
    std::vector<char> recv_buf;
    std::string send_buf;
    iovec send_iov{};
    msghdr send_msg{};
  };

  void ArmWakeRead() {
    io_uring_sqe* sqe = ring_.GetSqe();
    if (sqe == nullptr) return;  // retried implicitly: Poll re-arms via Dispatch
    PrepRead(sqe, wakeup_fd_, wake_buf_.get(), sizeof(uint64_t), kUdWake);
    wake_armed_ = true;
  }

  void ArmAcceptPoll() {
    if (listener_fd_ < 0) return;
    io_uring_sqe* sqe = ring_.GetSqe();
    if (sqe == nullptr) return;
    PrepPollIn(sqe, listener_fd_, kUdAccept);
    accept_armed_ = true;
  }

  void ArmRecv(uint64_t tag, ConnIo* conn) {
    io_uring_sqe* sqe = ring_.GetSqe();
    if (sqe == nullptr) {
      retry_recv_arm_.push_back(tag);
      return;
    }
    PrepRecv(sqe, conn->fd, conn->recv_buf.data(), conn->recv_buf.size(),
             (tag << 2) | kOpRecv);
    conn->recv_armed = true;
    recv_submissions_.fetch_add(1, std::memory_order_relaxed);
  }

  void QueueCancel(uint64_t target) {
    io_uring_sqe* sqe = ring_.GetSqe();
    if (sqe == nullptr) return;  // op will complete on its own eventually
    PrepCancel(sqe, target, kUdCancel);
  }

  void ReapIfIdle(uint64_t tag) {
    auto it = conns_.find(tag);
    if (it == conns_.end()) return;
    const ConnIo& conn = *it->second;
    if (conn.zombie && !conn.recv_armed && !conn.send_inflight) {
      conns_.erase(it);
    }
  }

  void Dispatch(uint64_t ud, int32_t res) {
    if (ud == kUdWake) {
      wake_armed_ = false;
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      // Re-arm before the handler runs: a signal racing the drain lands in
      // the eventfd counter and completes the fresh READ immediately.
      ArmWakeRead();
      handler_->OnWakeup();
      return;
    }
    if (ud == kUdAccept) {
      accept_armed_ = false;
      if (res >= 0 && listener_fd_ >= 0) {
        handler_->OnAcceptReady();
        ArmAcceptPoll();  // one-shot poll: re-arm after the accept sweep
      }
      return;
    }
    if (ud == kUdCancel) return;  // cancel's own completion: uninteresting

    const uint64_t tag = ud >> 2;
    const uint64_t op = ud & 3u;
    auto it = conns_.find(tag);
    if (it == conns_.end()) return;  // already reaped
    ConnIo& conn = *it->second;

    if (op == kOpRecv) {
      conn.recv_armed = false;
      if (conn.zombie) {
        ReapIfIdle(tag);
        return;
      }
      if (res > 0) {
        if (!conn.recv_paused) {
          handler_->OnData(tag, conn.recv_buf.data(),
                           static_cast<size_t>(res));
        }
        // The handler may have closed or paused the connection.
        auto again = conns_.find(tag);
        if (again != conns_.end() && !again->second->zombie &&
            !again->second->recv_paused && !again->second->recv_armed) {
          ArmRecv(tag, again->second.get());
        }
        return;
      }
      if (res == 0) {
        handler_->OnPeerClosed(tag);
        return;
      }
      if (res == -ECANCELED) return;  // paused or removed: stay quiet
      if (res == -EAGAIN || res == -EINTR) {
        if (!conn.recv_paused) ArmRecv(tag, &conn);
        return;
      }
      handler_->OnPeerClosed(tag);  // ECONNRESET and friends
      return;
    }

    // op == kOpSend
    conn.send_inflight = false;
    conn.send_buf.clear();
    if (conn.zombie) {
      ReapIfIdle(tag);
      return;
    }
    if (res >= 0) {
      handler_->OnSendComplete(tag, res);
      return;
    }
    if (res == -ECANCELED) return;
    if (res == -EAGAIN || res == -EINTR) {
      handler_->OnSendComplete(tag, 0);  // retired nothing: caller re-flushes
      return;
    }
    handler_->OnSendComplete(tag, res);  // fatal: caller closes
  }

  void SyncStats() {
    enter_calls_.store(ring_.enter_calls(), std::memory_order_relaxed);
  }

  /// Cancels and drains every in-flight op so no kernel op outlives the
  /// buffers it writes into. Ops that refuse to finish within the bound
  /// get their buffers intentionally leaked — a bounded leak at shutdown
  /// beats a kernel write into freed heap memory.
  void Shutdown() {
    if (!ring_.valid()) return;
    if (wake_armed_) QueueCancel(kUdWake);
    if (accept_armed_) QueueCancel(kUdAccept);
    for (auto& [tag, conn] : conns_) {
      if (conn->recv_armed) QueueCancel((tag << 2) | kOpRecv);
      if (conn->send_inflight) QueueCancel((tag << 2) | kOpSend);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    while (std::chrono::steady_clock::now() < deadline) {
      bool inflight = wake_armed_ || accept_armed_;
      for (const auto& [tag, conn] : conns_) {
        inflight = inflight || conn->recv_armed || conn->send_inflight;
      }
      if (!inflight) break;
      ring_.SubmitAndWait(20);
      ring_.ForEachCompletion([this](uint64_t ud, int32_t res, uint32_t) {
        // Teardown drain: clear op flags only, never call the handler.
        if (ud == kUdWake) {
          wake_armed_ = false;
          return;
        }
        if (ud == kUdAccept) {
          accept_armed_ = false;
          return;
        }
        if (ud == kUdCancel) return;
        auto it = conns_.find(ud >> 2);
        if (it == conns_.end()) return;
        if ((ud & 3u) == kOpRecv) {
          it->second->recv_armed = false;
        } else {
          it->second->send_inflight = false;
        }
        (void)res;
      });
    }
    bool leaked = false;
    if (wake_armed_) {
      wake_buf_.release();  // the READ may still land; 8 bytes, intentional
      leaked = true;
    }
    for (auto& [tag, conn] : conns_) {
      if (conn->recv_armed || conn->send_inflight) {
        conn.release();
        leaked = true;
      }
    }
    conns_.clear();
    if (leaked) {
      PKGM_LOG(Warning)
          << "io_uring ops still in flight at backend shutdown; "
             "leaking their buffers";
    }
  }

  IoEventHandler* handler_ = nullptr;
  int wakeup_fd_ = -1;
  int listener_fd_ = -1;
  UringQueue ring_;
  std::unique_ptr<uint64_t> wake_buf_;
  bool wake_armed_ = false;
  bool accept_armed_ = false;
  std::unordered_map<uint64_t, std::unique_ptr<ConnIo>> conns_;
  std::vector<uint64_t> retry_recv_arm_;
  std::vector<uint64_t> retry_send_space_;
  /// Completions dispatched in the previous round — the density signal the
  /// coalescing wait in Poll() sizes itself from.
  unsigned last_round_cqes_ = 0;

  // Relaxed atomics: written by the loop thread, read by stats snapshots.
  std::atomic<uint64_t> enter_calls_{0};
  std::atomic<uint64_t> recv_submissions_{0};
  std::atomic<uint64_t> send_submissions_{0};
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace

std::unique_ptr<IoBackend> CreateUringBackend() {
  return std::make_unique<UringBackend>();
}

}  // namespace pkgm::net
