#ifndef PKGM_NET_CLIENT_IO_H_
#define PKGM_NET_CLIENT_IO_H_

#include <sys/types.h>
#include <sys/uio.h>

#include <memory>
#include <string>

#include "util/status.h"

namespace pkgm::net {

/// Client-side I/O seam for one pooled NetClient connection, whose sockets
/// are blocking: a writer path (serialized under the connection mutex) and
/// a reader path (the dedicated reader thread). The two paths may run
/// concurrently on the same instance, but each path is single-threaded.
class ClientConnIo {
 public:
  virtual ~ClientConnIo() = default;

  /// "plain" or "io_uring".
  virtual const char* name() const = 0;

  /// Blocking gather-write of every iovec, retrying partial writes and
  /// EINTR until all bytes are on the socket. MSG_NOSIGNAL semantics: a
  /// peer that closed mid-write surfaces as an error, never SIGPIPE.
  virtual Status SendAll(int fd, const iovec* iov, int iovcnt) = 0;

  /// Blocking receive. Returns > 0 with `*data` pointing at the received
  /// bytes in an internal buffer (valid until the next Recv), 0 on EOF, or
  /// a negative errno on a fatal error. EINTR is retried internally.
  virtual ssize_t Recv(int fd, const char** data) = 0;
};

/// Picks the client I/O path: `backend_override` (NetClientOptions) wins,
/// then PKGM_NET_IO, then the runtime probe — the same selection the server
/// uses. io_uring rides two small rings (one per path) and batches a whole
/// SubmitBatch flush into one submission; the fallback is plain blocking
/// sendmsg/read. Never fails: a ring that cannot be built degrades to plain.
std::unique_ptr<ClientConnIo> CreateClientIo(
    const std::string& backend_override);

}  // namespace pkgm::net

#endif  // PKGM_NET_CLIENT_IO_H_
