#include "net/client_io.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

#include "net/io_backend.h"
#include "net/uring.h"
#include "util/string_util.h"

namespace pkgm::net {
namespace {

constexpr size_t kRecvBufBytes = 64 * 1024;

/// Blocking syscalls, one sendmsg per gather and one read per chunk — the
/// portable path and the shape NetClient always had.
class PlainClientIo : public ClientConnIo {
 public:
  PlainClientIo() : recv_buf_(kRecvBufBytes) {}

  const char* name() const override { return "plain"; }

  Status SendAll(int fd, const iovec* iov, int iovcnt) override {
    std::vector<iovec> vec(iov, iov + iovcnt);
    size_t idx = 0;
    while (idx < vec.size()) {
      msghdr msg;
      std::memset(&msg, 0, sizeof(msg));
      msg.msg_iov = vec.data() + idx;
      msg.msg_iovlen = vec.size() - idx;
      const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(
            StrFormat("sendmsg: %s", std::strerror(errno)));
      }
      // Retire fully-written iovecs; a partial tail advances in place.
      size_t sent = static_cast<size_t>(n);
      while (sent > 0 && idx < vec.size()) {
        if (sent >= vec[idx].iov_len) {
          sent -= vec[idx].iov_len;
          ++idx;
        } else {
          vec[idx].iov_base = static_cast<char*>(vec[idx].iov_base) + sent;
          vec[idx].iov_len -= sent;
          sent = 0;
        }
      }
    }
    return Status::Ok();
  }

  ssize_t Recv(int fd, const char** data) override {
    while (true) {
      const ssize_t n = ::read(fd, recv_buf_.data(), recv_buf_.size());
      if (n < 0 && errno == EINTR) continue;
      if (n > 0) *data = recv_buf_.data();
      return n < 0 ? -errno : n;
    }
  }

 private:
  std::vector<char> recv_buf_;
};

/// io_uring path: two tiny rings, one per I/O direction, because the writer
/// (under the connection mutex) and the reader thread run concurrently and
/// a UringQueue is single-threaded. Each op copies into / reads from
/// internal buffers and is waited to completion — never abandoned — so the
/// kernel can never touch caller memory after a call returns.
class UringClientIo : public ClientConnIo {
 public:
  UringClientIo() : recv_buf_(kRecvBufBytes) {}

  const char* name() const override { return "io_uring"; }

  Status Init() {
    Status status = send_ring_.Init(8);
    if (!status.ok()) return status;
    return recv_ring_.Init(8);
  }

  Status SendAll(int fd, const iovec* iov, int iovcnt) override {
    // One gathered copy, then as many SENDMSG ops as partial writes force.
    send_buf_.clear();
    for (int i = 0; i < iovcnt; ++i) {
      send_buf_.append(static_cast<const char*>(iov[i].iov_base),
                       iov[i].iov_len);
    }
    size_t off = 0;
    while (off < send_buf_.size()) {
      io_uring_sqe* sqe = send_ring_.GetSqe();
      if (sqe == nullptr) {
        return Status::IoError("io_uring send ring wedged");
      }
      send_iov_.iov_base = send_buf_.data() + off;
      send_iov_.iov_len = send_buf_.size() - off;
      std::memset(&send_msg_, 0, sizeof(send_msg_));
      send_msg_.msg_iov = &send_iov_;
      send_msg_.msg_iovlen = 1;
      PrepSendmsg(sqe, fd, &send_msg_, /*user_data=*/1);
      int32_t res;
      const Status status = WaitOne(send_ring_, &res);
      if (!status.ok()) return status;
      if (res < 0) {
        if (res == -EINTR || res == -EAGAIN) continue;
        return Status::IoError(
            StrFormat("io_uring sendmsg: %s", std::strerror(-res)));
      }
      off += static_cast<size_t>(res);
    }
    return Status::Ok();
  }

  ssize_t Recv(int fd, const char** data) override {
    while (true) {
      io_uring_sqe* sqe = recv_ring_.GetSqe();
      if (sqe == nullptr) return -EIO;
      PrepRecv(sqe, fd, recv_buf_.data(), recv_buf_.size(),
               /*user_data=*/1);
      int32_t res;
      if (!WaitOne(recv_ring_, &res).ok()) return -EIO;
      if (res == -EINTR || res == -EAGAIN) continue;
      if (res > 0) *data = recv_buf_.data();
      return res;
    }
  }

 private:
  /// Submits the queued op and blocks until its completion arrives. EINTR
  /// and spurious wakeups keep waiting: the op stays in flight and its
  /// buffers are this object's, so returning early is never an option.
  static Status WaitOne(UringQueue& ring, int32_t* res) {
    bool done = false;
    while (!done) {
      const Status status = ring.SubmitAndWait(-1);
      if (!status.ok()) return status;
      ring.ForEachCompletion([&](uint64_t, int32_t r, uint32_t) {
        *res = r;
        done = true;
      });
    }
    return Status::Ok();
  }

  UringQueue send_ring_;
  UringQueue recv_ring_;
  std::string send_buf_;
  iovec send_iov_{};
  msghdr send_msg_{};
  std::vector<char> recv_buf_;
};

}  // namespace

std::unique_ptr<ClientConnIo> CreateClientIo(
    const std::string& backend_override) {
  if (SelectIoBackend(backend_override) == IoBackendKind::kUring) {
    auto io = std::make_unique<UringClientIo>();
    if (io->Init().ok()) return io;
  }
  return std::make_unique<PlainClientIo>();
}

}  // namespace pkgm::net
