#ifndef PKGM_TENSOR_INIT_H_
#define PKGM_TENSOR_INIT_H_

#include <cstddef>

#include "tensor/vec.h"
#include "util/rng.h"

namespace pkgm {

/// Fills span with U(lo, hi).
void UniformInit(size_t n, float lo, float hi, Rng* rng, float* out);

/// Fills span with N(0, stddev^2).
void NormalInit(size_t n, float stddev, Rng* rng, float* out);

/// Xavier/Glorot uniform for a fan_in x fan_out weight:
/// U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))).
void XavierInit(Mat* w, Rng* rng);

/// TransE-style embedding init: U(-6/sqrt(d), 6/sqrt(d)) per the original
/// TransE paper (Bordes et al., 2013), followed by L2 normalization.
void TransEInit(size_t dim, Rng* rng, float* out);

}  // namespace pkgm

#endif  // PKGM_TENSOR_INIT_H_
