#ifndef PKGM_TENSOR_VEC_H_
#define PKGM_TENSOR_VEC_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace pkgm {

/// Owning dense float32 vector. Thin wrapper over contiguous storage with
/// bounds-checked indexing; all math lives in tensor/ops.h so kernels can
/// operate on raw spans regardless of container.
class Vec {
 public:
  Vec() = default;
  /// Creates a vector of `n` elements initialized to `value`.
  explicit Vec(size_t n, float value = 0.0f) : data_(n, value) {}
  /// Takes ownership of existing storage.
  explicit Vec(std::vector<float> data) : data_(std::move(data)) {}
  Vec(std::initializer_list<float> init) : data_(init) {}

  Vec(const Vec&) = default;
  Vec& operator=(const Vec&) = default;
  Vec(Vec&&) = default;
  Vec& operator=(Vec&&) = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator[](size_t i) {
    PKGM_CHECK_LT(i, data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    PKGM_CHECK_LT(i, data_.size());
    return data_[i];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Sets every element to `value`.
  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }
  /// Resizes, zero-filling any new elements.
  void Resize(size_t n) { data_.resize(n, 0.0f); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Vec& a, const Vec& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<float> data_;
};

/// Owning dense row-major float32 matrix.
class Mat {
 public:
  Mat() : rows_(0), cols_(0) {}
  /// Creates a `rows` x `cols` matrix initialized to `value`.
  Mat(size_t rows, size_t cols, float value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  Mat(const Mat&) = default;
  Mat& operator=(const Mat&) = default;
  Mat(Mat&&) = default;
  Mat& operator=(Mat&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& operator()(size_t r, size_t c) {
    PKGM_CHECK_LT(r, rows_);
    PKGM_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    PKGM_CHECK_LT(r, rows_);
    PKGM_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() floats).
  float* Row(size_t r) {
    PKGM_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    PKGM_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  void Zero() { Fill(0.0f); }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace pkgm

#endif  // PKGM_TENSOR_VEC_H_
