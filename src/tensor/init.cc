#include "tensor/init.h"

#include <cmath>

#include "tensor/ops.h"

namespace pkgm {

void UniformInit(size_t n, float lo, float hi, Rng* rng, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = rng->UniformFloat(lo, hi);
}

void NormalInit(size_t n, float stddev, Rng* rng, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = rng->Normal(0.0f, stddev);
}

void XavierInit(Mat* w, Rng* rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(w->rows() + w->cols()));
  UniformInit(w->size(), -bound, bound, rng, w->data());
}

void TransEInit(size_t dim, Rng* rng, float* out) {
  const float bound = 6.0f / std::sqrt(static_cast<float>(dim));
  UniformInit(dim, -bound, bound, rng, out);
  float norm = L2Norm(dim, out);
  if (norm > 0.0f) Scale(dim, 1.0f / norm, out);
}

}  // namespace pkgm
