#ifndef PKGM_TENSOR_SIMD_KERNEL_DISPATCH_H_
#define PKGM_TENSOR_SIMD_KERNEL_DISPATCH_H_

#include <cstddef>

namespace pkgm::simd {

/// Instruction sets the kernel layer can target. kScalar is the portable
/// reference implementation (the seed's loops, bit-for-bit) and is always
/// available; the vector ISAs are compiled only on matching architectures
/// and selected only when the running CPU reports support.
enum class KernelIsa { kScalar, kAvx2, kAvx512, kNeon };

/// Lower-case name used by the PKGM_KERNEL env var, ServerStats backend
/// reporting and the bench JSON ("scalar", "avx2", "avx512", "neon").
const char* KernelIsaName(KernelIsa isa);

/// One implementation of every hot-path kernel. All lengths are in
/// elements; pointers need no particular alignment (vector variants use
/// unaligned loads — see DESIGN.md §10 for the contract).
///
/// Numerical contract: within one table, `l1_distance_batch` scores row i
/// exactly as one `l1_distance` call on that row, and `gemv_raw` computes
/// row i exactly as one `dot` call — so batched and per-candidate scoring
/// of the same data agree bit-for-bit and ranking ties break identically.
/// Across tables only approximate agreement holds (vector reductions
/// reassociate the sum; axpy may fuse the multiply-add).
struct KernelTable {
  KernelIsa isa;

  float (*dot)(size_t n, const float* x, const float* y);
  void (*axpy)(size_t n, float alpha, const float* x, float* y);
  void (*scale)(size_t n, float alpha, float* x);
  void (*add)(size_t n, const float* x, const float* y, float* out);
  void (*sub)(size_t n, const float* x, const float* y, float* out);
  void (*hadamard)(size_t n, const float* x, const float* y, float* out);
  float (*l1_norm)(size_t n, const float* x);
  float (*squared_l2_norm)(size_t n, const float* x);
  void (*sign_of)(size_t n, const float* x, float* out);
  /// sum_i |x_i - y_i| — the fused TransE tail distance.
  float (*l1_distance)(size_t n, const float* x, const float* y);
  /// out[i] = l1_distance(dim, query, rows + i*dim) for i in [0, num_rows):
  /// the blocked candidate-scoring primitive behind EvaluateTails.
  void (*l1_distance_batch)(const float* query, const float* rows,
                            size_t num_rows, size_t dim, float* out);
  /// y = A x, A row-major m x n. Row i equals dot(n, A_row_i, x).
  void (*gemv_raw)(size_t m, size_t n, const float* a, const float* x,
                   float* y);
  /// out[i] = (x[i] + y[i]) - z[i] — the TransE residual h + r - t, with
  /// exactly the two roundings of composing add then sub. Elementwise, so
  /// every table agrees bit-for-bit (like add/sub themselves).
  void (*residual)(size_t n, const float* x, const float* y, const float* z,
                   float* out);
  /// y = A^T x (A row-major m x n; y length n, overwritten). Within a
  /// table this equals zeroing y and accumulating axpy(n, x[i], A_row_i, y)
  /// for i = 0..m-1 in row order — the backward dh += M_r^T s' primitive.
  void (*gemv_t)(size_t m, size_t n, const float* a, const float* x,
                 float* y);
  /// Rank-1 accumulate A += alpha x y^T (A row-major m x n). Within a
  /// table, row i equals axpy(n, alpha * x[i], y, A_row_i); rows with
  /// x[i] == 0 are skipped — the sign-sparse dM_r += s' h^T update.
  void (*ger)(size_t m, size_t n, float alpha, const float* x, const float* y,
              float* a);
  /// Fused sparse-Adam row update. For each i, with g_i = g[i] * gscale:
  ///   m[i] = beta1 * m[i] + (1 - beta1) * g_i
  ///   v[i] = beta2 * v[i] + (1 - beta2) * g_i * g_i   (left-associated)
  ///   row[i] -= alpha * m[i] / (sqrt(v[i]) + eps)
  /// `alpha` is the bias-corrected step size the trainer computes from the
  /// global step. Elementwise with no fused multiply-adds, so every table
  /// matches the scalar reference bit-for-bit.
  void (*adam_row)(size_t n, const float* g, float gscale, float beta1,
                   float beta2, float alpha, float eps, float* row, float* m,
                   float* v);
  /// Fused linear-layer forward C = A B + broadcast bias (A: m x k, B:
  /// k x n, C: m x n, all row-major; bias has length n, nullptr = none).
  /// Within a table, row i equals zeroing C_row_i, accumulating
  /// axpy(n, A(i,p), B_row_p, C_row_i) for p = 0..k-1 in order, then
  /// axpy(n, 1, bias, C_row_i) — exactly the Gemm-then-bias composition
  /// nn::Linear::Forward performs, so fusing it is bit-identical. Rows are
  /// independent, so batched and single-row forwards agree bit-for-bit.
  void (*gemm_bias)(size_t m, size_t k, size_t n, const float* a,
                    const float* b, const float* bias, float* c);
  /// Numerically stable in-place softmax over x[0..n). The max is an
  /// order-independent reduction, exp is scalar std::exp element by
  /// element, and the normalizing sum is accumulated left-to-right in
  /// every table — so all tables agree with the scalar reference
  /// bit-for-bit (unlike the reassociating sum reductions above).
  void (*softmax)(size_t n, float* x);
};

/// The always-available portable reference kernels.
const KernelTable& ScalarKernels();

/// Vector tables, or nullptr when the ISA was not compiled in or the
/// running CPU lacks it. Safe to call from any thread at any time.
const KernelTable* Avx2Kernels();
const KernelTable* Avx512Kernels();
const KernelTable* NeonKernels();

/// Best ISA the running CPU supports (kScalar if none).
KernelIsa DetectBestIsa();

/// Table for `isa` if usable on this machine, else nullptr.
const KernelTable* KernelsForIsa(KernelIsa isa);

/// Parses a PKGM_KERNEL value ("scalar" | "avx2" | "avx512" | "neon").
/// Returns false on an unknown name.
bool ParseKernelIsa(const char* name, KernelIsa* out);

/// The process-wide active table. Chosen once, on first use: PKGM_KERNEL
/// if set and usable (a warning is logged and detection takes over when it
/// is unknown or unsupported on this CPU), otherwise DetectBestIsa().
const KernelTable& Active();

/// KernelIsaName(Active().isa) — the label reported by ServerStats and the
/// bench JSON so perf regressions are attributable to a kernel change.
const char* ActiveIsaName();

}  // namespace pkgm::simd

#endif  // PKGM_TENSOR_SIMD_KERNEL_DISPATCH_H_
