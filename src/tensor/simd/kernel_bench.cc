#include "tensor/simd/kernel_bench.h"

#include <functional>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace pkgm::simd {
namespace {

// Times `fn` by running batches of calls until ~20ms of wall time has
// accumulated (after a warm-up batch), so one measurement survives timer
// granularity and cold caches without taking seconds per op.
double TimeNsPerCall(const std::function<void()>& fn) {
  constexpr double kMinMillis = 20.0;
  size_t batch = 64;
  fn();  // warm-up: page in the data, settle the frequency governor
  double total_ms = 0.0;
  size_t total_calls = 0;
  while (total_ms < kMinMillis) {
    Stopwatch sw;
    for (size_t i = 0; i < batch; ++i) fn();
    total_ms += sw.ElapsedMillis();
    total_calls += batch;
    if (batch < (1u << 20)) batch *= 2;
  }
  return total_ms * 1e6 / static_cast<double>(total_calls);
}

}  // namespace

std::vector<KernelBenchResult> RunKernelBench(const KernelTable& table,
                                              size_t dim, size_t batch_rows) {
  Rng rng(97);
  std::vector<float> x(dim), y(dim), z(dim);
  std::vector<float> rows(batch_rows * dim), out(batch_rows);
  for (auto& v : x) v = rng.UniformFloat(-1.0f, 1.0f);
  for (auto& v : y) v = rng.UniformFloat(-1.0f, 1.0f);
  for (auto& v : rows) v = rng.UniformFloat(-1.0f, 1.0f);

  const double fdim = static_cast<double>(dim);
  const double frows = static_cast<double>(batch_rows);
  std::vector<KernelBenchResult> results;
  const auto run = [&](const char* op, double bytes_per_call,
                       const std::function<void()>& fn) {
    const double ns = TimeNsPerCall(fn);
    results.push_back({op, ns, bytes_per_call / ns});  // bytes/ns == GB/s
  };

  volatile float sink = 0.0f;
  run("dot", 2 * fdim * 4,
      [&] { sink = table.dot(dim, x.data(), y.data()); });
  run("l1_norm", fdim * 4, [&] { sink = table.l1_norm(dim, x.data()); });
  run("axpy", 3 * fdim * 4,
      [&] { table.axpy(dim, 0.25f, x.data(), z.data()); });
  run("l1_distance", 2 * fdim * 4,
      [&] { sink = table.l1_distance(dim, x.data(), y.data()); });
  run("l1_distance_batch", (frows * fdim + fdim + frows) * 4, [&] {
    table.l1_distance_batch(x.data(), rows.data(), batch_rows, dim,
                            out.data());
  });
  run("gemv_raw", (frows * fdim + fdim + frows) * 4, [&] {
    table.gemv_raw(batch_rows, dim, rows.data(), x.data(), out.data());
  });
  run("residual", 4 * fdim * 4, [&] {
    table.residual(dim, x.data(), y.data(), rows.data(), z.data());
  });
  // The training-side d x d primitives: use a square dim x dim slice of
  // `rows` as the matrix (gemv_t reads it, ger updates it in place).
  std::vector<float> sq(dim * dim);
  for (auto& v : sq) v = rng.UniformFloat(-1.0f, 1.0f);
  run("gemv_t", (fdim * fdim + 2 * fdim) * 4, [&] {
    table.gemv_t(dim, dim, sq.data(), x.data(), z.data());
  });
  run("ger", (2 * fdim * fdim + 2 * fdim) * 4, [&] {
    table.ger(dim, dim, 0.25f, x.data(), y.data(), sq.data());
  });
  std::vector<float> am(dim, 0.0f), av(dim, 0.0f);
  run("adam_row", 5 * fdim * 4, [&] {
    table.adam_row(dim, x.data(), 0.5f, 0.9f, 0.999f, 1e-3f, 1e-8f, z.data(),
                   am.data(), av.data());
  });
  (void)sink;
  return results;
}

}  // namespace pkgm::simd
