#include "tensor/simd/kernel_dispatch.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace pkgm::simd {

namespace internal {
#if defined(__x86_64__) || defined(_M_X64)
extern const KernelTable kAvx2Table;
#if defined(PKGM_HAVE_AVX512)
extern const KernelTable kAvx512Table;
#endif
#endif
#if defined(__aarch64__)
extern const KernelTable kNeonTable;
#endif
}  // namespace internal

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
    case KernelIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

const KernelTable* Avx2Kernels() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &internal::kAvx2Table;
  }
#endif
  return nullptr;
}

const KernelTable* Avx512Kernels() {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(PKGM_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f")) {
    return &internal::kAvx512Table;
  }
#endif
  return nullptr;
}

const KernelTable* NeonKernels() {
#if defined(__aarch64__)
  // NEON is architecturally guaranteed on aarch64.
  return &internal::kNeonTable;
#else
  return nullptr;
#endif
}

KernelIsa DetectBestIsa() {
  if (Avx512Kernels() != nullptr) return KernelIsa::kAvx512;
  if (Avx2Kernels() != nullptr) return KernelIsa::kAvx2;
  if (NeonKernels() != nullptr) return KernelIsa::kNeon;
  return KernelIsa::kScalar;
}

const KernelTable* KernelsForIsa(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return &ScalarKernels();
    case KernelIsa::kAvx2:
      return Avx2Kernels();
    case KernelIsa::kAvx512:
      return Avx512Kernels();
    case KernelIsa::kNeon:
      return NeonKernels();
  }
  return nullptr;
}

bool ParseKernelIsa(const char* name, KernelIsa* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = KernelIsa::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = KernelIsa::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = KernelIsa::kAvx512;
  } else if (std::strcmp(name, "neon") == 0) {
    *out = KernelIsa::kNeon;
  } else {
    return false;
  }
  return true;
}

namespace {

const KernelTable* SelectActiveTable() {
  const char* env = std::getenv("PKGM_KERNEL");
  if (env != nullptr && *env != '\0') {
    KernelIsa requested;
    if (!ParseKernelIsa(env, &requested)) {
      PKGM_LOG(Warning) << "PKGM_KERNEL=" << env
                        << " is not a known ISA (want scalar|avx2|avx512|"
                           "neon); using CPU detection";
    } else if (const KernelTable* t = KernelsForIsa(requested)) {
      return t;
    } else {
      PKGM_LOG(Warning) << "PKGM_KERNEL=" << env
                        << " is not usable on this CPU; using detection";
    }
  }
  const KernelTable* best = KernelsForIsa(DetectBestIsa());
  return best != nullptr ? best : &ScalarKernels();
}

}  // namespace

const KernelTable& Active() {
  // Selected exactly once, on first use; every later call is one acquire
  // load. Tests that need a specific table grab it via KernelsForIsa
  // instead of mutating process-global state.
  static const KernelTable* table = SelectActiveTable();
  return *table;
}

const char* ActiveIsaName() { return KernelIsaName(Active().isa); }

}  // namespace pkgm::simd
