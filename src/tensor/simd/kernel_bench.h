#ifndef PKGM_TENSOR_SIMD_KERNEL_BENCH_H_
#define PKGM_TENSOR_SIMD_KERNEL_BENCH_H_

#include <cstddef>
#include <vector>

#include "tensor/simd/kernel_dispatch.h"

namespace pkgm::simd {

/// One micro-benchmark measurement of a kernel-table entry.
struct KernelBenchResult {
  const char* op;     ///< "dot", "l1_norm", "axpy", "gemv_raw", ...
  double ns_per_op;   ///< mean wall time of one call
  double gbps;        ///< bytes touched per call / time, in GB/s
};

/// Times the hot kernel-table entries (dot, l1_norm, axpy, l1_distance,
/// l1_distance_batch, gemv_raw) on deterministic data at embedding
/// dimension `dim`; the batch ops run over `batch_rows` contiguous rows.
/// Used by `bench_ops --json` and `pkgm_tool bench-kernels` so both report
/// the same measurement.
std::vector<KernelBenchResult> RunKernelBench(const KernelTable& table,
                                              size_t dim,
                                              size_t batch_rows = 256);

}  // namespace pkgm::simd

#endif  // PKGM_TENSOR_SIMD_KERNEL_BENCH_H_
