// Portable reference kernels — the seed's scalar loops, kept bit-for-bit
// as the always-correct fallback every vector ISA is parity-tested
// against (tests/simd_kernels_test.cc).

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/simd/kernel_dispatch.h"

namespace pkgm::simd {
namespace {

float ScalarDot(size_t n, const float* x, const float* y) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void ScalarAxpy(size_t n, float alpha, const float* x, float* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarScale(size_t n, float alpha, float* x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ScalarAdd(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
}

void ScalarSub(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void ScalarHadamard(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

float ScalarL1Norm(size_t n, const float* x) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += std::fabs(x[i]);
  return acc;
}

float ScalarSquaredL2Norm(size_t n, const float* x) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

void ScalarSignOf(size_t n, const float* x, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
  }
}

float ScalarL1Distance(size_t n, const float* x, const float* y) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += std::fabs(x[i] - y[i]);
  return acc;
}

void ScalarL1DistanceBatch(const float* query, const float* rows,
                           size_t num_rows, size_t dim, float* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = ScalarL1Distance(dim, query, rows + i * dim);
  }
}

void ScalarGemvRaw(size_t m, size_t n, const float* a, const float* x,
                   float* y) {
  for (size_t i = 0; i < m; ++i) y[i] = ScalarDot(n, a + i * n, x);
}

void ScalarResidual(size_t n, const float* x, const float* y, const float* z,
                    float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (x[i] + y[i]) - z[i];
}

void ScalarGemvT(size_t m, size_t n, const float* a, const float* x,
                 float* y) {
  for (size_t j = 0; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) ScalarAxpy(n, x[i], a + i * n, y);
}

void ScalarGer(size_t m, size_t n, float alpha, const float* x,
               const float* y, float* a) {
  for (size_t i = 0; i < m; ++i) {
    if (x[i] == 0.0f) continue;
    ScalarAxpy(n, alpha * x[i], y, a + i * n);
  }
}

void ScalarAdamRow(size_t n, const float* g, float gscale, float beta1,
                   float beta2, float alpha, float eps, float* row, float* m,
                   float* v) {
  for (size_t i = 0; i < n; ++i) {
    const float gi = g[i] * gscale;
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    row[i] -= alpha * m[i] / (std::sqrt(v[i]) + eps);
  }
}

void ScalarGemmBias(size_t m, size_t k, size_t n, const float* a,
                    const float* b, const float* bias, float* c) {
  for (size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (size_t p = 0; p < k; ++p) ScalarAxpy(n, arow[p], b + p * n, crow);
    if (bias != nullptr) ScalarAxpy(n, 1.0f, bias, crow);
  }
}

void ScalarSoftmax(size_t n, float* x) {
  if (n == 0) return;
  float mx = x[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      KernelIsa::kScalar, ScalarDot,           ScalarAxpy,
      ScalarScale,        ScalarAdd,           ScalarSub,
      ScalarHadamard,     ScalarL1Norm,        ScalarSquaredL2Norm,
      ScalarSignOf,       ScalarL1Distance,    ScalarL1DistanceBatch,
      ScalarGemvRaw,      ScalarResidual,      ScalarGemvT,
      ScalarGer,          ScalarAdamRow,       ScalarGemmBias,
      ScalarSoftmax,
  };
  return table;
}

}  // namespace pkgm::simd
