// AVX2+FMA kernels (8-wide fp32). This translation unit is compiled with
// -mavx2 -mfma (see tensor/CMakeLists.txt); the dispatcher only hands the
// table out when the running CPU reports both features.
//
// Reductions use four independent 8-lane accumulators over 32-element
// chunks, then an 8-wide loop, then a scalar tail — so sums are
// reassociated relative to the scalar reference (parity tests allow a
// small relative tolerance), but every function is deterministic for
// given input, and the batch/gemv entry points reuse the single-row
// functions so blocked and per-candidate scoring agree bit-for-bit.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/simd/kernel_dispatch.h"

namespace pkgm::simd {
namespace internal {
namespace {

inline __m256 Abs256(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

float Avx2Dot(size_t n, const float* x, const float* y) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                           _mm256_loadu_ps(y + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16),
                           _mm256_loadu_ps(y + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24),
                           _mm256_loadu_ps(y + i + 24), acc3);
  }
  __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc);
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void Avx2Axpy(size_t n, float alpha, const float* x, float* y) {
  const __m256 a = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(a, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Avx2Scale(size_t n, float alpha, float* x) {
  const __m256 a = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(a, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void Avx2Add(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] + y[i];
}

void Avx2Sub(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] - y[i];
}

void Avx2Hadamard(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i];
}

float Avx2L1Norm(size_t n, const float* x) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_add_ps(acc0, Abs256(_mm256_loadu_ps(x + i)));
    acc1 = _mm256_add_ps(acc1, Abs256(_mm256_loadu_ps(x + i + 8)));
    acc2 = _mm256_add_ps(acc2, Abs256(_mm256_loadu_ps(x + i + 16)));
    acc3 = _mm256_add_ps(acc3, Abs256(_mm256_loadu_ps(x + i + 24)));
  }
  __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(acc, Abs256(_mm256_loadu_ps(x + i)));
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) sum += std::fabs(x[i]);
  return sum;
}

float Avx2SquaredL2Norm(size_t n, const float* x) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256 v0 = _mm256_loadu_ps(x + i);
    __m256 v1 = _mm256_loadu_ps(x + i + 8);
    __m256 v2 = _mm256_loadu_ps(x + i + 16);
    __m256 v3 = _mm256_loadu_ps(x + i + 24);
    acc0 = _mm256_fmadd_ps(v0, v0, acc0);
    acc1 = _mm256_fmadd_ps(v1, v1, acc1);
    acc2 = _mm256_fmadd_ps(v2, v2, acc2);
    acc3 = _mm256_fmadd_ps(v3, v3, acc3);
  }
  __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(x + i);
    acc = _mm256_fmadd_ps(v, v, acc);
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) sum += x[i] * x[i];
  return sum;
}

void Avx2SignOf(size_t n, const float* x, float* out) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 neg_one = _mm256_set1_ps(-1.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(x + i);
    __m256 pos = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_GT_OQ), one);
    __m256 neg = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ), neg_one);
    _mm256_storeu_ps(out + i, _mm256_or_ps(pos, neg));
  }
  for (; i < n; ++i) {
    out[i] = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
  }
}

float Avx2L1Distance(size_t n, const float* x, const float* y) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_add_ps(
        acc0, Abs256(_mm256_sub_ps(_mm256_loadu_ps(x + i),
                                   _mm256_loadu_ps(y + i))));
    acc1 = _mm256_add_ps(
        acc1, Abs256(_mm256_sub_ps(_mm256_loadu_ps(x + i + 8),
                                   _mm256_loadu_ps(y + i + 8))));
    acc2 = _mm256_add_ps(
        acc2, Abs256(_mm256_sub_ps(_mm256_loadu_ps(x + i + 16),
                                   _mm256_loadu_ps(y + i + 16))));
    acc3 = _mm256_add_ps(
        acc3, Abs256(_mm256_sub_ps(_mm256_loadu_ps(x + i + 24),
                                   _mm256_loadu_ps(y + i + 24))));
  }
  __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc,
        Abs256(_mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i))));
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) sum += std::fabs(x[i] - y[i]);
  return sum;
}

void Avx2L1DistanceBatch(const float* query, const float* rows,
                         size_t num_rows, size_t dim, float* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = Avx2L1Distance(dim, query, rows + i * dim);
  }
}

void Avx2GemvRaw(size_t m, size_t n, const float* a, const float* x,
                 float* y) {
  for (size_t i = 0; i < m; ++i) y[i] = Avx2Dot(n, a + i * n, x);
}

void Avx2Residual(size_t n, const float* x, const float* y, const float* z,
                  float* out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i,
        _mm256_sub_ps(_mm256_add_ps(_mm256_loadu_ps(x + i),
                                    _mm256_loadu_ps(y + i)),
                      _mm256_loadu_ps(z + i)));
  }
  for (; i < n; ++i) out[i] = (x[i] + y[i]) - z[i];
}

void Avx2GemvT(size_t m, size_t n, const float* a, const float* x, float* y) {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) _mm256_storeu_ps(y + j, _mm256_setzero_ps());
  for (; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) Avx2Axpy(n, x[i], a + i * n, y);
}

void Avx2Ger(size_t m, size_t n, float alpha, const float* x, const float* y,
             float* a) {
  for (size_t i = 0; i < m; ++i) {
    if (x[i] == 0.0f) continue;
    Avx2Axpy(n, alpha * x[i], y, a + i * n);
  }
}

// No FMA here on purpose: the update is elementwise, and keeping each
// multiply/add a separate rounding makes every table agree bit-for-bit
// with the scalar reference (the dispatch-header contract).
void Avx2AdamRow(size_t n, const float* g, float gscale, float beta1,
                 float beta2, float alpha, float eps, float* row, float* m,
                 float* v) {
  const __m256 vs = _mm256_set1_ps(gscale);
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vc1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vc2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 ve = _mm256_set1_ps(eps);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gi = _mm256_mul_ps(_mm256_loadu_ps(g + i), vs);
    const __m256 mi = _mm256_add_ps(_mm256_mul_ps(vb1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(vc1, gi));
    const __m256 vi = _mm256_add_ps(
        _mm256_mul_ps(vb2, _mm256_loadu_ps(v + i)),
        _mm256_mul_ps(_mm256_mul_ps(vc2, gi), gi));
    _mm256_storeu_ps(m + i, mi);
    _mm256_storeu_ps(v + i, vi);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vi), ve);
    _mm256_storeu_ps(
        row + i,
        _mm256_sub_ps(_mm256_loadu_ps(row + i),
                      _mm256_div_ps(_mm256_mul_ps(va, mi), denom)));
  }
  for (; i < n; ++i) {
    const float gi = g[i] * gscale;
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    row[i] -= alpha * m[i] / (std::sqrt(v[i]) + eps);
  }
}

void Avx2GemmBias(size_t m, size_t k, size_t n, const float* a,
                  const float* b, const float* bias, float* c) {
  for (size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 8 <= n; j += 8) _mm256_storeu_ps(crow + j, _mm256_setzero_ps());
    for (; j < n; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (size_t p = 0; p < k; ++p) Avx2Axpy(n, arow[p], b + p * n, crow);
    if (bias != nullptr) Avx2Axpy(n, 1.0f, bias, crow);
  }
}

// exp stays scalar (std::exp element by element) and the normalizing sum
// is accumulated left-to-right, so every table matches the scalar
// reference bit-for-bit (the dispatch-header contract); the max reduction
// and final scale are vectorized — both are order-insensitive.
void Avx2Softmax(size_t n, float* x) {
  if (n == 0) return;
  size_t i = 0;
  float mx = x[0];
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
    }
    __m128 lo = _mm256_castps256_ps128(vmax);
    __m128 hi = _mm256_extractf128_ps(vmax, 1);
    __m128 s = _mm_max_ps(lo, hi);
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
    mx = _mm_cvtss_f32(s);
  } else {
    i = 1;
  }
  for (; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t j = 0; j < n; ++j) {
    x[j] = std::exp(x[j] - mx);
    sum += x[j];
  }
  Avx2Scale(n, 1.0f / sum, x);
}

}  // namespace

extern const KernelTable kAvx2Table = {
    KernelIsa::kAvx2, Avx2Dot,           Avx2Axpy,
    Avx2Scale,        Avx2Add,           Avx2Sub,
    Avx2Hadamard,     Avx2L1Norm,        Avx2SquaredL2Norm,
    Avx2SignOf,       Avx2L1Distance,    Avx2L1DistanceBatch,
    Avx2GemvRaw,      Avx2Residual,      Avx2GemvT,
    Avx2Ger,          Avx2AdamRow,       Avx2GemmBias,
    Avx2Softmax,
};

}  // namespace internal
}  // namespace pkgm::simd

#endif  // x86-64
