// NEON kernels for aarch64 (4-wide fp32). NEON is baseline on aarch64 so
// no runtime feature check is needed; the dispatcher simply prefers this
// table there. Structure mirrors the x86 files: reductions use four
// independent accumulators over 16-element chunks, then a 4-wide loop,
// then a scalar tail; batch/gemv entry points reuse the single-row
// functions so blocked and per-candidate scoring agree bit-for-bit.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/simd/kernel_dispatch.h"

namespace pkgm::simd {
namespace internal {
namespace {

float NeonDot(size_t n, const float* x, const float* y) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), vld1q_f32(y + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(x + i + 4), vld1q_f32(y + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(x + i + 8), vld1q_f32(y + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(x + i + 12), vld1q_f32(y + i + 12));
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(x + i), vld1q_f32(y + i));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void NeonAxpy(size_t n, float alpha, const float* x, float* y) {
  const float32x4_t a = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), a, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void NeonScale(size_t n, float alpha, float* x) {
  const float32x4_t a = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(a, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void NeonAdd(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] + y[i];
}

void NeonSub(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] - y[i];
}

void NeonHadamard(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i];
}

float NeonL1Norm(size_t n, const float* x) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vaddq_f32(acc0, vabsq_f32(vld1q_f32(x + i)));
    acc1 = vaddq_f32(acc1, vabsq_f32(vld1q_f32(x + i + 4)));
    acc2 = vaddq_f32(acc2, vabsq_f32(vld1q_f32(x + i + 8)));
    acc3 = vaddq_f32(acc3, vabsq_f32(vld1q_f32(x + i + 12)));
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    acc = vaddq_f32(acc, vabsq_f32(vld1q_f32(x + i)));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += std::fabs(x[i]);
  return sum;
}

float NeonSquaredL2Norm(size_t n, const float* x) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    float32x4_t v0 = vld1q_f32(x + i);
    float32x4_t v1 = vld1q_f32(x + i + 4);
    float32x4_t v2 = vld1q_f32(x + i + 8);
    float32x4_t v3 = vld1q_f32(x + i + 12);
    acc0 = vfmaq_f32(acc0, v0, v0);
    acc1 = vfmaq_f32(acc1, v1, v1);
    acc2 = vfmaq_f32(acc2, v2, v2);
    acc3 = vfmaq_f32(acc3, v3, v3);
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    float32x4_t v = vld1q_f32(x + i);
    acc = vfmaq_f32(acc, v, v);
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += x[i] * x[i];
  return sum;
}

void NeonSignOf(size_t n, const float* x, float* out) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t neg_one = vdupq_n_f32(-1.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t v = vld1q_f32(x + i);
    uint32x4_t pos = vcgtq_f32(v, zero);
    uint32x4_t neg = vcltq_f32(v, zero);
    float32x4_t r = vbslq_f32(pos, one, zero);
    r = vbslq_f32(neg, neg_one, r);
    vst1q_f32(out + i, r);
  }
  for (; i < n; ++i) {
    out[i] = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
  }
}

float NeonL1Distance(size_t n, const float* x, const float* y) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vaddq_f32(acc0, vabdq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
    acc1 = vaddq_f32(acc1,
                     vabdq_f32(vld1q_f32(x + i + 4), vld1q_f32(y + i + 4)));
    acc2 = vaddq_f32(acc2,
                     vabdq_f32(vld1q_f32(x + i + 8), vld1q_f32(y + i + 8)));
    acc3 = vaddq_f32(acc3,
                     vabdq_f32(vld1q_f32(x + i + 12), vld1q_f32(y + i + 12)));
  }
  float32x4_t acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
  for (; i + 4 <= n; i += 4) {
    acc = vaddq_f32(acc, vabdq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += std::fabs(x[i] - y[i]);
  return sum;
}

void NeonL1DistanceBatch(const float* query, const float* rows,
                         size_t num_rows, size_t dim, float* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = NeonL1Distance(dim, query, rows + i * dim);
  }
}

void NeonGemvRaw(size_t m, size_t n, const float* a, const float* x,
                 float* y) {
  for (size_t i = 0; i < m; ++i) y[i] = NeonDot(n, a + i * n, x);
}

void NeonResidual(size_t n, const float* x, const float* y, const float* z,
                  float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vaddq_f32(vld1q_f32(x + i), vld1q_f32(y + i)),
                                 vld1q_f32(z + i)));
  }
  for (; i < n; ++i) out[i] = (x[i] + y[i]) - z[i];
}

void NeonGemvT(size_t m, size_t n, const float* a, const float* x, float* y) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) vst1q_f32(y + j, vdupq_n_f32(0.0f));
  for (; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) NeonAxpy(n, x[i], a + i * n, y);
}

void NeonGer(size_t m, size_t n, float alpha, const float* x, const float* y,
             float* a) {
  for (size_t i = 0; i < m; ++i) {
    if (x[i] == 0.0f) continue;
    NeonAxpy(n, alpha * x[i], y, a + i * n);
  }
}

// No fused multiply-adds on purpose: keeping each multiply/add a separate
// rounding makes this elementwise update match the scalar reference
// bit-for-bit (the dispatch-header contract). vdivq/vsqrtq are
// IEEE-correctly rounded on aarch64.
void NeonAdamRow(size_t n, const float* g, float gscale, float beta1,
                 float beta2, float alpha, float eps, float* row, float* m,
                 float* v) {
  const float32x4_t vs = vdupq_n_f32(gscale);
  const float32x4_t vb1 = vdupq_n_f32(beta1);
  const float32x4_t vc1 = vdupq_n_f32(1.0f - beta1);
  const float32x4_t vb2 = vdupq_n_f32(beta2);
  const float32x4_t vc2 = vdupq_n_f32(1.0f - beta2);
  const float32x4_t va = vdupq_n_f32(alpha);
  const float32x4_t ve = vdupq_n_f32(eps);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t gi = vmulq_f32(vld1q_f32(g + i), vs);
    const float32x4_t mi =
        vaddq_f32(vmulq_f32(vb1, vld1q_f32(m + i)), vmulq_f32(vc1, gi));
    const float32x4_t vi = vaddq_f32(vmulq_f32(vb2, vld1q_f32(v + i)),
                                     vmulq_f32(vmulq_f32(vc2, gi), gi));
    vst1q_f32(m + i, mi);
    vst1q_f32(v + i, vi);
    const float32x4_t denom = vaddq_f32(vsqrtq_f32(vi), ve);
    vst1q_f32(row + i, vsubq_f32(vld1q_f32(row + i),
                                 vdivq_f32(vmulq_f32(va, mi), denom)));
  }
  for (; i < n; ++i) {
    const float gi = g[i] * gscale;
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    row[i] -= alpha * m[i] / (std::sqrt(v[i]) + eps);
  }
}

void NeonGemmBias(size_t m, size_t k, size_t n, const float* a,
                  const float* b, const float* bias, float* c) {
  for (size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) vst1q_f32(crow + j, vdupq_n_f32(0.0f));
    for (; j < n; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (size_t p = 0; p < k; ++p) NeonAxpy(n, arow[p], b + p * n, crow);
    if (bias != nullptr) NeonAxpy(n, 1.0f, bias, crow);
  }
}

// exp stays scalar (std::exp element by element) and the normalizing sum
// is accumulated left-to-right, so every table matches the scalar
// reference bit-for-bit (the dispatch-header contract); the max reduction
// and final scale are vectorized — both are order-insensitive.
void NeonSoftmax(size_t n, float* x) {
  if (n == 0) return;
  size_t i = 0;
  float mx = x[0];
  if (n >= 4) {
    float32x4_t vmax = vld1q_f32(x);
    for (i = 4; i + 4 <= n; i += 4) {
      vmax = vmaxq_f32(vmax, vld1q_f32(x + i));
    }
    mx = vmaxvq_f32(vmax);
  } else {
    i = 1;
  }
  for (; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t j = 0; j < n; ++j) {
    x[j] = std::exp(x[j] - mx);
    sum += x[j];
  }
  NeonScale(n, 1.0f / sum, x);
}

}  // namespace

extern const KernelTable kNeonTable = {
    KernelIsa::kNeon, NeonDot,           NeonAxpy,
    NeonScale,        NeonAdd,           NeonSub,
    NeonHadamard,     NeonL1Norm,        NeonSquaredL2Norm,
    NeonSignOf,       NeonL1Distance,    NeonL1DistanceBatch,
    NeonGemvRaw,      NeonResidual,      NeonGemvT,
    NeonGer,          NeonAdamRow,       NeonGemmBias,
    NeonSoftmax,
};

}  // namespace internal
}  // namespace pkgm::simd

#endif  // __aarch64__
