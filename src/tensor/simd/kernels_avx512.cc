// AVX-512F kernels (16-wide fp32). Compiled with -mavx512f; selected only
// when the running CPU reports avx512f. Structure mirrors the AVX2 file:
// reductions use four independent accumulators over 64-element chunks,
// remainders are handled with masked loads so no tail reads past the
// span, and the batch/gemv entry points reuse the single-row functions so
// blocked and per-candidate scoring agree bit-for-bit within this table.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/simd/kernel_dispatch.h"

namespace pkgm::simd {
namespace internal {
namespace {

inline __m512 Abs512(__m512 v) {
  return _mm512_abs_ps(v);
}

inline __mmask16 TailMask(size_t remaining) {
  return static_cast<__mmask16>((1u << remaining) - 1u);
}

float Avx512Dot(size_t n, const float* x, const float* y) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i + 16),
                           _mm512_loadu_ps(y + i + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i + 32),
                           _mm512_loadu_ps(y + i + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i + 48),
                           _mm512_loadu_ps(y + i + 48), acc3);
  }
  __m512 acc = _mm512_add_ps(_mm512_add_ps(acc0, acc1),
                             _mm512_add_ps(acc2, acc3));
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i), acc);
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, x + i),
                          _mm512_maskz_loadu_ps(k, y + i), acc);
  }
  return _mm512_reduce_add_ps(acc);
}

void Avx512Axpy(size_t n, float alpha, const float* x, float* y) {
  const __m512 a = _mm512_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i, _mm512_fmadd_ps(a, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    _mm512_mask_storeu_ps(y + i, k,
                          _mm512_fmadd_ps(a, _mm512_maskz_loadu_ps(k, x + i),
                                          _mm512_maskz_loadu_ps(k, y + i)));
  }
}

void Avx512Scale(size_t n, float alpha, float* x) {
  const __m512 a = _mm512_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_mul_ps(a, _mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    _mm512_mask_storeu_ps(x + i, k,
                          _mm512_mul_ps(a, _mm512_maskz_loadu_ps(k, x + i)));
  }
}

void Avx512Add(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i,
                     _mm512_add_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    _mm512_mask_storeu_ps(out + i, k,
                          _mm512_add_ps(_mm512_maskz_loadu_ps(k, x + i),
                                        _mm512_maskz_loadu_ps(k, y + i)));
  }
}

void Avx512Sub(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i,
                     _mm512_sub_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    _mm512_mask_storeu_ps(out + i, k,
                          _mm512_sub_ps(_mm512_maskz_loadu_ps(k, x + i),
                                        _mm512_maskz_loadu_ps(k, y + i)));
  }
}

void Avx512Hadamard(size_t n, const float* x, const float* y, float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i,
                     _mm512_mul_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    _mm512_mask_storeu_ps(out + i, k,
                          _mm512_mul_ps(_mm512_maskz_loadu_ps(k, x + i),
                                        _mm512_maskz_loadu_ps(k, y + i)));
  }
}

float Avx512L1Norm(size_t n, const float* x) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    acc0 = _mm512_add_ps(acc0, Abs512(_mm512_loadu_ps(x + i)));
    acc1 = _mm512_add_ps(acc1, Abs512(_mm512_loadu_ps(x + i + 16)));
    acc2 = _mm512_add_ps(acc2, Abs512(_mm512_loadu_ps(x + i + 32)));
    acc3 = _mm512_add_ps(acc3, Abs512(_mm512_loadu_ps(x + i + 48)));
  }
  __m512 acc = _mm512_add_ps(_mm512_add_ps(acc0, acc1),
                             _mm512_add_ps(acc2, acc3));
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_add_ps(acc, Abs512(_mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    acc = _mm512_add_ps(acc, Abs512(_mm512_maskz_loadu_ps(k, x + i)));
  }
  return _mm512_reduce_add_ps(acc);
}

float Avx512SquaredL2Norm(size_t n, const float* x) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m512 v0 = _mm512_loadu_ps(x + i);
    __m512 v1 = _mm512_loadu_ps(x + i + 16);
    __m512 v2 = _mm512_loadu_ps(x + i + 32);
    __m512 v3 = _mm512_loadu_ps(x + i + 48);
    acc0 = _mm512_fmadd_ps(v0, v0, acc0);
    acc1 = _mm512_fmadd_ps(v1, v1, acc1);
    acc2 = _mm512_fmadd_ps(v2, v2, acc2);
    acc3 = _mm512_fmadd_ps(v3, v3, acc3);
  }
  __m512 acc = _mm512_add_ps(_mm512_add_ps(acc0, acc1),
                             _mm512_add_ps(acc2, acc3));
  for (; i + 16 <= n; i += 16) {
    __m512 v = _mm512_loadu_ps(x + i);
    acc = _mm512_fmadd_ps(v, v, acc);
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    __m512 v = _mm512_maskz_loadu_ps(k, x + i);
    acc = _mm512_fmadd_ps(v, v, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

void Avx512SignOf(size_t n, const float* x, float* out) {
  const __m512 zero = _mm512_setzero_ps();
  const __m512 one = _mm512_set1_ps(1.0f);
  const __m512 neg_one = _mm512_set1_ps(-1.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 v = _mm512_loadu_ps(x + i);
    __m512 r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(v, zero, _CMP_GT_OQ),
                                    zero, one);
    r = _mm512_mask_blend_ps(_mm512_cmp_ps_mask(v, zero, _CMP_LT_OQ), r,
                             neg_one);
    _mm512_storeu_ps(out + i, r);
  }
  for (; i < n; ++i) {
    out[i] = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
  }
}

float Avx512L1Distance(size_t n, const float* x, const float* y) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    acc0 = _mm512_add_ps(
        acc0, Abs512(_mm512_sub_ps(_mm512_loadu_ps(x + i),
                                   _mm512_loadu_ps(y + i))));
    acc1 = _mm512_add_ps(
        acc1, Abs512(_mm512_sub_ps(_mm512_loadu_ps(x + i + 16),
                                   _mm512_loadu_ps(y + i + 16))));
    acc2 = _mm512_add_ps(
        acc2, Abs512(_mm512_sub_ps(_mm512_loadu_ps(x + i + 32),
                                   _mm512_loadu_ps(y + i + 32))));
    acc3 = _mm512_add_ps(
        acc3, Abs512(_mm512_sub_ps(_mm512_loadu_ps(x + i + 48),
                                   _mm512_loadu_ps(y + i + 48))));
  }
  __m512 acc = _mm512_add_ps(_mm512_add_ps(acc0, acc1),
                             _mm512_add_ps(acc2, acc3));
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_add_ps(
        acc,
        Abs512(_mm512_sub_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i))));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    acc = _mm512_add_ps(acc,
                        Abs512(_mm512_sub_ps(_mm512_maskz_loadu_ps(k, x + i),
                                             _mm512_maskz_loadu_ps(k, y + i))));
  }
  return _mm512_reduce_add_ps(acc);
}

void Avx512L1DistanceBatch(const float* query, const float* rows,
                           size_t num_rows, size_t dim, float* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = Avx512L1Distance(dim, query, rows + i * dim);
  }
}

void Avx512GemvRaw(size_t m, size_t n, const float* a, const float* x,
                   float* y) {
  for (size_t i = 0; i < m; ++i) y[i] = Avx512Dot(n, a + i * n, x);
}

void Avx512Residual(size_t n, const float* x, const float* y, const float* z,
                    float* out) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        out + i,
        _mm512_sub_ps(_mm512_add_ps(_mm512_loadu_ps(x + i),
                                    _mm512_loadu_ps(y + i)),
                      _mm512_loadu_ps(z + i)));
  }
  if (i < n) {
    const __mmask16 k = TailMask(n - i);
    _mm512_mask_storeu_ps(
        out + i, k,
        _mm512_sub_ps(_mm512_add_ps(_mm512_maskz_loadu_ps(k, x + i),
                                    _mm512_maskz_loadu_ps(k, y + i)),
                      _mm512_maskz_loadu_ps(k, z + i)));
  }
}

void Avx512GemvT(size_t m, size_t n, const float* a, const float* x,
                 float* y) {
  size_t j = 0;
  for (; j + 16 <= n; j += 16) _mm512_storeu_ps(y + j, _mm512_setzero_ps());
  for (; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) Avx512Axpy(n, x[i], a + i * n, y);
}

void Avx512Ger(size_t m, size_t n, float alpha, const float* x,
               const float* y, float* a) {
  for (size_t i = 0; i < m; ++i) {
    if (x[i] == 0.0f) continue;
    Avx512Axpy(n, alpha * x[i], y, a + i * n);
  }
}

// No FMA here on purpose: the update is elementwise, and keeping each
// multiply/add a separate rounding makes every table agree bit-for-bit
// with the scalar reference (the dispatch-header contract).
void Avx512AdamRow(size_t n, const float* g, float gscale, float beta1,
                   float beta2, float alpha, float eps, float* row, float* m,
                   float* v) {
  const __m512 vs = _mm512_set1_ps(gscale);
  const __m512 vb1 = _mm512_set1_ps(beta1);
  const __m512 vc1 = _mm512_set1_ps(1.0f - beta1);
  const __m512 vb2 = _mm512_set1_ps(beta2);
  const __m512 vc2 = _mm512_set1_ps(1.0f - beta2);
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 ve = _mm512_set1_ps(eps);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 gi = _mm512_mul_ps(_mm512_loadu_ps(g + i), vs);
    const __m512 mi = _mm512_add_ps(_mm512_mul_ps(vb1, _mm512_loadu_ps(m + i)),
                                    _mm512_mul_ps(vc1, gi));
    const __m512 vi = _mm512_add_ps(
        _mm512_mul_ps(vb2, _mm512_loadu_ps(v + i)),
        _mm512_mul_ps(_mm512_mul_ps(vc2, gi), gi));
    _mm512_storeu_ps(m + i, mi);
    _mm512_storeu_ps(v + i, vi);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(vi), ve);
    _mm512_storeu_ps(
        row + i,
        _mm512_sub_ps(_mm512_loadu_ps(row + i),
                      _mm512_div_ps(_mm512_mul_ps(va, mi), denom)));
  }
  for (; i < n; ++i) {
    const float gi = g[i] * gscale;
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    row[i] -= alpha * m[i] / (std::sqrt(v[i]) + eps);
  }
}

void Avx512GemmBias(size_t m, size_t k, size_t n, const float* a,
                    const float* b, const float* bias, float* c) {
  for (size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 16 <= n; j += 16) _mm512_storeu_ps(crow + j, _mm512_setzero_ps());
    for (; j < n; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (size_t p = 0; p < k; ++p) Avx512Axpy(n, arow[p], b + p * n, crow);
    if (bias != nullptr) Avx512Axpy(n, 1.0f, bias, crow);
  }
}

// exp stays scalar (std::exp element by element) and the normalizing sum
// is accumulated left-to-right, so every table matches the scalar
// reference bit-for-bit (the dispatch-header contract); the max reduction
// and final scale are vectorized — both are order-insensitive.
void Avx512Softmax(size_t n, float* x) {
  if (n == 0) return;
  size_t i = 0;
  float mx = x[0];
  if (n >= 16) {
    __m512 vmax = _mm512_loadu_ps(x);
    for (i = 16; i + 16 <= n; i += 16) {
      vmax = _mm512_max_ps(vmax, _mm512_loadu_ps(x + i));
    }
    mx = _mm512_reduce_max_ps(vmax);
  } else {
    i = 1;
  }
  for (; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t j = 0; j < n; ++j) {
    x[j] = std::exp(x[j] - mx);
    sum += x[j];
  }
  Avx512Scale(n, 1.0f / sum, x);
}

}  // namespace

extern const KernelTable kAvx512Table = {
    KernelIsa::kAvx512, Avx512Dot,           Avx512Axpy,
    Avx512Scale,        Avx512Add,           Avx512Sub,
    Avx512Hadamard,     Avx512L1Norm,        Avx512SquaredL2Norm,
    Avx512SignOf,       Avx512L1Distance,    Avx512L1DistanceBatch,
    Avx512GemvRaw,      Avx512Residual,      Avx512GemvT,
    Avx512Ger,          Avx512AdamRow,       Avx512GemmBias,
    Avx512Softmax,
};

}  // namespace internal
}  // namespace pkgm::simd

#endif  // x86-64
