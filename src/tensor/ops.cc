#include "tensor/ops.h"

#include <cmath>

#include "tensor/simd/kernel_dispatch.h"
#include "util/logging.h"

namespace pkgm {

// BLAS-1/2 entry points delegate to the runtime-selected kernel table
// (scalar reference, AVX2+FMA, AVX-512 or NEON — see
// tensor/simd/kernel_dispatch.h). The blocked BLAS-3 routines below build
// on Axpy/Dot and inherit the same dispatch.

void Axpy(size_t n, float alpha, const float* x, float* y) {
  simd::Active().axpy(n, alpha, x, y);
}

void Scale(size_t n, float alpha, float* x) {
  simd::Active().scale(n, alpha, x);
}

void Sub(size_t n, const float* x, const float* y, float* out) {
  simd::Active().sub(n, x, y, out);
}

void Add(size_t n, const float* x, const float* y, float* out) {
  simd::Active().add(n, x, y, out);
}

float Dot(size_t n, const float* x, const float* y) {
  return simd::Active().dot(n, x, y);
}

float L1Norm(size_t n, const float* x) { return simd::Active().l1_norm(n, x); }

float L2Norm(size_t n, const float* x) { return std::sqrt(SquaredL2Norm(n, x)); }

float SquaredL2Norm(size_t n, const float* x) {
  return simd::Active().squared_l2_norm(n, x);
}

void SignOf(size_t n, const float* x, float* out) {
  simd::Active().sign_of(n, x, out);
}

float ProjectToUnitBall(size_t n, float* x) {
  float norm = L2Norm(n, x);
  if (norm > 1.0f) {
    Scale(n, 1.0f / norm, x);
  }
  return norm;
}

void Hadamard(size_t n, const float* x, const float* y, float* out) {
  simd::Active().hadamard(n, x, y, out);
}

float L1Distance(size_t n, const float* x, const float* y) {
  return simd::Active().l1_distance(n, x, y);
}

void L1DistanceBatch(const float* query, const float* rows, size_t num_rows,
                     size_t dim, float* out) {
  simd::Active().l1_distance_batch(query, rows, num_rows, dim, out);
}

void GemvRaw(size_t m, size_t n, const float* a, const float* x, float* y) {
  simd::Active().gemv_raw(m, n, a, x, y);
}

void GemvTransposedRaw(size_t m, size_t n, const float* a, const float* x,
                       float* y) {
  simd::Active().gemv_t(m, n, a, x, y);
}

void Gemv(const Mat& a, const float* x, float* y) {
  const size_t m = a.rows(), n = a.cols();
  for (size_t i = 0; i < m; ++i) {
    y[i] = Dot(n, a.Row(i), x);
  }
}

void GemvTransposed(const Mat& a, const float* x, float* y) {
  const size_t m = a.rows(), n = a.cols();
  for (size_t j = 0; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    Axpy(n, x[i], a.Row(i), y);
  }
}

void Ger(Mat* a, float alpha, const float* x, const float* y) {
  simd::Active().ger(a->rows(), a->cols(), alpha, x, y, a->data());
}

void Gemm(const Mat& a, const Mat& b, Mat* c) {
  PKGM_CHECK_EQ(a.cols(), b.rows());
  PKGM_CHECK_EQ(c->rows(), a.rows());
  PKGM_CHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  c->Zero();
  // ikj loop order: streams over B and C rows for cache friendliness.
  for (size_t i = 0; i < m; ++i) {
    float* crow = c->Row(i);
    const float* arow = a.Row(i);
    for (size_t p = 0; p < k; ++p) {
      Axpy(n, arow[p], b.Row(p), crow);
    }
  }
}

void GemmAtbAccum(const Mat& a, const Mat& b, Mat* c) {
  PKGM_CHECK_EQ(a.rows(), b.rows());
  PKGM_CHECK_EQ(c->rows(), a.cols());
  PKGM_CHECK_EQ(c->cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      Axpy(n, arow[i], brow, c->Row(i));
    }
  }
}

void GemmAbt(const Mat& a, const Mat& b, Mat* c) {
  PKGM_CHECK_EQ(a.cols(), b.cols());
  PKGM_CHECK_EQ(c->rows(), a.rows());
  PKGM_CHECK_EQ(c->cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    float* crow = c->Row(i);
    const float* arow = a.Row(i);
    for (size_t j = 0; j < n; ++j) {
      crow[j] = Dot(k, arow, b.Row(j));
    }
  }
}

void GemmBiasRaw(size_t m, size_t k, size_t n, const float* a, const float* b,
                 const float* bias, float* c) {
  simd::Active().gemm_bias(m, k, n, a, b, bias, c);
}

void SoftmaxInplace(size_t n, float* x) { simd::Active().softmax(n, x); }

float LogSumExp(size_t n, const float* x) {
  PKGM_CHECK_GT(n, 0u);
  float mx = x[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += std::exp(x[i] - mx);
  return mx + std::log(sum);
}

}  // namespace pkgm
