#include "tensor/ops.h"

#include <cmath>

#include "util/logging.h"

namespace pkgm {

void Axpy(size_t n, float alpha, const float* x, float* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(size_t n, float alpha, float* x) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void Sub(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void Add(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
}

float Dot(size_t n, const float* x, const float* y) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

float L1Norm(size_t n, const float* x) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += std::fabs(x[i]);
  return acc;
}

float L2Norm(size_t n, const float* x) { return std::sqrt(SquaredL2Norm(n, x)); }

float SquaredL2Norm(size_t n, const float* x) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

void SignOf(size_t n, const float* x, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = x[i] > 0.0f ? 1.0f : (x[i] < 0.0f ? -1.0f : 0.0f);
  }
}

float ProjectToUnitBall(size_t n, float* x) {
  float norm = L2Norm(n, x);
  if (norm > 1.0f) {
    Scale(n, 1.0f / norm, x);
  }
  return norm;
}

void Hadamard(size_t n, const float* x, const float* y, float* out) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

void GemvRaw(size_t m, size_t n, const float* a, const float* x, float* y) {
  for (size_t i = 0; i < m; ++i) {
    y[i] = Dot(n, a + i * n, x);
  }
}

void GemvTransposedRaw(size_t m, size_t n, const float* a, const float* x,
                       float* y) {
  for (size_t j = 0; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    Axpy(n, x[i], a + i * n, y);
  }
}

void Gemv(const Mat& a, const float* x, float* y) {
  const size_t m = a.rows(), n = a.cols();
  for (size_t i = 0; i < m; ++i) {
    y[i] = Dot(n, a.Row(i), x);
  }
}

void GemvTransposed(const Mat& a, const float* x, float* y) {
  const size_t m = a.rows(), n = a.cols();
  for (size_t j = 0; j < n; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < m; ++i) {
    Axpy(n, x[i], a.Row(i), y);
  }
}

void Ger(Mat* a, float alpha, const float* x, const float* y) {
  const size_t m = a->rows(), n = a->cols();
  for (size_t i = 0; i < m; ++i) {
    Axpy(n, alpha * x[i], y, a->Row(i));
  }
}

void Gemm(const Mat& a, const Mat& b, Mat* c) {
  PKGM_CHECK_EQ(a.cols(), b.rows());
  PKGM_CHECK_EQ(c->rows(), a.rows());
  PKGM_CHECK_EQ(c->cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  c->Zero();
  // ikj loop order: streams over B and C rows for cache friendliness.
  for (size_t i = 0; i < m; ++i) {
    float* crow = c->Row(i);
    const float* arow = a.Row(i);
    for (size_t p = 0; p < k; ++p) {
      Axpy(n, arow[p], b.Row(p), crow);
    }
  }
}

void GemmAtbAccum(const Mat& a, const Mat& b, Mat* c) {
  PKGM_CHECK_EQ(a.rows(), b.rows());
  PKGM_CHECK_EQ(c->rows(), a.cols());
  PKGM_CHECK_EQ(c->cols(), b.cols());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      Axpy(n, arow[i], brow, c->Row(i));
    }
  }
}

void GemmAbt(const Mat& a, const Mat& b, Mat* c) {
  PKGM_CHECK_EQ(a.cols(), b.cols());
  PKGM_CHECK_EQ(c->rows(), a.rows());
  PKGM_CHECK_EQ(c->cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    float* crow = c->Row(i);
    const float* arow = a.Row(i);
    for (size_t j = 0; j < n; ++j) {
      crow[j] = Dot(k, arow, b.Row(j));
    }
  }
}

void SoftmaxInplace(size_t n, float* x) {
  if (n == 0) return;
  float mx = x[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

float LogSumExp(size_t n, const float* x) {
  PKGM_CHECK_GT(n, 0u);
  float mx = x[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += std::exp(x[i] - mx);
  return mx + std::log(sum);
}

}  // namespace pkgm
