#ifndef PKGM_TENSOR_OPS_H_
#define PKGM_TENSOR_OPS_H_

#include <cstddef>

#include "tensor/vec.h"

namespace pkgm {

// BLAS-1 kernels over raw spans (all lengths in elements). Callers guarantee
// the spans are valid; these are hot paths and do not bounds-check per
// element.
//
// The BLAS-1/2 entry points below dispatch to a runtime-selected SIMD
// implementation (tensor/simd/kernel_dispatch.h): AVX2+FMA or AVX-512 on
// x86-64, NEON on aarch64, with the portable scalar loops as the
// always-correct fallback. Selection happens once at first use and can be
// pinned with PKGM_KERNEL=scalar|avx2|avx512|neon. No pointer alignment is
// required (vector paths use unaligned loads); vector reductions
// reassociate sums, so results may differ from scalar in the last ulps.

/// y += alpha * x
void Axpy(size_t n, float alpha, const float* x, float* y);

/// x *= alpha
void Scale(size_t n, float alpha, float* x);

/// out = x - y
void Sub(size_t n, const float* x, const float* y, float* out);

/// out = x + y
void Add(size_t n, const float* x, const float* y, float* out);

/// Dot product.
float Dot(size_t n, const float* x, const float* y);

/// Sum of |x_i|.
float L1Norm(size_t n, const float* x);

/// sqrt(sum x_i^2).
float L2Norm(size_t n, const float* x);

/// Squared L2 norm.
float SquaredL2Norm(size_t n, const float* x);

/// Writes sign(x_i) into out (sign(0) == 0); subgradient of the L1 norm.
void SignOf(size_t n, const float* x, float* out);

/// Projects x onto the L2 unit ball if its norm exceeds 1 (TransE's entity
/// normalization). Returns the pre-projection norm.
float ProjectToUnitBall(size_t n, float* x);

/// Elementwise product: out = x .* y
void Hadamard(size_t n, const float* x, const float* y, float* out);

/// sum_i |x_i - y_i| — the fused TransE tail distance (one pass, no
/// intermediate difference vector).
float L1Distance(size_t n, const float* x, const float* y);

/// out[i] = L1Distance(dim, query, rows + i*dim) for i in [0, num_rows).
/// `rows` is a contiguous row-major block of candidate embeddings; this is
/// the batched candidate-scoring primitive behind link-prediction ranking.
/// Row i is scored with arithmetic identical to a single L1Distance call,
/// so batched and per-candidate scores agree bit-for-bit.
void L1DistanceBatch(const float* query, const float* rows, size_t num_rows,
                     size_t dim, float* out);

// BLAS-2 / BLAS-3 kernels over row-major matrices.

/// y = A x              (A: m x n row-major raw span, x: n, y: m)
void GemvRaw(size_t m, size_t n, const float* a, const float* x, float* y);

/// y = A^T x            (A: m x n row-major raw span, x: m, y: n)
void GemvTransposedRaw(size_t m, size_t n, const float* a, const float* x,
                       float* y);

/// y = A x              (A: m x n, x: n, y: m)
void Gemv(const Mat& a, const float* x, float* y);

/// y = A^T x            (A: m x n, x: m, y: n)
void GemvTransposed(const Mat& a, const float* x, float* y);

/// A += alpha * x y^T   (rank-1 update; x: m, y: n). Rows with x[i] == 0
/// are skipped — the update is sign-sparse in the trainer's dM_r hot path.
void Ger(Mat* a, float alpha, const float* x, const float* y);

/// C = A B              (A: m x k, B: k x n, C: m x n). C is overwritten.
void Gemm(const Mat& a, const Mat& b, Mat* c);

/// C = A B + broadcast bias (raw row-major spans; bias length n, nullptr =
/// none). Fused linear-layer forward on the dispatched `gemm_bias` kernel;
/// within one kernel table this is bit-identical to Gemm followed by a
/// per-row bias Axpy, and rows are independent so batched and single-row
/// calls agree bit-for-bit.
void GemmBiasRaw(size_t m, size_t k, size_t n, const float* a, const float* b,
                 const float* bias, float* c);

/// C += A^T B           (A: k x m, B: k x n, C: m x n).
void GemmAtbAccum(const Mat& a, const Mat& b, Mat* c);

/// C = A B^T            (A: m x k, B: n x k, C: m x n).
void GemmAbt(const Mat& a, const Mat& b, Mat* c);

// Numerically stable reductions used by the NN layers.

/// In-place softmax over x[0..n).
void SoftmaxInplace(size_t n, float* x);

/// log(sum exp(x_i)), stable.
float LogSumExp(size_t n, const float* x);

}  // namespace pkgm

#endif  // PKGM_TENSOR_OPS_H_
