#include "core/service_math.h"

#include <algorithm>

#include "tensor/ops.h"

namespace pkgm::core {

void TripleQueryFromRows(TripleScorerKind scorer, uint32_t dim, const float* h,
                         const float* r, const float* w, float* out) {
  switch (scorer) {
    case TripleScorerKind::kTransE:
      Add(dim, h, r, out);
      return;
    case TripleScorerKind::kDistMult:
      Hadamard(dim, h, r, out);
      return;
    case TripleScorerKind::kComplEx: {
      const uint32_t half = dim / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      for (uint32_t i = 0; i < half; ++i) {
        out[i] = h_re[i] * r_re[i] - h_im[i] * r_im[i];
        out[half + i] = h_re[i] * r_im[i] + h_im[i] * r_re[i];
      }
      if (dim % 2 != 0) {
        // An odd dimension leaves one coordinate without an imaginary
        // partner. PkgmModel and MmapEmbeddingStore both reject odd
        // ComplEx dims at construction, but this function is callable on
        // raw rows: treat the unpaired trailing coordinate as purely real
        // rather than leaving out[dim-1] uninitialized.
        out[dim - 1] = h[dim - 1] * r[dim - 1];
      }
      return;
    }
    case TripleScorerKind::kTransH: {
      // q = h_perp + r; candidates are projected in TailDistance.
      const float wh = Dot(dim, w, h);
      for (uint32_t i = 0; i < dim; ++i) {
        out[i] = h[i] - wh * w[i] + r[i];
      }
      return;
    }
  }
}

float TailDistanceFromRows(TripleScorerKind scorer, uint32_t dim,
                           const float* w, const float* query,
                           const float* tail, float* scratch) {
  switch (scorer) {
    case TripleScorerKind::kTransE:
      return L1Distance(dim, query, tail);
    case TripleScorerKind::kTransH: {
      // Project the candidate onto w's hyperplane, then L1 — the exact
      // per-row sequence ScoreTailCandidatesBlock applies, so a tail
      // scored alone and scored inside a block agree bit-for-bit.
      const float wt = Dot(dim, w, tail);
      std::copy(tail, tail + dim, scratch);
      Axpy(dim, -wt, w, scratch);
      return L1Distance(dim, query, scratch);
    }
    case TripleScorerKind::kDistMult:
    case TripleScorerKind::kComplEx:
      return -Dot(dim, query, tail);
  }
  return 0.0f;
}

void ScoreTailCandidatesBlock(TripleScorerKind scorer, uint32_t dim,
                              const float* query, const float* w, float* rows,
                              size_t num_rows, float* out) {
  switch (scorer) {
    case TripleScorerKind::kTransE:
      L1DistanceBatch(query, rows, num_rows, dim, out);
      return;
    case TripleScorerKind::kTransH:
      for (size_t i = 0; i < num_rows; ++i) {
        float* row = rows + i * dim;
        const float wt = Dot(dim, w, row);
        Axpy(dim, -wt, w, row);
      }
      L1DistanceBatch(query, rows, num_rows, dim, out);
      return;
    case TripleScorerKind::kDistMult:
    case TripleScorerKind::kComplEx:
      // score_i = -<row_i, q>; GemvRaw computes row i exactly as one Dot.
      GemvRaw(num_rows, dim, rows, query, out);
      Scale(num_rows, -1.0f, out);
      return;
  }
}

void RelationServiceFromRows(uint32_t dim, const float* m, const float* h,
                             const float* r, float* out) {
  GemvRaw(dim, dim, m, h, out);
  for (uint32_t i = 0; i < dim; ++i) out[i] -= r[i];
}

void TripleServiceVector(const EmbeddingSource& source, kg::EntityId h,
                         kg::RelationId r, ServiceWorkspace* ws, float* out) {
  const float* hv = source.EntityRow(h, ws->head.data());
  const float* rv = source.RelationRow(r, ws->relation.data());
  const float* wv = source.has_hyperplanes()
                        ? source.HyperplaneRow(r, ws->hyperplane.data())
                        : nullptr;
  TripleQueryFromRows(source.scorer(), source.dim(), hv, rv, wv, out);
}

void RelationServiceVector(const EmbeddingSource& source, kg::EntityId h,
                           kg::RelationId r, ServiceWorkspace* ws, float* out) {
  const uint32_t d = source.dim();
  if (!source.has_relation_module()) {
    for (uint32_t i = 0; i < d; ++i) out[i] = 0.0f;
    return;
  }
  const float* m = source.TransferRow(r, ws->transfer.data());
  const float* hv = source.EntityRow(h, ws->head.data());
  const float* rv = source.RelationRow(r, ws->relation.data());
  RelationServiceFromRows(d, m, hv, rv, out);
}

}  // namespace pkgm::core
