#include "core/service_math.h"

#include "tensor/ops.h"

namespace pkgm::core {

void TripleQueryFromRows(TripleScorerKind scorer, uint32_t dim, const float* h,
                         const float* r, const float* w, float* out) {
  switch (scorer) {
    case TripleScorerKind::kTransE:
      Add(dim, h, r, out);
      return;
    case TripleScorerKind::kDistMult:
      Hadamard(dim, h, r, out);
      return;
    case TripleScorerKind::kComplEx: {
      const uint32_t half = dim / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      for (uint32_t i = 0; i < half; ++i) {
        out[i] = h_re[i] * r_re[i] - h_im[i] * r_im[i];
        out[half + i] = h_re[i] * r_im[i] + h_im[i] * r_re[i];
      }
      return;
    }
    case TripleScorerKind::kTransH: {
      // q = h_perp + r; candidates are projected in TailDistance.
      const float wh = Dot(dim, w, h);
      for (uint32_t i = 0; i < dim; ++i) {
        out[i] = h[i] - wh * w[i] + r[i];
      }
      return;
    }
  }
}

void RelationServiceFromRows(uint32_t dim, const float* m, const float* h,
                             const float* r, float* out) {
  GemvRaw(dim, dim, m, h, out);
  for (uint32_t i = 0; i < dim; ++i) out[i] -= r[i];
}

void TripleServiceVector(const EmbeddingSource& source, kg::EntityId h,
                         kg::RelationId r, ServiceWorkspace* ws, float* out) {
  const float* hv = source.EntityRow(h, ws->head.data());
  const float* rv = source.RelationRow(r, ws->relation.data());
  const float* wv = source.has_hyperplanes()
                        ? source.HyperplaneRow(r, ws->hyperplane.data())
                        : nullptr;
  TripleQueryFromRows(source.scorer(), source.dim(), hv, rv, wv, out);
}

void RelationServiceVector(const EmbeddingSource& source, kg::EntityId h,
                           kg::RelationId r, ServiceWorkspace* ws, float* out) {
  const uint32_t d = source.dim();
  if (!source.has_relation_module()) {
    for (uint32_t i = 0; i < d; ++i) out[i] = 0.0f;
    return;
  }
  const float* m = source.TransferRow(r, ws->transfer.data());
  const float* hv = source.EntityRow(h, ws->head.data());
  const float* rv = source.RelationRow(r, ws->relation.data());
  RelationServiceFromRows(d, m, hv, rv, out);
}

}  // namespace pkgm::core
