#include "core/negative_sampler.h"

#include "util/logging.h"

namespace pkgm::core {

NegativeSampler::NegativeSampler(const Options& options,
                                 const kg::TripleSource* store)
    : options_(options), store_(store) {
  PKGM_CHECK_GT(options.num_entities, 0u);
  PKGM_CHECK_GT(options.num_relations, 0u);
  if (options.filter_known_positives) {
    PKGM_CHECK(store != nullptr);
  }
}

NegativeSample NegativeSampler::Sample(const kg::Triple& positive,
                                       Rng* rng) const {
  // Bounded retries: with a sparse KG a handful of tries virtually always
  // finds a non-positive; give up gracefully rather than loop forever on
  // pathological graphs.
  constexpr int kMaxTries = 16;

  NegativeSample neg;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    neg.triple = positive;
    double u = rng->UniformDouble();
    if (u < options_.relation_corruption_prob &&
        options_.num_relations > 1) {
      neg.slot = CorruptionSlot::kRelation;
      do {
        neg.triple.relation =
            static_cast<kg::RelationId>(rng->Uniform(options_.num_relations));
      } while (neg.triple.relation == positive.relation);
    } else if (rng->Bernoulli(0.5)) {
      neg.slot = CorruptionSlot::kHead;
      do {
        neg.triple.head =
            static_cast<kg::EntityId>(rng->Uniform(options_.num_entities));
      } while (neg.triple.head == positive.head &&
               options_.num_entities > 1);
    } else {
      neg.slot = CorruptionSlot::kTail;
      do {
        neg.triple.tail =
            static_cast<kg::EntityId>(rng->Uniform(options_.num_entities));
      } while (neg.triple.tail == positive.tail &&
               options_.num_entities > 1);
    }
    if (!options_.filter_known_positives || !store_->Contains(neg.triple)) {
      return neg;
    }
  }
  return neg;  // Fall back to the last draw (may be a rare false negative).
}

void NegativeSampler::SampleBatch(const kg::Triple* positives, size_t n,
                                  Rng* rng, NegativeSample* out) const {
  for (size_t i = 0; i < n; ++i) out[i] = Sample(positives[i], rng);
}

}  // namespace pkgm::core
