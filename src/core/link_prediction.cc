#include "core/link_prediction.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::core {

LinkPredictionEvaluator::LinkPredictionEvaluator(
    const PkgmModel* model, const kg::TripleStore* all_known, Options options)
    : model_(model), all_known_(all_known), options_(std::move(options)) {
  PKGM_CHECK(model != nullptr);
  PKGM_CHECK(!options_.filtered || all_known != nullptr);
}

double LinkPredictionEvaluator::RankTail(
    const kg::Triple& t, const std::vector<kg::EntityId>* candidates) const {
  const uint32_t d = model_->dim();
  // Precompute the tail-query vector; candidate score is the scorer's
  // tail distance from it (L1 for TransE, negative dot for DistMult /
  // ComplEx).
  std::vector<float> q(d);
  model_->TripleQueryVector(t.head, t.relation, q.data());

  auto score_of = [&](kg::EntityId e) {
    return model_->TailDistance(t.relation, q.data(), model_->entity(e));
  };

  const float true_score = score_of(t.tail);
  uint64_t less = 0, equal = 0;

  auto consider = [&](kg::EntityId e) {
    if (e == t.tail) return;
    if (options_.filtered && all_known_->Contains(t.head, t.relation, e)) {
      return;
    }
    const float s = score_of(e);
    if (s < true_score) {
      ++less;
    } else if (s == true_score) {
      ++equal;
    }
  };

  if (candidates != nullptr) {
    for (kg::EntityId e : *candidates) consider(e);
  } else {
    for (kg::EntityId e = 0; e < model_->num_entities(); ++e) consider(e);
  }
  // Mean of optimistic (1 + less) and pessimistic (1 + less + equal) ranks.
  return 1.0 + static_cast<double>(less) + static_cast<double>(equal) / 2.0;
}

LinkPredictionResult LinkPredictionEvaluator::EvaluateTails(
    const std::vector<kg::Triple>& test,
    const std::unordered_map<kg::RelationId, std::vector<kg::EntityId>>*
        candidates_per_relation) const {
  LinkPredictionResult result;
  result.count = test.size();
  for (int k : options_.hits_at) result.hits[k] = 0.0;
  if (test.empty()) return result;

  double rr_sum = 0.0, rank_sum = 0.0;
  for (const kg::Triple& t : test) {
    const std::vector<kg::EntityId>* candidates = nullptr;
    if (candidates_per_relation != nullptr) {
      auto it = candidates_per_relation->find(t.relation);
      if (it != candidates_per_relation->end()) candidates = &it->second;
    }
    const double rank = RankTail(t, candidates);
    rr_sum += 1.0 / rank;
    rank_sum += rank;
    for (int k : options_.hits_at) {
      if (rank <= static_cast<double>(k)) result.hits[k] += 1.0;
    }
  }
  const double n = static_cast<double>(test.size());
  result.mrr = rr_sum / n;
  result.mean_rank = rank_sum / n;
  for (int k : options_.hits_at) result.hits[k] /= n;
  return result;
}

}  // namespace pkgm::core
