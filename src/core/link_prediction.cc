#include "core/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pkgm::core {

LinkPredictionEvaluator::LinkPredictionEvaluator(
    const EmbeddingSource* source, const kg::TripleSource* all_known,
    Options options)
    : source_(source), all_known_(all_known), options_(std::move(options)) {
  PKGM_CHECK(source != nullptr);
  PKGM_CHECK(!options_.filtered || all_known != nullptr);
  PKGM_CHECK_GT(options_.block_size, 0u);
}

double LinkPredictionEvaluator::RankTail(
    const kg::Triple& t, const std::vector<kg::EntityId>* candidates,
    RankScratch* s) const {
  const uint32_t dim = source_->dim();
  const TripleScorerKind scorer = source_->scorer();

  // Precompute the tail-query vector; a candidate's score is its distance
  // from it (L1 for TransE/TransH, negative dot for DistMult / ComplEx).
  TripleServiceVector(*source_, t.head, t.relation, &s->ws, s->query.data());
  const float* q = s->query.data();
  const float* w = source_->has_hyperplanes()
                       ? source_->HyperplaneRow(t.relation, s->proj.data())
                       : nullptr;
  // For dequantizing sources HyperplaneRow lands in s->proj, which TransH
  // scoring also needs as projection scratch — keep the normal in ws.
  if (w == s->proj.data()) {
    std::copy(w, w + dim, s->ws.hyperplane.data());
    w = s->ws.hyperplane.data();
  }

  const float* tail_row = source_->EntityRow(t.tail, s->row.data());
  const float true_score =
      TailDistanceFromRows(scorer, dim, w, q, tail_row, s->proj.data());

  uint64_t less = 0, equal = 0;
  const auto tally = [&](float score) {
    if (score < true_score) {
      ++less;
    } else if (score == true_score) {
      ++equal;
    }
  };

  if (options_.use_batched_scoring && candidates == nullptr) {
    // Full-entity sweep: score contiguous row blocks straight out of the
    // source — zero-copy for row-major fp32 backends (heap model, fp32
    // mmap store); int8 stores dequantize into the scratch block. The
    // filter set is marked once per triple instead of a hash probe per
    // candidate.
    const uint32_t n = source_->num_entities();
    kg::IdSpan known_tails;
    if (options_.filtered) {
      known_tails = all_known_->Tails(t.head, t.relation);
      for (kg::EntityId e : known_tails) {
        if (e < n) s->filtered[e] = 1;
      }
    }
    for (uint32_t start = 0; start < n;
         start += static_cast<uint32_t>(options_.block_size)) {
      const uint32_t count = static_cast<uint32_t>(
          std::min<size_t>(options_.block_size, n - start));
      const float* rows =
          source_->EntityRowsBlock(start, count, s->block.data());
      if (scorer == TripleScorerKind::kTransH && rows != s->block.data()) {
        // TransH projects rows in place; never write through the source's
        // own storage.
        std::memcpy(s->block.data(), rows, count * dim * sizeof(float));
        rows = s->block.data();
      }
      // Safe cast: only the TransH branch writes through `rows`, and it
      // points into the scratch block by the copy above.
      ScoreTailCandidatesBlock(scorer, dim, q, w, const_cast<float*>(rows),
                               count, s->scores.data());
      for (uint32_t i = 0; i < count; ++i) {
        const kg::EntityId e = start + i;
        if (e == t.tail || (options_.filtered && s->filtered[e])) {
          continue;
        }
        tally(s->scores[i]);
      }
    }
    for (kg::EntityId e : known_tails) {
      if (e < n) s->filtered[e] = 0;
    }
  } else {
    size_t fill = 0;
    const auto flush = [&] {
      ScoreTailCandidatesBlock(scorer, dim, q, w, s->block.data(), fill,
                               s->scores.data());
      for (size_t i = 0; i < fill; ++i) tally(s->scores[i]);
      fill = 0;
    };

    const auto consider = [&](kg::EntityId e) {
      if (e == t.tail) return;
      if (options_.filtered && all_known_->Contains(t.head, t.relation, e)) {
        return;
      }
      if (options_.use_batched_scoring) {
        // Gather the candidate row into the block: dequantizing sources
        // write it straight into place, zero-copy sources memcpy one row.
        float* dst = s->block.data() + fill * dim;
        const float* row = source_->EntityRow(e, dst);
        if (row != dst) std::memcpy(dst, row, dim * sizeof(float));
        if (++fill == options_.block_size) flush();
      } else {
        const float* row = source_->EntityRow(e, s->row.data());
        tally(TailDistanceFromRows(scorer, dim, w, q, row, s->proj.data()));
      }
    };

    if (candidates != nullptr) {
      for (kg::EntityId e : *candidates) consider(e);
    } else {
      for (kg::EntityId e = 0; e < source_->num_entities(); ++e) consider(e);
    }
    if (fill > 0) flush();
  }

  // Mean of optimistic (1 + less) and pessimistic (1 + less + equal) ranks.
  return 1.0 + static_cast<double>(less) + static_cast<double>(equal) / 2.0;
}

LinkPredictionResult LinkPredictionEvaluator::EvaluateTails(
    const std::vector<kg::Triple>& test,
    const std::unordered_map<kg::RelationId, std::vector<kg::EntityId>>*
        candidates_per_relation) const {
  LinkPredictionResult result;
  result.count = test.size();
  for (int k : options_.hits_at) result.hits[k] = 0.0;
  if (test.empty()) return result;

  const auto candidates_of =
      [&](const kg::Triple& t) -> const std::vector<kg::EntityId>* {
    if (candidates_per_relation == nullptr) return nullptr;
    auto it = candidates_per_relation->find(t.relation);
    return it != candidates_per_relation->end() ? &it->second : nullptr;
  };

  // Rank every test triple into its slot, then merge sequentially in input
  // order — metrics are bit-identical for any thread count.
  std::vector<double> ranks(test.size());
  const auto rank_range = [&](size_t begin, size_t end) {
    RankScratch scratch(source_->dim(), options_.block_size,
                        source_->num_entities());
    for (size_t i = begin; i < end; ++i) {
      ranks[i] = RankTail(test[i], candidates_of(test[i]), &scratch);
    }
  };

  size_t threads = options_.num_threads != 0
                       ? options_.num_threads
                       : std::thread::hardware_concurrency();
  threads = std::max<size_t>(1, std::min(threads, test.size()));
  if (threads == 1) {
    rank_range(0, test.size());
  } else {
    ThreadPool pool(threads);
    const size_t chunk = (test.size() + threads - 1) / threads;
    for (size_t begin = 0; begin < test.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, test.size());
      pool.Submit([&rank_range, begin, end] { rank_range(begin, end); });
    }
    pool.Wait();
  }

  double rr_sum = 0.0, rank_sum = 0.0;
  for (double rank : ranks) {
    rr_sum += 1.0 / rank;
    rank_sum += rank;
    for (int k : options_.hits_at) {
      if (rank <= static_cast<double>(k)) result.hits[k] += 1.0;
    }
  }
  const double n = static_cast<double>(test.size());
  result.mrr = rr_sum / n;
  result.mean_rank = rank_sum / n;
  for (int k : options_.hits_at) result.hits[k] /= n;
  return result;
}

}  // namespace pkgm::core
