#include "core/gradients.h"

#include <cmath>

#include "tensor/ops.h"

namespace pkgm::core {

namespace {

std::vector<float>& GetOrInit(
    std::unordered_map<uint32_t, std::vector<float>>* map, uint32_t id,
    uint32_t size) {
  auto [it, inserted] = map->try_emplace(id);
  if (inserted) it->second.assign(size, 0.0f);
  return it->second;
}

// Accumulates the gradient of sign_factor * f(triple) into grad.
void AccumulateScoreGradients(const PkgmModel& model, const kg::Triple& t,
                              float sign_factor, SparseGrad* grad) {
  const uint32_t d = model.dim();
  const float* h = model.entity(t.head);
  const float* r = model.relation(t.relation);
  const float* tl = model.entity(t.tail);

  // Triple query module gradients, per scoring family.
  std::vector<float>& gh = grad->Entity(t.head, d);
  std::vector<float>& gr = grad->Relation(t.relation, d);
  std::vector<float>& gt = grad->Entity(t.tail, d);
  switch (model.scorer()) {
    case TripleScorerKind::kTransE: {
      // f = ||h + r - t||_1, subgradient s = sign(h + r - t); vectorized
      // as diff = h + r - t, s = sign(diff), three Axpy accumulations.
      std::vector<float> diff(d), s(d);
      Add(d, h, r, diff.data());
      Sub(d, diff.data(), tl, diff.data());
      SignOf(d, diff.data(), s.data());
      Axpy(d, sign_factor, s.data(), gh.data());
      Axpy(d, sign_factor, s.data(), gr.data());
      Axpy(d, -sign_factor, s.data(), gt.data());
      break;
    }
    case TripleScorerKind::kDistMult:
      // f = -sum h r t.
      for (uint32_t i = 0; i < d; ++i) {
        gh[i] -= sign_factor * r[i] * tl[i];
        gr[i] -= sign_factor * h[i] * tl[i];
        gt[i] -= sign_factor * h[i] * r[i];
      }
      break;
    case TripleScorerKind::kTransH: {
      // f = ||u||_1 with u = (h - w<w,h>) + r - (t - w<w,t>). With
      // s = sign(u) and alpha = <w,h> - <w,t>:
      //   dh = s - w<w,s>, dt = -(s - w<w,s>), dr = s,
      //   dw = -(alpha * s + <s,w> * (h - t)).
      const float* w = model.hyperplane(t.relation);
      const float wh = Dot(d, w, h);
      const float wt = Dot(d, w, tl);
      const float alpha = wh - wt;
      std::vector<float> u(d), sgn(d);
      for (uint32_t i = 0; i < d; ++i) {
        u[i] = (h[i] - wh * w[i]) + r[i] - (tl[i] - wt * w[i]);
      }
      SignOf(d, u.data(), sgn.data());
      const float ws = Dot(d, w, sgn.data());
      std::vector<float>& gw = grad->Hyperplane(t.relation, d);
      for (uint32_t i = 0; i < d; ++i) {
        const float dh_i = sgn[i] - w[i] * ws;
        gh[i] += sign_factor * dh_i;
        gt[i] -= sign_factor * dh_i;
        gr[i] += sign_factor * sgn[i];
        gw[i] -= sign_factor * (alpha * sgn[i] + ws * (h[i] - tl[i]));
      }
      break;
    }
    case TripleScorerKind::kComplEx: {
      // f = -Re<h, r, conj(t)> with layout [real(0..d/2); imag(d/2..d)].
      const uint32_t half = d / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      const float* t_re = tl;
      const float* t_im = tl + half;
      for (uint32_t i = 0; i < half; ++i) {
        gh[i] -= sign_factor * (r_re[i] * t_re[i] + r_im[i] * t_im[i]);
        gh[half + i] -=
            sign_factor * (r_re[i] * t_im[i] - r_im[i] * t_re[i]);
        gr[i] -= sign_factor * (h_re[i] * t_re[i] + h_im[i] * t_im[i]);
        gr[half + i] -=
            sign_factor * (h_re[i] * t_im[i] - h_im[i] * t_re[i]);
        gt[i] -= sign_factor * (h_re[i] * r_re[i] - h_im[i] * r_im[i]);
        gt[half + i] -=
            sign_factor * (h_re[i] * r_im[i] + h_im[i] * r_re[i]);
      }
      break;
    }
  }

  // Relation query module: u = M_r h - r, s' = sign(u).
  if (model.use_relation_module()) {
    const float* m = model.transfer(t.relation);
    std::vector<float> u(d);
    GemvRaw(d, d, m, h, u.data());
    for (uint32_t i = 0; i < d; ++i) u[i] -= r[i];

    std::vector<float> s2(d);
    SignOf(d, u.data(), s2.data());

    std::vector<float>& gm = grad->Transfer(t.relation, d * d);
    for (uint32_t i = 0; i < d; ++i) {
      if (s2[i] == 0.0f) continue;
      // dM_r row i += sign_factor * s2[i] * h
      Axpy(d, sign_factor * s2[i], h, gm.data() + i * d);
    }
    // dh += sign_factor * M_r^T s2
    std::vector<float> mts(d);
    GemvTransposedRaw(d, d, m, s2.data(), mts.data());
    Axpy(d, sign_factor, mts.data(), gh.data());
    // dr -= sign_factor * s2
    Axpy(d, -sign_factor, s2.data(), gr.data());
  }
}

}  // namespace

std::vector<float>& SparseGrad::Entity(uint32_t id, uint32_t dim) {
  return GetOrInit(&entities_, id, dim);
}
std::vector<float>& SparseGrad::Relation(uint32_t id, uint32_t dim) {
  return GetOrInit(&relations_, id, dim);
}
std::vector<float>& SparseGrad::Transfer(uint32_t id, uint32_t dim) {
  return GetOrInit(&transfers_, id, dim);
}
std::vector<float>& SparseGrad::Hyperplane(uint32_t id, uint32_t dim) {
  return GetOrInit(&hyperplanes_, id, dim);
}

void SparseGrad::Clear() {
  entities_.clear();
  relations_.clear();
  transfers_.clear();
  hyperplanes_.clear();
}

float AccumulateHingeGradients(const PkgmModel& model, const kg::Triple& pos,
                               const kg::Triple& neg, float margin,
                               SparseGrad* grad) {
  const float f_pos = model.Score(pos);
  const float f_neg = model.Score(neg);
  const float hinge = f_pos + margin - f_neg;
  if (hinge <= 0.0f) return 0.0f;
  if (grad != nullptr) {
    AccumulateScoreGradients(model, pos, +1.0f, grad);
    AccumulateScoreGradients(model, neg, -1.0f, grad);
  }
  return hinge;
}

}  // namespace pkgm::core
