#include "core/gradients.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::core {

namespace {

std::vector<float>& GetOrInit(
    std::unordered_map<uint32_t, std::vector<float>>* map, uint32_t id,
    uint32_t size) {
  auto [it, inserted] = map->try_emplace(id);
  if (inserted) it->second.assign(size, 0.0f);
  return it->second;
}

// Accumulates the gradient of sign_factor * f(triple) into grad.
void AccumulateScoreGradients(const PkgmModel& model, const kg::Triple& t,
                              float sign_factor, SparseGrad* grad) {
  const uint32_t d = model.dim();
  const float* h = model.entity(t.head);
  const float* r = model.relation(t.relation);
  const float* tl = model.entity(t.tail);

  // Triple query module gradients, per scoring family.
  std::vector<float>& gh = grad->Entity(t.head, d);
  std::vector<float>& gr = grad->Relation(t.relation, d);
  std::vector<float>& gt = grad->Entity(t.tail, d);
  switch (model.scorer()) {
    case TripleScorerKind::kTransE: {
      // f = ||h + r - t||_1, subgradient s = sign(h + r - t); vectorized
      // as diff = h + r - t, s = sign(diff), three Axpy accumulations.
      std::vector<float> diff(d), s(d);
      Add(d, h, r, diff.data());
      Sub(d, diff.data(), tl, diff.data());
      SignOf(d, diff.data(), s.data());
      Axpy(d, sign_factor, s.data(), gh.data());
      Axpy(d, sign_factor, s.data(), gr.data());
      Axpy(d, -sign_factor, s.data(), gt.data());
      break;
    }
    case TripleScorerKind::kDistMult:
      // f = -sum h r t.
      for (uint32_t i = 0; i < d; ++i) {
        gh[i] -= sign_factor * r[i] * tl[i];
        gr[i] -= sign_factor * h[i] * tl[i];
        gt[i] -= sign_factor * h[i] * r[i];
      }
      break;
    case TripleScorerKind::kTransH: {
      // f = ||u||_1 with u = (h - w<w,h>) + r - (t - w<w,t>). With
      // s = sign(u) and alpha = <w,h> - <w,t>:
      //   dh = s - w<w,s>, dt = -(s - w<w,s>), dr = s,
      //   dw = -(alpha * s + <s,w> * (h - t)).
      const float* w = model.hyperplane(t.relation);
      const float wh = Dot(d, w, h);
      const float wt = Dot(d, w, tl);
      const float alpha = wh - wt;
      std::vector<float> u(d), sgn(d);
      for (uint32_t i = 0; i < d; ++i) {
        u[i] = (h[i] - wh * w[i]) + r[i] - (tl[i] - wt * w[i]);
      }
      SignOf(d, u.data(), sgn.data());
      const float ws = Dot(d, w, sgn.data());
      std::vector<float>& gw = grad->Hyperplane(t.relation, d);
      for (uint32_t i = 0; i < d; ++i) {
        const float dh_i = sgn[i] - w[i] * ws;
        gh[i] += sign_factor * dh_i;
        gt[i] -= sign_factor * dh_i;
        gr[i] += sign_factor * sgn[i];
        gw[i] -= sign_factor * (alpha * sgn[i] + ws * (h[i] - tl[i]));
      }
      break;
    }
    case TripleScorerKind::kComplEx: {
      // f = -Re<h, r, conj(t)> with layout [real(0..d/2); imag(d/2..d)].
      const uint32_t half = d / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      const float* t_re = tl;
      const float* t_im = tl + half;
      for (uint32_t i = 0; i < half; ++i) {
        gh[i] -= sign_factor * (r_re[i] * t_re[i] + r_im[i] * t_im[i]);
        gh[half + i] -=
            sign_factor * (r_re[i] * t_im[i] - r_im[i] * t_re[i]);
        gr[i] -= sign_factor * (h_re[i] * t_re[i] + h_im[i] * t_im[i]);
        gr[half + i] -=
            sign_factor * (h_re[i] * t_im[i] - h_im[i] * t_re[i]);
        gt[i] -= sign_factor * (h_re[i] * r_re[i] - h_im[i] * r_im[i]);
        gt[half + i] -=
            sign_factor * (h_re[i] * r_im[i] + h_im[i] * r_re[i]);
      }
      break;
    }
  }

  // Relation query module: u = M_r h - r, s' = sign(u).
  if (model.use_relation_module()) {
    const float* m = model.transfer(t.relation);
    std::vector<float> u(d);
    GemvRaw(d, d, m, h, u.data());
    for (uint32_t i = 0; i < d; ++i) u[i] -= r[i];

    std::vector<float> s2(d);
    SignOf(d, u.data(), s2.data());

    std::vector<float>& gm = grad->Transfer(t.relation, d * d);
    for (uint32_t i = 0; i < d; ++i) {
      if (s2[i] == 0.0f) continue;
      // dM_r row i += sign_factor * s2[i] * h
      Axpy(d, sign_factor * s2[i], h, gm.data() + i * d);
    }
    // dh += sign_factor * M_r^T s2
    std::vector<float> mts(d);
    GemvTransposedRaw(d, d, m, s2.data(), mts.data());
    Axpy(d, sign_factor, mts.data(), gh.data());
    // dr -= sign_factor * s2
    Axpy(d, -sign_factor, s2.data(), gr.data());
  }
}

}  // namespace

std::vector<float>& SparseGrad::Entity(uint32_t id, uint32_t dim) {
  return GetOrInit(&entities_, id, dim);
}
std::vector<float>& SparseGrad::Relation(uint32_t id, uint32_t dim) {
  return GetOrInit(&relations_, id, dim);
}
std::vector<float>& SparseGrad::Transfer(uint32_t id, uint32_t dim) {
  return GetOrInit(&transfers_, id, dim);
}
std::vector<float>& SparseGrad::Hyperplane(uint32_t id, uint32_t dim) {
  return GetOrInit(&hyperplanes_, id, dim);
}

void SparseGrad::Clear() {
  entities_.clear();
  relations_.clear();
  transfers_.clear();
  hyperplanes_.clear();
}

float AccumulateHingeGradients(const PkgmModel& model, const kg::Triple& pos,
                               const kg::Triple& neg, float margin,
                               SparseGrad* grad) {
  const float f_pos = model.Score(pos);
  const float f_neg = model.Score(neg);
  const float hinge = f_pos + margin - f_neg;
  if (hinge <= 0.0f) return 0.0f;
  if (grad != nullptr) {
    AccumulateScoreGradients(model, pos, +1.0f, grad);
    AccumulateScoreGradients(model, neg, -1.0f, grad);
  }
  return hinge;
}

namespace {

// Multiplicative hash: the entropy lands in the high bits, which is where
// the power-of-two mask looks after the shift.
inline size_t SlotHash(uint32_t id) {
  return static_cast<size_t>((static_cast<uint64_t>(id) *
                              UINT64_C(0x9E3779B97F4A7C15)) >>
                             32);
}

}  // namespace

float* GradSlab::Row(uint32_t id, uint32_t row_size) {
  if (keys_.empty()) {
    keys_.assign(256, 0);
    pos_.assign(256, 0);
  }
  if (row_size_ == 0) row_size_ = row_size;
  PKGM_CHECK_EQ(row_size_, row_size);

  size_t mask = keys_.size() - 1;
  size_t slot = SlotHash(id) & mask;
  while (true) {
    const uint32_t k = keys_[slot];
    if (k == id + 1) return slab_.data() + pos_[slot] * row_size_;
    if (k == 0) break;
    slot = (slot + 1) & mask;
  }

  // Insert at 3/4 max load; rehashing moves the free slot, so probe again.
  if ((ids_.size() + 1) * 4 > keys_.size() * 3) {
    Rehash(keys_.size() * 2);
    mask = keys_.size() - 1;
    slot = SlotHash(id) & mask;
    while (keys_[slot] != 0) slot = (slot + 1) & mask;
  }
  keys_[slot] = id + 1;
  pos_[slot] = static_cast<uint32_t>(ids_.size());
  used_slots_.push_back(static_cast<uint32_t>(slot));
  ids_.push_back(id);
  const size_t needed = ids_.size() * row_size_;
  if (slab_.size() < needed) {
    // Growth zero-fills; rows below the watermark were zeroed by Clear.
    slab_.resize(std::max(needed, slab_.size() * 2), 0.0f);
  }
  return slab_.data() + (ids_.size() - 1) * row_size_;
}

void GradSlab::Rehash(size_t new_capacity) {
  keys_.assign(new_capacity, 0);
  pos_.assign(new_capacity, 0);
  used_slots_.clear();
  const size_t mask = new_capacity - 1;
  for (size_t i = 0; i < ids_.size(); ++i) {
    size_t slot = SlotHash(ids_[i]) & mask;
    while (keys_[slot] != 0) slot = (slot + 1) & mask;
    keys_[slot] = ids_[i] + 1;
    pos_[slot] = static_cast<uint32_t>(i);
    used_slots_.push_back(static_cast<uint32_t>(slot));
  }
}

void GradSlab::Clear() {
  // Rows are claimed consecutively from the front, so the touched region
  // is exactly the first size() rows. Index slots can't be cleared while
  // probing (that would break linear-probe chains mid-scan), which is why
  // they were recorded at insert time.
  if (!ids_.empty()) {
    std::memset(slab_.data(), 0, ids_.size() * row_size_ * sizeof(float));
  }
  for (uint32_t s : used_slots_) keys_[s] = 0;
  used_slots_.clear();
  ids_.clear();
}

void GradArena::Clear() {
  entities_.Clear();
  relations_.Clear();
  transfers_.Clear();
  hyperplanes_.Clear();
}

// --------------------------------------------- GradArena serialization --

namespace {

// Little-endian blob plumbing. Rows move as raw f32 runs (a memcpy on
// little-endian hosts), so serialize → deserialize reproduces payloads
// bit-for-bit, -0.0f and all.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kBlobHostLittleEndian = true;
#else
constexpr bool kBlobHostLittleEndian = false;
#endif

void BlobPutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void BlobPutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void BlobPutF32Run(const float* v, size_t n, std::string* out) {
  if (n == 0) return;
  if (kBlobHostLittleEndian) {
    out->append(reinterpret_cast<const char*>(v), n * sizeof(float));
  } else {
    for (size_t i = 0; i < n; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &v[i], sizeof(bits));
      BlobPutU32(bits, out);
    }
  }
}

class BlobCursor {
 public:
  explicit BlobCursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = Byte(0) | (Byte(1) << 8) | (Byte(2) << 16) | (Byte(3) << 24);
    pos_ += 4;
    return true;
  }

  bool ReadF32Run(float* out, size_t n) {
    if (n == 0) return true;
    if (remaining() < n * sizeof(float)) return false;
    if (kBlobHostLittleEndian) {
      std::memcpy(out, data_.data() + pos_, n * sizeof(float));
      pos_ += n * sizeof(float);
      return true;
    }
    for (size_t i = 0; i < n; ++i) {
      uint32_t bits;
      if (!ReadU32(&bits)) return false;
      std::memcpy(&out[i], &bits, sizeof(out[i]));
    }
    return true;
  }

 private:
  uint32_t Byte(size_t i) const {
    return static_cast<uint8_t>(data_[pos_ + i]);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// `filtered` = apply the id % num_shards == shard predicate. Unfiltered
// serialization passes num_shards = 1 (every id matches shard 0).
// Returns the number of rows written.
size_t SerializeSlab(const GradSlab& slab, uint32_t shard,
                     uint32_t num_shards, std::string* out) {
  const uint32_t n = slab.row_size();
  uint32_t count = 0;
  if (num_shards <= 1) {
    count = static_cast<uint32_t>(slab.size());
  } else {
    for (size_t i = 0; i < slab.size(); ++i) {
      if (slab.id_at(i) % num_shards == shard) ++count;
    }
  }
  BlobPutU32(count == 0 ? 0 : n, out);
  BlobPutU32(count, out);
  for (size_t i = 0; i < slab.size(); ++i) {
    const uint32_t id = slab.id_at(i);
    if (num_shards > 1 && id % num_shards != shard) continue;
    BlobPutU32(id, out);
    BlobPutF32Run(slab.row_at(i), n, out);
  }
  return count;
}

Status BlobCorruption(const char* what) {
  return Status::Corruption(std::string("GradArena blob: ") + what);
}

}  // namespace

size_t SerializeGradArena(const GradArena& arena, std::string* out) {
  return SerializeGradArena(arena, 0, 1, out);
}

size_t SerializeGradArena(const GradArena& arena, uint32_t shard,
                          uint32_t num_shards, std::string* out) {
  PKGM_CHECK_GT(num_shards, 0u);
  PKGM_CHECK_LT(shard, num_shards);
  BlobPutU32(kGradArenaBlobMagic, out);
  out->push_back(static_cast<char>(kGradArenaBlobVersion));
  out->push_back(static_cast<char>(4));  // num_slabs
  BlobPutU16(0, out);                    // reserved
  size_t rows = 0;
  rows += SerializeSlab(arena.entities(), shard, num_shards, out);
  rows += SerializeSlab(arena.relations(), shard, num_shards, out);
  rows += SerializeSlab(arena.transfers(), shard, num_shards, out);
  rows += SerializeSlab(arena.hyperplanes(), shard, num_shards, out);
  return rows;
}

Status DeserializeGradArena(std::string_view blob, GradArena* arena,
                            uint64_t* rows_applied) {
  BlobCursor cursor(blob);
  uint32_t magic;
  uint8_t version, num_slabs;
  uint16_t reserved;
  if (!cursor.ReadU32(&magic) || !cursor.ReadU8(&version) ||
      !cursor.ReadU8(&num_slabs) || !cursor.ReadU16(&reserved)) {
    return BlobCorruption("truncated header");
  }
  if (magic != kGradArenaBlobMagic) return BlobCorruption("bad magic");
  if (version != kGradArenaBlobVersion) {
    return BlobCorruption("unsupported version");
  }
  if (num_slabs != 4) return BlobCorruption("unexpected slab count");
  if (reserved != 0) return BlobCorruption("non-zero reserved bits");

  uint64_t applied = 0;
  GradSlab* slabs[4] = {&arena->entities(), &arena->relations(),
                        &arena->transfers(), &arena->hyperplanes()};
  std::vector<float> row;
  for (GradSlab* slab : slabs) {
    uint32_t row_size, count;
    if (!cursor.ReadU32(&row_size) || !cursor.ReadU32(&count)) {
      return BlobCorruption("truncated slab header");
    }
    if (count == 0) continue;
    if (row_size == 0) return BlobCorruption("zero row size");
    // Allocation guard: count rows of (4-byte id + row_size floats) must
    // fit in the bytes actually left. Division keeps it overflow-proof.
    const uint64_t entry_bytes = 4 + static_cast<uint64_t>(row_size) * 4;
    if (entry_bytes > cursor.remaining() / count) {
      return BlobCorruption("slab count exceeds byte budget");
    }
    if (!slab->empty() && slab->row_size() != row_size) {
      return BlobCorruption("row size disagrees with target arena");
    }
    row.resize(row_size);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id;
      if (!cursor.ReadU32(&id) || !cursor.ReadF32Run(row.data(), row_size)) {
        return BlobCorruption("truncated slab rows");
      }
      const size_t before = slab->size();
      float* dst = slab->Row(id, row_size);
      if (slab->size() > before) {
        // Fresh row: copy, so the round trip is bit-exact (+= into the
        // zero-initialized row would flush -0.0f payloads to +0.0f).
        std::memcpy(dst, row.data(), row_size * sizeof(float));
      } else {
        for (uint32_t j = 0; j < row_size; ++j) dst[j] += row[j];
      }
      ++applied;
    }
  }
  if (!cursor.done()) return BlobCorruption("trailing bytes");
  if (rows_applied != nullptr) *rows_applied = applied;
  return Status::Ok();
}

void HingeWorkspace::EnsureDim(uint32_t d) {
  if (diff_pos.size() >= d) return;
  diff_pos.resize(d);
  diff_neg.resize(d);
  u_pos.resize(d);
  u_neg.resize(d);
  sgn.resize(d);
  mts.resize(d);
}

namespace {

// Forward score of one triple under table `k`, parking the residuals the
// backward pass reuses: `diff` = h + r - t (TransE), `u` = M_r h (relation
// module; the "- r" happens in the backward so the forward can use the
// fused l1_distance reduction). Arithmetic mirrors PkgmModel::Score
// composition-for-composition, so the value is bit-identical when `k` is
// the active table.
float FusedForward(const PkgmModel& model, const kg::Triple& t,
                   const simd::KernelTable& k, float* diff, float* u) {
  const uint32_t d = model.dim();
  const float* h = model.entity(t.head);
  const float* r = model.relation(t.relation);
  const float* tl = model.entity(t.tail);
  float f = 0.0f;
  switch (model.scorer()) {
    case TripleScorerKind::kTransE:
      k.residual(d, h, r, tl, diff);
      f = k.l1_norm(d, diff);
      break;
    case TripleScorerKind::kDistMult: {
      float acc = 0.0f;
      for (uint32_t i = 0; i < d; ++i) acc += h[i] * r[i] * tl[i];
      f = -acc;
      break;
    }
    case TripleScorerKind::kComplEx: {
      const uint32_t half = d / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      const float* t_re = tl;
      const float* t_im = tl + half;
      float acc = 0.0f;
      for (uint32_t i = 0; i < half; ++i) {
        acc += (h_re[i] * r_re[i] - h_im[i] * r_im[i]) * t_re[i] +
               (h_re[i] * r_im[i] + h_im[i] * r_re[i]) * t_im[i];
      }
      f = -acc;
      break;
    }
    case TripleScorerKind::kTransH: {
      const float* w = model.hyperplane(t.relation);
      const float wh = k.dot(d, w, h);
      const float wt = k.dot(d, w, tl);
      float acc = 0.0f;
      for (uint32_t i = 0; i < d; ++i) {
        acc += std::fabs((h[i] - wh * w[i]) + r[i] - (tl[i] - wt * w[i]));
      }
      f = acc;
      break;
    }
  }
  if (model.use_relation_module()) {
    k.gemv_raw(d, d, model.transfer(t.relation), h, u);
    f += k.l1_distance(d, u, r);
  }
  return f;
}

// Backward pass of sign_factor * f(t) into the arena, reusing the forward
// residuals. Accumulation order matches AccumulateScoreGradients exactly.
void FusedBackward(const PkgmModel& model, const kg::Triple& t,
                   float sign_factor, const simd::KernelTable& k,
                   const float* diff, float* u, HingeWorkspace* ws,
                   GradArena* grad) {
  const uint32_t d = model.dim();
  const float* h = model.entity(t.head);
  const float* r = model.relation(t.relation);
  const float* tl = model.entity(t.tail);

  // Claim every row first: a claim can grow its slab and move earlier rows
  // of the same slab, so pointers are fetched only once all rows exist.
  grad->Entity(t.head, d);
  grad->Entity(t.tail, d);
  grad->Relation(t.relation, d);
  if (model.use_relation_module()) grad->Transfer(t.relation, d * d);
  if (model.scorer() == TripleScorerKind::kTransH) {
    grad->Hyperplane(t.relation, d);
  }
  float* gh = grad->Entity(t.head, d);
  float* gt = grad->Entity(t.tail, d);
  float* gr = grad->Relation(t.relation, d);

  switch (model.scorer()) {
    case TripleScorerKind::kTransE: {
      float* s = ws->sgn.data();
      k.sign_of(d, diff, s);
      k.axpy(d, sign_factor, s, gh);
      k.axpy(d, sign_factor, s, gr);
      k.axpy(d, -sign_factor, s, gt);
      break;
    }
    case TripleScorerKind::kDistMult:
      for (uint32_t i = 0; i < d; ++i) {
        gh[i] -= sign_factor * r[i] * tl[i];
        gr[i] -= sign_factor * h[i] * tl[i];
        gt[i] -= sign_factor * h[i] * r[i];
      }
      break;
    case TripleScorerKind::kTransH: {
      const float* w = model.hyperplane(t.relation);
      const float wh = k.dot(d, w, h);
      const float wt = k.dot(d, w, tl);
      const float alpha = wh - wt;
      // `u` still holds the relation-module forward residual for the block
      // below; mts is free until then, so it hosts the projected
      // difference vector.
      float* un = ws->mts.data();
      for (uint32_t i = 0; i < d; ++i) {
        un[i] = (h[i] - wh * w[i]) + r[i] - (tl[i] - wt * w[i]);
      }
      float* s = ws->sgn.data();
      k.sign_of(d, un, s);
      const float ws_dot = k.dot(d, w, s);
      float* gw = grad->Hyperplane(t.relation, d);
      for (uint32_t i = 0; i < d; ++i) {
        const float dh_i = s[i] - w[i] * ws_dot;
        gh[i] += sign_factor * dh_i;
        gt[i] -= sign_factor * dh_i;
        gr[i] += sign_factor * s[i];
        gw[i] -= sign_factor * (alpha * s[i] + ws_dot * (h[i] - tl[i]));
      }
      break;
    }
    case TripleScorerKind::kComplEx: {
      const uint32_t half = d / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      const float* t_re = tl;
      const float* t_im = tl + half;
      for (uint32_t i = 0; i < half; ++i) {
        gh[i] -= sign_factor * (r_re[i] * t_re[i] + r_im[i] * t_im[i]);
        gh[half + i] -=
            sign_factor * (r_re[i] * t_im[i] - r_im[i] * t_re[i]);
        gr[i] -= sign_factor * (h_re[i] * t_re[i] + h_im[i] * t_im[i]);
        gr[half + i] -=
            sign_factor * (h_re[i] * t_im[i] - h_im[i] * t_re[i]);
        gt[i] -= sign_factor * (h_re[i] * r_re[i] - h_im[i] * r_im[i]);
        gt[half + i] -=
            sign_factor * (h_re[i] * r_im[i] + h_im[i] * r_re[i]);
      }
      break;
    }
  }

  if (model.use_relation_module()) {
    const float* m = model.transfer(t.relation);
    // Finish the residual parked by the forward: u = M_r h - r.
    k.sub(d, u, r, u);
    float* s2 = ws->sgn.data();
    k.sign_of(d, u, s2);
    float* gm = grad->Transfer(t.relation, d * d);
    // dM_r += sign_factor * s' h^T (rows with s'[i] == 0 skipped).
    k.ger(d, d, sign_factor, s2, h, gm);
    // dh += sign_factor * M_r^T s'.
    k.gemv_t(d, d, m, s2, ws->mts.data());
    k.axpy(d, sign_factor, ws->mts.data(), gh);
    // dr -= sign_factor * s'.
    k.axpy(d, -sign_factor, s2, gr);
  }
}

}  // namespace

float FusedHingeGradients(const PkgmModel& model, const kg::Triple& pos,
                          const kg::Triple& neg, float margin,
                          const simd::KernelTable& k, HingeWorkspace* ws,
                          GradArena* grad) {
  const uint32_t d = model.dim();
  ws->EnsureDim(d);
  const float f_pos =
      FusedForward(model, pos, k, ws->diff_pos.data(), ws->u_pos.data());
  const float f_neg =
      FusedForward(model, neg, k, ws->diff_neg.data(), ws->u_neg.data());
  const float hinge = f_pos + margin - f_neg;
  if (hinge <= 0.0f) return 0.0f;
  if (grad != nullptr) {
    FusedBackward(model, pos, +1.0f, k, ws->diff_pos.data(),
                  ws->u_pos.data(), ws, grad);
    FusedBackward(model, neg, -1.0f, k, ws->diff_neg.data(),
                  ws->u_neg.data(), ws, grad);
  }
  return hinge;
}

}  // namespace pkgm::core
