#ifndef PKGM_CORE_TRAINER_H_
#define PKGM_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/gradients.h"
#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "kg/triple_source.h"
#include "tensor/simd/kernel_dispatch.h"
#include "tensor/vec.h"
#include "util/rng.h"

namespace pkgm::core {

/// Which optimizer the trainer applies to the sparse gradients.
enum class OptimizerKind { kSgd, kAdam };

/// Training hyper-parameters (paper §III-A2: Adam, lr 1e-4, batch 1000,
/// d=64, 1 negative per edge, 2 epochs; defaults here are tuned for
/// laptop-scale graphs where more aggressive rates converge in seconds).
struct TrainerOptions {
  uint32_t batch_size = 512;
  float learning_rate = 0.02f;
  /// Margin gamma in the ranking loss (Eq. 4).
  float margin = 2.0f;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  float adam_beta1 = 0.9f;
  float adam_beta2 = 0.999f;
  float adam_epsilon = 1e-8f;
  /// Project entity embeddings back onto the unit L2 ball after each batch
  /// (TransE's norm constraint).
  bool normalize_entities = true;
  /// Negative sampling configuration; num_entities/num_relations are filled
  /// from the model if left 0.
  NegativeSampler::Options negative;
  uint64_t seed = 13;
};

/// Per-epoch training telemetry.
struct EpochStats {
  double mean_hinge = 0.0;       ///< mean hinge over all pairs (0 = satisfied)
  uint64_t active_pairs = 0;     ///< pairs with a positive hinge
  uint64_t total_pairs = 0;
  double seconds = 0.0;
  double triples_per_second = 0.0;
};

/// Mini-batch trainer for PkgmModel on a fixed triple set. Single-threaded
/// reference implementation; see ShardedTrainer for the parameter-server
/// simulation. Adam state is kept lazily ("sparse Adam"): moments are dense
/// tables but only touched rows are updated, with bias correction from the
/// global step count.
///
/// The hot path runs through FusedHingeGradients into a reusable flat
/// GradArena and applies rows with the dispatched axpy/adam_row kernels —
/// no per-batch allocation, and for a fixed seed two runs produce
/// bit-identical embeddings (validation draws from its own RNG stream, so
/// interleaving EvaluateMeanHinge calls cannot perturb the trajectory).
class Trainer {
 public:
  /// `model` and `store` must outlive the trainer. `store` doubles as the
  /// filter for negative sampling. Training iterates over `store`'s triples
  /// in the order AppendTriples presents them — so the in-memory store and
  /// a `.pkgt` index holding the same triples in the same order produce
  /// bit-identical trajectories for a fixed seed.
  Trainer(PkgmModel* model, const kg::TripleSource* store,
          const TrainerOptions& options);

  /// Runs one epoch (one shuffled pass over the training triples).
  EpochStats RunEpoch();

  /// Runs `n` epochs, returning stats of the last.
  EpochStats Train(uint32_t n);

  /// Mean hinge on an arbitrary triple list without updating parameters.
  /// Fresh negatives are drawn from a dedicated validation RNG, so calling
  /// this mid-training leaves the training trajectory untouched.
  double EvaluateMeanHinge(const std::vector<kg::Triple>& triples);

  uint64_t global_step() const { return step_; }

 private:
  void ApplyGradients(const GradArena& grad, float scale);

  PkgmModel* model_;
  const kg::TripleSource* store_;
  TrainerOptions options_;
  NegativeSampler sampler_;
  Rng rng_;
  Rng eval_rng_;
  uint64_t step_ = 0;  // batches applied, drives Adam bias correction

  const simd::KernelTable& kernels_;
  GradArena arena_;
  HingeWorkspace workspace_;

  // Lazy Adam moment tables (allocated only when optimizer == kAdam).
  Mat m_entities_, v_entities_;
  Mat m_relations_, v_relations_;
  Mat m_transfers_, v_transfers_;
  Mat m_hyperplanes_, v_hyperplanes_;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_TRAINER_H_
