#ifndef PKGM_CORE_SHARDED_TRAINER_H_
#define PKGM_CORE_SHARDED_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "kg/triple_source.h"
#include "tensor/simd/kernel_dispatch.h"

namespace pkgm::core {

/// Distributed-training simulation of the paper's infrastructure (§III-A2:
/// 50 parameter servers + 200 workers on TensorFlow/Graph-learn), run as a
/// pipelined hogwild epoch:
///
///   * A producer thread shuffles the epoch's triples and draws filtered
///     negatives in batch order into a bounded queue of recycled batches
///     (double-buffered per worker), so sampling overlaps gradient compute
///     and the (pos, neg) pair stream is deterministic for a fixed seed
///     regardless of worker scheduling.
///   * Workers pop batches, accumulate gradients in a private flat
///     GradArena via the fused SIMD hinge kernels, and publish each row to
///     the shared model under a striped spinlock (cache-line-sized stripes
///     hashed by table + row id) — no per-batch shard-mutex convoy.
///     Parameter reads stay unlocked, so workers see slightly stale values:
///     the asynchronous PS training regime.
///   * Per-batch hinge/active counts land in slots indexed by batch id and
///     are reduced in batch order after the join, so epoch stats merge
///     deterministically (independent of which worker ran which batch).
struct ShardedTrainerOptions {
  uint32_t num_workers = 4;
  /// Legacy parameter-server partition count. Row-level striped locks
  /// replaced per-shard mutexes; this now only sets a floor on the stripe
  /// count (the default floor is already far above typical values).
  uint32_t num_shards = 8;
  uint32_t batch_size = 512;
  float learning_rate = 0.02f;
  float margin = 2.0f;
  bool normalize_entities = true;
  NegativeSampler::Options negative;
  uint64_t seed = 17;
};

class ShardedTrainer {
 public:
  /// `model` and `store` must outlive the trainer.
  ShardedTrainer(PkgmModel* model, const kg::TripleSource* store,
                 const ShardedTrainerOptions& options);

  /// One pipelined asynchronous epoch across all workers.
  EpochStats RunEpoch();

  /// Runs n epochs, returning the last epoch's stats.
  EpochStats Train(uint32_t n);

  /// Number of row-lock stripes (power of two; exposed for tests).
  size_t num_stripes() const { return stripe_mask_ + 1; }

 private:
  // One cache line per stripe so contending row locks never false-share.
  struct alignas(64) Stripe {
    std::atomic<bool> locked{false};
  };

  size_t StripeOf(uint32_t table_tag, uint32_t row) const;
  void LockStripe(Stripe& s);
  void ApplyWorkerGradients(const GradArena& grad, float scale);

  PkgmModel* model_;
  const kg::TripleSource* store_;
  ShardedTrainerOptions options_;
  NegativeSampler sampler_;
  Rng epoch_rng_;
  const simd::KernelTable& kernels_;
  std::unique_ptr<Stripe[]> stripes_;
  size_t stripe_mask_ = 0;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_SHARDED_TRAINER_H_
