#ifndef PKGM_CORE_SHARDED_TRAINER_H_
#define PKGM_CORE_SHARDED_TRAINER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "kg/triple_store.h"

namespace pkgm::core {

/// Distributed-training simulation of the paper's infrastructure (§III-A2:
/// 50 parameter servers + 200 workers on TensorFlow/Graph-learn).
///
/// Parameters are hash-partitioned into `num_shards` shards, each protected
/// by its own lock (a stand-in for one parameter server). `num_workers`
/// threads process disjoint slices of the epoch's shuffled triples in
/// mini-batches, compute gradients against their (possibly slightly stale)
/// view of the parameters, and push SGD updates to the owning shards —
/// asynchronous "hogwild with shard locks" semantics, matching the
/// eventually-consistent updates of a real PS deployment.
struct ShardedTrainerOptions {
  uint32_t num_workers = 4;
  uint32_t num_shards = 8;
  uint32_t batch_size = 512;
  float learning_rate = 0.02f;
  float margin = 2.0f;
  bool normalize_entities = true;
  NegativeSampler::Options negative;
  uint64_t seed = 17;
};

class ShardedTrainer {
 public:
  /// `model` and `store` must outlive the trainer.
  ShardedTrainer(PkgmModel* model, const kg::TripleStore* store,
                 const ShardedTrainerOptions& options);

  /// One asynchronous epoch across all workers.
  EpochStats RunEpoch();

  /// Runs n epochs, returning the last epoch's stats.
  EpochStats Train(uint32_t n);

 private:
  /// Shard that owns entity row e (and, reusing the hash, relation row r).
  uint32_t ShardOf(uint32_t row) const { return row % options_.num_shards; }

  void ApplyWorkerGradients(const class SparseGrad& grad, float scale);

  PkgmModel* model_;
  const kg::TripleStore* store_;
  ShardedTrainerOptions options_;
  NegativeSampler sampler_;
  Rng epoch_rng_;
  std::vector<std::unique_ptr<std::mutex>> shard_locks_;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_SHARDED_TRAINER_H_
