#ifndef PKGM_CORE_PKGM_MODEL_H_
#define PKGM_CORE_PKGM_MODEL_H_

#include <cstdint>
#include <string>

#include "core/embedding_source.h"
#include "kg/triple.h"
#include "tensor/vec.h"
#include "util/rng.h"
#include "util/status.h"

namespace pkgm::core {

/// Model hyper-parameters (paper §III-A2: d = 64, Adam lr 1e-4, batch 1000,
/// 1 negative per edge; our defaults are scaled for laptop-size graphs).
/// TripleScorerKind (the triple query module's scoring family) lives in
/// core/embedding_source.h alongside the parameter-access seam.
struct PkgmModelOptions {
  uint32_t num_entities = 0;
  uint32_t num_relations = 0;
  /// Embedding dimension d. Must be even for kComplEx.
  uint32_t dim = 64;
  /// Triple query module scoring family.
  TripleScorerKind scorer = TripleScorerKind::kTransE;
  /// If false the model degrades to the bare triple scorer (used by the
  /// ablation bench to isolate the relation query module's contribution).
  bool use_relation_module = true;
  uint64_t seed = 7;
};

/// The Pre-trained Knowledge Graph Model (paper §II).
///
/// Parameters:
///   * entity embeddings   E  : num_entities  x d
///   * relation embeddings R  : num_relations x d
///   * transfer matrices   M_r: num_relations x (d x d), row-major per r
///
/// Score functions (L1 norms, Table I):
///   * triple   query module  f_T(h,r,t) = ||h + r - t||
///   * relation query module  f_R(h,r)   = ||M_r h - r||
///   * joint                  f(h,r,t)   = f_T + f_R          (Eq. 3)
///
/// Serving functions (Table I):
///   * S_T(h,r) = h + r        — predicted tail embedding      (Eq. 6)
///   * S_R(h,r) = M_r h - r    — ~0 iff h has / should have r  (Eq. 7)
///
/// The model owns plain dense tables so trainers can update rows in place;
/// thread-safety during training is the trainer's concern (hogwild-style
/// benign races or per-shard locking).
///
/// As an EmbeddingSource it hands out zero-copy fp32 row pointers, so the
/// serving path (ServiceVectorProvider, KnowledgeServer) works identically
/// over a live training model and over a memory-mapped store export.
class PkgmModel : public EmbeddingSource {
 public:
  /// Allocates and randomly initializes all parameters (TransE-style init
  /// for embeddings, near-identity for transfer matrices).
  explicit PkgmModel(const PkgmModelOptions& options);

  PkgmModel(const PkgmModel&) = delete;
  PkgmModel& operator=(const PkgmModel&) = delete;
  PkgmModel(PkgmModel&&) = default;
  PkgmModel& operator=(PkgmModel&&) = default;

  uint32_t num_entities() const override { return options_.num_entities; }
  uint32_t num_relations() const override { return options_.num_relations; }
  uint32_t dim() const override { return options_.dim; }
  TripleScorerKind scorer() const override { return options_.scorer; }
  bool use_relation_module() const { return options_.use_relation_module; }
  bool has_relation_module() const override {
    return options_.use_relation_module;
  }

  /// EmbeddingSource row accessors — direct pointers into the heap tables;
  /// `scratch` is never used.
  const float* EntityRow(uint32_t e, float* /*scratch*/) const override {
    return entity(e);
  }
  const float* EntityRowsBlock(uint32_t first, uint32_t /*count*/,
                               float* /*scratch*/) const override {
    // The heap table is row-major and contiguous: a block of rows is just
    // a pointer to the first one.
    return entity(first);
  }
  const float* RelationRow(uint32_t r, float* /*scratch*/) const override {
    return relation(r);
  }
  const float* TransferRow(uint32_t r, float* /*scratch*/) const override {
    return transfer(r);
  }
  const float* HyperplaneRow(uint32_t r, float* /*scratch*/) const override {
    return hyperplane(r);
  }

  /// Embedding row accessors (length dim()).
  float* entity(uint32_t e) { return entities_.Row(e); }
  const float* entity(uint32_t e) const { return entities_.Row(e); }
  float* relation(uint32_t r) { return relations_.Row(r); }
  const float* relation(uint32_t r) const { return relations_.Row(r); }
  /// Transfer matrix M_r, row-major dim() x dim() (length dim()^2).
  float* transfer(uint32_t r) { return transfers_.Row(r); }
  const float* transfer(uint32_t r) const { return transfers_.Row(r); }
  /// TransH hyperplane normal w_r (length dim()); only allocated when the
  /// scorer is kTransH.
  float* hyperplane(uint32_t r) { return hyperplanes_.Row(r); }
  const float* hyperplane(uint32_t r) const { return hyperplanes_.Row(r); }

  Mat& entity_table() { return entities_; }
  Mat& relation_table() { return relations_; }
  Mat& transfer_table() { return transfers_; }
  Mat& hyperplane_table() { return hyperplanes_; }
  const Mat& entity_table() const { return entities_; }
  const Mat& relation_table() const { return relations_; }
  const Mat& transfer_table() const { return transfers_; }

  /// Triple-module score, smaller = more plausible. TransE: Eq. 1; see
  /// TripleScorerKind for the other families.
  float TripleScore(const kg::Triple& t) const;

  /// The tail-query vector q(h, r) such that a candidate tail's score is
  /// TailDistance(q, tail embedding): TransE q = h + r (Eq. 6), DistMult
  /// q = h .* r, ComplEx q = h (*) r (complex Hadamard, conjugate folded in).
  void TripleQueryVector(kg::EntityId h, kg::RelationId r, float* out) const;

  /// Distance of a candidate tail embedding from a query vector, under the
  /// model's scorer: L1 for TransE (TransH projects the tail onto the
  /// relation's hyperplane first, hence the relation argument), negative
  /// dot product for DistMult / ComplEx. Equals TripleScore on the
  /// corresponding triple.
  float TailDistance(kg::RelationId r, const float* query,
                     const float* tail) const;

  /// f_R(h,r) = ||M_r h - r||_1 (Eq. 2). Returns 0 when the relation
  /// module is disabled.
  float RelationScore(kg::EntityId h, kg::RelationId r) const;

  /// f = f_T + f_R (Eq. 3).
  float Score(const kg::Triple& t) const;

  /// Triple query service vector S_T(h,r) (Eq. 6) — identical to
  /// TripleQueryVector; kept as the paper-facing name.
  void TripleService(kg::EntityId h, kg::RelationId r, float* out) const;

  /// S_R(h,r) = M_r h - r into out[0..dim) (Eq. 7). Zero-fills when the
  /// relation module is disabled.
  void RelationService(kg::EntityId h, kg::RelationId r, float* out) const;

  /// Renormalizes an entity embedding onto the L2 unit ball if it escaped
  /// (TransE's constraint; keeps the margin meaningful).
  void NormalizeEntity(uint32_t e);

  /// Renormalizes a TransH hyperplane normal to exactly unit length (the
  /// hard ||w_r|| = 1 constraint of TransH). No-op for other scorers.
  void NormalizeHyperplane(uint32_t r);

  /// Binary checkpoint of all parameters + options.
  Status SaveToFile(const std::string& path) const;
  /// Loads a checkpoint produced by SaveToFile.
  static StatusOr<PkgmModel> LoadFromFile(const std::string& path);

 private:
  PkgmModelOptions options_;
  Mat entities_;     // num_entities x dim
  Mat relations_;    // num_relations x dim
  Mat transfers_;    // num_relations x dim*dim (row-major d x d per relation)
  Mat hyperplanes_;  // num_relations x dim (TransH only)
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_PKGM_MODEL_H_
