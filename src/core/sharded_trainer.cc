#include "core/sharded_trainer.h"

#include <atomic>
#include <thread>

#include "core/gradients.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace pkgm::core {

namespace {
NegativeSampler::Options FillNegativeOptions(NegativeSampler::Options neg,
                                             const PkgmModel& model) {
  if (neg.num_entities == 0) neg.num_entities = model.num_entities();
  if (neg.num_relations == 0) neg.num_relations = model.num_relations();
  return neg;
}
}  // namespace

ShardedTrainer::ShardedTrainer(PkgmModel* model, const kg::TripleStore* store,
                               const ShardedTrainerOptions& options)
    : model_(model),
      store_(store),
      options_(options),
      sampler_(FillNegativeOptions(options.negative, *model), store),
      epoch_rng_(options.seed) {
  PKGM_CHECK(model != nullptr);
  PKGM_CHECK(store != nullptr);
  PKGM_CHECK_GT(options.num_workers, 0u);
  PKGM_CHECK_GT(options.num_shards, 0u);
  shard_locks_.reserve(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    shard_locks_.push_back(std::make_unique<std::mutex>());
  }
}

void ShardedTrainer::ApplyWorkerGradients(const SparseGrad& grad,
                                          float scale) {
  const uint32_t d = model_->dim();
  const float lr = options_.learning_rate * scale;

  // Push each touched row to its owning "parameter server" shard under that
  // shard's lock. Reads during gradient computation are unlocked, so
  // workers see slightly stale parameters — exactly the asynchronous PS
  // training regime.
  for (const auto& [id, g] : grad.entities()) {
    std::lock_guard<std::mutex> lock(*shard_locks_[ShardOf(id)]);
    float* row = model_->entity(id);
    for (uint32_t i = 0; i < d; ++i) row[i] -= lr * g[i];
    if (options_.normalize_entities) model_->NormalizeEntity(id);
  }
  for (const auto& [id, g] : grad.relations()) {
    std::lock_guard<std::mutex> lock(*shard_locks_[ShardOf(id)]);
    float* row = model_->relation(id);
    for (uint32_t i = 0; i < d; ++i) row[i] -= lr * g[i];
  }
  if (model_->use_relation_module()) {
    const uint32_t dd = d * d;
    for (const auto& [id, g] : grad.transfers()) {
      std::lock_guard<std::mutex> lock(*shard_locks_[ShardOf(id)]);
      float* row = model_->transfer(id);
      for (uint32_t i = 0; i < dd; ++i) row[i] -= lr * g[i];
    }
  }
  for (const auto& [id, g] : grad.hyperplanes()) {
    std::lock_guard<std::mutex> lock(*shard_locks_[ShardOf(id)]);
    float* row = model_->hyperplane(id);
    for (uint32_t i = 0; i < d; ++i) row[i] -= lr * g[i];
    model_->NormalizeHyperplane(id);
  }
}

EpochStats ShardedTrainer::RunEpoch() {
  Stopwatch sw;
  std::vector<kg::Triple> triples = store_->triples();
  epoch_rng_.Shuffle(&triples);

  const uint32_t workers = options_.num_workers;
  std::atomic<uint64_t> active_pairs{0};
  // Hinge sums are accumulated per worker and reduced at the end.
  std::vector<double> hinge_sums(workers, 0.0);
  std::vector<Rng> worker_rngs;
  worker_rngs.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) worker_rngs.push_back(epoch_rng_.Fork());

  auto worker_fn = [&](uint32_t w) {
    const size_t n = triples.size();
    const size_t begin = n * w / workers;
    const size_t end = n * (w + 1) / workers;
    Rng& rng = worker_rngs[w];
    SparseGrad grad;
    size_t batch_start = begin;
    while (batch_start < end) {
      const size_t batch_end =
          std::min<size_t>(batch_start + options_.batch_size, end);
      grad.Clear();
      uint64_t batch_active = 0;
      for (size_t i = batch_start; i < batch_end; ++i) {
        NegativeSample neg = sampler_.Sample(triples[i], &rng);
        float hinge = AccumulateHingeGradients(*model_, triples[i], neg.triple,
                                               options_.margin, &grad);
        if (hinge > 0.0f) {
          ++batch_active;
          hinge_sums[w] += hinge;
        }
      }
      if (!grad.empty()) {
        ApplyWorkerGradients(
            grad, 1.0f / static_cast<float>(batch_end - batch_start));
      }
      active_pairs.fetch_add(batch_active, std::memory_order_relaxed);
      batch_start = batch_end;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  EpochStats stats;
  stats.total_pairs = triples.size();
  stats.active_pairs = active_pairs.load();
  double hinge_sum = 0.0;
  for (double h : hinge_sums) hinge_sum += h;
  stats.mean_hinge = stats.total_pairs > 0
                         ? hinge_sum / static_cast<double>(stats.total_pairs)
                         : 0.0;
  stats.seconds = sw.ElapsedSeconds();
  stats.triples_per_second =
      stats.seconds > 0 ? static_cast<double>(stats.total_pairs) / stats.seconds
                        : 0.0;
  return stats;
}

EpochStats ShardedTrainer::Train(uint32_t n) {
  EpochStats last;
  for (uint32_t i = 0; i < n; ++i) last = RunEpoch();
  return last;
}

}  // namespace pkgm::core
