#include "core/sharded_trainer.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/gradients.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace pkgm::core {

namespace {

NegativeSampler::Options FillNegativeOptions(NegativeSampler::Options neg,
                                             const PkgmModel& model) {
  if (neg.num_entities == 0) neg.num_entities = model.num_entities();
  if (neg.num_relations == 0) neg.num_relations = model.num_relations();
  return neg;
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// One producer-filled unit of work: the positives of one mini-batch plus
// their pre-drawn negatives. Batches are recycled through a free list, so
// the vectors keep their capacity across the whole epoch.
struct PairBatch {
  size_t index = 0;
  std::vector<kg::Triple> pos;
  std::vector<NegativeSample> neg;
};

// Minimal bounded MPMC queue of recycled batch pointers. Close() wakes all
// poppers once the producer is done; Pop drains remaining batches first.
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity) : capacity_(capacity) {}

  bool Push(PairBatch* b) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
    q_.push_back(b);
    not_empty_.notify_one();
    return true;
  }

  bool Pop(PairBatch** out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    *out = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<PairBatch*> q_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace

ShardedTrainer::ShardedTrainer(PkgmModel* model, const kg::TripleSource* store,
                               const ShardedTrainerOptions& options)
    : model_(model),
      store_(store),
      options_(options),
      sampler_(FillNegativeOptions(options.negative, *model), store),
      epoch_rng_(options.seed),
      kernels_(simd::Active()) {
  PKGM_CHECK(model != nullptr);
  PKGM_CHECK(store != nullptr);
  PKGM_CHECK_GT(options.num_workers, 0u);
  PKGM_CHECK_GT(options.num_shards, 0u);
  PKGM_CHECK_GT(options.batch_size, 0u);
  // Enough stripes that two workers almost never collide on a row lock;
  // num_shards (the legacy partition count) only raises the floor.
  const size_t stripes =
      NextPow2(std::max<size_t>(1024, options.num_shards));
  stripes_ = std::make_unique<Stripe[]>(stripes);
  stripe_mask_ = stripes - 1;
}

size_t ShardedTrainer::StripeOf(uint32_t table_tag, uint32_t row) const {
  const uint64_t key = (static_cast<uint64_t>(row) << 2) | table_tag;
  return static_cast<size_t>((key * UINT64_C(0x9E3779B97F4A7C15)) >> 32) &
         stripe_mask_;
}

void ShardedTrainer::LockStripe(Stripe& s) {
  int spins = 0;
  while (s.locked.exchange(true, std::memory_order_acquire)) {
    // Spin on a plain load so the cache line stays shared until release;
    // yield occasionally in case the holder is descheduled.
    while (s.locked.load(std::memory_order_relaxed)) {
      if (++spins >= 256) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

void ShardedTrainer::ApplyWorkerGradients(const GradArena& grad,
                                          float scale) {
  const float lr = options_.learning_rate * scale;

  // Publish each touched row under its stripe lock. Reads during gradient
  // computation are unlocked, so workers see slightly stale parameters —
  // exactly the asynchronous PS training regime. Table tags keep e.g.
  // entity row 7 and relation row 7 on different stripes.
  const auto apply_slab = [&](const GradSlab& slab, uint32_t tag,
                              auto&& update_row) {
    const uint32_t n = slab.row_size();
    for (size_t i = 0; i < slab.size(); ++i) {
      const uint32_t id = slab.id_at(i);
      Stripe& stripe = stripes_[StripeOf(tag, id)];
      LockStripe(stripe);
      update_row(id, slab.row_at(i), n);
      stripe.locked.store(false, std::memory_order_release);
    }
  };

  apply_slab(grad.entities(), 0, [&](uint32_t id, const float* g,
                                     uint32_t n) {
    kernels_.axpy(n, -lr, g, model_->entity(id));
    if (options_.normalize_entities) model_->NormalizeEntity(id);
  });
  apply_slab(grad.relations(), 1,
             [&](uint32_t id, const float* g, uint32_t n) {
               kernels_.axpy(n, -lr, g, model_->relation(id));
             });
  if (model_->use_relation_module()) {
    apply_slab(grad.transfers(), 2,
               [&](uint32_t id, const float* g, uint32_t n) {
                 kernels_.axpy(n, -lr, g, model_->transfer(id));
               });
  }
  apply_slab(grad.hyperplanes(), 3,
             [&](uint32_t id, const float* g, uint32_t n) {
               kernels_.axpy(n, -lr, g, model_->hyperplane(id));
               model_->NormalizeHyperplane(id);
             });
}

EpochStats ShardedTrainer::RunEpoch() {
  Stopwatch sw;
  std::vector<kg::Triple> triples;
  store_->AppendTriples(&triples);
  epoch_rng_.Shuffle(&triples);

  EpochStats stats;
  stats.total_pairs = triples.size();
  if (triples.empty()) return stats;

  const size_t n = triples.size();
  const size_t batch_size = options_.batch_size;
  const size_t num_batches = (n + batch_size - 1) / batch_size;
  const uint32_t workers = options_.num_workers;

  // Stat slots indexed by batch id: whichever worker runs a batch writes
  // its slot, and the reduction below runs in batch order — a
  // deterministic merge regardless of scheduling.
  std::vector<double> batch_hinge(num_batches, 0.0);
  std::vector<uint64_t> batch_active(num_batches, 0);

  // Double-buffered batch pool: 2 in-flight batches per worker, recycled
  // through free_q so the epoch allocates nothing after warm-up.
  const size_t pool_size = 2 * static_cast<size_t>(workers);
  std::vector<std::unique_ptr<PairBatch>> pool;
  BatchQueue work_q(pool_size), free_q(pool_size);
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(std::make_unique<PairBatch>());
    free_q.Push(pool.back().get());
  }

  // The producer owns negative sampling: one RNG, batches filled in batch
  // order, so the (pos, neg) stream for a fixed seed does not depend on
  // worker scheduling.
  Rng producer_rng = epoch_rng_.Fork();
  std::thread producer([&] {
    for (size_t b = 0; b < num_batches; ++b) {
      PairBatch* pb = nullptr;
      if (!free_q.Pop(&pb)) return;
      const size_t begin = b * batch_size;
      const size_t end = std::min(n, begin + batch_size);
      pb->index = b;
      pb->pos.assign(triples.begin() + begin, triples.begin() + end);
      pb->neg.resize(pb->pos.size());
      sampler_.SampleBatch(pb->pos.data(), pb->pos.size(), &producer_rng,
                           pb->neg.data());
      if (!work_q.Push(pb)) return;
    }
    work_q.Close();
  });

  auto worker_fn = [&] {
    GradArena arena;
    HingeWorkspace ws;
    PairBatch* pb = nullptr;
    while (work_q.Pop(&pb)) {
      double hinge_sum = 0.0;
      uint64_t active = 0;
      for (size_t i = 0; i < pb->pos.size(); ++i) {
        const float hinge =
            FusedHingeGradients(*model_, pb->pos[i], pb->neg[i].triple,
                                options_.margin, kernels_, &ws, &arena);
        if (hinge > 0.0f) {
          ++active;
          hinge_sum += hinge;
        }
      }
      if (!arena.empty()) {
        ApplyWorkerGradients(arena,
                             1.0f / static_cast<float>(pb->pos.size()));
        arena.Clear();
      }
      batch_hinge[pb->index] = hinge_sum;
      batch_active[pb->index] = active;
      free_q.Push(pb);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn);
  for (auto& t : threads) t.join();
  free_q.Close();
  producer.join();

  double hinge_sum = 0.0;
  for (size_t b = 0; b < num_batches; ++b) {
    hinge_sum += batch_hinge[b];
    stats.active_pairs += batch_active[b];
  }
  stats.mean_hinge = hinge_sum / static_cast<double>(stats.total_pairs);
  stats.seconds = sw.ElapsedSeconds();
  stats.triples_per_second =
      stats.seconds > 0 ? static_cast<double>(stats.total_pairs) / stats.seconds
                        : 0.0;
  return stats;
}

EpochStats ShardedTrainer::Train(uint32_t n) {
  EpochStats last;
  for (uint32_t i = 0; i < n; ++i) last = RunEpoch();
  return last;
}

}  // namespace pkgm::core
