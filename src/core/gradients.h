#ifndef PKGM_CORE_GRADIENTS_H_
#define PKGM_CORE_GRADIENTS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/pkgm_model.h"
#include "kg/triple.h"

namespace pkgm::core {

/// Sparse gradient accumulator keyed by table row. Shared by the
/// single-threaded Trainer and the parameter-server-style ShardedTrainer so
/// both optimize the exact same objective.
class SparseGrad {
 public:
  /// Gradient row for an entity embedding; zero-initialized on first access.
  std::vector<float>& Entity(uint32_t id, uint32_t dim);
  /// Gradient row for a relation embedding.
  std::vector<float>& Relation(uint32_t id, uint32_t dim);
  /// Gradient row for a transfer matrix (dim*dim floats).
  std::vector<float>& Transfer(uint32_t id, uint32_t dim);
  /// Gradient row for a TransH hyperplane normal.
  std::vector<float>& Hyperplane(uint32_t id, uint32_t dim);

  const std::unordered_map<uint32_t, std::vector<float>>& entities() const {
    return entities_;
  }
  const std::unordered_map<uint32_t, std::vector<float>>& relations() const {
    return relations_;
  }
  const std::unordered_map<uint32_t, std::vector<float>>& transfers() const {
    return transfers_;
  }
  const std::unordered_map<uint32_t, std::vector<float>>& hyperplanes() const {
    return hyperplanes_;
  }

  void Clear();
  bool empty() const {
    return entities_.empty() && relations_.empty() && transfers_.empty() &&
           hyperplanes_.empty();
  }

 private:
  std::unordered_map<uint32_t, std::vector<float>> entities_;
  std::unordered_map<uint32_t, std::vector<float>> relations_;
  std::unordered_map<uint32_t, std::vector<float>> transfers_;
  std::unordered_map<uint32_t, std::vector<float>> hyperplanes_;
};

/// Computes the margin-ranking hinge for one (positive, negative) pair
/// (Eq. 4): L = max(0, f(pos) + margin - f(neg)), and — when the hinge is
/// active and `grad` is non-null — accumulates d L / d params into `grad`.
/// Returns the hinge value.
///
/// Exact subgradients of the L1-based scores:
///   f_T = ||h + r - t||_1, s = sign(h + r - t):
///       dh += s, dr += s, dt -= s
///   f_R = ||M_r h - r||_1, u = M_r h - r, s' = sign(u):
///       dM_r += s' h^T, dh += M_r^T s', dr -= s'
/// with overall sign +1 for the positive triple and -1 for the negative.
float AccumulateHingeGradients(const PkgmModel& model, const kg::Triple& pos,
                               const kg::Triple& neg, float margin,
                               SparseGrad* grad);

}  // namespace pkgm::core

#endif  // PKGM_CORE_GRADIENTS_H_
