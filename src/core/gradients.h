#ifndef PKGM_CORE_GRADIENTS_H_
#define PKGM_CORE_GRADIENTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/pkgm_model.h"
#include "kg/triple.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/status.h"

namespace pkgm::core {

/// Map-of-vectors sparse gradient accumulator — the readable reference
/// implementation. The trainers' hot path uses GradArena +
/// FusedHingeGradients below (same arithmetic, zero steady-state
/// allocation); this class is kept as the oracle the fused path is
/// parity-tested against and as the finite-difference test harness.
class SparseGrad {
 public:
  /// Gradient row for an entity embedding; zero-initialized on first access.
  std::vector<float>& Entity(uint32_t id, uint32_t dim);
  /// Gradient row for a relation embedding.
  std::vector<float>& Relation(uint32_t id, uint32_t dim);
  /// Gradient row for a transfer matrix (dim*dim floats).
  std::vector<float>& Transfer(uint32_t id, uint32_t dim);
  /// Gradient row for a TransH hyperplane normal.
  std::vector<float>& Hyperplane(uint32_t id, uint32_t dim);

  const std::unordered_map<uint32_t, std::vector<float>>& entities() const {
    return entities_;
  }
  const std::unordered_map<uint32_t, std::vector<float>>& relations() const {
    return relations_;
  }
  const std::unordered_map<uint32_t, std::vector<float>>& transfers() const {
    return transfers_;
  }
  const std::unordered_map<uint32_t, std::vector<float>>& hyperplanes() const {
    return hyperplanes_;
  }

  void Clear();
  bool empty() const {
    return entities_.empty() && relations_.empty() && transfers_.empty() &&
           hyperplanes_.empty();
  }

 private:
  std::unordered_map<uint32_t, std::vector<float>> entities_;
  std::unordered_map<uint32_t, std::vector<float>> relations_;
  std::unordered_map<uint32_t, std::vector<float>> transfers_;
  std::unordered_map<uint32_t, std::vector<float>> hyperplanes_;
};

/// One table of the flat arena accumulator: gradient rows live in a single
/// contiguous slab in first-touch order, found through an open-addressed
/// (linear probing) index of (id+1, position) pairs. All storage is reused
/// across batches — Clear() zeroes only the touched prefix of the slab and
/// the probe slots recorded at insert time, so a steady-state training
/// batch performs no allocation at all.
///
/// Pointer stability: Row() may grow the slab, invalidating previously
/// returned pointers for THIS slab. Callers that hold several rows of one
/// slab first claim them all, then re-fetch the pointers (a re-fetch of an
/// existing row never grows).
class GradSlab {
 public:
  /// The gradient row for `id` (length `row_size`), zero on first touch.
  /// `row_size` must be the same for every call on one slab between Clears.
  float* Row(uint32_t id, uint32_t row_size);

  /// Number of distinct rows touched since the last Clear.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  uint32_t row_size() const { return row_size_; }
  /// Rows are indexed in first-touch order.
  uint32_t id_at(size_t i) const { return ids_[i]; }
  float* row_at(size_t i) { return slab_.data() + i * row_size_; }
  const float* row_at(size_t i) const { return slab_.data() + i * row_size_; }

  /// O(touched): zeroes the used slab prefix and the used index slots.
  void Clear();

 private:
  void Rehash(size_t new_capacity);

  uint32_t row_size_ = 0;
  std::vector<uint32_t> keys_;  // id + 1, 0 = empty; capacity is a power of 2
  std::vector<uint32_t> pos_;   // parallel to keys_: row index in the slab
  std::vector<uint32_t> used_slots_;  // probe slots claimed since Clear
  std::vector<uint32_t> ids_;         // row ids in first-touch order
  std::vector<float> slab_;           // ids_.size() rows of row_size_ floats
};

/// The four parameter tables' gradient slabs. Drop-in accumulate target for
/// the trainers; entity ids double as the batch's touched-entity set (a row
/// exists iff some active pair touched that entity).
class GradArena {
 public:
  float* Entity(uint32_t id, uint32_t dim) { return entities_.Row(id, dim); }
  float* Relation(uint32_t id, uint32_t dim) {
    return relations_.Row(id, dim);
  }
  float* Transfer(uint32_t id, uint32_t dim_sq) {
    return transfers_.Row(id, dim_sq);
  }
  float* Hyperplane(uint32_t id, uint32_t dim) {
    return hyperplanes_.Row(id, dim);
  }

  GradSlab& entities() { return entities_; }
  GradSlab& relations() { return relations_; }
  GradSlab& transfers() { return transfers_; }
  GradSlab& hyperplanes() { return hyperplanes_; }
  const GradSlab& entities() const { return entities_; }
  const GradSlab& relations() const { return relations_; }
  const GradSlab& transfers() const { return transfers_; }
  const GradSlab& hyperplanes() const { return hyperplanes_; }

  void Clear();
  bool empty() const {
    return entities_.empty() && relations_.empty() && transfers_.empty() &&
           hyperplanes_.empty();
  }

 private:
  GradSlab entities_;
  GradSlab relations_;
  GradSlab transfers_;
  GradSlab hyperplanes_;
};

// --------------------------------------------- GradArena serialization --

/// First four bytes of a serialized GradArena blob ("PGRD" little-endian).
constexpr uint32_t kGradArenaBlobMagic = 0x44524750;
constexpr uint8_t kGradArenaBlobVersion = 1;

/// Appends the touched rows of `arena` to `out` as a self-describing
/// little-endian blob:
///
///   u32 magic, u8 version, u8 num_slabs (= 4), u16 reserved (= 0);
///   per slab (entities, relations, transfers, hyperplanes, in order):
///     u32 row_size, u32 count, count * {u32 id, row_size * f32}
///
/// An empty slab serializes as row_size 0, count 0. Rows keep their
/// first-touch order, so serialize → deserialize into an empty arena is a
/// bit-exact reproduction (including row order and -0.0f payloads).
/// Returns the number of rows written (a worker skips the push entirely
/// when its shard's slice is empty).
size_t SerializeGradArena(const GradArena& arena, std::string* out);

/// Shard-filtered variant: only rows whose id satisfies
/// `id % num_shards == shard` are written (entity rows keyed by entity id;
/// relation, transfer and hyperplane rows keyed by relation id). This is
/// the per-parameter-server slice a distributed worker pushes.
size_t SerializeGradArena(const GradArena& arena, uint32_t shard,
                          uint32_t num_shards, std::string* out);

/// Parses a blob produced by SerializeGradArena and ACCUMULATES its rows
/// into `arena` (fresh rows are copied bit-exactly; rows already present
/// are added element-wise, so several workers' blobs merge like local
/// accumulation). Rejects corrupt input — bad magic/version, non-zero
/// reserved bits, truncation, counts that exceed the byte budget (checked
/// before any allocation), row_size disagreeing with a non-empty target
/// slab, or trailing bytes — with a Corruption status; on failure `arena`
/// may hold a prefix of the blob's rows. `rows_applied`, when non-null,
/// receives the number of rows accumulated.
Status DeserializeGradArena(std::string_view blob, GradArena* arena,
                            uint64_t* rows_applied = nullptr);

/// Reusable per-thread scratch for FusedHingeGradients: the forward pass
/// parks the residuals the backward pass needs (TransE h + r - t; relation
/// module M_r h), so nothing is recomputed and nothing is allocated.
struct HingeWorkspace {
  std::vector<float> diff_pos, diff_neg;  // triple-module residuals
  std::vector<float> u_pos, u_neg;        // relation-module residuals
  std::vector<float> sgn;                 // sign-vector scratch
  std::vector<float> mts;                 // M_r^T s' scratch

  void EnsureDim(uint32_t d);
};

/// Computes the margin-ranking hinge for one (positive, negative) pair
/// (Eq. 4): L = max(0, f(pos) + margin - f(neg)), and — when the hinge is
/// active and `grad` is non-null — accumulates d L / d params into `grad`.
/// Returns the hinge value.
///
/// Exact subgradients of the L1-based scores:
///   f_T = ||h + r - t||_1, s = sign(h + r - t):
///       dh += s, dr += s, dt -= s
///   f_R = ||M_r h - r||_1, u = M_r h - r, s' = sign(u):
///       dM_r += s' h^T, dh += M_r^T s', dr -= s'
/// with overall sign +1 for the positive triple and -1 for the negative.
float AccumulateHingeGradients(const PkgmModel& model, const kg::Triple& pos,
                               const kg::Triple& neg, float margin,
                               SparseGrad* grad);

/// The hot-path equivalent of AccumulateHingeGradients: one fused
/// forward+backward over the pair, lowered onto the kernel table `k`
/// (sign-vector compute, dM_r += s' h^T via ger, dh += M_r^T s' via
/// gemv_t) and accumulating into the flat arena. The forward residuals are
/// kept in `ws` and reused by the backward pass, so the transfer-matrix
/// GEMV runs once per triple instead of twice.
///
/// When `k` is the process-wide simd::Active() table, the result is
/// bit-identical to AccumulateHingeGradients: every composition here
/// mirrors the reference arithmetic within a table (residual == add∘sub,
/// gemv_t == the axpy row accumulation, ger row i == axpy(alpha*x[i]), and
/// l1_norm(h + r - t) == l1_distance(h + r, t)).
float FusedHingeGradients(const PkgmModel& model, const kg::Triple& pos,
                          const kg::Triple& neg, float margin,
                          const simd::KernelTable& k, HingeWorkspace* ws,
                          GradArena* grad);

}  // namespace pkgm::core

#endif  // PKGM_CORE_GRADIENTS_H_
