#ifndef PKGM_CORE_LINK_PREDICTION_H_
#define PKGM_CORE_LINK_PREDICTION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/embedding_source.h"
#include "core/pkgm_model.h"
#include "core/service_math.h"
#include "kg/triple_source.h"

namespace pkgm::core {

/// Link-prediction (KG completion) metrics.
struct LinkPredictionResult {
  double mrr = 0.0;
  double mean_rank = 0.0;
  /// hits[k] = fraction of test triples whose true entity ranked <= k.
  std::map<int, double> hits;
  uint64_t count = 0;
};

/// Ranks the true tail of each test triple against candidate entities by
/// the triple-module score ||h + r - t||_1 — exactly the completion
/// mechanism behind the serving function S_T(h,r) = h + r (§II-D1): the
/// nearest entity embedding to S_T is the model's completed tail.
///
/// Scoring pulls parameter rows through the `EmbeddingSource` seam, so
/// the evaluator runs unchanged over a live heap model (`PkgmModel`) and
/// over a memory-mapped `.pkgs` store. Candidates are gathered into
/// contiguous blocks and scored with the batched SIMD kernels
/// (`ScoreTailCandidatesBlock`); test triples are ranked in parallel on a
/// `util::ThreadPool` with a deterministic input-order metric merge, so
/// results are bit-identical for any thread count and match the
/// per-candidate reference path exactly.
///
/// Supports the standard *filtered* protocol: candidates that form another
/// known-true triple are skipped. Ties are scored with the mean of the
/// optimistic and pessimistic rank.
class LinkPredictionEvaluator {
 public:
  struct Options {
    std::vector<int> hits_at = {1, 3, 10};
    /// Filter candidates that are known positives in `all_known`.
    bool filtered = true;
    /// Worker threads for EvaluateTails: 0 = hardware concurrency, 1 =
    /// rank inline on the calling thread.
    size_t num_threads = 0;
    /// Candidate rows gathered per batched scoring call.
    size_t block_size = 256;
    /// When false, candidates are scored one at a time through
    /// TailDistanceFromRows — the pre-batching reference path, kept so
    /// benches can measure the batching win and tests can assert parity.
    bool use_batched_scoring = true;
  };

  /// `source` provides the parameters to score; `all_known` defines the
  /// filter set (train + valid + test + held-out, typically) through the
  /// TripleSource seam — the in-memory store and the mmap index produce
  /// identical filtered metrics. Both must outlive the evaluator.
  LinkPredictionEvaluator(const EmbeddingSource* source,
                          const kg::TripleSource* all_known, Options options);

  /// Ranks tails over all entities, or over
  /// `candidates_per_relation[r]` when provided (attribute completion is
  /// better measured against the relation's value universe than against
  /// every item in the graph).
  LinkPredictionResult EvaluateTails(
      const std::vector<kg::Triple>& test,
      const std::unordered_map<kg::RelationId, std::vector<kg::EntityId>>*
          candidates_per_relation = nullptr) const;

 private:
  /// Per-worker buffers: dequantization workspace, the query vector, one
  /// gathered candidate block and its scores, and the per-triple filter
  /// mask for the full-entity sweep.
  struct RankScratch {
    RankScratch(uint32_t dim, size_t block_size, uint32_t num_entities)
        : ws(dim),
          query(dim),
          row(dim),
          proj(dim),
          block(block_size * dim),
          scores(block_size),
          filtered(num_entities, 0) {}

    ServiceWorkspace ws;
    std::vector<float> query;
    std::vector<float> row;    // true-tail row (dequantizing sources)
    std::vector<float> proj;   // TransH candidate projection scratch
    std::vector<float> block;  // gathered candidate rows, row-major
    std::vector<float> scores;
    /// filtered[e] == 1 while ranking a triple whose (h, r) has e as a
    /// known tail; marked from TripleSource::Tails once per triple instead
    /// of a membership probe per candidate, and unmarked before returning.
    std::vector<uint8_t> filtered;
  };

  /// Rank of the true tail for one triple among `candidates` (all
  /// entities when null).
  double RankTail(const kg::Triple& t,
                  const std::vector<kg::EntityId>* candidates,
                  RankScratch* scratch) const;

  const EmbeddingSource* source_;
  const kg::TripleSource* all_known_;
  Options options_;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_LINK_PREDICTION_H_
