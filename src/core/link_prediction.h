#ifndef PKGM_CORE_LINK_PREDICTION_H_
#define PKGM_CORE_LINK_PREDICTION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/pkgm_model.h"
#include "kg/triple_store.h"

namespace pkgm::core {

/// Link-prediction (KG completion) metrics.
struct LinkPredictionResult {
  double mrr = 0.0;
  double mean_rank = 0.0;
  /// hits[k] = fraction of test triples whose true entity ranked <= k.
  std::map<int, double> hits;
  uint64_t count = 0;
};

/// Ranks the true tail of each test triple against candidate entities by
/// the triple-module score ||h + r - t||_1 — exactly the completion
/// mechanism behind the serving function S_T(h,r) = h + r (§II-D1): the
/// nearest entity embedding to S_T is the model's completed tail.
///
/// Supports the standard *filtered* protocol: candidates that form another
/// known-true triple are skipped. Ties are scored with the mean of the
/// optimistic and pessimistic rank.
class LinkPredictionEvaluator {
 public:
  struct Options {
    std::vector<int> hits_at = {1, 3, 10};
    /// Filter candidates that are known positives in `all_known`.
    bool filtered = true;
  };

  /// `model` scores; `all_known` defines the filter set (train + valid +
  /// test + held-out, typically). Both must outlive the evaluator.
  LinkPredictionEvaluator(const PkgmModel* model,
                          const kg::TripleStore* all_known, Options options);

  /// Ranks tails over all entities, or over
  /// `candidates_per_relation[r]` when provided (attribute completion is
  /// better measured against the relation's value universe than against
  /// every item in the graph).
  LinkPredictionResult EvaluateTails(
      const std::vector<kg::Triple>& test,
      const std::unordered_map<kg::RelationId, std::vector<kg::EntityId>>*
          candidates_per_relation = nullptr) const;

 private:
  /// Rank of the true tail for one triple among `candidates`.
  double RankTail(const kg::Triple& t,
                  const std::vector<kg::EntityId>* candidates) const;

  const PkgmModel* model_;
  const kg::TripleStore* all_known_;
  Options options_;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_LINK_PREDICTION_H_
