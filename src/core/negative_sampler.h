#ifndef PKGM_CORE_NEGATIVE_SAMPLER_H_
#define PKGM_CORE_NEGATIVE_SAMPLER_H_

#include <cstdint>

#include "kg/triple.h"
#include "kg/triple_source.h"
#include "util/rng.h"

namespace pkgm::core {

/// Which slot of the positive triple was corrupted.
enum class CorruptionSlot { kHead, kTail, kRelation };

/// A generated negative with its corruption slot (the trainer needs the
/// slot to route gradients).
struct NegativeSample {
  kg::Triple triple;
  CorruptionSlot slot = CorruptionSlot::kTail;
};

/// Uniform negative sampling per the paper (§II-C): replace h or t with a
/// random entity, or r with a random relation. Optionally filtered: resample
/// while the corrupted triple exists in the KG (standard practice; avoids
/// false negatives).
class NegativeSampler {
 public:
  struct Options {
    uint32_t num_entities = 0;
    uint32_t num_relations = 0;
    /// Probability mass of corrupting head / tail / relation. The paper
    /// corrupts all three; relation corruption gets a smaller share so the
    /// triple module still dominates (h/t each (1-p_r)/2).
    double relation_corruption_prob = 0.2;
    /// Resample (up to a bounded number of tries) if the negative is a
    /// known positive.
    bool filter_known_positives = true;
  };

  /// `store` is consulted for filtering; may be null when
  /// filter_known_positives is false. Must outlive the sampler. Any
  /// TripleSource works — the in-memory TripleStore or an mmap-backed
  /// MmapTripleIndex — and sampling is bit-identical across backends.
  NegativeSampler(const Options& options, const kg::TripleSource* store);

  /// Draws one negative for `positive` (paper: 1 negative per edge).
  NegativeSample Sample(const kg::Triple& positive, Rng* rng) const;

  /// Draws one negative per positive into out[0..n) — equivalent to n
  /// Sample calls on the same RNG in order. The pipelined trainer's
  /// producer uses this to fill a whole batch at once.
  void SampleBatch(const kg::Triple* positives, size_t n, Rng* rng,
                   NegativeSample* out) const;

 private:
  Options options_;
  const kg::TripleSource* store_;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_NEGATIVE_SAMPLER_H_
