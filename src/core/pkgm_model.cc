#include "core/pkgm_model.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/service_math.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::core {

namespace {
// Checkpoint magic/version for corruption detection.
constexpr uint32_t kMagic = 0x504b474du;  // "PKGM"
constexpr uint32_t kVersion = 2;
}  // namespace

PkgmModel::PkgmModel(const PkgmModelOptions& options)
    : options_(options),
      entities_(options.num_entities, options.dim),
      relations_(options.num_relations, options.dim),
      transfers_(options.use_relation_module ? options.num_relations : 0,
                 static_cast<size_t>(options.dim) * options.dim),
      hyperplanes_(
          options.scorer == TripleScorerKind::kTransH ? options.num_relations
                                                      : 0,
          options.dim) {
  PKGM_CHECK_GT(options.num_entities, 0u);
  PKGM_CHECK_GT(options.num_relations, 0u);
  PKGM_CHECK_GT(options.dim, 0u);
  if (options.scorer == TripleScorerKind::kComplEx) {
    PKGM_CHECK_EQ(options.dim % 2, 0u) << "ComplEx needs an even dimension";
  }

  Rng rng(options.seed);
  const uint32_t d = options.dim;
  for (uint32_t e = 0; e < options.num_entities; ++e) {
    TransEInit(d, &rng, entities_.Row(e));
  }
  for (uint32_t r = 0; r < options.num_relations; ++r) {
    TransEInit(d, &rng, relations_.Row(r));
  }
  if (options.scorer == TripleScorerKind::kTransH) {
    for (uint32_t r = 0; r < options.num_relations; ++r) {
      TransEInit(d, &rng, hyperplanes_.Row(r));  // unit-norm normals
    }
  }
  if (options.use_relation_module) {
    // Near-identity init: M_r h starts close to h, so f_R starts in a
    // gentle regime rather than a random projection.
    for (uint32_t r = 0; r < options.num_relations; ++r) {
      float* m = transfers_.Row(r);
      for (uint32_t i = 0; i < d; ++i) {
        for (uint32_t j = 0; j < d; ++j) {
          m[i * d + j] = (i == j ? 1.0f : 0.0f) + rng.Normal(0.0f, 0.02f);
        }
      }
    }
  }
}

float PkgmModel::TripleScore(const kg::Triple& t) const {
  const uint32_t d = options_.dim;
  const float* h = entity(t.head);
  const float* r = relation(t.relation);
  const float* tl = entity(t.tail);
  switch (options_.scorer) {
    case TripleScorerKind::kTransE: {
      // q = h + r, then the fused L1 kernel — the same arithmetic the
      // serving/eval path applies to (query, candidate) pairs.
      thread_local std::vector<float> q;
      if (q.size() < d) q.resize(d);
      Add(d, h, r, q.data());
      return L1Distance(d, q.data(), tl);
    }
    case TripleScorerKind::kDistMult: {
      float acc = 0.0f;
      for (uint32_t i = 0; i < d; ++i) acc += h[i] * r[i] * tl[i];
      return -acc;
    }
    case TripleScorerKind::kComplEx: {
      const uint32_t half = d / 2;
      const float* h_re = h;
      const float* h_im = h + half;
      const float* r_re = r;
      const float* r_im = r + half;
      const float* t_re = tl;
      const float* t_im = tl + half;
      float acc = 0.0f;
      for (uint32_t i = 0; i < half; ++i) {
        acc += (h_re[i] * r_re[i] - h_im[i] * r_im[i]) * t_re[i] +
               (h_re[i] * r_im[i] + h_im[i] * r_re[i]) * t_im[i];
      }
      return -acc;
    }
    case TripleScorerKind::kTransH: {
      const float* w = hyperplane(t.relation);
      const float wh = Dot(d, w, h);
      const float wt = Dot(d, w, tl);
      float acc = 0.0f;
      for (uint32_t i = 0; i < d; ++i) {
        acc += std::fabs((h[i] - wh * w[i]) + r[i] - (tl[i] - wt * w[i]));
      }
      return acc;
    }
  }
  return 0.0f;
}

void PkgmModel::TripleQueryVector(kg::EntityId h_id, kg::RelationId r_id,
                                  float* out) const {
  const float* w = options_.scorer == TripleScorerKind::kTransH
                       ? hyperplane(r_id)
                       : nullptr;
  TripleQueryFromRows(options_.scorer, options_.dim, entity(h_id),
                      relation(r_id), w, out);
}

float PkgmModel::TailDistance(kg::RelationId r, const float* query,
                              const float* tail) const {
  const uint32_t d = options_.dim;
  const float* w = options_.scorer == TripleScorerKind::kTransH
                       ? hyperplane(r)
                       : nullptr;
  // Scratch is only touched for TransH (candidate projection); thread_local
  // keeps this allocation-free on the per-candidate hot path.
  thread_local std::vector<float> scratch;
  if (w != nullptr && scratch.size() < d) scratch.resize(d);
  return TailDistanceFromRows(options_.scorer, d, w, query, tail,
                              scratch.data());
}

float PkgmModel::RelationScore(kg::EntityId h, kg::RelationId r) const {
  if (!options_.use_relation_module) return 0.0f;
  const uint32_t d = options_.dim;
  std::vector<float> mh(d);
  GemvRaw(d, d, transfer(r), entity(h), mh.data());
  return L1Distance(d, mh.data(), relation(r));
}

float PkgmModel::Score(const kg::Triple& t) const {
  return TripleScore(t) + RelationScore(t.head, t.relation);
}

void PkgmModel::TripleService(kg::EntityId h, kg::RelationId r,
                              float* out) const {
  TripleQueryVector(h, r, out);
}

void PkgmModel::RelationService(kg::EntityId h, kg::RelationId r,
                                float* out) const {
  const uint32_t d = options_.dim;
  if (!options_.use_relation_module) {
    for (uint32_t i = 0; i < d; ++i) out[i] = 0.0f;
    return;
  }
  RelationServiceFromRows(d, transfer(r), entity(h), relation(r), out);
}

void PkgmModel::NormalizeEntity(uint32_t e) {
  ProjectToUnitBall(options_.dim, entity(e));
}

void PkgmModel::NormalizeHyperplane(uint32_t r) {
  if (options_.scorer != TripleScorerKind::kTransH) return;
  float* w = hyperplane(r);
  const float norm = L2Norm(options_.dim, w);
  if (norm > 0.0f) Scale(options_.dim, 1.0f / norm, w);
}

namespace {

Status WriteBlock(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IoError("short write");
  }
  return Status::Ok();
}

Status ReadBlock(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::IoError("short read");
  }
  return Status::Ok();
}

}  // namespace

Status PkgmModel::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  uint32_t header[7] = {kMagic,
                        kVersion,
                        options_.num_entities,
                        options_.num_relations,
                        options_.dim,
                        options_.use_relation_module ? 1u : 0u,
                        static_cast<uint32_t>(options_.scorer)};
  Status s = WriteBlock(f, header, sizeof(header));
  if (s.ok()) s = WriteBlock(f, entities_.data(), entities_.size() * sizeof(float));
  if (s.ok()) s = WriteBlock(f, relations_.data(), relations_.size() * sizeof(float));
  if (s.ok() && options_.use_relation_module) {
    s = WriteBlock(f, transfers_.data(), transfers_.size() * sizeof(float));
  }
  if (s.ok() && options_.scorer == TripleScorerKind::kTransH) {
    s = WriteBlock(f, hyperplanes_.data(),
                   hyperplanes_.size() * sizeof(float));
  }
  std::fclose(f);
  return s;
}

StatusOr<PkgmModel> PkgmModel::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for reading", path.c_str()));
  }
  uint32_t header[7];
  Status s = ReadBlock(f, header, sizeof(header));
  if (!s.ok()) {
    std::fclose(f);
    return Status::Corruption(
        StrFormat("%s: too short to hold a checkpoint header", path.c_str()));
  }
  if (header[0] != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in checkpoint");
  }
  if (header[1] != kVersion) {
    std::fclose(f);
    return Status::Corruption(StrFormat("unsupported checkpoint version %u", header[1]));
  }
  PkgmModelOptions opt;
  opt.num_entities = header[2];
  opt.num_relations = header[3];
  opt.dim = header[4];
  opt.use_relation_module = header[5] != 0;
  if (header[6] > static_cast<uint32_t>(TripleScorerKind::kTransH)) {
    std::fclose(f);
    return Status::Corruption("unknown scorer kind in checkpoint");
  }
  opt.scorer = static_cast<TripleScorerKind>(header[6]);
  // Validate the header against the actual file size *before* allocating
  // tables from its counts: a flipped header byte must yield a clean
  // Status, not a multi-gigabyte allocation or a model built from
  // uninitialized bytes after a short read.
  if (opt.num_entities == 0 || opt.num_relations == 0 || opt.dim == 0) {
    std::fclose(f);
    return Status::Corruption("checkpoint header has zero-sized tables");
  }
  if (opt.scorer == TripleScorerKind::kComplEx && opt.dim % 2 != 0) {
    std::fclose(f);
    return Status::Corruption("ComplEx checkpoint with odd dimension");
  }
  uint64_t expected = sizeof(header);
  const uint64_t d = opt.dim;
  expected += static_cast<uint64_t>(opt.num_entities) * d * sizeof(float);
  expected += static_cast<uint64_t>(opt.num_relations) * d * sizeof(float);
  if (opt.use_relation_module) {
    expected += static_cast<uint64_t>(opt.num_relations) * d * d * sizeof(float);
  }
  if (opt.scorer == TripleScorerKind::kTransH) {
    expected += static_cast<uint64_t>(opt.num_relations) * d * sizeof(float);
  }
  if (fseeko(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError(StrFormat("cannot stat %s", path.c_str()));
  }
  const uint64_t actual = static_cast<uint64_t>(ftello(f));
  if (actual != expected) {
    std::fclose(f);
    return Status::Corruption(StrFormat(
        "checkpoint %s is truncated or corrupt: header implies %llu bytes, "
        "file has %llu",
        path.c_str(), static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(actual)));
  }
  fseeko(f, sizeof(header), SEEK_SET);
  PkgmModel model(opt);
  s = ReadBlock(f, model.entities_.data(), model.entities_.size() * sizeof(float));
  if (s.ok()) {
    s = ReadBlock(f, model.relations_.data(), model.relations_.size() * sizeof(float));
  }
  if (s.ok() && opt.use_relation_module) {
    s = ReadBlock(f, model.transfers_.data(), model.transfers_.size() * sizeof(float));
  }
  if (s.ok() && opt.scorer == TripleScorerKind::kTransH) {
    s = ReadBlock(f, model.hyperplanes_.data(),
                  model.hyperplanes_.size() * sizeof(float));
  }
  std::fclose(f);
  if (!s.ok()) return s;
  return model;
}

}  // namespace pkgm::core
