#include "core/trainer.h"

#include <cmath>

#include "core/gradients.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace pkgm::core {

namespace {
NegativeSampler::Options FillNegativeOptions(NegativeSampler::Options neg,
                                             const PkgmModel& model) {
  if (neg.num_entities == 0) neg.num_entities = model.num_entities();
  if (neg.num_relations == 0) neg.num_relations = model.num_relations();
  return neg;
}
}  // namespace

Trainer::Trainer(PkgmModel* model, const kg::TripleSource* store,
                 const TrainerOptions& options)
    : model_(model),
      store_(store),
      options_(options),
      sampler_(FillNegativeOptions(options.negative, *model), store),
      rng_(options.seed),
      // Validation draws negatives from a stream derived from — but
      // independent of — the training seed, so EvaluateMeanHinge calls
      // never advance rng_ (see the eval-RNG regression test).
      eval_rng_(options.seed ^ UINT64_C(0xBADD1CE5FEEDFACE)),
      kernels_(simd::Active()) {
  PKGM_CHECK(model != nullptr);
  PKGM_CHECK(store != nullptr);
  PKGM_CHECK_GT(options.batch_size, 0u);
  if (options_.optimizer == OptimizerKind::kAdam) {
    m_entities_ = Mat(model->num_entities(), model->dim());
    v_entities_ = Mat(model->num_entities(), model->dim());
    m_relations_ = Mat(model->num_relations(), model->dim());
    v_relations_ = Mat(model->num_relations(), model->dim());
    if (model->use_relation_module()) {
      const size_t dd = static_cast<size_t>(model->dim()) * model->dim();
      m_transfers_ = Mat(model->num_relations(), dd);
      v_transfers_ = Mat(model->num_relations(), dd);
    }
    if (model->scorer() == TripleScorerKind::kTransH) {
      m_hyperplanes_ = Mat(model->num_relations(), model->dim());
      v_hyperplanes_ = Mat(model->num_relations(), model->dim());
    }
  }
}

EpochStats Trainer::RunEpoch() {
  Stopwatch sw;
  std::vector<kg::Triple> triples;
  store_->AppendTriples(&triples);
  rng_.Shuffle(&triples);

  EpochStats stats;
  stats.total_pairs = triples.size();
  double hinge_sum = 0.0;

  size_t batch_start = 0;
  while (batch_start < triples.size()) {
    const size_t batch_end =
        std::min(batch_start + options_.batch_size, triples.size());
    arena_.Clear();
    uint64_t batch_active = 0;
    for (size_t i = batch_start; i < batch_end; ++i) {
      const kg::Triple& pos = triples[i];
      NegativeSample neg = sampler_.Sample(pos, &rng_);
      float hinge = FusedHingeGradients(*model_, pos, neg.triple,
                                        options_.margin, kernels_,
                                        &workspace_, &arena_);
      if (hinge > 0.0f) {
        ++batch_active;
        hinge_sum += hinge;
      }
    }
    stats.active_pairs += batch_active;
    if (!arena_.empty()) {
      ++step_;
      // Average over the batch so the learning rate is scale free.
      ApplyGradients(arena_,
                     1.0f / static_cast<float>(batch_end - batch_start));
      if (options_.normalize_entities) {
        // The arena's entity rows are exactly the entities touched by
        // active pairs this batch.
        const GradSlab& ge = arena_.entities();
        for (size_t i = 0; i < ge.size(); ++i) {
          model_->NormalizeEntity(ge.id_at(i));
        }
      }
    }
    batch_start = batch_end;
  }

  stats.mean_hinge =
      stats.total_pairs > 0 ? hinge_sum / static_cast<double>(stats.total_pairs) : 0.0;
  stats.seconds = sw.ElapsedSeconds();
  stats.triples_per_second =
      stats.seconds > 0 ? static_cast<double>(stats.total_pairs) / stats.seconds : 0.0;
  return stats;
}

EpochStats Trainer::Train(uint32_t n) {
  EpochStats last;
  for (uint32_t i = 0; i < n; ++i) last = RunEpoch();
  return last;
}

double Trainer::EvaluateMeanHinge(const std::vector<kg::Triple>& triples) {
  if (triples.empty()) return 0.0;
  double sum = 0.0;
  for (const kg::Triple& pos : triples) {
    NegativeSample neg = sampler_.Sample(pos, &eval_rng_);
    sum += FusedHingeGradients(*model_, pos, neg.triple, options_.margin,
                               kernels_, &workspace_, nullptr);
  }
  return sum / static_cast<double>(triples.size());
}

void Trainer::ApplyGradients(const GradArena& grad, float scale) {
  const bool adam = options_.optimizer == OptimizerKind::kAdam;
  const float b1 = options_.adam_beta1;
  const float b2 = options_.adam_beta2;
  const float eps = options_.adam_epsilon;
  float alpha = 0.0f;
  if (adam) {
    const double t = static_cast<double>(step_);
    const float corr1 = 1.0f - static_cast<float>(std::pow(b1, t));
    const float corr2 = 1.0f - static_cast<float>(std::pow(b2, t));
    alpha = options_.learning_rate * std::sqrt(corr2) / corr1;
  }
  const float sgd_alpha = -options_.learning_rate * scale;

  const auto apply_slab = [&](const GradSlab& slab, Mat* table, Mat* m,
                              Mat* v) {
    const uint32_t n = slab.row_size();
    for (size_t i = 0; i < slab.size(); ++i) {
      const uint32_t id = slab.id_at(i);
      const float* g = slab.row_at(i);
      float* row = table->Row(id);
      if (adam) {
        kernels_.adam_row(n, g, scale, b1, b2, alpha, eps, row, m->Row(id),
                          v->Row(id));
      } else {
        kernels_.axpy(n, sgd_alpha, g, row);
      }
    }
  };

  apply_slab(grad.entities(), &model_->entity_table(), &m_entities_,
             &v_entities_);
  apply_slab(grad.relations(), &model_->relation_table(), &m_relations_,
             &v_relations_);
  if (model_->use_relation_module()) {
    apply_slab(grad.transfers(), &model_->transfer_table(), &m_transfers_,
               &v_transfers_);
  }
  const GradSlab& gw = grad.hyperplanes();
  if (!gw.empty()) {
    apply_slab(gw, &model_->hyperplane_table(), &m_hyperplanes_,
               &v_hyperplanes_);
    // TransH's hard constraint: hyperplane normals stay unit length.
    for (size_t i = 0; i < gw.size(); ++i) {
      model_->NormalizeHyperplane(gw.id_at(i));
    }
  }
}

}  // namespace pkgm::core
