#include "core/trainer.h"

#include <cmath>
#include <unordered_set>

#include "core/gradients.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace pkgm::core {

namespace {
NegativeSampler::Options FillNegativeOptions(NegativeSampler::Options neg,
                                             const PkgmModel& model) {
  if (neg.num_entities == 0) neg.num_entities = model.num_entities();
  if (neg.num_relations == 0) neg.num_relations = model.num_relations();
  return neg;
}
}  // namespace

Trainer::Trainer(PkgmModel* model, const kg::TripleStore* store,
                 const TrainerOptions& options)
    : model_(model),
      store_(store),
      options_(options),
      sampler_(FillNegativeOptions(options.negative, *model), store),
      rng_(options.seed) {
  PKGM_CHECK(model != nullptr);
  PKGM_CHECK(store != nullptr);
  PKGM_CHECK_GT(options.batch_size, 0u);
  if (options_.optimizer == OptimizerKind::kAdam) {
    m_entities_ = Mat(model->num_entities(), model->dim());
    v_entities_ = Mat(model->num_entities(), model->dim());
    m_relations_ = Mat(model->num_relations(), model->dim());
    v_relations_ = Mat(model->num_relations(), model->dim());
    if (model->use_relation_module()) {
      const size_t dd = static_cast<size_t>(model->dim()) * model->dim();
      m_transfers_ = Mat(model->num_relations(), dd);
      v_transfers_ = Mat(model->num_relations(), dd);
    }
    if (model->scorer() == TripleScorerKind::kTransH) {
      m_hyperplanes_ = Mat(model->num_relations(), model->dim());
      v_hyperplanes_ = Mat(model->num_relations(), model->dim());
    }
  }
}

EpochStats Trainer::RunEpoch() {
  Stopwatch sw;
  std::vector<kg::Triple> triples = store_->triples();
  rng_.Shuffle(&triples);

  EpochStats stats;
  stats.total_pairs = triples.size();
  double hinge_sum = 0.0;

  SparseGrad grad;
  std::unordered_set<uint32_t> touched_entities;
  size_t batch_start = 0;
  while (batch_start < triples.size()) {
    const size_t batch_end =
        std::min(batch_start + options_.batch_size, triples.size());
    grad.Clear();
    touched_entities.clear();
    uint64_t batch_active = 0;
    for (size_t i = batch_start; i < batch_end; ++i) {
      const kg::Triple& pos = triples[i];
      NegativeSample neg = sampler_.Sample(pos, &rng_);
      float hinge =
          AccumulateHingeGradients(*model_, pos, neg.triple, options_.margin, &grad);
      if (hinge > 0.0f) {
        ++batch_active;
        hinge_sum += hinge;
        touched_entities.insert(pos.head);
        touched_entities.insert(pos.tail);
        touched_entities.insert(neg.triple.head);
        touched_entities.insert(neg.triple.tail);
      }
    }
    stats.active_pairs += batch_active;
    if (!grad.empty()) {
      ++step_;
      // Average over the batch so the learning rate is scale free.
      ApplyGradients(grad, 1.0f / static_cast<float>(batch_end - batch_start));
      if (options_.normalize_entities) {
        for (uint32_t e : touched_entities) model_->NormalizeEntity(e);
      }
    }
    batch_start = batch_end;
  }

  stats.mean_hinge =
      stats.total_pairs > 0 ? hinge_sum / static_cast<double>(stats.total_pairs) : 0.0;
  stats.seconds = sw.ElapsedSeconds();
  stats.triples_per_second =
      stats.seconds > 0 ? static_cast<double>(stats.total_pairs) / stats.seconds : 0.0;
  return stats;
}

EpochStats Trainer::Train(uint32_t n) {
  EpochStats last;
  for (uint32_t i = 0; i < n; ++i) last = RunEpoch();
  return last;
}

double Trainer::EvaluateMeanHinge(const std::vector<kg::Triple>& triples) {
  if (triples.empty()) return 0.0;
  double sum = 0.0;
  for (const kg::Triple& pos : triples) {
    NegativeSample neg = sampler_.Sample(pos, &rng_);
    sum += AccumulateHingeGradients(*model_, pos, neg.triple, options_.margin,
                                    nullptr);
  }
  return sum / static_cast<double>(triples.size());
}

void Trainer::ApplyGradients(const SparseGrad& grad, float scale) {
  const uint32_t d = model_->dim();
  const bool adam = options_.optimizer == OptimizerKind::kAdam;
  for (const auto& [id, g] : grad.entities()) {
    if (adam) {
      ApplyAdamRow(model_->entity(id), g.data(), d, scale, m_entities_.Row(id),
                   v_entities_.Row(id));
    } else {
      ApplySgdRow(model_->entity(id), g.data(), d, scale);
    }
  }
  for (const auto& [id, g] : grad.relations()) {
    if (adam) {
      ApplyAdamRow(model_->relation(id), g.data(), d, scale,
                   m_relations_.Row(id), v_relations_.Row(id));
    } else {
      ApplySgdRow(model_->relation(id), g.data(), d, scale);
    }
  }
  if (model_->use_relation_module()) {
    const uint32_t dd = d * d;
    for (const auto& [id, g] : grad.transfers()) {
      if (adam) {
        ApplyAdamRow(model_->transfer(id), g.data(), dd, scale,
                     m_transfers_.Row(id), v_transfers_.Row(id));
      } else {
        ApplySgdRow(model_->transfer(id), g.data(), dd, scale);
      }
    }
  }
  for (const auto& [id, g] : grad.hyperplanes()) {
    if (adam) {
      ApplyAdamRow(model_->hyperplane(id), g.data(), d, scale,
                   m_hyperplanes_.Row(id), v_hyperplanes_.Row(id));
    } else {
      ApplySgdRow(model_->hyperplane(id), g.data(), d, scale);
    }
    // TransH's hard constraint: hyperplane normals stay unit length.
    model_->NormalizeHyperplane(id);
  }
}

void Trainer::ApplySgdRow(float* row, const float* g, uint32_t n, float scale) {
  Axpy(n, -options_.learning_rate * scale, g, row);
}

void Trainer::ApplyAdamRow(float* row, const float* g, uint32_t n, float scale,
                           float* m, float* v) {
  const float b1 = options_.adam_beta1;
  const float b2 = options_.adam_beta2;
  const float eps = options_.adam_epsilon;
  const double t = static_cast<double>(step_);
  const float corr1 = 1.0f - static_cast<float>(std::pow(b1, t));
  const float corr2 = 1.0f - static_cast<float>(std::pow(b2, t));
  const float alpha =
      options_.learning_rate * std::sqrt(corr2) / corr1;
  for (uint32_t i = 0; i < n; ++i) {
    const float gi = g[i] * scale;
    m[i] = b1 * m[i] + (1.0f - b1) * gi;
    v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
    row[i] -= alpha * m[i] / (std::sqrt(v[i]) + eps);
  }
}

}  // namespace pkgm::core
