#ifndef PKGM_CORE_EMBEDDING_SOURCE_H_
#define PKGM_CORE_EMBEDDING_SOURCE_H_

#include <cstdint>
#include <cstring>

namespace pkgm::core {

/// Scoring family of the triple query module. TransE is the paper's choice
/// (§II-A, picked "for its simplicity and effectiveness"); DistMult and
/// ComplEx are the semantic-matching alternatives the paper cites (§IV-A),
/// provided so the triple query module can be swapped without touching the
/// rest of the system.
///
/// Score conventions are unified as "smaller is better" so the margin loss
/// and the evaluators work unchanged:
///   kTransE  : f_T = ||h + r - t||_1
///   kDistMult: f_T = -<h, r, t>           (negated trilinear product)
///   kComplEx : f_T = -Re<h, r, conj(t)>   (embeddings split [real; imag])
///   kTransH  : f_T = ||h_perp + r - t_perp||_1 with x_perp = x - w_r<w_r,x>
///              (relation-specific hyperplanes w_r, Wang et al. 2014)
enum class TripleScorerKind { kTransE, kDistMult, kComplEx, kTransH };

/// Read-only access to one PKGM parameter set — the seam between "where
/// the numbers live" and "what is computed from them". The in-heap
/// PkgmModel and the memory-mapped store (src/store/) both implement it,
/// so the serving path (ServiceVectorProvider and everything above it) is
/// agnostic to whether parameters are training-mutable heap tables or an
/// immutable, possibly quantized, file mapping.
///
/// Row accessor contract: `scratch` must point at dim() writable floats
/// (dim()*dim() for TransferRow). Implementations whose storage already is
/// row-major fp32 return a pointer straight into that storage and never
/// touch `scratch` (zero-copy); quantized implementations dequantize into
/// `scratch` and return it. Either way the returned pointer is valid until
/// `scratch` is reused and must not be written through.
///
/// Implementations must be safe for concurrent readers; none of the
/// accessors may mutate logical state.
class EmbeddingSource {
 public:
  virtual ~EmbeddingSource() = default;

  virtual uint32_t num_entities() const = 0;
  virtual uint32_t num_relations() const = 0;
  /// Embedding dimension d; transfer matrices are d x d.
  virtual uint32_t dim() const = 0;
  virtual TripleScorerKind scorer() const = 0;
  /// False when the M_r transfer tables were dropped (triple-only models).
  virtual bool has_relation_module() const = 0;

  /// Entity embedding row e (dim() floats).
  virtual const float* EntityRow(uint32_t e, float* scratch) const = 0;
  /// Contiguous block of entity rows [first, first + count), row-major —
  /// the bulk accessor behind blocked candidate scoring. Same contract as
  /// EntityRow with `scratch` holding count * dim() floats: row-major fp32
  /// backends return a pointer straight into storage without touching
  /// `scratch`; others fill `scratch` one row at a time.
  virtual const float* EntityRowsBlock(uint32_t first, uint32_t count,
                                       float* scratch) const {
    const uint32_t d = dim();
    for (uint32_t i = 0; i < count; ++i) {
      float* dst = scratch + static_cast<size_t>(i) * d;
      const float* row = EntityRow(first + i, dst);
      if (row != dst) std::memcpy(dst, row, d * sizeof(float));
    }
    return scratch;
  }
  /// Relation embedding row r (dim() floats).
  virtual const float* RelationRow(uint32_t r, float* scratch) const = 0;
  /// Transfer matrix M_r, row-major d x d (dim()*dim() floats). Only valid
  /// when has_relation_module().
  virtual const float* TransferRow(uint32_t r, float* scratch) const = 0;
  /// TransH hyperplane normal w_r (dim() floats). Only valid when
  /// has_hyperplanes().
  virtual const float* HyperplaneRow(uint32_t r, float* scratch) const = 0;

  /// TransH is the only family with per-relation hyperplanes.
  bool has_hyperplanes() const { return scorer() == TripleScorerKind::kTransH; }
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_EMBEDDING_SOURCE_H_
