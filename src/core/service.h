#ifndef PKGM_CORE_SERVICE_H_
#define PKGM_CORE_SERVICE_H_

#include <cstdint>
#include <vector>

#include "core/embedding_source.h"
#include "kg/triple.h"
#include "tensor/vec.h"

namespace pkgm::core {

/// Which of PKGM's query modules contribute service vectors — the paper's
/// Base+PKGM-T / Base+PKGM-R / Base+PKGM-all downstream variants.
enum class ServiceMode { kTripleOnly, kRelationOnly, kAll };

/// The knowledge service interface of §II-D/E: given a pre-trained PKGM and
/// each item's k key relations, produces the service vectors downstream
/// models consume — without ever exposing triple data (the paper's "triple
/// data independency").
///
/// For item i with key relations r_1..r_k:
///   * sequence form (Fig. 2): [S_T(i,r_1)..S_T(i,r_k),
///                              S_R(i,r_1)..S_R(i,r_k)]   (2k vectors of d)
///   * condensed form (Fig. 3 / Eq. 8-9, 20):
///       S'_j = [S_T(i,r_j) ; S_R(i,r_j)],  S = (1/k) sum_j S'_j  (one 2d vec)
///
/// kTripleOnly / kRelationOnly variants restrict to one module (length-k
/// sequences; condensed vectors of d).
class ServiceVectorProvider {
 public:
  /// `source` must outlive the provider — a live PkgmModel or a
  /// memory-mapped store export (store::MmapEmbeddingStore), both of which
  /// implement EmbeddingSource. `item_entities[i]` is the entity id of
  /// item i; `key_relations[i]` its key relations (paper: top-10 of its
  /// category). Items may have differing k; empty key lists yield empty
  /// services.
  ServiceVectorProvider(const EmbeddingSource* source,
                        std::vector<kg::EntityId> item_entities,
                        std::vector<std::vector<kg::RelationId>> key_relations);

  uint32_t num_items() const {
    return static_cast<uint32_t>(item_entities_.size());
  }
  uint32_t dim() const { return source_->dim(); }
  /// Number of key relations for item i.
  uint32_t NumKeyRelations(uint32_t item) const;

  /// Sequence-form service vectors (Fig. 2). kAll returns 2k vectors
  /// (triple block then relation block); single-module modes return k.
  std::vector<Vec> Sequence(uint32_t item, ServiceMode mode) const;

  /// Condensed single-vector form (Fig. 3). kAll returns a 2d vector per
  /// Eq. 20; single-module modes return the d-dim mean of that module's
  /// service vectors.
  Vec Condensed(uint32_t item, ServiceMode mode) const;

  /// Dimension of Condensed() output under `mode`.
  uint32_t CondensedDim(ServiceMode mode) const;

  const std::vector<kg::RelationId>& key_relations(uint32_t item) const;
  kg::EntityId item_entity(uint32_t item) const;

  /// The parameter backend the service vectors are computed from.
  const EmbeddingSource* source() const { return source_; }

 private:
  const EmbeddingSource* source_;
  std::vector<kg::EntityId> item_entities_;
  std::vector<std::vector<kg::RelationId>> key_relations_;
};

}  // namespace pkgm::core

#endif  // PKGM_CORE_SERVICE_H_
