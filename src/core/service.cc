#include "core/service.h"

#include "core/service_math.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::core {

ServiceVectorProvider::ServiceVectorProvider(
    const EmbeddingSource* source, std::vector<kg::EntityId> item_entities,
    std::vector<std::vector<kg::RelationId>> key_relations)
    : source_(source),
      item_entities_(std::move(item_entities)),
      key_relations_(std::move(key_relations)) {
  PKGM_CHECK(source != nullptr);
  PKGM_CHECK_EQ(item_entities_.size(), key_relations_.size());
}

uint32_t ServiceVectorProvider::NumKeyRelations(uint32_t item) const {
  PKGM_CHECK_LT(item, key_relations_.size());
  return static_cast<uint32_t>(key_relations_[item].size());
}

const std::vector<kg::RelationId>& ServiceVectorProvider::key_relations(
    uint32_t item) const {
  PKGM_CHECK_LT(item, key_relations_.size());
  return key_relations_[item];
}

kg::EntityId ServiceVectorProvider::item_entity(uint32_t item) const {
  PKGM_CHECK_LT(item, item_entities_.size());
  return item_entities_[item];
}

std::vector<Vec> ServiceVectorProvider::Sequence(uint32_t item,
                                                 ServiceMode mode) const {
  PKGM_CHECK_LT(item, item_entities_.size());
  const uint32_t d = source_->dim();
  const kg::EntityId e = item_entities_[item];
  const auto& rels = key_relations_[item];

  std::vector<Vec> out;
  const bool triple = mode != ServiceMode::kRelationOnly;
  const bool relation = mode != ServiceMode::kTripleOnly;
  out.reserve((triple ? rels.size() : 0) + (relation ? rels.size() : 0));

  ServiceWorkspace ws(d);
  if (triple) {
    for (kg::RelationId r : rels) {
      Vec v(d);
      TripleServiceVector(*source_, e, r, &ws, v.data());
      out.push_back(std::move(v));
    }
  }
  if (relation) {
    for (kg::RelationId r : rels) {
      Vec v(d);
      RelationServiceVector(*source_, e, r, &ws, v.data());
      out.push_back(std::move(v));
    }
  }
  return out;
}

uint32_t ServiceVectorProvider::CondensedDim(ServiceMode mode) const {
  return mode == ServiceMode::kAll ? 2 * source_->dim() : source_->dim();
}

Vec ServiceVectorProvider::Condensed(uint32_t item, ServiceMode mode) const {
  PKGM_CHECK_LT(item, item_entities_.size());
  const uint32_t d = source_->dim();
  const kg::EntityId e = item_entities_[item];
  const auto& rels = key_relations_[item];

  Vec out(CondensedDim(mode), 0.0f);
  if (rels.empty()) return out;

  ServiceWorkspace ws(d);
  std::vector<float> tmp(d);
  const float inv_k = 1.0f / static_cast<float>(rels.size());
  for (kg::RelationId r : rels) {
    if (mode != ServiceMode::kRelationOnly) {
      TripleServiceVector(*source_, e, r, &ws, tmp.data());
      Axpy(d, inv_k, tmp.data(), out.data());
    }
    if (mode != ServiceMode::kTripleOnly) {
      RelationServiceVector(*source_, e, r, &ws, tmp.data());
      // In kAll mode the relation block occupies the second half
      // (S'_j = [S_T ; S_R], Eq. 8), averaged per Eq. 9/20.
      float* dst = mode == ServiceMode::kAll ? out.data() + d : out.data();
      Axpy(d, inv_k, tmp.data(), dst);
    }
  }
  return out;
}

}  // namespace pkgm::core
