#ifndef PKGM_CORE_SERVICE_MATH_H_
#define PKGM_CORE_SERVICE_MATH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/embedding_source.h"
#include "kg/triple.h"

namespace pkgm::core {

/// Reusable dequantization scratch for serving-path computations over an
/// EmbeddingSource. One workspace per thread of execution; the row
/// pointers handed back by the source may alias these buffers, so a
/// workspace must not be shared across concurrent calls.
struct ServiceWorkspace {
  explicit ServiceWorkspace(uint32_t dim)
      : head(dim),
        relation(dim),
        hyperplane(dim),
        transfer(static_cast<size_t>(dim) * dim) {}

  std::vector<float> head;
  std::vector<float> relation;
  std::vector<float> hyperplane;
  std::vector<float> transfer;
};

/// The tail-query / triple service vector S_T(h,r) from raw parameter rows
/// (Eq. 6 for TransE; see TripleScorerKind for the other families).
/// `w` is the TransH hyperplane normal and may be null for other scorers.
/// This is the single implementation both PkgmModel and the
/// EmbeddingSource serving path call, so fp32 backends agree bit-for-bit.
void TripleQueryFromRows(TripleScorerKind scorer, uint32_t dim, const float* h,
                         const float* r, const float* w, float* out);

/// Distance of one candidate tail row from a precomputed tail-query vector
/// under `scorer`: L1 for TransE, hyperplane-projected L1 for TransH
/// (`w` is the relation's normal; `scratch` must hold dim floats and is
/// only touched for TransH), negative dot for DistMult / ComplEx. Shares
/// its per-row arithmetic with ScoreTailCandidatesBlock, so single and
/// blocked scoring of the same row agree bit-for-bit (ranking ties break
/// identically on either path).
float TailDistanceFromRows(TripleScorerKind scorer, uint32_t dim,
                           const float* w, const float* query,
                           const float* tail, float* scratch);

/// Batched tail scoring over a contiguous row-major block of `num_rows`
/// candidate embeddings: out[i] = TailDistanceFromRows(row i). `rows` is
/// caller-owned scratch and is clobbered for TransH (rows are projected in
/// place). This is the SIMD-friendly hot path behind
/// LinkPredictionEvaluator::EvaluateTails.
void ScoreTailCandidatesBlock(TripleScorerKind scorer, uint32_t dim,
                              const float* query, const float* w, float* rows,
                              size_t num_rows, float* out);

/// S_R(h,r) = M_r h - r from raw rows (Eq. 7). `m` is the row-major d x d
/// transfer matrix.
void RelationServiceFromRows(uint32_t dim, const float* m, const float* h,
                             const float* r, float* out);

/// S_T(h,r) through an EmbeddingSource (dequantizing via `ws` as needed).
void TripleServiceVector(const EmbeddingSource& source, kg::EntityId h,
                         kg::RelationId r, ServiceWorkspace* ws, float* out);

/// S_R(h,r) through an EmbeddingSource. Zero-fills `out` when the source
/// has no relation module.
void RelationServiceVector(const EmbeddingSource& source, kg::EntityId h,
                           kg::RelationId r, ServiceWorkspace* ws, float* out);

}  // namespace pkgm::core

#endif  // PKGM_CORE_SERVICE_MATH_H_
