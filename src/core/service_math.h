#ifndef PKGM_CORE_SERVICE_MATH_H_
#define PKGM_CORE_SERVICE_MATH_H_

#include <cstdint>
#include <vector>

#include "core/embedding_source.h"
#include "kg/triple.h"

namespace pkgm::core {

/// Reusable dequantization scratch for serving-path computations over an
/// EmbeddingSource. One workspace per thread of execution; the row
/// pointers handed back by the source may alias these buffers, so a
/// workspace must not be shared across concurrent calls.
struct ServiceWorkspace {
  explicit ServiceWorkspace(uint32_t dim)
      : head(dim),
        relation(dim),
        hyperplane(dim),
        transfer(static_cast<size_t>(dim) * dim) {}

  std::vector<float> head;
  std::vector<float> relation;
  std::vector<float> hyperplane;
  std::vector<float> transfer;
};

/// The tail-query / triple service vector S_T(h,r) from raw parameter rows
/// (Eq. 6 for TransE; see TripleScorerKind for the other families).
/// `w` is the TransH hyperplane normal and may be null for other scorers.
/// This is the single implementation both PkgmModel and the
/// EmbeddingSource serving path call, so fp32 backends agree bit-for-bit.
void TripleQueryFromRows(TripleScorerKind scorer, uint32_t dim, const float* h,
                         const float* r, const float* w, float* out);

/// S_R(h,r) = M_r h - r from raw rows (Eq. 7). `m` is the row-major d x d
/// transfer matrix.
void RelationServiceFromRows(uint32_t dim, const float* m, const float* h,
                             const float* r, float* out);

/// S_T(h,r) through an EmbeddingSource (dequantizing via `ws` as needed).
void TripleServiceVector(const EmbeddingSource& source, kg::EntityId h,
                         kg::RelationId r, ServiceWorkspace* ws, float* out);

/// S_R(h,r) through an EmbeddingSource. Zero-fills `out` when the source
/// has no relation module.
void RelationServiceVector(const EmbeddingSource& source, kg::EntityId h,
                           kg::RelationId r, ServiceWorkspace* ws, float* out);

}  // namespace pkgm::core

#endif  // PKGM_CORE_SERVICE_MATH_H_
