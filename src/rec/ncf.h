#ifndef PKGM_REC_NCF_H_
#define PKGM_REC_NCF_H_

#include <cstdint>
#include <vector>

#include "nn/activations.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/parameter.h"
#include "tensor/vec.h"

namespace pkgm::rec {

/// Neural Collaborative Filtering (He et al., WWW'17), the paper's base
/// recommender (§III-D2), with the PKGM extension of Eq. 21: the condensed
/// service vector S_PKGM is concatenated into the MLP tower's input
///   z_1 = [p_u ; q_i ; S_PKGM]
/// while the GMF tower and the rest of the network stay unchanged.
///
/// Paper hyper-parameters (§III-D4): GMF embedding 8, MLP embedding 32,
/// hidden layers [32, 16, 8], prediction layer 16 = 8 (GMF) + 8 (MLP),
/// sigmoid output, binary cross-entropy, negative sampling ratio 4.
struct NcfConfig {
  uint32_t num_users = 0;
  uint32_t num_items = 0;
  uint32_t gmf_dim = 8;
  uint32_t mlp_dim = 32;
  std::vector<uint32_t> mlp_hidden = {32, 16, 8};
  /// Dimension of the external PKGM feature appended to the MLP input;
  /// 0 disables the extension (base NCF).
  uint32_t pkgm_dim = 0;
  /// L2 regularization on the four embedding tables (paper: 0.001).
  float embedding_l2 = 0.001f;
  uint64_t seed = 37;
};

class NcfModel {
 public:
  explicit NcfModel(const NcfConfig& config);

  const NcfConfig& config() const { return config_; }

  /// Batch forward. `pkgm` must be B x pkgm_dim when pkgm_dim > 0 (null
  /// otherwise). Emits pre-sigmoid logits (B x 1).
  void Forward(const std::vector<uint32_t>& users,
               const std::vector<uint32_t>& items, const Mat* pkgm,
               Mat* logits);

  /// Forward + BCE loss + full backward (embedding L2 included). Gradients
  /// accumulate into Params(); pair with an optimizer Step. Returns the
  /// batch loss. PKGM features are fixed inputs and receive no gradient.
  float ForwardBackward(const std::vector<uint32_t>& users,
                        const std::vector<uint32_t>& items, const Mat* pkgm,
                        const std::vector<float>& labels);

  /// Interaction probability for one (user, item) pair; `pkgm_vec` may be
  /// null when pkgm_dim == 0.
  float Predict(uint32_t user, uint32_t item, const float* pkgm_vec);

  std::vector<nn::Parameter*> Params();

 private:
  void ForwardInternal(const std::vector<uint32_t>& users,
                       const std::vector<uint32_t>& items, const Mat* pkgm,
                       Mat* logits);

  NcfConfig config_;
  nn::Embedding user_gmf_, item_gmf_;
  nn::Embedding user_mlp_, item_mlp_;
  std::vector<nn::Linear> mlp_;
  nn::Linear out_;

  // Forward caches (per batch).
  std::vector<uint32_t> users_, items_;
  Mat pu_gmf_, qi_gmf_;       // B x gmf_dim
  Mat gmf_out_;               // B x gmf_dim
  Mat pu_mlp_, qi_mlp_;       // B x mlp_dim
  Mat mlp_in_;                // B x (2*mlp_dim + pkgm_dim)
  std::vector<Mat> mlp_pre_;  // pre-activation per hidden layer
  std::vector<Mat> mlp_act_;  // post-ReLU per hidden layer
  Mat fusion_;                // B x (gmf_dim + last_hidden)
};

}  // namespace pkgm::rec

#endif  // PKGM_REC_NCF_H_
