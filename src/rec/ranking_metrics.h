#ifndef PKGM_REC_RANKING_METRICS_H_
#define PKGM_REC_RANKING_METRICS_H_

#include <cstdint>
#include <map>
#include <vector>

namespace pkgm::rec {

/// Accumulates leave-one-out ranking metrics (paper §III-D4): for each test
/// user, the positive item is ranked against sampled negatives;
/// HR@k = 1 if the positive lands in the top k, and
/// NDCG@k = 1 / log2(rank + 1) if it does, else 0. Final metrics are means
/// over users.
class RankingMetricsAccumulator {
 public:
  explicit RankingMetricsAccumulator(std::vector<int> ks);

  /// Records one test case given the 1-based rank of the positive item.
  void AddRank(uint32_t rank);

  /// Convenience: computes the positive's rank from scores.
  /// `positive_score` vs `negative_scores`, higher = better; rank is
  /// 1 + #negatives with strictly higher score (+ half of the ties).
  void AddScores(float positive_score, const std::vector<float>& negative_scores);

  uint64_t count() const { return count_; }
  /// HR@k, averaged over recorded cases.
  double HitRatio(int k) const;
  /// NDCG@k, averaged over recorded cases.
  double Ndcg(int k) const;
  const std::vector<int>& ks() const { return ks_; }

 private:
  std::vector<int> ks_;
  std::map<int, double> hit_sum_;
  std::map<int, double> ndcg_sum_;
  uint64_t count_ = 0;
};

}  // namespace pkgm::rec

#endif  // PKGM_REC_RANKING_METRICS_H_
