#include "rec/ranking_metrics.h"

#include <cmath>

#include "util/logging.h"

namespace pkgm::rec {

RankingMetricsAccumulator::RankingMetricsAccumulator(std::vector<int> ks)
    : ks_(std::move(ks)) {
  PKGM_CHECK(!ks_.empty());
  for (int k : ks_) {
    PKGM_CHECK_GT(k, 0);
    hit_sum_[k] = 0.0;
    ndcg_sum_[k] = 0.0;
  }
}

void RankingMetricsAccumulator::AddRank(uint32_t rank) {
  PKGM_CHECK_GE(rank, 1u);
  ++count_;
  for (int k : ks_) {
    if (rank <= static_cast<uint32_t>(k)) {
      hit_sum_[k] += 1.0;
      ndcg_sum_[k] += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
    }
  }
}

void RankingMetricsAccumulator::AddScores(
    float positive_score, const std::vector<float>& negative_scores) {
  uint32_t higher = 0, ties = 0;
  for (float s : negative_scores) {
    if (s > positive_score) {
      ++higher;
    } else if (s == positive_score) {
      ++ties;
    }
  }
  AddRank(1 + higher + ties / 2);
}

double RankingMetricsAccumulator::HitRatio(int k) const {
  PKGM_CHECK(hit_sum_.count(k));
  return count_ > 0 ? hit_sum_.at(k) / static_cast<double>(count_) : 0.0;
}

double RankingMetricsAccumulator::Ndcg(int k) const {
  PKGM_CHECK(ndcg_sum_.count(k));
  return count_ > 0 ? ndcg_sum_.at(k) / static_cast<double>(count_) : 0.0;
}

}  // namespace pkgm::rec
