#include "rec/ncf.h"

#include "nn/losses.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::rec {

NcfModel::NcfModel(const NcfConfig& config)
    : config_(config),
      user_gmf_([&] {
        Rng r(config.seed);
        return nn::Embedding(config.num_users, config.gmf_dim, &r, "ncf.ug");
      }()),
      item_gmf_([&] {
        Rng r(config.seed + 1);
        return nn::Embedding(config.num_items, config.gmf_dim, &r, "ncf.ig");
      }()),
      user_mlp_([&] {
        Rng r(config.seed + 2);
        return nn::Embedding(config.num_users, config.mlp_dim, &r, "ncf.um");
      }()),
      item_mlp_([&] {
        Rng r(config.seed + 3);
        return nn::Embedding(config.num_items, config.mlp_dim, &r, "ncf.im");
      }()),
      out_([&] {
        Rng r(config.seed + 4);
        const uint32_t fusion_dim =
            config.gmf_dim +
            (config.mlp_hidden.empty() ? 2 * config.mlp_dim + config.pkgm_dim
                                       : config.mlp_hidden.back());
        return nn::Linear(fusion_dim, 1, &r, "ncf.out");
      }()) {
  PKGM_CHECK_GT(config.num_users, 0u);
  PKGM_CHECK_GT(config.num_items, 0u);
  Rng r(config.seed + 5);
  uint32_t in_dim = 2 * config.mlp_dim + config.pkgm_dim;
  for (size_t l = 0; l < config.mlp_hidden.size(); ++l) {
    mlp_.emplace_back(in_dim, config.mlp_hidden[l], &r,
                      StrFormat("ncf.mlp%zu", l));
    in_dim = config.mlp_hidden[l];
  }
  mlp_pre_.resize(mlp_.size());
  mlp_act_.resize(mlp_.size());
}

void NcfModel::ForwardInternal(const std::vector<uint32_t>& users,
                               const std::vector<uint32_t>& items,
                               const Mat* pkgm, Mat* logits) {
  PKGM_CHECK_EQ(users.size(), items.size());
  const size_t b = users.size();
  if (config_.pkgm_dim > 0) {
    PKGM_CHECK(pkgm != nullptr);
    PKGM_CHECK_EQ(pkgm->rows(), b);
    PKGM_CHECK_EQ(pkgm->cols(), config_.pkgm_dim);
  }
  users_ = users;
  items_ = items;

  // GMF tower: elementwise product of the GMF embeddings (Eq. 13).
  user_gmf_.Forward(users, &pu_gmf_);
  item_gmf_.Forward(items, &qi_gmf_);
  if (gmf_out_.rows() != b || gmf_out_.cols() != config_.gmf_dim) {
    gmf_out_ = Mat(b, config_.gmf_dim);
  }
  Hadamard(pu_gmf_.size(), pu_gmf_.data(), qi_gmf_.data(), gmf_out_.data());

  // MLP tower: concat embeddings (+ PKGM feature, Eq. 21), hidden ReLUs.
  user_mlp_.Forward(users, &pu_mlp_);
  item_mlp_.Forward(items, &qi_mlp_);
  const uint32_t mlp_in_dim = 2 * config_.mlp_dim + config_.pkgm_dim;
  if (mlp_in_.rows() != b || mlp_in_.cols() != mlp_in_dim) {
    mlp_in_ = Mat(b, mlp_in_dim);
  }
  for (size_t i = 0; i < b; ++i) {
    float* dst = mlp_in_.Row(i);
    const float* pu = pu_mlp_.Row(i);
    const float* qi = qi_mlp_.Row(i);
    for (uint32_t j = 0; j < config_.mlp_dim; ++j) dst[j] = pu[j];
    for (uint32_t j = 0; j < config_.mlp_dim; ++j) {
      dst[config_.mlp_dim + j] = qi[j];
    }
    if (config_.pkgm_dim > 0) {
      const float* s = pkgm->Row(i);
      for (uint32_t j = 0; j < config_.pkgm_dim; ++j) {
        dst[2 * config_.mlp_dim + j] = s[j];
      }
    }
  }

  const Mat* current = &mlp_in_;
  for (size_t l = 0; l < mlp_.size(); ++l) {
    mlp_[l].Forward(*current, &mlp_pre_[l]);
    if (mlp_act_[l].rows() != mlp_pre_[l].rows() ||
        mlp_act_[l].cols() != mlp_pre_[l].cols()) {
      mlp_act_[l] = Mat(mlp_pre_[l].rows(), mlp_pre_[l].cols());
    }
    nn::ActivationForward(nn::Activation::kRelu, mlp_pre_[l], &mlp_act_[l]);
    current = &mlp_act_[l];
  }

  // NeuMF fusion: concat the two tower outputs, project to a logit (Eq. 18).
  const size_t mlp_out_dim = current->cols();
  if (fusion_.rows() != b || fusion_.cols() != config_.gmf_dim + mlp_out_dim) {
    fusion_ = Mat(b, config_.gmf_dim + mlp_out_dim);
  }
  for (size_t i = 0; i < b; ++i) {
    float* dst = fusion_.Row(i);
    const float* g = gmf_out_.Row(i);
    for (uint32_t j = 0; j < config_.gmf_dim; ++j) dst[j] = g[j];
    const float* m = current->Row(i);
    for (size_t j = 0; j < mlp_out_dim; ++j) dst[config_.gmf_dim + j] = m[j];
  }
  out_.Forward(fusion_, logits);
}

void NcfModel::Forward(const std::vector<uint32_t>& users,
                       const std::vector<uint32_t>& items, const Mat* pkgm,
                       Mat* logits) {
  ForwardInternal(users, items, pkgm, logits);
}

float NcfModel::ForwardBackward(const std::vector<uint32_t>& users,
                                const std::vector<uint32_t>& items,
                                const Mat* pkgm,
                                const std::vector<float>& labels) {
  Mat logits;
  ForwardInternal(users, items, pkgm, &logits);

  Mat dlogits;
  const float loss = nn::BinaryCrossEntropyWithLogits(logits, labels, &dlogits);

  // Fusion layer.
  Mat dfusion;
  out_.Backward(fusion_, dlogits, &dfusion);

  const size_t b = users.size();
  const size_t mlp_out_dim = fusion_.cols() - config_.gmf_dim;

  // Split fusion gradient into tower gradients.
  Mat dgmf(b, config_.gmf_dim);
  Mat dmlp_top(b, mlp_out_dim);
  for (size_t i = 0; i < b; ++i) {
    const float* src = dfusion.Row(i);
    float* dg = dgmf.Row(i);
    for (uint32_t j = 0; j < config_.gmf_dim; ++j) dg[j] = src[j];
    float* dm = dmlp_top.Row(i);
    for (size_t j = 0; j < mlp_out_dim; ++j) dm[j] = src[config_.gmf_dim + j];
  }

  // GMF tower backward: d(p∘q)/dp = q, /dq = p.
  Mat dpu_gmf(b, config_.gmf_dim), dqi_gmf(b, config_.gmf_dim);
  Hadamard(dgmf.size(), dgmf.data(), qi_gmf_.data(), dpu_gmf.data());
  Hadamard(dgmf.size(), dgmf.data(), pu_gmf_.data(), dqi_gmf.data());
  user_gmf_.Backward(users_, dpu_gmf);
  item_gmf_.Backward(items_, dqi_gmf);

  // MLP tower backward.
  Mat dcur = std::move(dmlp_top);
  for (size_t l = mlp_.size(); l-- > 0;) {
    Mat dpre(mlp_pre_[l].rows(), mlp_pre_[l].cols());
    nn::ActivationBackward(nn::Activation::kRelu, mlp_pre_[l], dcur, &dpre);
    const Mat& input = (l == 0) ? mlp_in_ : mlp_act_[l - 1];
    Mat dinput;
    mlp_[l].Backward(input, dpre, &dinput);
    dcur = std::move(dinput);
  }

  // Split the MLP-input gradient into the two embeddings (PKGM slice is a
  // fixed input — discarded).
  Mat dpu_mlp(b, config_.mlp_dim), dqi_mlp(b, config_.mlp_dim);
  for (size_t i = 0; i < b; ++i) {
    const float* src = dcur.Row(i);
    float* dp = dpu_mlp.Row(i);
    float* dq = dqi_mlp.Row(i);
    for (uint32_t j = 0; j < config_.mlp_dim; ++j) dp[j] = src[j];
    for (uint32_t j = 0; j < config_.mlp_dim; ++j) {
      dq[j] = src[config_.mlp_dim + j];
    }
  }
  user_mlp_.Backward(users_, dpu_mlp);
  item_mlp_.Backward(items_, dqi_mlp);

  // L2 regularization on the touched embedding rows (paper: lambda on the
  // user/item embeddings of both towers).
  if (config_.embedding_l2 > 0.0f) {
    const float lambda = config_.embedding_l2;
    auto add_l2 = [&](nn::Embedding& emb, const std::vector<uint32_t>& ids) {
      for (uint32_t id : ids) {
        Axpy(emb.dim(), lambda, emb.table().value.Row(id),
             emb.table().grad.Row(id));
      }
    };
    add_l2(user_gmf_, users_);
    add_l2(item_gmf_, items_);
    add_l2(user_mlp_, users_);
    add_l2(item_mlp_, items_);
  }
  return loss;
}

float NcfModel::Predict(uint32_t user, uint32_t item, const float* pkgm_vec) {
  std::vector<uint32_t> users{user}, items{item};
  Mat pkgm;
  const Mat* pkgm_ptr = nullptr;
  if (config_.pkgm_dim > 0) {
    PKGM_CHECK(pkgm_vec != nullptr);
    pkgm = Mat(1, config_.pkgm_dim);
    for (uint32_t j = 0; j < config_.pkgm_dim; ++j) pkgm(0, j) = pkgm_vec[j];
    pkgm_ptr = &pkgm;
  }
  Mat logits;
  ForwardInternal(users, items, pkgm_ptr, &logits);
  return nn::SigmoidScalar(logits(0, 0));
}

std::vector<nn::Parameter*> NcfModel::Params() {
  std::vector<nn::Parameter*> params;
  user_gmf_.Params(&params);
  item_gmf_.Params(&params);
  user_mlp_.Params(&params);
  item_mlp_.Params(&params);
  for (auto& l : mlp_) l.Params(&params);
  out_.Params(&params);
  return params;
}

}  // namespace pkgm::rec
