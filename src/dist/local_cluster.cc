#include "dist/local_cluster.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::dist {

namespace {

const char* ScorerName(core::TripleScorerKind scorer) {
  switch (scorer) {
    case core::TripleScorerKind::kTransE:
      return "transe";
    case core::TripleScorerKind::kDistMult:
      return "distmult";
    case core::TripleScorerKind::kComplEx:
      return "complex";
    case core::TripleScorerKind::kTransH:
      return "transh";
  }
  return "transe";
}

/// Reads "<port>\n" from a port file; 0 when absent / not yet complete.
uint16_t ReadPortFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  long port = 0;
  const int got = std::fscanf(f, "%ld", &port);
  std::fclose(f);
  if (got != 1 || port <= 0 || port > 65535) return 0;
  return static_cast<uint16_t>(port);
}

}  // namespace

LocalShardCluster::LocalShardCluster(LocalShardClusterOptions options)
    : options_(std::move(options)) {
  PKGM_CHECK_GT(options_.num_shards, 0u);
}

LocalShardCluster::~LocalShardCluster() { Stop(); }

Status LocalShardCluster::Start() {
  if (started_) return Status::FailedPrecondition("cluster already started");
  started_ = true;
  pids_.assign(options_.num_shards, -1);
  endpoints_.assign(options_.num_shards, "");

  std::vector<std::string> port_files(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    port_files[s] =
        StrFormat("%s/shard_%u.port", options_.work_dir.c_str(),
                  static_cast<unsigned>(s));
    std::remove(port_files[s].c_str());

    std::vector<std::string> args;
    args.push_back(options_.psd_binary);
    args.push_back("--shard");
    args.push_back(StrFormat("%u", static_cast<unsigned>(s)));
    args.push_back("--num-shards");
    args.push_back(
        StrFormat("%u", static_cast<unsigned>(options_.num_shards)));
    args.push_back("--entities");
    args.push_back(StrFormat(
        "%u", static_cast<unsigned>(options_.model.num_entities)));
    args.push_back("--relations");
    args.push_back(StrFormat(
        "%u", static_cast<unsigned>(options_.model.num_relations)));
    args.push_back("--dim");
    args.push_back(
        StrFormat("%u", static_cast<unsigned>(options_.model.dim)));
    args.push_back("--scorer");
    args.push_back(ScorerName(options_.model.scorer));
    if (!options_.model.use_relation_module) {
      args.push_back("--no-relation-module");
    }
    args.push_back("--model-seed");
    args.push_back(StrFormat(
        "%llu", static_cast<unsigned long long>(options_.model.seed)));
    args.push_back("--optimizer");
    args.push_back(options_.optimizer == core::OptimizerKind::kAdam
                       ? "adam"
                       : "sgd");
    args.push_back("--lr");
    args.push_back(
        StrFormat("%.9g", static_cast<double>(options_.learning_rate)));
    if (!options_.normalize_entities) {
      args.push_back("--no-normalize-entities");
    }
    args.push_back("--io-threads");
    args.push_back(StrFormat("%zu", options_.io_threads));
    args.push_back("--port-file");
    args.push_back(port_files[s]);

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
      Stop();
      return Status::Internal("fork failed");
    }
    if (pid == 0) {
      execv(argv[0], argv.data());
      // exec only returns on failure; die loudly without running any
      // parent-process atexit machinery.
      std::fprintf(stderr, "execv %s failed\n", argv[0]);
      _exit(127);
    }
    pids_[s] = pid;
  }

  // Wait for every daemon to publish its bound port (write-then-rename, so
  // a readable file is always complete).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.startup_timeout_ms);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    for (;;) {
      const uint16_t port = ReadPortFile(port_files[s]);
      if (port != 0) {
        endpoints_[s] = StrFormat("127.0.0.1:%u", port);
        break;
      }
      int wstatus = 0;
      if (waitpid(pids_[s], &wstatus, WNOHANG) == pids_[s]) {
        pids_[s] = -1;
        Stop();
        return Status::Internal(StrFormat(
            "shard daemon %u exited during startup",
            static_cast<unsigned>(s)));
      }
      if (std::chrono::steady_clock::now() > deadline) {
        Stop();
        return Status::IoError(StrFormat(
            "shard daemon %u did not publish a port within %d ms",
            static_cast<unsigned>(s), options_.startup_timeout_ms));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return Status::Ok();
}

void LocalShardCluster::Stop() {
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    kill(pid, SIGTERM);
  }
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    pid = -1;
  }
}

}  // namespace pkgm::dist
