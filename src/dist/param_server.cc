#include "dist/param_server.h"

#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::dist {

using net::Frame;
using net::FrameType;
using net::ParamTable;
using net::WireCode;

ParamServer::ParamServer(const ParamServerOptions& options)
    : options_(options), model_(options.model), kernels_(simd::Active()) {
  PKGM_CHECK_GT(options_.num_shards, 0u);
  PKGM_CHECK_LT(options_.shard_index, options_.num_shards);
  if (options_.optimizer == core::OptimizerKind::kAdam) {
    // Dense moment tables for the whole shape, like the in-process
    // Trainer: only owned rows are ever touched, so the unowned half is
    // wasted-but-simple (sparse moment storage is a scale follow-up).
    m_entities_ = Mat(model_.num_entities(), model_.dim());
    v_entities_ = Mat(model_.num_entities(), model_.dim());
    m_relations_ = Mat(model_.num_relations(), model_.dim());
    v_relations_ = Mat(model_.num_relations(), model_.dim());
    if (model_.use_relation_module()) {
      const size_t dd = static_cast<size_t>(model_.dim()) * model_.dim();
      m_transfers_ = Mat(model_.num_relations(), dd);
      v_transfers_ = Mat(model_.num_relations(), dd);
    }
    if (model_.scorer() == core::TripleScorerKind::kTransH) {
      m_hyperplanes_ = Mat(model_.num_relations(), model_.dim());
      v_hyperplanes_ = Mat(model_.num_relations(), model_.dim());
    }
  }
}

net::ShardInfo ParamServer::Info() const {
  net::ShardInfo info;
  info.shard_index = options_.shard_index;
  info.num_shards = options_.num_shards;
  info.num_entities = model_.num_entities();
  info.num_relations = model_.num_relations();
  info.dim = model_.dim();
  info.scorer = static_cast<uint8_t>(model_.scorer());
  info.use_relation_module = model_.use_relation_module();
  info.optimizer = static_cast<uint8_t>(options_.optimizer);
  info.learning_rate = options_.learning_rate;
  info.model_seed = options_.model.seed;
  return info;
}

uint32_t ParamServer::RowSizeOf(ParamTable table) const {
  switch (table) {
    case ParamTable::kEntity:
    case ParamTable::kRelation:
      return model_.dim();
    case ParamTable::kTransfer:
      return model_.use_relation_module() ? model_.dim() * model_.dim() : 0;
    case ParamTable::kHyperplane:
      return model_.scorer() == core::TripleScorerKind::kTransH ? model_.dim()
                                                                : 0;
  }
  return 0;
}

uint32_t ParamServer::NumKeysOf(ParamTable table) const {
  return table == ParamTable::kEntity ? model_.num_entities()
                                      : model_.num_relations();
}

const float* ParamServer::RowPtr(ParamTable table, uint32_t id) const {
  switch (table) {
    case ParamTable::kEntity:
      return model_.entity(id);
    case ParamTable::kRelation:
      return model_.relation(id);
    case ParamTable::kTransfer:
      return model_.transfer(id);
    case ParamTable::kHyperplane:
      return model_.hyperplane(id);
  }
  return nullptr;
}

bool ParamServer::HandleFrame(const Frame& frame, Respond respond) {
  switch (frame.type) {
    case FrameType::kShardInfo:
      respond(net::EncodeShardInfoReply(frame.correlation_id, Info()));
      return true;
    case FrameType::kPullRows:
      respond(HandlePull(frame));
      return true;
    case FrameType::kPushGrads:
      respond(HandlePush(frame));
      return true;
    case FrameType::kBarrier:
      HandleBarrier(frame, std::move(respond));
      return true;
    default:
      return false;  // transport answers kError/kUnsupported
  }
}

std::string ParamServer::HandlePull(const Frame& frame) {
  std::vector<net::PullSection> sections;
  Status st = net::DecodePullRows(frame.payload, &sections);
  if (!st.ok()) {
    ++rejects_;
    return net::EncodeError(frame.correlation_id, WireCode::kInvalidItem,
                            st.message());
  }
  ++pulls_;

  std::vector<net::RowsSection> out;
  out.reserve(sections.size());
  uint64_t rows = 0;
  for (const net::PullSection& sec : sections) {
    const uint32_t row_size = RowSizeOf(sec.table);
    if (row_size == 0) {
      ++rejects_;
      return net::EncodeError(
          frame.correlation_id, WireCode::kInvalidItem,
          StrFormat("table %u not present under this model configuration",
                    static_cast<unsigned>(sec.table)));
    }
    const uint32_t num_keys = NumKeysOf(sec.table);
    net::RowsSection rs;
    rs.table = sec.table;
    rs.row_size = row_size;
    rs.ids = sec.ids;
    rs.values.resize(static_cast<size_t>(sec.ids.size()) * row_size);
    float* dst = rs.values.data();
    for (uint32_t id : sec.ids) {
      if (id >= num_keys || !OwnsKey(id)) {
        ++rejects_;
        return net::EncodeError(
            frame.correlation_id, WireCode::kInvalidItem,
            StrFormat("row %u of table %u is not served by shard %u/%u",
                      static_cast<unsigned>(id),
                      static_cast<unsigned>(sec.table),
                      static_cast<unsigned>(options_.shard_index),
                      static_cast<unsigned>(options_.num_shards)));
      }
      // Unlocked read: a concurrent push may be rewriting this row, so a
      // worker can observe a torn / slightly stale value — the same benign
      // race the in-process hogwild trainer runs under.
      std::memcpy(dst, RowPtr(sec.table, id), row_size * sizeof(float));
      dst += row_size;
      ++rows;
    }
    out.push_back(std::move(rs));
  }
  rows_pulled_.fetch_add(rows);
  return net::EncodeRows(frame.correlation_id, out);
}

std::string ParamServer::HandlePush(const Frame& frame) {
  float scale = 0.0f;
  uint32_t epoch = 0;
  std::string_view blob;
  Status st = net::DecodePushGrads(frame.payload, &scale, &epoch, &blob);
  if (!st.ok()) {
    ++rejects_;
    return net::EncodeError(frame.correlation_id, WireCode::kInvalidItem,
                            st.message());
  }

  std::lock_guard<std::mutex> lock(apply_mu_);
  scratch_.Clear();
  uint64_t rows = 0;
  st = core::DeserializeGradArena(blob, &scratch_, &rows);
  if (!st.ok()) {
    ++rejects_;
    return net::EncodeError(frame.correlation_id, WireCode::kInvalidItem,
                            st.message());
  }

  // Validate every row before touching the model, so a bad push is
  // all-or-nothing.
  const auto validate_slab = [&](const core::GradSlab& slab,
                                 ParamTable table) -> const char* {
    if (slab.empty()) return nullptr;
    if (RowSizeOf(table) == 0) return "table not present";
    if (slab.row_size() != RowSizeOf(table)) return "row size mismatch";
    const uint32_t num_keys = NumKeysOf(table);
    for (size_t i = 0; i < slab.size(); ++i) {
      const uint32_t id = slab.id_at(i);
      if (id >= num_keys || !OwnsKey(id)) return "row not owned by shard";
    }
    return nullptr;
  };
  const ParamTable tables[4] = {ParamTable::kEntity, ParamTable::kRelation,
                                ParamTable::kTransfer,
                                ParamTable::kHyperplane};
  const core::GradSlab* slabs[4] = {&scratch_.entities(),
                                    &scratch_.relations(),
                                    &scratch_.transfers(),
                                    &scratch_.hyperplanes()};
  for (int t = 0; t < 4; ++t) {
    if (const char* what = validate_slab(*slabs[t], tables[t])) {
      ++rejects_;
      return net::EncodeError(
          frame.correlation_id, WireCode::kInvalidItem,
          StrFormat("push to table %d refused: %s", t, what));
    }
  }

  // Apply with the same arithmetic as the in-process trainers: Adam
  // mirrors Trainer::ApplyGradients (step incremented first, so t starts
  // at 1), SGD mirrors ShardedTrainer::ApplyWorkerGradients.
  const bool adam = options_.optimizer == core::OptimizerKind::kAdam;
  const float b1 = options_.adam_beta1;
  const float b2 = options_.adam_beta2;
  const float eps = options_.adam_epsilon;
  float alpha = 0.0f;
  if (adam) {
    const double t = static_cast<double>(step_.fetch_add(1) + 1);
    const float corr1 = 1.0f - static_cast<float>(std::pow(b1, t));
    const float corr2 = 1.0f - static_cast<float>(std::pow(b2, t));
    alpha = options_.learning_rate * std::sqrt(corr2) / corr1;
  } else {
    step_.fetch_add(1);
  }
  const float sgd_alpha = -options_.learning_rate * scale;

  const auto apply_slab = [&](const core::GradSlab& slab, Mat* table, Mat* m,
                              Mat* v) {
    const uint32_t n = slab.row_size();
    for (size_t i = 0; i < slab.size(); ++i) {
      const uint32_t id = slab.id_at(i);
      const float* g = slab.row_at(i);
      float* row = table->Row(id);
      if (adam) {
        kernels_.adam_row(n, g, scale, b1, b2, alpha, eps, row, m->Row(id),
                          v->Row(id));
      } else {
        kernels_.axpy(n, sgd_alpha, g, row);
      }
    }
  };

  apply_slab(scratch_.entities(), &model_.entity_table(), &m_entities_,
             &v_entities_);
  if (options_.normalize_entities) {
    const core::GradSlab& ge = scratch_.entities();
    for (size_t i = 0; i < ge.size(); ++i) model_.NormalizeEntity(ge.id_at(i));
  }
  apply_slab(scratch_.relations(), &model_.relation_table(), &m_relations_,
             &v_relations_);
  apply_slab(scratch_.transfers(), &model_.transfer_table(), &m_transfers_,
             &v_transfers_);
  const core::GradSlab& gw = scratch_.hyperplanes();
  if (!gw.empty()) {
    apply_slab(gw, &model_.hyperplane_table(), &m_hyperplanes_,
               &v_hyperplanes_);
    for (size_t i = 0; i < gw.size(); ++i) {
      model_.NormalizeHyperplane(gw.id_at(i));
    }
  }

  ++pushes_;
  rows_applied_.fetch_add(rows);
  return net::EncodePushAck(frame.correlation_id,
                            static_cast<uint32_t>(rows));
}

void ParamServer::HandleBarrier(const Frame& frame, Respond respond) {
  uint32_t epoch = 0;
  uint32_t num_workers = 0;
  Status st = net::DecodeBarrier(frame.payload, &epoch, &num_workers);
  if (!st.ok() || num_workers == 0) {
    ++rejects_;
    respond(net::EncodeError(frame.correlation_id, WireCode::kInvalidItem,
                             st.ok() ? "barrier expects num_workers > 0"
                                     : st.message()));
    return;
  }

  std::vector<std::pair<uint64_t, Respond>> release;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    if (!accepting_barriers_) {
      respond(net::EncodeError(frame.correlation_id, WireCode::kRejected,
                               "shard is shutting down"));
      return;
    }
    BarrierState& state = barriers_[epoch];
    if (state.expected == 0) {
      state.expected = num_workers;
    } else if (state.expected != num_workers) {
      respond(net::EncodeError(
          frame.correlation_id, WireCode::kRejected,
          StrFormat("barrier %u worker-count mismatch: %u vs %u",
                    static_cast<unsigned>(epoch),
                    static_cast<unsigned>(num_workers),
                    static_cast<unsigned>(state.expected))));
      return;
    }
    state.waiters.emplace_back(frame.correlation_id, std::move(respond));
    if (state.waiters.size() < state.expected) return;
    release = std::move(state.waiters);
    barriers_.erase(epoch);
    ++barriers_released_;
  }
  // Complete outside the lock: responds post to I/O threads and must not
  // nest under barrier_mu_.
  for (auto& [cid, cb] : release) {
    cb(net::EncodeBarrierReply(cid, epoch,
                               static_cast<uint32_t>(release.size())));
  }
}

void ParamServer::AbortBarriers() {
  std::map<uint32_t, BarrierState> parked;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    accepting_barriers_ = false;
    parked.swap(barriers_);
  }
  for (auto& [epoch, state] : parked) {
    for (auto& [cid, cb] : state.waiters) {
      cb(net::EncodeError(cid, WireCode::kRejected, "barrier aborted"));
    }
  }
}

std::string ParamServer::StatsJson() {
  return StrFormat(
      "{\"shard\": %u, \"num_shards\": %u, \"optimizer\": \"%s\", "
      "\"pulls\": %llu, \"rows_pulled\": %llu, \"pushes\": %llu, "
      "\"rows_applied\": %llu, \"rejects\": %llu, "
      "\"barriers_released\": %llu, \"step\": %llu}",
      static_cast<unsigned>(options_.shard_index),
      static_cast<unsigned>(options_.num_shards),
      options_.optimizer == core::OptimizerKind::kAdam ? "adam" : "sgd",
      static_cast<unsigned long long>(pulls_.load()),
      static_cast<unsigned long long>(rows_pulled_.load()),
      static_cast<unsigned long long>(pushes_.load()),
      static_cast<unsigned long long>(rows_applied_.load()),
      static_cast<unsigned long long>(rejects_.load()),
      static_cast<unsigned long long>(barriers_released_.load()),
      static_cast<unsigned long long>(step_.load()));
}

}  // namespace pkgm::dist
