#ifndef PKGM_DIST_LOCAL_CLUSTER_H_
#define PKGM_DIST_LOCAL_CLUSTER_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "util/status.h"

namespace pkgm::dist {

struct LocalShardClusterOptions {
  /// Path to the pkgm_psd binary.
  std::string psd_binary;
  /// Scratch directory for port files (must exist).
  std::string work_dir;
  uint32_t num_shards = 2;
  /// Model + optimizer configuration, forwarded as pkgm_psd flags. All
  /// shards get identical flags (identical seed => identical init).
  core::PkgmModelOptions model;
  core::OptimizerKind optimizer = core::OptimizerKind::kSgd;
  float learning_rate = 0.02f;
  bool normalize_entities = true;
  size_t io_threads = 1;
  /// How long Start() waits for every daemon to publish its port file.
  int startup_timeout_ms = 10000;
};

/// Spawns one pkgm_psd shard daemon per shard on loopback ephemeral ports
/// (fork + exec), waits for the daemons' port files, and tears the fleet
/// down with SIGTERM on Stop() / destruction. This is what backs
/// `pkgm_tool train --distributed N`: single-host multi-process training
/// without hand-managing daemons.
class LocalShardCluster {
 public:
  explicit LocalShardCluster(LocalShardClusterOptions options);
  ~LocalShardCluster();

  LocalShardCluster(const LocalShardCluster&) = delete;
  LocalShardCluster& operator=(const LocalShardCluster&) = delete;

  /// Forks/execs every daemon and waits until all ports are published.
  /// On failure the already-started daemons are stopped.
  Status Start();

  /// SIGTERM + waitpid on every live daemon. Idempotent.
  void Stop();

  /// "127.0.0.1:<port>" per shard, in shard order. Valid after Start().
  const std::vector<std::string>& endpoints() const { return endpoints_; }

 private:
  const LocalShardClusterOptions options_;
  std::vector<pid_t> pids_;
  std::vector<std::string> endpoints_;
  bool started_ = false;
};

}  // namespace pkgm::dist

#endif  // PKGM_DIST_LOCAL_CLUSTER_H_
