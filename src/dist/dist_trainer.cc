#include "dist/dist_trainer.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "core/gradients.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pkgm::dist {

namespace {

core::NegativeSampler::Options FillNegativeOptions(
    core::NegativeSampler::Options neg, const core::PkgmModel& model) {
  if (neg.num_entities == 0) neg.num_entities = model.num_entities();
  if (neg.num_relations == 0) neg.num_relations = model.num_relations();
  return neg;
}

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("bad shard endpoint: " + endpoint);
  }
  *host = endpoint.substr(0, colon);
  const long p = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) {
    return Status::InvalidArgument("bad shard port in: " + endpoint);
  }
  *port = static_cast<uint16_t>(p);
  return Status::Ok();
}

/// Resolves one CallFrame future within the deadline; a pending future
/// past the deadline is abandoned (the promise side is still owned by the
/// client's reader thread, which satisfies it whenever the frame — or the
/// connection teardown — arrives).
StatusOr<net::Frame> Await(std::future<StatusOr<net::Frame>>& fut,
                           int timeout_ms) {
  if (fut.wait_for(std::chrono::milliseconds(timeout_ms)) !=
      std::future_status::ready) {
    return Status::IoError("remote call timed out");
  }
  return fut.get();
}

/// Await + require the reply to be of `want` type.
StatusOr<net::Frame> AwaitType(std::future<StatusOr<net::Frame>>& fut,
                               net::FrameType want, int timeout_ms) {
  StatusOr<net::Frame> reply = Await(fut, timeout_ms);
  if (!reply.ok()) return reply;
  if (reply.value().type != want) {
    return Status::IoError(
        StrFormat("unexpected reply frame type %u",
                  static_cast<unsigned>(reply.value().type)));
  }
  return reply;
}

// Same producer/worker plumbing as ShardedTrainer (see sharded_trainer.cc
// for the rationale); duplicated rather than exported because the types
// are an implementation detail on both sides.
struct PairBatch {
  size_t index = 0;
  std::vector<kg::Triple> pos;
  std::vector<core::NegativeSample> neg;
};

class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity) : capacity_(capacity) {}

  bool Push(PairBatch* b) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    if (closed_) return false;
    q_.push_back(b);
    not_empty_.notify_one();
    return true;
  }

  bool Pop(PairBatch** out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    *out = q_.front();
    q_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<PairBatch*> q_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace

/// Per-worker reusable scratch: the touched-id sets of the current batch
/// and their per-shard split, plus the in-flight pull futures. Everything
/// keeps its capacity across batches.
struct DistTrainer::BatchScratch {
  std::vector<uint32_t> ent_ids, rel_ids;              // sorted unique
  std::vector<std::vector<uint32_t>> shard_ents;       // per shard
  std::vector<std::vector<uint32_t>> shard_rels;
  std::vector<std::future<StatusOr<net::Frame>>> pull_futures;
  std::vector<net::RowsSection> rows;
};

DistTrainer::DistTrainer(const kg::TripleSource* store,
                         DistTrainerOptions options)
    : store_(store),
      options_(std::move(options)),
      kernels_(simd::Active()),
      epoch_rng_(options_.seed),
      // Same derivation as Trainer's validation stream, so an identical
      // replica evaluates to the identical number.
      eval_rng_(options_.seed ^ UINT64_C(0xBADD1CE5FEEDFACE)) {
  PKGM_CHECK(store != nullptr);
  PKGM_CHECK_GT(options_.num_workers, 0u);
  PKGM_CHECK_GT(options_.batch_size, 0u);
  PKGM_CHECK_GT(options_.num_worker_processes, 0u);
  PKGM_CHECK_LT(options_.worker_process_index,
                options_.num_worker_processes);
}

DistTrainer::~DistTrainer() = default;

Status DistTrainer::Connect() {
  const size_t num_shards = options_.shard_endpoints.size();
  if (num_shards == 0) {
    return Status::InvalidArgument("no shard endpoints configured");
  }
  clients_.clear();
  std::vector<net::ShardInfo> infos(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    std::string host;
    uint16_t port = 0;
    PKGM_RETURN_IF_ERROR(
        ParseEndpoint(options_.shard_endpoints[s], &host, &port));
    net::NetClientOptions copt;
    // One pipelined connection per local worker, so workers do not
    // head-of-line block each other's pulls.
    copt.num_connections = options_.num_workers;
    auto client = net::NetClient::Connect(host, port, copt);
    if (!client.ok()) return client.status();
    clients_.push_back(std::move(client).value());

    const uint64_t cid = clients_[s]->NextCorrelationId();
    auto fut = clients_[s]->CallFrame(
        cid, net::EncodeControl(net::FrameType::kShardInfo, cid));
    StatusOr<net::Frame> reply =
        AwaitType(fut, net::FrameType::kShardInfoReply, options_.io_timeout_ms);
    if (!reply.ok()) return reply.status();
    PKGM_RETURN_IF_ERROR(
        net::DecodeShardInfoReply(reply.value().payload, &infos[s]));
    if (infos[s].shard_index != s) {
      return Status::InvalidArgument(StrFormat(
          "endpoint %s announces shard %u, expected %u",
          options_.shard_endpoints[s].c_str(),
          static_cast<unsigned>(infos[s].shard_index),
          static_cast<unsigned>(s)));
    }
    if (infos[s].num_shards != num_shards) {
      return Status::InvalidArgument(StrFormat(
          "shard %u believes in %u shards, worker is configured for %u",
          static_cast<unsigned>(s),
          static_cast<unsigned>(infos[s].num_shards),
          static_cast<unsigned>(num_shards)));
    }
    const net::ShardInfo& a = infos[0];
    const net::ShardInfo& b = infos[s];
    if (b.num_entities != a.num_entities ||
        b.num_relations != a.num_relations || b.dim != a.dim ||
        b.scorer != a.scorer ||
        b.use_relation_module != a.use_relation_module ||
        b.optimizer != a.optimizer || b.learning_rate != a.learning_rate ||
        b.model_seed != a.model_seed) {
      return Status::InvalidArgument(StrFormat(
          "shard %u's model configuration disagrees with shard 0",
          static_cast<unsigned>(s)));
    }
  }
  info_ = infos[0];
  if (info_.learning_rate != options_.learning_rate) {
    return Status::InvalidArgument(StrFormat(
        "shards apply lr %g but the worker was configured with %g",
        static_cast<double>(info_.learning_rate),
        static_cast<double>(options_.learning_rate)));
  }

  core::PkgmModelOptions mopt;
  mopt.num_entities = info_.num_entities;
  mopt.num_relations = info_.num_relations;
  mopt.dim = info_.dim;
  mopt.scorer = static_cast<core::TripleScorerKind>(info_.scorer);
  mopt.use_relation_module = info_.use_relation_module;
  mopt.seed = info_.model_seed;
  // Same options + same seed as every shard: the replica starts
  // bit-identical, so rows never pulled (because never touched) are still
  // exactly the shards' values.
  replica_ = std::make_unique<core::PkgmModel>(mopt);
  sampler_ = std::make_unique<core::NegativeSampler>(
      FillNegativeOptions(options_.negative, *replica_), store_);
  return Status::Ok();
}

Status DistTrainer::ApplyRowsSections(
    const std::vector<net::RowsSection>& sections) {
  for (const net::RowsSection& sec : sections) {
    const uint32_t dim = replica_->dim();
    uint32_t want_row = 0;
    switch (sec.table) {
      case net::ParamTable::kEntity:
      case net::ParamTable::kRelation:
      case net::ParamTable::kHyperplane:
        want_row = dim;
        break;
      case net::ParamTable::kTransfer:
        want_row = dim * dim;
        break;
    }
    if (sec.row_size != want_row) {
      return Status::IoError("pulled row size disagrees with the replica");
    }
    const float* src = sec.values.data();
    for (uint32_t id : sec.ids) {
      float* dst = nullptr;
      switch (sec.table) {
        case net::ParamTable::kEntity:
          if (id >= replica_->num_entities()) break;
          dst = replica_->entity(id);
          break;
        case net::ParamTable::kRelation:
          if (id >= replica_->num_relations()) break;
          dst = replica_->relation(id);
          break;
        case net::ParamTable::kTransfer:
          if (id >= replica_->num_relations()) break;
          dst = replica_->transfer(id);
          break;
        case net::ParamTable::kHyperplane:
          if (id >= replica_->num_relations()) break;
          dst = replica_->hyperplane(id);
          break;
      }
      if (dst == nullptr) {
        return Status::IoError("pulled row id out of the replica's range");
      }
      // Concurrent workers may refresh the same row; both write current
      // shard values, so the race is benign (hogwild regime).
      std::memcpy(dst, src, sec.row_size * sizeof(float));
      src += sec.row_size;
    }
    rows_pulled_.fetch_add(sec.ids.size());
  }
  return Status::Ok();
}

Status DistTrainer::PullBatchRows(BatchScratch* sc) {
  const size_t num_shards = clients_.size();
  const bool transfers = replica_->use_relation_module();
  const bool hyperplanes =
      replica_->scorer() == core::TripleScorerKind::kTransH;

  sc->shard_ents.resize(num_shards);
  sc->shard_rels.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    sc->shard_ents[s].clear();
    sc->shard_rels[s].clear();
  }
  for (uint32_t e : sc->ent_ids) sc->shard_ents[e % num_shards].push_back(e);
  for (uint32_t r : sc->rel_ids) sc->shard_rels[r % num_shards].push_back(r);

  sc->pull_futures.clear();
  for (size_t s = 0; s < num_shards; ++s) {
    std::vector<net::PullSection> sections;
    if (!sc->shard_ents[s].empty()) {
      sections.push_back({net::ParamTable::kEntity, sc->shard_ents[s]});
    }
    if (!sc->shard_rels[s].empty()) {
      sections.push_back({net::ParamTable::kRelation, sc->shard_rels[s]});
      if (transfers) {
        sections.push_back({net::ParamTable::kTransfer, sc->shard_rels[s]});
      }
      if (hyperplanes) {
        sections.push_back(
            {net::ParamTable::kHyperplane, sc->shard_rels[s]});
      }
    }
    if (sections.empty()) continue;
    const uint64_t cid = clients_[s]->NextCorrelationId();
    sc->pull_futures.push_back(
        clients_[s]->CallFrame(cid, net::EncodePullRows(cid, sections)));
    ++pulls_;
  }

  for (auto& fut : sc->pull_futures) {
    StatusOr<net::Frame> reply =
        AwaitType(fut, net::FrameType::kRows, options_.io_timeout_ms);
    if (!reply.ok()) return reply.status();
    sc->rows.clear();
    PKGM_RETURN_IF_ERROR(net::DecodeRows(reply.value().payload, &sc->rows));
    PKGM_RETURN_IF_ERROR(ApplyRowsSections(sc->rows));
  }
  return Status::Ok();
}

Status DistTrainer::EpochBarrier(uint32_t epoch) {
  std::vector<std::future<StatusOr<net::Frame>>> futures;
  futures.reserve(clients_.size());
  for (auto& client : clients_) {
    const uint64_t cid = client->NextCorrelationId();
    futures.push_back(client->CallFrame(
        cid, net::EncodeBarrier(cid, epoch,
                                options_.num_worker_processes)));
  }
  for (auto& fut : futures) {
    StatusOr<net::Frame> reply =
        AwaitType(fut, net::FrameType::kBarrierReply, options_.io_timeout_ms);
    if (!reply.ok()) return reply.status();
    uint32_t got_epoch = 0, arrived = 0;
    PKGM_RETURN_IF_ERROR(
        net::DecodeBarrierReply(reply.value().payload, &got_epoch, &arrived));
    if (got_epoch != epoch) {
      return Status::IoError("barrier reply for the wrong epoch");
    }
  }
  return Status::Ok();
}

StatusOr<core::EpochStats> DistTrainer::RunEpoch() {
  if (replica_ == nullptr) {
    return Status::FailedPrecondition("Connect() has not succeeded");
  }
  Stopwatch sw;
  const uint32_t epoch = epoch_index_++;

  std::vector<kg::Triple> triples;
  store_->AppendTriples(&triples);
  epoch_rng_.Shuffle(&triples);

  core::EpochStats stats;
  if (triples.empty()) return stats;

  const size_t n = triples.size();
  const size_t batch_size = options_.batch_size;
  const size_t num_batches = (n + batch_size - 1) / batch_size;
  const uint32_t workers = options_.num_workers;
  const uint32_t procs = options_.num_worker_processes;
  const uint32_t proc = options_.worker_process_index;
  const size_t num_shards = clients_.size();

  std::vector<double> batch_hinge(num_batches, 0.0);
  std::vector<uint64_t> batch_active(num_batches, 0);
  std::vector<uint64_t> batch_pairs(num_batches, 0);

  const size_t pool_size = 2 * static_cast<size_t>(workers);
  std::vector<std::unique_ptr<PairBatch>> pool;
  BatchQueue work_q(pool_size), free_q(pool_size);
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(std::make_unique<PairBatch>());
    free_q.Push(pool.back().get());
  }

  // The producer mirrors ShardedTrainer: one forked RNG drawing negatives
  // in batch order. Other processes' batches are skipped without drawing,
  // so each process's pair stream is deterministic on its own; with one
  // process the stream is identical to the in-process trainer's.
  Rng producer_rng = epoch_rng_.Fork();
  std::thread producer([&] {
    for (size_t b = 0; b < num_batches; ++b) {
      if (b % procs != proc) continue;
      PairBatch* pb = nullptr;
      if (!free_q.Pop(&pb)) return;
      const size_t begin = b * batch_size;
      const size_t end = std::min(n, begin + batch_size);
      pb->index = b;
      pb->pos.assign(triples.begin() + begin, triples.begin() + end);
      pb->neg.resize(pb->pos.size());
      sampler_->SampleBatch(pb->pos.data(), pb->pos.size(), &producer_rng,
                            pb->neg.data());
      if (!work_q.Push(pb)) return;
    }
    work_q.Close();
  });

  std::vector<Status> worker_status(workers, Status::Ok());
  auto worker_fn = [&](uint32_t w) {
    core::GradArena arena;
    core::HingeWorkspace ws;
    BatchScratch scratch;
    std::string blob;
    // Per-shard ack queue: the staleness bound. An entry is an
    // unacknowledged push; front() is always the oldest.
    std::vector<std::deque<std::future<StatusOr<net::Frame>>>> inflight(
        num_shards);

    const auto wait_ack =
        [&](std::future<StatusOr<net::Frame>>& fut) -> Status {
      StatusOr<net::Frame> reply =
          AwaitType(fut, net::FrameType::kPushAck, options_.io_timeout_ms);
      if (!reply.ok()) return reply.status();
      uint32_t rows_applied = 0;
      return net::DecodePushAck(reply.value().payload, &rows_applied);
    };

    const auto run_batch = [&](PairBatch* pb) -> Status {
      // 1. Pull every row this batch will read, fresh from its shard.
      scratch.ent_ids.clear();
      scratch.rel_ids.clear();
      for (size_t i = 0; i < pb->pos.size(); ++i) {
        const kg::Triple& p = pb->pos[i];
        const kg::Triple& g = pb->neg[i].triple;
        scratch.ent_ids.push_back(p.head);
        scratch.ent_ids.push_back(p.tail);
        scratch.ent_ids.push_back(g.head);
        scratch.ent_ids.push_back(g.tail);
        scratch.rel_ids.push_back(p.relation);
        scratch.rel_ids.push_back(g.relation);
      }
      std::sort(scratch.ent_ids.begin(), scratch.ent_ids.end());
      scratch.ent_ids.erase(
          std::unique(scratch.ent_ids.begin(), scratch.ent_ids.end()),
          scratch.ent_ids.end());
      std::sort(scratch.rel_ids.begin(), scratch.rel_ids.end());
      scratch.rel_ids.erase(
          std::unique(scratch.rel_ids.begin(), scratch.rel_ids.end()),
          scratch.rel_ids.end());
      PKGM_RETURN_IF_ERROR(PullBatchRows(&scratch));

      // 2. Fused forward/backward on the replica.
      double hinge_sum = 0.0;
      uint64_t active = 0;
      for (size_t i = 0; i < pb->pos.size(); ++i) {
        const float hinge =
            core::FusedHingeGradients(*replica_, pb->pos[i],
                                      pb->neg[i].triple, options_.margin,
                                      kernels_, &ws, &arena);
        if (hinge > 0.0f) {
          ++active;
          hinge_sum += hinge;
        }
      }

      // 3. Push the arena shard-sliced, bounded acks outstanding.
      if (!arena.empty()) {
        const float scale = 1.0f / static_cast<float>(pb->pos.size());
        for (size_t s = 0; s < num_shards; ++s) {
          blob.clear();
          if (core::SerializeGradArena(
                  arena, static_cast<uint32_t>(s),
                  static_cast<uint32_t>(num_shards), &blob) == 0) {
            continue;
          }
          const uint64_t cid = clients_[s]->NextCorrelationId();
          auto fut = clients_[s]->CallFrame(
              cid, net::EncodePushGrads(cid, scale, epoch, blob));
          ++pushes_;
          if (options_.max_inflight_pushes == 0) {
            PKGM_RETURN_IF_ERROR(wait_ack(fut));
          } else {
            inflight[s].push_back(std::move(fut));
            if (inflight[s].size() > options_.max_inflight_pushes) {
              Status st = wait_ack(inflight[s].front());
              inflight[s].pop_front();
              PKGM_RETURN_IF_ERROR(st);
            }
          }
        }
        rows_pushed_.fetch_add(arena.entities().size() +
                               arena.relations().size() +
                               arena.transfers().size() +
                               arena.hyperplanes().size());
        arena.Clear();
      }

      batch_hinge[pb->index] = hinge_sum;
      batch_active[pb->index] = active;
      batch_pairs[pb->index] = pb->pos.size();
      return Status::Ok();
    };

    PairBatch* pb = nullptr;
    while (work_q.Pop(&pb)) {
      // A failed worker keeps popping and recycling (without processing)
      // so the producer never starves for free batches.
      if (worker_status[w].ok()) {
        Status st = run_batch(pb);
        if (!st.ok()) worker_status[w] = st;
      }
      free_q.Push(pb);
    }
    // Drain: every push must be acknowledged before the epoch barrier
    // (an ack means the shard applied it).
    for (auto& q : inflight) {
      while (!q.empty()) {
        Status st = wait_ack(q.front());
        q.pop_front();
        if (!st.ok() && worker_status[w].ok()) worker_status[w] = st;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();
  free_q.Close();
  work_q.Close();
  producer.join();

  for (const Status& st : worker_status) {
    if (!st.ok()) return st;
  }

  // All of this process's pushes are acked; the barrier holds until every
  // other process's are too, so the next epoch (and any post-epoch pull)
  // reads a fully merged model.
  PKGM_RETURN_IF_ERROR(EpochBarrier(epoch));

  double hinge_sum = 0.0;
  for (size_t b = 0; b < num_batches; ++b) {
    hinge_sum += batch_hinge[b];
    stats.active_pairs += batch_active[b];
    stats.total_pairs += batch_pairs[b];
  }
  stats.mean_hinge =
      stats.total_pairs > 0
          ? hinge_sum / static_cast<double>(stats.total_pairs)
          : 0.0;
  stats.seconds = sw.ElapsedSeconds();
  stats.triples_per_second =
      stats.seconds > 0
          ? static_cast<double>(stats.total_pairs) / stats.seconds
          : 0.0;
  return stats;
}

StatusOr<core::EpochStats> DistTrainer::Train(uint32_t n) {
  core::EpochStats last;
  for (uint32_t i = 0; i < n; ++i) {
    StatusOr<core::EpochStats> stats = RunEpoch();
    if (!stats.ok()) return stats;
    last = stats.value();
  }
  return last;
}

Status DistTrainer::PullFullModel() {
  if (replica_ == nullptr) {
    return Status::FailedPrecondition("Connect() has not succeeded");
  }
  const size_t num_shards = clients_.size();
  struct TableSpec {
    net::ParamTable table;
    uint32_t num_keys;
    uint32_t row_size;
  };
  std::vector<TableSpec> specs;
  const uint32_t dim = replica_->dim();
  specs.push_back({net::ParamTable::kEntity, replica_->num_entities(), dim});
  specs.push_back(
      {net::ParamTable::kRelation, replica_->num_relations(), dim});
  if (replica_->use_relation_module()) {
    specs.push_back(
        {net::ParamTable::kTransfer, replica_->num_relations(), dim * dim});
  }
  if (replica_->scorer() == core::TripleScorerKind::kTransH) {
    specs.push_back(
        {net::ParamTable::kHyperplane, replica_->num_relations(), dim});
  }

  std::vector<net::RowsSection> rows;
  for (size_t s = 0; s < num_shards; ++s) {
    for (const TableSpec& spec : specs) {
      // ~1 MiB of row payload per pull, well under the 4 MiB frame cap.
      const size_t rows_per_chunk = std::max<size_t>(
          1, (1u << 20) / (static_cast<size_t>(spec.row_size) * 4 + 4));
      net::PullSection section;
      section.table = spec.table;
      for (uint32_t id = static_cast<uint32_t>(s); id < spec.num_keys;
           id += static_cast<uint32_t>(num_shards)) {
        section.ids.push_back(id);
        if (section.ids.size() < rows_per_chunk && id + num_shards <
                                                        spec.num_keys) {
          continue;
        }
        const uint64_t cid = clients_[s]->NextCorrelationId();
        auto fut = clients_[s]->CallFrame(
            cid, net::EncodePullRows(cid, {section}));
        ++pulls_;
        StatusOr<net::Frame> reply =
            AwaitType(fut, net::FrameType::kRows, options_.io_timeout_ms);
        if (!reply.ok()) return reply.status();
        rows.clear();
        PKGM_RETURN_IF_ERROR(
            net::DecodeRows(reply.value().payload, &rows));
        PKGM_RETURN_IF_ERROR(ApplyRowsSections(rows));
        section.ids.clear();
      }
    }
  }
  return Status::Ok();
}

double DistTrainer::EvaluateMeanHinge() {
  PKGM_CHECK(replica_ != nullptr);
  std::vector<kg::Triple> triples;
  store_->AppendTriples(&triples);
  if (triples.empty()) return 0.0;
  core::HingeWorkspace ws;
  double sum = 0.0;
  for (const kg::Triple& pos : triples) {
    core::NegativeSample neg = sampler_->Sample(pos, &eval_rng_);
    sum += core::FusedHingeGradients(*replica_, pos, neg.triple,
                                     options_.margin, kernels_, &ws,
                                     nullptr);
  }
  return sum / static_cast<double>(triples.size());
}

}  // namespace pkgm::dist
