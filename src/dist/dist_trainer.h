#ifndef PKGM_DIST_DIST_TRAINER_H_
#define PKGM_DIST_DIST_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/negative_sampler.h"
#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "kg/triple_source.h"
#include "net/net_client.h"
#include "net/wire.h"
#include "tensor/simd/kernel_dispatch.h"
#include "util/rng.h"
#include "util/status.h"

namespace pkgm::dist {

struct DistTrainerOptions {
  /// One "host:port" per parameter-server shard, in shard order: the
  /// endpoint at position s must announce shard_index == s.
  std::vector<std::string> shard_endpoints;
  /// Local hogwild worker threads sharing this process's replica.
  uint32_t num_workers = 2;
  /// Multi-process data parallelism: this process trains the batches with
  /// index % num_worker_processes == worker_process_index of every epoch's
  /// (identically seeded) shuffle, and the shards hold each epoch barrier
  /// until all processes arrive.
  uint32_t worker_process_index = 0;
  uint32_t num_worker_processes = 1;
  uint32_t batch_size = 512;
  /// Cross-checked against every shard's announcement; the shards apply
  /// the learning rate, the workers only ship raw gradients.
  float learning_rate = 0.02f;
  float margin = 2.0f;
  core::NegativeSampler::Options negative;
  uint64_t seed = 17;
  /// Staleness bound: at most this many unacknowledged pushes per shard
  /// per worker before the worker blocks on the oldest ack. 0 = fully
  /// synchronous (each push waits for its ack before the next pull), the
  /// mode whose 1-worker trajectory is bit-identical to the in-process
  /// trainer.
  uint32_t max_inflight_pushes = 4;
  /// Per remote call (pull / ack / info); barriers wait forever is wrong,
  /// so they use this bound too — size it to cover the slowest peer's
  /// epoch tail.
  int io_timeout_ms = 60000;
};

/// The worker half of distributed parameter-server training: connects to
/// the shard daemons, keeps a full local replica (bit-identical init by
/// shared seed, refreshed row-by-row through pulls), and runs the same
/// pipelined hogwild epoch as the in-process ShardedTrainer — producer
/// thread drawing negatives in batch order, workers computing fused SIMD
/// hinge gradients — except that each batch's touched rows are pulled from
/// their shards first, and the batch's GradArena is pushed back shard-
/// sliced with a bounded number of acks outstanding (the staleness bound).
///
/// Determinism: the shuffle / negative stream mirrors ShardedTrainer for a
/// fixed seed, and per-batch stats land in batch-indexed slots merged in
/// batch order, so epoch telemetry is reproducible regardless of worker
/// scheduling. With one worker and max_inflight_pushes == 0 the whole
/// trajectory is bit-exact vs the in-process trainer (see dist_test.cc).
class DistTrainer {
 public:
  /// `store` must outlive the trainer.
  DistTrainer(const kg::TripleSource* store, DistTrainerOptions options);
  ~DistTrainer();

  DistTrainer(const DistTrainer&) = delete;
  DistTrainer& operator=(const DistTrainer&) = delete;

  /// Connects to every shard, validates the announcements (position,
  /// shard count, identical model shape / seed / optimizer / learning
  /// rate across shards and vs the local options) and builds the replica.
  Status Connect();

  /// One distributed epoch over this process's share of the batches,
  /// ending with an epoch barrier across all worker processes.
  StatusOr<core::EpochStats> RunEpoch();

  /// Runs n epochs, returning the last epoch's stats.
  StatusOr<core::EpochStats> Train(uint32_t n);

  /// Refreshes every replica row from its shard (chunked pulls), so the
  /// replica can be checkpointed / exported / evaluated.
  Status PullFullModel();

  /// Mean hinge over the store's triples on the current replica, drawing
  /// negatives from the same dedicated validation stream as
  /// Trainer::EvaluateMeanHinge (identical replica => identical number).
  double EvaluateMeanHinge();

  /// Valid after Connect().
  core::PkgmModel* replica() { return replica_.get(); }
  const net::ShardInfo& shard_info() const { return info_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(options_.shard_endpoints.size());
  }

  /// Wire-traffic counters for the bench harness.
  uint64_t pulls() const { return pulls_.load(); }
  uint64_t rows_pulled() const { return rows_pulled_.load(); }
  uint64_t pushes() const { return pushes_.load(); }
  uint64_t rows_pushed() const { return rows_pushed_.load(); }

 private:
  struct BatchScratch;

  /// Pulls the rows named by `ent_ids` / `rel_ids` (sorted unique, split
  /// per shard inside) into the replica.
  Status PullBatchRows(BatchScratch* scratch);
  /// Writes one decoded kRows payload into the replica.
  Status ApplyRowsSections(const std::vector<net::RowsSection>& sections);
  /// Sends the epoch barrier to every shard and waits for the releases.
  Status EpochBarrier(uint32_t epoch);

  const kg::TripleSource* store_;
  const DistTrainerOptions options_;
  const simd::KernelTable& kernels_;
  Rng epoch_rng_;
  Rng eval_rng_;
  uint32_t epoch_index_ = 0;

  std::vector<std::unique_ptr<net::NetClient>> clients_;  // one per shard
  net::ShardInfo info_;
  std::unique_ptr<core::PkgmModel> replica_;
  std::unique_ptr<core::NegativeSampler> sampler_;

  std::atomic<uint64_t> pulls_{0};
  std::atomic<uint64_t> rows_pulled_{0};
  std::atomic<uint64_t> pushes_{0};
  std::atomic<uint64_t> rows_pushed_{0};
};

}  // namespace pkgm::dist

#endif  // PKGM_DIST_DIST_TRAINER_H_
