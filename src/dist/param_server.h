#ifndef PKGM_DIST_PARAM_SERVER_H_
#define PKGM_DIST_PARAM_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/gradients.h"
#include "core/pkgm_model.h"
#include "core/trainer.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "tensor/simd/kernel_dispatch.h"
#include "tensor/vec.h"

namespace pkgm::dist {

/// Configuration of one parameter-server shard. Every shard of a
/// deployment must be constructed with the same `model` options (same
/// seed, so initialization is bit-identical everywhere) and the same
/// optimizer settings; workers cross-check via kShardInfo before training.
struct ParamServerOptions {
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  /// Full model shape. The shard allocates the whole table (simple, and
  /// the replica-everywhere init is what makes pull-before-first-touch
  /// unnecessary) but serves and updates only the rows it owns.
  core::PkgmModelOptions model;
  core::OptimizerKind optimizer = core::OptimizerKind::kSgd;
  float learning_rate = 0.02f;
  float adam_beta1 = 0.9f;
  float adam_beta2 = 0.999f;
  float adam_epsilon = 1e-8f;
  /// Project entity embeddings back onto the unit L2 ball after each
  /// applied push (mirrors the in-process trainers' constraint).
  bool normalize_entities = true;
};

/// One embedding shard behind the wire protocol — the server half of the
/// distributed parameter-server training subsystem (paper §III-A2: the
/// production system trains on 50 parameter servers + 200 workers).
///
/// Ownership: entity rows are keyed by entity id, relation / transfer /
/// hyperplane rows by relation id; shard s owns key k iff
/// k % num_shards == s. Pulls and pushes addressing unowned or
/// out-of-range rows are refused with kInvalidItem.
///
/// Concurrency model (the wire-level hogwild regime):
///   * kPullRows reads rows without locking — concurrent pushes make
///     pulled rows slightly stale, exactly like the in-process
///     ShardedTrainer's unlocked parameter reads.
///   * kPushGrads applies under one apply mutex, so updates from
///     concurrent workers serialize per shard and the optimizer state
///     (Adam moments, step count) stays consistent.
///   * kBarrier replies are parked until every expected worker arrives at
///     the same epoch. Parked responds count as outstanding frames in the
///     NetServer, so AbortBarriers() must run before NetServer::Stop().
///
/// The update arithmetic mirrors the in-process trainers exactly: SGD is
/// axpy(-lr * scale) per row (+ renormalization), Adam is the fused
/// adam_row kernel with bias correction from this shard's push count — so
/// one worker pushing synchronously reproduces the single-process
/// trajectory bit-for-bit (see dist_test.cc).
class ParamServer : public net::FrameHandler {
 public:
  explicit ParamServer(const ParamServerOptions& options);

  /// FrameHandler: routes kShardInfo / kPullRows / kPushGrads / kBarrier.
  bool HandleFrame(const net::Frame& frame, Respond respond) override;
  std::string StatsJson() override;

  /// Fails all parked barrier waiters with kError/kRejected and refuses
  /// subsequent kBarrier frames. Call before NetServer::Stop(), otherwise
  /// the drain waits on the parked responds until its timeout.
  void AbortBarriers();

  /// The shard announcement workers validate against (kShardInfoReply).
  net::ShardInfo Info() const;

  const core::PkgmModel& model() const { return model_; }
  core::PkgmModel* mutable_model() { return &model_; }
  uint32_t shard_index() const { return options_.shard_index; }
  uint32_t num_shards() const { return options_.num_shards; }

  /// Pushes applied (= the Adam bias-correction step count).
  uint64_t step() const { return step_.load(); }

 private:
  bool OwnsKey(uint32_t key) const {
    return key % options_.num_shards == options_.shard_index;
  }
  /// Row length of `table`, or 0 when the table does not exist under the
  /// current model options (transfer without the relation module,
  /// hyperplane without TransH).
  uint32_t RowSizeOf(net::ParamTable table) const;
  /// Table row count keyed by the table's id space (entities or relations).
  uint32_t NumKeysOf(net::ParamTable table) const;
  const float* RowPtr(net::ParamTable table, uint32_t id) const;

  /// Each returns the fully encoded response frame (kRows / kPushAck /
  /// kError) for the request.
  std::string HandlePull(const net::Frame& frame);
  std::string HandlePush(const net::Frame& frame);
  /// Parks or completes the respond; never returns a frame.
  void HandleBarrier(const net::Frame& frame, Respond respond);

  const ParamServerOptions options_;
  core::PkgmModel model_;
  const simd::KernelTable& kernels_;

  /// Serializes pushes: optimizer state + scratch arena live under it.
  std::mutex apply_mu_;
  core::GradArena scratch_;
  Mat m_entities_, v_entities_;
  Mat m_relations_, v_relations_;
  Mat m_transfers_, v_transfers_;
  Mat m_hyperplanes_, v_hyperplanes_;
  std::atomic<uint64_t> step_{0};

  struct BarrierState {
    uint32_t expected = 0;
    std::vector<std::pair<uint64_t, Respond>> waiters;  // (correlation, cb)
  };
  std::mutex barrier_mu_;
  bool accepting_barriers_ = true;
  std::map<uint32_t, BarrierState> barriers_;  // keyed by epoch

  std::atomic<uint64_t> pulls_{0};
  std::atomic<uint64_t> rows_pulled_{0};
  std::atomic<uint64_t> pushes_{0};
  std::atomic<uint64_t> rows_applied_{0};
  std::atomic<uint64_t> rejects_{0};
  std::atomic<uint64_t> barriers_released_{0};
};

}  // namespace pkgm::dist

#endif  // PKGM_DIST_PARAM_SERVER_H_
