#ifndef PKGM_STORE_STORE_FORMAT_H_
#define PKGM_STORE_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace pkgm::store {

/// On-disk element type of the embedding tables.
///   kFloat32: rows are stored verbatim (row-major fp32).
///   kInt8:    symmetric per-row quantization — each table section starts
///             with one fp32 scale per row, followed by the int8 rows;
///             value = scale * q with q in [-127, 127], scale = maxabs/127.
///             ~4x smaller than fp32 at cosine similarity >= 0.99 for the
///             condensed service vectors (see bench/bench_store.cc).
enum class StoreDtype : uint32_t { kFloat32 = 0, kInt8 = 1 };

inline const char* StoreDtypeName(StoreDtype dtype) {
  switch (dtype) {
    case StoreDtype::kFloat32: return "fp32";
    case StoreDtype::kInt8: return "int8";
  }
  return "unknown";
}

// "PKGS" — distinct from the PkgmModel checkpoint magic "PKGM", so the two
// formats can never be confused for one another.
constexpr uint32_t kStoreMagic = 0x504b4753u;
constexpr uint32_t kStoreFormatVersion = 1;

/// Every section offset is a multiple of this, so fp32 rows read straight
/// out of the mapping are aligned for vectorized loads.
constexpr uint64_t kStoreSectionAlignment = 64;

/// StoreHeader.flags bits.
constexpr uint32_t kStoreFlagHasRelationModule = 1u << 0;
constexpr uint32_t kStoreFlagHasHyperplanes = 1u << 1;

/// Fixed little-endian header at offset 0 of a .pkgs embedding store.
///
/// Byte layout (also documented in DESIGN.md §9):
///   [ 0,  4) magic "PKGS"            [ 4,  8) format version
///   [ 8, 12) dtype (StoreDtype)      [12, 16) dim d
///   [16, 20) num_entities            [20, 24) num_relations
///   [24, 28) scorer (TripleScorerKind)
///   [28, 32) flags                   [32, 40) model generation
///   [40, 48) entity section offset   [48, 56) relation section offset
///   [56, 64) transfer section offset (0 when absent)
///   [64, 72) hyperplane section offset (0 when absent)
///   [72, 80) total file size         [80, 88) FNV-1a64 payload checksum
///
/// The checksum covers every byte after the header (sections + alignment
/// padding), so any bit flip in the parameter data is detected at load.
struct StoreHeader {
  uint32_t magic = kStoreMagic;
  uint32_t version = kStoreFormatVersion;
  uint32_t dtype = 0;
  uint32_t dim = 0;
  uint32_t num_entities = 0;
  uint32_t num_relations = 0;
  uint32_t scorer = 0;
  uint32_t flags = 0;
  uint64_t generation = 0;
  uint64_t entity_offset = 0;
  uint64_t relation_offset = 0;
  uint64_t transfer_offset = 0;
  uint64_t hyperplane_offset = 0;
  uint64_t file_size = 0;
  uint64_t payload_checksum = 0;

  bool has_relation_module() const {
    return (flags & kStoreFlagHasRelationModule) != 0;
  }
  bool has_hyperplanes() const {
    return (flags & kStoreFlagHasHyperplanes) != 0;
  }
};
static_assert(sizeof(StoreHeader) == 88, "StoreHeader must be packed to 88B");

inline uint64_t AlignUpToSection(uint64_t offset) {
  return (offset + kStoreSectionAlignment - 1) & ~(kStoreSectionAlignment - 1);
}

/// Bytes one table section occupies (before alignment padding): int8
/// sections carry a per-row fp32 scale array ahead of the quantized rows.
inline uint64_t SectionBytes(StoreDtype dtype, uint64_t rows, uint64_t cols) {
  if (rows == 0) return 0;
  switch (dtype) {
    case StoreDtype::kFloat32: return rows * cols * sizeof(float);
    case StoreDtype::kInt8: return rows * sizeof(float) + rows * cols;
  }
  return 0;
}

/// Incremental FNV-1a 64 over raw bytes (the store's payload checksum).
inline uint64_t Fnv1a64(const void* data, size_t n,
                        uint64_t state = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ull;
  }
  return state;
}

}  // namespace pkgm::store

#endif  // PKGM_STORE_STORE_FORMAT_H_
