#ifndef PKGM_STORE_MMAP_EMBEDDING_STORE_H_
#define PKGM_STORE_MMAP_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>

#include "core/embedding_source.h"
#include "store/store_format.h"
#include "util/status.h"

namespace pkgm::store {

struct MmapStoreOptions {
  /// Verify the FNV-1a payload checksum at open. This touches every page
  /// once (streaming read), so it is the safe default for checkpointed
  /// models; disable for very large stores where lazily faulting pages in
  /// is the point.
  bool verify_checksum = true;
};

/// Read-only memory-mapped view of a .pkgs embedding store.
///
/// Implements core::EmbeddingSource: fp32 stores hand out zero-copy row
/// pointers straight into the mapping; int8 stores dequantize rows into
/// the caller's scratch (per-row symmetric scales). Opening validates the
/// header (magic, version, dtype, scorer, section bounds against the real
/// file size) before any row is touched, and optionally the payload
/// checksum, so a truncated or bit-flipped store fails with a clear
/// Status instead of serving garbage.
///
/// The mapping is immutable and safe for any number of concurrent reader
/// threads; generations are swapped by opening a new store and publishing
/// it through ModelRegistry, never by mutating a live one.
class MmapEmbeddingStore : public core::EmbeddingSource {
 public:
  static StatusOr<MmapEmbeddingStore> Open(const std::string& path,
                                           MmapStoreOptions options = {});

  ~MmapEmbeddingStore() override;
  MmapEmbeddingStore(MmapEmbeddingStore&& other) noexcept;
  MmapEmbeddingStore& operator=(MmapEmbeddingStore&& other) noexcept;
  MmapEmbeddingStore(const MmapEmbeddingStore&) = delete;
  MmapEmbeddingStore& operator=(const MmapEmbeddingStore&) = delete;

  // EmbeddingSource.
  uint32_t num_entities() const override { return header_.num_entities; }
  uint32_t num_relations() const override { return header_.num_relations; }
  uint32_t dim() const override { return header_.dim; }
  core::TripleScorerKind scorer() const override {
    return static_cast<core::TripleScorerKind>(header_.scorer);
  }
  bool has_relation_module() const override {
    return header_.has_relation_module();
  }
  const float* EntityRow(uint32_t e, float* scratch) const override;
  const float* EntityRowsBlock(uint32_t first, uint32_t count,
                               float* scratch) const override;
  const float* RelationRow(uint32_t r, float* scratch) const override;
  const float* TransferRow(uint32_t r, float* scratch) const override;
  const float* HyperplaneRow(uint32_t r, float* scratch) const override;

  // Store metadata.
  StoreDtype dtype() const { return static_cast<StoreDtype>(header_.dtype); }
  uint64_t generation() const { return header_.generation; }
  uint64_t file_size() const { return header_.file_size; }
  const std::string& path() const { return path_; }
  const StoreHeader& header() const { return header_; }

  /// Recomputes the payload checksum against the header (reads the whole
  /// mapping). Used by `pkgm_tool inspect-store`.
  Status VerifyChecksum() const;

 private:
  MmapEmbeddingStore() = default;

  /// Returns row `row` of the section at `offset` (rows x cols), either
  /// zero-copy (fp32) or dequantized into `scratch` (int8).
  const float* Row(uint64_t offset, uint32_t rows, uint32_t row, uint64_t cols,
                   float* scratch) const;

  void Release() noexcept;

  StoreHeader header_;
  std::string path_;
  const unsigned char* base_ = nullptr;  // whole-file mapping
  uint64_t mapped_bytes_ = 0;
};

}  // namespace pkgm::store

#endif  // PKGM_STORE_MMAP_EMBEDDING_STORE_H_
