#include "store/embedding_store_writer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/string_util.h"

namespace pkgm::store {
namespace {

/// Buffered writer that feeds the payload checksum as bytes stream out.
class ChecksummedFile {
 public:
  explicit ChecksummedFile(std::FILE* f) : f_(f) {}

  Status Write(const void* data, size_t bytes) {
    if (std::fwrite(data, 1, bytes, f_) != bytes) {
      return Status::IoError("short write to embedding store");
    }
    checksum_ = Fnv1a64(data, bytes, checksum_);
    written_ += bytes;
    return Status::Ok();
  }

  /// Zero-pads up to `offset` (absolute payload position past the header).
  Status PadTo(uint64_t offset) {
    static constexpr char kZeros[kStoreSectionAlignment] = {};
    while (written_ + sizeof(StoreHeader) < offset) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(sizeof(kZeros),
                             offset - sizeof(StoreHeader) - written_));
      PKGM_RETURN_IF_ERROR(Write(kZeros, n));
    }
    return Status::Ok();
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  uint64_t checksum_ = 0xcbf29ce484222325ull;
  uint64_t written_ = 0;  // payload bytes (header excluded)
};

}  // namespace

float QuantizeRowInt8(const float* row, uint32_t n, int8_t* out) {
  float maxabs = 0.0f;
  for (uint32_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(row[i]));
  }
  if (maxabs == 0.0f) {
    for (uint32_t i = 0; i < n; ++i) out[i] = 0;
    return 0.0f;
  }
  const float scale = maxabs / 127.0f;
  const float inv = 127.0f / maxabs;
  for (uint32_t i = 0; i < n; ++i) {
    const float q = std::nearbyint(row[i] * inv);
    out[i] = static_cast<int8_t>(q < -127.0f ? -127.0f
                                             : (q > 127.0f ? 127.0f : q));
  }
  return scale;
}

namespace {

/// Streams one table (rows x cols) through `file` starting at the section
/// offset recorded in the header. Row accessor signature matches the
/// EmbeddingSource row methods.
template <typename RowFn>
Status WriteSection(ChecksummedFile* file, StoreDtype dtype, uint64_t offset,
                    uint32_t rows, uint32_t cols, RowFn row_fn) {
  if (rows == 0) return Status::Ok();
  PKGM_RETURN_IF_ERROR(file->PadTo(offset));
  std::vector<float> scratch(cols);
  if (dtype == StoreDtype::kFloat32) {
    for (uint32_t r = 0; r < rows; ++r) {
      const float* row = row_fn(r, scratch.data());
      PKGM_RETURN_IF_ERROR(file->Write(row, cols * sizeof(float)));
    }
    return Status::Ok();
  }
  // int8: the per-row scale array precedes the quantized rows, so both are
  // computed in a first pass over the rows... but a two-pass layout would
  // read every row twice through a possibly-dequantizing source. Instead
  // buffer the quantized rows (1 byte/element) and write scales first.
  std::vector<int8_t> quantized(static_cast<size_t>(rows) * cols);
  std::vector<float> scales(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    const float* row = row_fn(r, scratch.data());
    scales[r] = QuantizeRowInt8(row, cols, quantized.data() +
                                               static_cast<size_t>(r) * cols);
  }
  PKGM_RETURN_IF_ERROR(file->Write(scales.data(), scales.size() * sizeof(float)));
  return file->Write(quantized.data(), quantized.size());
}

}  // namespace

Status EmbeddingStoreWriter::Write(const core::EmbeddingSource& source,
                                   const std::string& path) const {
  const uint32_t d = source.dim();
  const uint32_t num_entities = source.num_entities();
  const uint32_t num_relations = source.num_relations();
  if (d == 0 || num_entities == 0 || num_relations == 0) {
    return Status::InvalidArgument("refusing to export an empty model");
  }

  StoreHeader header;
  header.dtype = static_cast<uint32_t>(options_.dtype);
  header.dim = d;
  header.num_entities = num_entities;
  header.num_relations = num_relations;
  header.scorer = static_cast<uint32_t>(source.scorer());
  header.generation = options_.generation;
  if (source.has_relation_module()) header.flags |= kStoreFlagHasRelationModule;
  if (source.has_hyperplanes()) header.flags |= kStoreFlagHasHyperplanes;

  // Lay the sections out back to back, 64-byte aligned.
  uint64_t offset = AlignUpToSection(sizeof(StoreHeader));
  header.entity_offset = offset;
  offset = AlignUpToSection(
      offset + SectionBytes(options_.dtype, num_entities, d));
  header.relation_offset = offset;
  offset = AlignUpToSection(
      offset + SectionBytes(options_.dtype, num_relations, d));
  if (source.has_relation_module()) {
    header.transfer_offset = offset;
    offset = AlignUpToSection(
        offset + SectionBytes(options_.dtype, num_relations,
                              static_cast<uint64_t>(d) * d));
  }
  if (source.has_hyperplanes()) {
    header.hyperplane_offset = offset;
    offset = AlignUpToSection(
        offset + SectionBytes(options_.dtype, num_relations, d));
  }
  header.file_size = offset;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  // Placeholder header first; rewritten with the final checksum below.
  Status s = Status::Ok();
  if (std::fwrite(&header, 1, sizeof(header), f) != sizeof(header)) {
    s = Status::IoError("short write to embedding store");
  }

  ChecksummedFile out(f);
  const StoreDtype dtype = options_.dtype;
  if (s.ok()) {
    s = WriteSection(&out, dtype, header.entity_offset, num_entities, d,
                     [&](uint32_t r, float* scratch) {
                       return source.EntityRow(r, scratch);
                     });
  }
  if (s.ok()) {
    s = WriteSection(&out, dtype, header.relation_offset, num_relations, d,
                     [&](uint32_t r, float* scratch) {
                       return source.RelationRow(r, scratch);
                     });
  }
  if (s.ok() && source.has_relation_module()) {
    s = WriteSection(&out, dtype, header.transfer_offset, num_relations, d * d,
                     [&](uint32_t r, float* scratch) {
                       return source.TransferRow(r, scratch);
                     });
  }
  if (s.ok() && source.has_hyperplanes()) {
    s = WriteSection(&out, dtype, header.hyperplane_offset, num_relations, d,
                     [&](uint32_t r, float* scratch) {
                       return source.HyperplaneRow(r, scratch);
                     });
  }
  if (s.ok()) s = out.PadTo(header.file_size);

  if (s.ok()) {
    header.payload_checksum = out.checksum();
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&header, 1, sizeof(header), f) != sizeof(header)) {
      s = Status::IoError("cannot finalize embedding store header");
    }
  }
  if (std::fclose(f) != 0 && s.ok()) {
    s = Status::IoError(StrFormat("close failed for %s", path.c_str()));
  }
  return s;
}

}  // namespace pkgm::store
