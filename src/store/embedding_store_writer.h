#ifndef PKGM_STORE_EMBEDDING_STORE_WRITER_H_
#define PKGM_STORE_EMBEDDING_STORE_WRITER_H_

#include <cstdint>
#include <string>

#include "core/embedding_source.h"
#include "store/store_format.h"
#include "util/status.h"

namespace pkgm::store {

struct StoreWriterOptions {
  /// On-disk element type. kInt8 applies symmetric per-row quantization to
  /// every table (entities, relations, transfers, hyperplanes).
  StoreDtype dtype = StoreDtype::kFloat32;
  /// Model generation stamped into the header; ModelRegistry publishes
  /// monotonically increasing generations to swap stores under traffic.
  uint64_t generation = 1;
};

/// Exports any EmbeddingSource — a freshly trained PkgmModel or an already
/// open MmapEmbeddingStore (which is how `pkgm_tool quantize-store`
/// re-encodes fp32 -> int8) — into the versioned .pkgs store format.
///
/// The file is written section-streaming (one row materialized at a time),
/// so exporting never needs a second copy of the tables in memory; the
/// payload checksum is accumulated along the way and patched into the
/// header at the end.
class EmbeddingStoreWriter {
 public:
  explicit EmbeddingStoreWriter(StoreWriterOptions options = {})
      : options_(options) {}

  Status Write(const core::EmbeddingSource& source,
               const std::string& path) const;

  const StoreWriterOptions& options() const { return options_; }

 private:
  StoreWriterOptions options_;
};

/// Symmetric per-row quantization used by the writer (exposed for tests):
/// scale = max|v|/127 (0 for an all-zero row), q_i = round(v_i/scale)
/// clamped to [-127, 127]. Returns the scale.
float QuantizeRowInt8(const float* row, uint32_t n, int8_t* out);

}  // namespace pkgm::store

#endif  // PKGM_STORE_EMBEDDING_STORE_WRITER_H_
