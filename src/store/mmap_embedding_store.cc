#include "store/mmap_embedding_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::store {
namespace {

/// Section bounds check: the whole [offset, offset + bytes) range must sit
/// inside the payload region of the mapped file.
Status CheckSection(const char* name, uint64_t offset, uint64_t bytes,
                    uint64_t file_size) {
  if (offset < sizeof(StoreHeader) || offset % kStoreSectionAlignment != 0 ||
      offset > file_size || bytes > file_size - offset) {
    return Status::Corruption(
        StrFormat("%s section [%llu, +%llu) escapes the %llu-byte store",
                  name, static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(file_size)));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<MmapEmbeddingStore> MmapEmbeddingStore::Open(
    const std::string& path, MmapStoreOptions options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot stat %s", path.c_str()));
  }
  const uint64_t actual_size = static_cast<uint64_t>(st.st_size);
  if (actual_size < sizeof(StoreHeader)) {
    ::close(fd);
    return Status::Corruption(
        StrFormat("%s: %llu bytes is too short for a store header",
                  path.c_str(), static_cast<unsigned long long>(actual_size)));
  }

  void* mapping = ::mmap(nullptr, actual_size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::IoError(StrFormat("mmap failed for %s", path.c_str()));
  }

  MmapEmbeddingStore store;
  store.base_ = static_cast<const unsigned char*>(mapping);
  store.mapped_bytes_ = actual_size;
  store.path_ = path;
  std::memcpy(&store.header_, store.base_, sizeof(StoreHeader));
  const StoreHeader& h = store.header_;

  if (h.magic != kStoreMagic) {
    return Status::Corruption(
        StrFormat("%s is not an embedding store (bad magic)", path.c_str()));
  }
  if (h.version != kStoreFormatVersion) {
    return Status::Corruption(
        StrFormat("unsupported store format version %u", h.version));
  }
  if (h.dtype > static_cast<uint32_t>(StoreDtype::kInt8)) {
    return Status::Corruption(StrFormat("unknown store dtype %u", h.dtype));
  }
  if (h.scorer > static_cast<uint32_t>(core::TripleScorerKind::kTransH)) {
    return Status::Corruption(StrFormat("unknown scorer kind %u", h.scorer));
  }
  if (h.dim == 0 || h.num_entities == 0 || h.num_relations == 0) {
    return Status::Corruption("store header has zero-sized tables");
  }
  if (static_cast<core::TripleScorerKind>(h.scorer) ==
          core::TripleScorerKind::kComplEx &&
      h.dim % 2 != 0) {
    return Status::Corruption("ComplEx store with odd dimension");
  }
  if (h.file_size != actual_size) {
    return Status::Corruption(StrFormat(
        "store %s is truncated: header says %llu bytes, file has %llu",
        path.c_str(), static_cast<unsigned long long>(h.file_size),
        static_cast<unsigned long long>(actual_size)));
  }

  const StoreDtype dtype = store.dtype();
  const uint64_t d = h.dim;
  PKGM_RETURN_IF_ERROR(CheckSection("entity", h.entity_offset,
                                    SectionBytes(dtype, h.num_entities, d),
                                    actual_size));
  PKGM_RETURN_IF_ERROR(CheckSection("relation", h.relation_offset,
                                    SectionBytes(dtype, h.num_relations, d),
                                    actual_size));
  if (h.has_relation_module()) {
    PKGM_RETURN_IF_ERROR(
        CheckSection("transfer", h.transfer_offset,
                     SectionBytes(dtype, h.num_relations, d * d), actual_size));
  }
  if (h.has_hyperplanes()) {
    PKGM_RETURN_IF_ERROR(CheckSection("hyperplane", h.hyperplane_offset,
                                      SectionBytes(dtype, h.num_relations, d),
                                      actual_size));
  }
  if (options.verify_checksum) {
    PKGM_RETURN_IF_ERROR(store.VerifyChecksum());
  }
  return store;
}

Status MmapEmbeddingStore::VerifyChecksum() const {
  const uint64_t computed = Fnv1a64(base_ + sizeof(StoreHeader),
                                    mapped_bytes_ - sizeof(StoreHeader));
  if (computed != header_.payload_checksum) {
    return Status::Corruption(StrFormat(
        "store %s payload checksum mismatch: header %016llx, computed %016llx",
        path_.c_str(),
        static_cast<unsigned long long>(header_.payload_checksum),
        static_cast<unsigned long long>(computed)));
  }
  return Status::Ok();
}

const float* MmapEmbeddingStore::Row(uint64_t offset, uint32_t rows,
                                     uint32_t row, uint64_t cols,
                                     float* scratch) const {
  PKGM_CHECK_LT(row, rows);
  if (dtype() == StoreDtype::kFloat32) {
    return reinterpret_cast<const float*>(base_ + offset) + row * cols;
  }
  // int8: [rows x fp32 scale][rows x cols x int8].
  const float scale =
      reinterpret_cast<const float*>(base_ + offset)[row];
  const auto* q = reinterpret_cast<const int8_t*>(
      base_ + offset + static_cast<uint64_t>(rows) * sizeof(float) +
      row * cols);
  for (uint64_t i = 0; i < cols; ++i) {
    scratch[i] = scale * static_cast<float>(q[i]);
  }
  return scratch;
}

const float* MmapEmbeddingStore::EntityRow(uint32_t e, float* scratch) const {
  return Row(header_.entity_offset, header_.num_entities, e, header_.dim,
             scratch);
}

const float* MmapEmbeddingStore::EntityRowsBlock(uint32_t first,
                                                 uint32_t count,
                                                 float* scratch) const {
  PKGM_CHECK_LE(static_cast<uint64_t>(first) + count, header_.num_entities);
  if (dtype() == StoreDtype::kFloat32) {
    // The fp32 entity section is row-major in the mapping: hand the block
    // back zero-copy, same as the single-row accessor.
    return reinterpret_cast<const float*>(base_ + header_.entity_offset) +
           static_cast<uint64_t>(first) * header_.dim;
  }
  // int8: dequantize row by row via the base implementation.
  return core::EmbeddingSource::EntityRowsBlock(first, count, scratch);
}

const float* MmapEmbeddingStore::RelationRow(uint32_t r,
                                             float* scratch) const {
  return Row(header_.relation_offset, header_.num_relations, r, header_.dim,
             scratch);
}

const float* MmapEmbeddingStore::TransferRow(uint32_t r,
                                             float* scratch) const {
  PKGM_CHECK(header_.has_relation_module());
  return Row(header_.transfer_offset, header_.num_relations, r,
             static_cast<uint64_t>(header_.dim) * header_.dim, scratch);
}

const float* MmapEmbeddingStore::HyperplaneRow(uint32_t r,
                                               float* scratch) const {
  PKGM_CHECK(header_.has_hyperplanes());
  return Row(header_.hyperplane_offset, header_.num_relations, r, header_.dim,
             scratch);
}

void MmapEmbeddingStore::Release() noexcept {
  if (base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(base_), mapped_bytes_);
    base_ = nullptr;
    mapped_bytes_ = 0;
  }
}

MmapEmbeddingStore::~MmapEmbeddingStore() { Release(); }

MmapEmbeddingStore::MmapEmbeddingStore(MmapEmbeddingStore&& other) noexcept
    : header_(other.header_),
      path_(std::move(other.path_)),
      base_(other.base_),
      mapped_bytes_(other.mapped_bytes_) {
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
}

MmapEmbeddingStore& MmapEmbeddingStore::operator=(
    MmapEmbeddingStore&& other) noexcept {
  if (this != &other) {
    Release();
    header_ = other.header_;
    path_ = std::move(other.path_);
    base_ = other.base_;
    mapped_bytes_ = other.mapped_bytes_;
    other.base_ = nullptr;
    other.mapped_bytes_ = 0;
  }
  return *this;
}

}  // namespace pkgm::store
