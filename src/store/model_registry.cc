#include "store/model_registry.h"

#include <utility>

#include "util/logging.h"

namespace pkgm::store {

uint64_t ModelRegistry::Publish(
    std::shared_ptr<const core::EmbeddingSource> source,
    std::shared_ptr<const core::ServiceVectorProvider> provider,
    StoreBackendInfo info) {
  PKGM_CHECK(source != nullptr);
  PKGM_CHECK(provider != nullptr);
  auto generation = std::make_shared<ServingGeneration>();
  generation->generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);
  generation->source = std::move(source);
  generation->provider = std::move(provider);
  generation->info = std::move(info);
  const uint64_t number = generation->generation;
  // The swap itself: one atomic shared_ptr exchange. Readers holding the
  // old generation keep it alive until their requests drain.
  current_.store(std::move(generation), std::memory_order_release);
  return number;
}

}  // namespace pkgm::store
