#ifndef PKGM_STORE_MODEL_REGISTRY_H_
#define PKGM_STORE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/embedding_source.h"
#include "core/service.h"
#include "store/store_format.h"

namespace pkgm::store {

/// Where a generation's parameters physically live — surfaced in
/// ServerStats reports so a serving run shows which backend answered it.
struct StoreBackendInfo {
  /// "heap-fp32", "mmap-fp32", "mmap-int8", ...
  std::string load_mode = "heap-fp32";
  StoreDtype dtype = StoreDtype::kFloat32;
  /// Bytes of the backing store file; 0 for in-heap models.
  uint64_t file_bytes = 0;
  /// Store path, empty for in-heap models.
  std::string path;
};

/// One immutable published model generation: the parameter backend, the
/// provider computing service vectors over it, and its metadata. The
/// shared_ptr handed out by ModelRegistry::Current() pins everything an
/// in-flight request touches, so a generation is destroyed (tables freed /
/// store unmapped) only after the last request using it completes.
struct ServingGeneration {
  uint64_t generation = 0;
  std::shared_ptr<const core::EmbeddingSource> source;
  std::shared_ptr<const core::ServiceVectorProvider> provider;
  StoreBackendInfo info;
};

/// Atomic publication point for model refreshes — the zero-downtime swap
/// of the deployment story: a refresher process exports a new store file,
/// opens it, and Publish()es; serving workers snapshot Current() per
/// request, so the swap is one shared_ptr exchange with no lock held
/// across any request. In-flight requests finish on the generation they
/// snapshotted; the KnowledgeServer invalidates its condensed-vector cache
/// when it first observes a newer generation.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The latest published generation; null until the first Publish.
  std::shared_ptr<const ServingGeneration> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Publishes a new generation, assigning it the next monotonically
  /// increasing generation number (returned). Thread-safe; later
  /// publishes win.
  uint64_t Publish(std::shared_ptr<const core::EmbeddingSource> source,
                   std::shared_ptr<const core::ServiceVectorProvider> provider,
                   StoreBackendInfo info);

  /// Generation number of the latest publish; 0 before the first.
  uint64_t generation() const {
    auto current = Current();
    return current == nullptr ? 0 : current->generation;
  }

 private:
  std::atomic<std::shared_ptr<const ServingGeneration>> current_;
  std::atomic<uint64_t> next_generation_{1};
};

}  // namespace pkgm::store

#endif  // PKGM_STORE_MODEL_REGISTRY_H_
