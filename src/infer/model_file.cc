#include "infer/model_file.h"

#include <cstdio>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/store_format.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace pkgm::infer {
namespace {

// ------------------------------------------------------------- writing --

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutF32(std::string* out, float v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutMatRecord(std::string* out, std::string_view name, const Mat& m) {
  PutString(out, name);
  PutU32(out, static_cast<uint32_t>(m.rows()));
  PutU32(out, static_cast<uint32_t>(m.cols()));
  out->append(reinterpret_cast<const char*>(m.data()),
              m.size() * sizeof(float));
}

void PutParams(std::string* out, const std::vector<nn::Parameter*>& params) {
  PutU32(out, static_cast<uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    PutMatRecord(out, p->name, p->value);
  }
}

void PutVocab(std::string* out, const text::Tokenizer& tok) {
  PutU32(out, tok.vocab_size());
  for (const std::string& name : tok.names()) PutString(out, name);
}

void PutBertConfig(std::string* out, const text::TinyBertConfig& cfg) {
  PutU32(out, cfg.vocab_size);
  PutU32(out, cfg.dim);
  PutU32(out, cfg.layers);
  PutU32(out, cfg.heads);
  PutU32(out, cfg.ff_dim);
  PutU32(out, cfg.max_len);
  PutU32(out, cfg.num_segments);
  PutU64(out, cfg.seed);
}

Status WriteFile(InferTask task, tasks::PkgmVariant variant,
                 uint64_t generation, const std::string& payload,
                 const std::string& path) {
  InferModelHeader header;
  header.task = static_cast<uint32_t>(task);
  header.variant = static_cast<uint32_t>(variant);
  header.generation = generation;
  header.payload_bytes = payload.size();
  header.payload_checksum = store::Fnv1a64(payload.data(), payload.size());

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("open %s for writing failed",
                                     path.c_str()));
  }
  Status status = Status::Ok();
  if (std::fwrite(&header, 1, sizeof(header), f) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), f) != payload.size()) {
    status = Status::IoError(StrFormat("short write to %s", path.c_str()));
  }
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError(StrFormat("close %s failed", path.c_str()));
  }
  return status;
}

// ------------------------------------------------------------- reading --

/// Bounds-checked sequential reader over the payload; the count-before-
/// allocation discipline mirrors the wire codecs (a corrupt file must fail
/// with Corruption, never a huge allocation or an out-of-bounds read).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadF32(float* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || remaining() < len) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool ReadFloats(size_t n, float* out) {
    if (remaining() < n * sizeof(float)) return false;
    std::memcpy(out, data_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Corrupt(const char* what) {
  return Status::Corruption(StrFormat("truncated or invalid %s in .pkgi",
                                      what));
}

Status ReadBertConfig(PayloadReader* r, text::TinyBertConfig* cfg) {
  if (!r->ReadU32(&cfg->vocab_size) || !r->ReadU32(&cfg->dim) ||
      !r->ReadU32(&cfg->layers) || !r->ReadU32(&cfg->heads) ||
      !r->ReadU32(&cfg->ff_dim) || !r->ReadU32(&cfg->max_len) ||
      !r->ReadU32(&cfg->num_segments) || !r->ReadU64(&cfg->seed)) {
    return Corrupt("encoder config");
  }
  if (cfg->dim == 0 || cfg->heads == 0 || cfg->dim % cfg->heads != 0 ||
      cfg->max_len < 3 || cfg->layers == 0 || cfg->layers > 64) {
    return Corrupt("encoder config");
  }
  return Status::Ok();
}

Status ReadVocab(PayloadReader* r, uint32_t expected_size,
                 std::vector<std::string>* names) {
  uint32_t count = 0;
  if (!r->ReadU32(&count)) return Corrupt("vocab count");
  // Each entry is at least its 4-byte length prefix.
  if (static_cast<uint64_t>(count) * 4 > r->remaining() ||
      count != expected_size || count < text::kNumSpecialTokens) {
    return Corrupt("vocab count");
  }
  names->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!r->ReadString(&name)) return Corrupt("vocab entry");
    names->push_back(std::move(name));
  }
  return Status::Ok();
}

struct MatRecord {
  std::string name;
  Mat value;
};

Status ReadMatRecord(PayloadReader* r, MatRecord* record) {
  if (!r->ReadString(&record->name)) return Corrupt("param name");
  uint32_t rows = 0, cols = 0;
  if (!r->ReadU32(&rows) || !r->ReadU32(&cols)) return Corrupt("param shape");
  const uint64_t n = static_cast<uint64_t>(rows) * cols;
  if (n * sizeof(float) > r->remaining()) return Corrupt("param data");
  record->value = Mat(rows, cols);
  if (n > 0 && !r->ReadFloats(static_cast<size_t>(n), record->value.data())) {
    return Corrupt("param data");
  }
  return Status::Ok();
}

Status ReadParams(PayloadReader* r, std::vector<MatRecord>* records) {
  uint32_t count = 0;
  if (!r->ReadU32(&count)) return Corrupt("param count");
  // Minimum record: empty name + shape = 12 bytes.
  if (static_cast<uint64_t>(count) * 12 > r->remaining()) {
    return Corrupt("param count");
  }
  records->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MatRecord record;
    PKGM_RETURN_IF_ERROR(ReadMatRecord(r, &record));
    records->push_back(std::move(record));
  }
  return Status::Ok();
}

/// Overwrites every parameter of a freshly constructed model with the file
/// records, by name, requiring an exact bidirectional match: every model
/// parameter must be present in the file with identical shape, and no file
/// record (beyond `extra_allowed` names like "item_features") may dangle.
Status ApplyParams(const std::vector<nn::Parameter*>& params,
                   std::vector<MatRecord>& records, size_t extra_allowed) {
  std::unordered_map<std::string_view, MatRecord*> by_name;
  for (MatRecord& record : records) by_name[record.name] = &record;
  if (by_name.size() != records.size()) {
    return Corrupt("duplicate param name");
  }
  if (records.size() != params.size() + extra_allowed) {
    return Corrupt("param record count");
  }
  for (nn::Parameter* p : params) {
    auto it = by_name.find(p->name);
    if (it == by_name.end()) {
      return Status::Corruption(
          StrFormat("missing param %s in .pkgi", p->name.c_str()));
    }
    const Mat& value = it->second->value;
    if (value.rows() != p->rows() || value.cols() != p->cols()) {
      return Status::Corruption(
          StrFormat("shape mismatch for param %s", p->name.c_str()));
    }
    p->value = value;
  }
  return Status::Ok();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError(StrFormat("cannot stat %s", path.c_str()));
  }
  out->resize(static_cast<size_t>(size));
  const size_t read = out->empty()
                          ? 0
                          : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IoError(StrFormat("short read from %s", path.c_str()));
  }
  return Status::Ok();
}

/// Parses and validates the header, returning the checksummed payload view.
Status ParseHeader(const std::string& file, InferModelHeader* header,
                   std::string_view* payload) {
  if (file.size() < sizeof(InferModelHeader)) {
    return Status::Corruption(".pkgi file shorter than its header");
  }
  std::memcpy(header, file.data(), sizeof(InferModelHeader));
  if (header->magic != kInferModelMagic) {
    return Status::Corruption("bad .pkgi magic");
  }
  if (header->version != kInferModelVersion) {
    return Status::Corruption(StrFormat("unsupported .pkgi version %u",
                                        header->version));
  }
  if (header->task < 1 || header->task > 3 || header->variant > 3 ||
      header->reserved != 0) {
    return Status::Corruption("invalid .pkgi header fields");
  }
  if (header->payload_bytes != file.size() - sizeof(InferModelHeader)) {
    return Status::Corruption(".pkgi payload size mismatch");
  }
  *payload = std::string_view(file).substr(sizeof(InferModelHeader));
  if (store::Fnv1a64(payload->data(), payload->size()) !=
      header->payload_checksum) {
    return Status::Corruption(".pkgi payload checksum mismatch");
  }
  return Status::Ok();
}

const char* VariantShortName(tasks::PkgmVariant v) {
  switch (v) {
    case tasks::PkgmVariant::kBase: return "base";
    case tasks::PkgmVariant::kPkgmT: return "pkgm-t";
    case tasks::PkgmVariant::kPkgmR: return "pkgm-r";
    case tasks::PkgmVariant::kPkgmAll: return "pkgm-all";
  }
  return "unknown";
}

}  // namespace

Status SaveRecommenderModel(const tasks::TrainedRecommender& model,
                            tasks::PkgmVariant variant, uint64_t generation,
                            const std::string& path) {
  if (model.model == nullptr) {
    return Status::InvalidArgument("recommender bundle holds no model");
  }
  const rec::NcfConfig& cfg = model.config;
  std::string payload;
  PutU32(&payload, cfg.num_users);
  PutU32(&payload, cfg.num_items);
  PutU32(&payload, cfg.gmf_dim);
  PutU32(&payload, cfg.mlp_dim);
  PutU32(&payload, static_cast<uint32_t>(cfg.mlp_hidden.size()));
  for (uint32_t h : cfg.mlp_hidden) PutU32(&payload, h);
  PutU32(&payload, cfg.pkgm_dim);
  PutF32(&payload, cfg.embedding_l2);
  PutU64(&payload, cfg.seed);

  // Params() only registers pointers; serialization does not mutate.
  std::vector<nn::Parameter*> params =
      const_cast<rec::NcfModel*>(model.model.get())->Params();
  PutU32(&payload, static_cast<uint32_t>(params.size() + 1));
  for (const nn::Parameter* p : params) PutMatRecord(&payload, p->name,
                                                     p->value);
  PutMatRecord(&payload, "item_features", model.item_features);
  return WriteFile(InferTask::kRecommend, variant, generation, payload, path);
}

Status SaveClassifierModel(const tasks::TrainedClassifier& model,
                           tasks::PkgmVariant variant, uint64_t generation,
                           const std::string& path) {
  if (model.bert == nullptr || model.head == nullptr) {
    return Status::InvalidArgument("classifier bundle holds no model");
  }
  std::string payload;
  PutBertConfig(&payload, model.config);
  PutU32(&payload, model.num_classes);
  PutVocab(&payload, model.tokenizer);
  std::vector<nn::Parameter*> params =
      const_cast<text::TinyBert*>(model.bert.get())->Params();
  const_cast<nn::Linear*>(model.head.get())->Params(&params);
  PutParams(&payload, params);
  return WriteFile(InferTask::kClassify, variant, generation, payload, path);
}

Status SaveAlignerModel(const tasks::TrainedAligner& model,
                        tasks::PkgmVariant variant, uint64_t generation,
                        const std::string& path) {
  if (model.bert == nullptr || model.head == nullptr) {
    return Status::InvalidArgument("aligner bundle holds no model");
  }
  std::string payload;
  PutBertConfig(&payload, model.config);
  PutVocab(&payload, model.tokenizer);
  std::vector<nn::Parameter*> params =
      const_cast<text::TinyBert*>(model.bert.get())->Params();
  const_cast<nn::Linear*>(model.head.get())->Params(&params);
  PutParams(&payload, params);
  return WriteFile(InferTask::kAlign, variant, generation, payload, path);
}

StatusOr<LoadedInferModel> LoadInferModel(const std::string& path) {
  std::string file;
  PKGM_RETURN_IF_ERROR(ReadWholeFile(path, &file));
  InferModelHeader header;
  std::string_view payload;
  PKGM_RETURN_IF_ERROR(ParseHeader(file, &header, &payload));

  LoadedInferModel loaded;
  loaded.task = static_cast<InferTask>(header.task);
  loaded.variant = static_cast<tasks::PkgmVariant>(header.variant);
  loaded.generation = header.generation;
  loaded.file_bytes = file.size();

  PayloadReader reader(payload);
  switch (loaded.task) {
    case InferTask::kRecommend: {
      rec::NcfConfig cfg;
      uint32_t num_hidden = 0;
      if (!reader.ReadU32(&cfg.num_users) || !reader.ReadU32(&cfg.num_items) ||
          !reader.ReadU32(&cfg.gmf_dim) || !reader.ReadU32(&cfg.mlp_dim) ||
          !reader.ReadU32(&num_hidden)) {
        return Corrupt("recommender config");
      }
      if (num_hidden > 64 || cfg.gmf_dim == 0 || cfg.mlp_dim == 0 ||
          cfg.num_users == 0 || cfg.num_items == 0) {
        return Corrupt("recommender config");
      }
      cfg.mlp_hidden.resize(num_hidden);
      for (uint32_t i = 0; i < num_hidden; ++i) {
        if (!reader.ReadU32(&cfg.mlp_hidden[i])) {
          return Corrupt("recommender config");
        }
      }
      if (!reader.ReadU32(&cfg.pkgm_dim) ||
          !reader.ReadF32(&cfg.embedding_l2) || !reader.ReadU64(&cfg.seed)) {
        return Corrupt("recommender config");
      }
      std::vector<MatRecord> records;
      PKGM_RETURN_IF_ERROR(ReadParams(&reader, &records));
      if (!reader.done()) return Corrupt("trailing bytes");

      loaded.recommender.config = cfg;
      loaded.recommender.pkgm_dim = cfg.pkgm_dim;
      loaded.recommender.model = std::make_unique<rec::NcfModel>(cfg);
      PKGM_RETURN_IF_ERROR(ApplyParams(loaded.recommender.model->Params(),
                                       records, /*extra_allowed=*/1));
      MatRecord* features = nullptr;
      for (MatRecord& record : records) {
        if (record.name == "item_features") features = &record;
      }
      if (features == nullptr) return Corrupt("item_features record");
      if (cfg.pkgm_dim > 0 &&
          (features->value.rows() != cfg.num_items ||
           features->value.cols() != cfg.pkgm_dim)) {
        return Corrupt("item_features shape");
      }
      loaded.recommender.item_features = std::move(features->value);
      return loaded;
    }
    case InferTask::kClassify: {
      text::TinyBertConfig cfg;
      PKGM_RETURN_IF_ERROR(ReadBertConfig(&reader, &cfg));
      uint32_t num_classes = 0;
      if (!reader.ReadU32(&num_classes) || num_classes == 0) {
        return Corrupt("num_classes");
      }
      std::vector<std::string> names;
      PKGM_RETURN_IF_ERROR(ReadVocab(&reader, cfg.vocab_size, &names));
      std::vector<MatRecord> records;
      PKGM_RETURN_IF_ERROR(ReadParams(&reader, &records));
      if (!reader.done()) return Corrupt("trailing bytes");

      loaded.classifier.config = cfg;
      loaded.classifier.num_classes = num_classes;
      loaded.classifier.tokenizer.LoadVocab(std::move(names));
      loaded.classifier.bert = std::make_unique<text::TinyBert>(cfg);
      Rng head_rng(0);  // weights are overwritten below
      loaded.classifier.head = std::make_unique<nn::Linear>(
          cfg.dim, num_classes, &head_rng, "cls.head");
      std::vector<nn::Parameter*> params = loaded.classifier.bert->Params();
      loaded.classifier.head->Params(&params);
      PKGM_RETURN_IF_ERROR(ApplyParams(params, records, /*extra_allowed=*/0));
      return loaded;
    }
    case InferTask::kAlign: {
      text::TinyBertConfig cfg;
      PKGM_RETURN_IF_ERROR(ReadBertConfig(&reader, &cfg));
      std::vector<std::string> names;
      PKGM_RETURN_IF_ERROR(ReadVocab(&reader, cfg.vocab_size, &names));
      std::vector<MatRecord> records;
      PKGM_RETURN_IF_ERROR(ReadParams(&reader, &records));
      if (!reader.done()) return Corrupt("trailing bytes");

      loaded.aligner.config = cfg;
      loaded.aligner.tokenizer.LoadVocab(std::move(names));
      loaded.aligner.bert = std::make_unique<text::TinyBert>(cfg);
      Rng head_rng(0);
      loaded.aligner.head =
          std::make_unique<nn::Linear>(cfg.dim, 1, &head_rng, "align.head");
      std::vector<nn::Parameter*> params = loaded.aligner.bert->Params();
      loaded.aligner.head->Params(&params);
      PKGM_RETURN_IF_ERROR(ApplyParams(params, records, /*extra_allowed=*/0));
      return loaded;
    }
  }
  return Status::Corruption("unknown .pkgi task");
}

StatusOr<std::string> InspectInferModel(const std::string& path) {
  std::string file;
  PKGM_RETURN_IF_ERROR(ReadWholeFile(path, &file));
  InferModelHeader header;
  std::string_view payload;
  PKGM_RETURN_IF_ERROR(ParseHeader(file, &header, &payload));

  const auto task = static_cast<InferTask>(header.task);
  const auto variant = static_cast<tasks::PkgmVariant>(header.variant);
  PayloadReader reader(payload);

  std::string config_json;
  uint32_t vocab_size = 0;
  switch (task) {
    case InferTask::kRecommend: {
      uint32_t num_users = 0, num_items = 0, gmf = 0, mlp = 0, nh = 0;
      uint32_t pkgm_dim = 0;
      float l2 = 0.0f;
      uint64_t seed = 0;
      if (!reader.ReadU32(&num_users) || !reader.ReadU32(&num_items) ||
          !reader.ReadU32(&gmf) || !reader.ReadU32(&mlp) ||
          !reader.ReadU32(&nh) || nh > 64) {
        return Corrupt("recommender config");
      }
      std::string hidden = "[";
      for (uint32_t i = 0; i < nh; ++i) {
        uint32_t h = 0;
        if (!reader.ReadU32(&h)) return Corrupt("recommender config");
        hidden += StrFormat(i + 1 < nh ? "%u, " : "%u", h);
      }
      hidden += "]";
      if (!reader.ReadU32(&pkgm_dim) || !reader.ReadF32(&l2) ||
          !reader.ReadU64(&seed)) {
        return Corrupt("recommender config");
      }
      config_json = StrFormat(
          "{\"num_users\": %u, \"num_items\": %u, \"gmf_dim\": %u, "
          "\"mlp_dim\": %u, \"mlp_hidden\": %s, \"pkgm_dim\": %u, "
          "\"seed\": %llu}",
          num_users, num_items, gmf, mlp, hidden.c_str(), pkgm_dim,
          static_cast<unsigned long long>(seed));
      break;
    }
    case InferTask::kClassify:
    case InferTask::kAlign: {
      text::TinyBertConfig cfg;
      PKGM_RETURN_IF_ERROR(ReadBertConfig(&reader, &cfg));
      uint32_t num_classes = 0;
      if (task == InferTask::kClassify &&
          (!reader.ReadU32(&num_classes) || num_classes == 0)) {
        return Corrupt("num_classes");
      }
      std::vector<std::string> names;
      PKGM_RETURN_IF_ERROR(ReadVocab(&reader, cfg.vocab_size, &names));
      vocab_size = static_cast<uint32_t>(names.size());
      config_json = StrFormat(
          "{\"vocab_size\": %u, \"dim\": %u, \"layers\": %u, \"heads\": %u, "
          "\"ff_dim\": %u, \"max_len\": %u, \"seed\": %llu",
          cfg.vocab_size, cfg.dim, cfg.layers, cfg.heads, cfg.ff_dim,
          cfg.max_len, static_cast<unsigned long long>(cfg.seed));
      if (task == InferTask::kClassify) {
        config_json += StrFormat(", \"num_classes\": %u", num_classes);
      }
      config_json += "}";
      break;
    }
  }

  std::vector<MatRecord> records;
  PKGM_RETURN_IF_ERROR(ReadParams(&reader, &records));
  if (!reader.done()) return Corrupt("trailing bytes");
  uint64_t total_weights = 0;
  for (const MatRecord& record : records) total_weights += record.value.size();

  return StrFormat(
      "{\"path\": \"%s\", \"task\": \"%s\", \"variant\": \"%s\", "
      "\"generation\": %llu, \"file_bytes\": %llu, \"payload_bytes\": %llu, "
      "\"checksum\": \"0x%016llx\", \"vocab_size\": %u, \"num_params\": %zu, "
      "\"total_weights\": %llu, \"config\": %s}",
      path.c_str(), InferTaskName(task), VariantShortName(variant),
      static_cast<unsigned long long>(header.generation),
      static_cast<unsigned long long>(file.size()),
      static_cast<unsigned long long>(header.payload_bytes),
      static_cast<unsigned long long>(header.payload_checksum), vocab_size,
      records.size(), static_cast<unsigned long long>(total_weights),
      config_json.c_str());
}

}  // namespace pkgm::infer
