#include "infer/pipeline.h"

#include <utility>

#include "data/alignment_dataset.h"
#include "data/classification_dataset.h"
#include "data/interaction_dataset.h"
#include "text/title_generator.h"
#include "util/logging.h"

namespace pkgm::infer {

InferBundle TrainInferModels(const tasks::PretrainedPkgm& pkgm,
                             const InferPipelineOptions& options) {
  InferBundle bundle;
  bundle.variant = options.variant;
  const core::ServiceVectorProvider* services = pkgm.services.get();
  PKGM_CHECK(services != nullptr);

  text::TitleGenerator titles(&pkgm.pkg, text::TitleGeneratorOptions{});

  // Classification (§III-B).
  {
    data::ClassificationDatasetOptions opt;
    opt.max_per_category = options.classify_max_per_category;
    opt.seed = options.seed + 1;
    data::ClassificationDataset dataset =
        BuildClassificationDataset(pkgm.pkg, titles, opt);
    tasks::ItemClassificationOptions task_opt = options.classify;
    task_opt.seed = options.seed + 2;
    tasks::ItemClassificationTask task(&dataset, services, task_opt);
    bundle.classifier = task.Train(options.variant);
    bundle.num_classes = dataset.num_classes;
  }

  // Alignment (§III-C), category 0.
  {
    data::AlignmentDatasetOptions opt;
    opt.pairs_per_category = options.align_pairs_per_category;
    opt.ranking_cases = 5;
    opt.ranking_negatives = 9;
    opt.seed = options.seed + 3;
    std::vector<data::AlignmentDataset> datasets =
        BuildAlignmentDatasets(pkgm.pkg, titles, {0}, opt);
    PKGM_CHECK(!datasets.empty())
        << "category 0 produced no alignment pairs; enlarge the PKG";
    tasks::ItemAlignmentOptions task_opt = options.align;
    task_opt.seed = options.seed + 4;
    tasks::ItemAlignmentTask task(&datasets[0], services, task_opt);
    bundle.aligner = task.Train(options.variant);
  }

  // Recommendation (§III-D).
  {
    data::InteractionDatasetOptions opt;
    opt.num_users = options.recommend_num_users;
    opt.seed = options.seed + 5;
    data::InteractionDataset dataset =
        BuildInteractionDataset(pkgm.pkg, opt);
    tasks::RecommendationOptions task_opt = options.recommend;
    task_opt.seed = options.seed + 6;
    tasks::RecommendationTask task(&dataset, services, task_opt);
    bundle.recommender = task.Train(options.variant);
    bundle.num_users = dataset.num_users;
  }

  bundle.titles.reserve(services->num_items());
  for (uint32_t i = 0; i < services->num_items(); ++i) {
    bundle.titles.push_back(titles.Stable(i));
  }
  return bundle;
}

}  // namespace pkgm::infer
