#ifndef PKGM_INFER_PIPELINE_H_
#define PKGM_INFER_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tasks/item_alignment.h"
#include "tasks/item_classification.h"
#include "tasks/pipeline.h"
#include "tasks/recommendation.h"
#include "tasks/variant.h"

namespace pkgm::infer {

/// Serving-scale downstream training: small datasets and few epochs, so
/// pkgm_netd, pkgm_tool, the loopback tests and the serving bench can all
/// stand up the three models in seconds (ASan included). The models only
/// need to be *real* (exact task arithmetic), not accurate. Deterministic
/// given `seed`.
struct InferPipelineOptions {
  tasks::PkgmVariant variant = tasks::PkgmVariant::kPkgmAll;
  /// Classification dataset/model.
  uint32_t classify_max_per_category = 20;
  tasks::ItemClassificationOptions classify;
  /// Alignment dataset/model (category 0 of the synthetic PKG).
  uint32_t align_pairs_per_category = 120;
  tasks::ItemAlignmentOptions align;
  /// Interaction dataset/model.
  uint32_t recommend_num_users = 60;
  tasks::RecommendationOptions recommend;
  uint64_t seed = 71;

  InferPipelineOptions() {
    classify.max_len = 20;
    classify.bert_layers = 1;
    classify.bert_heads = 2;
    classify.bert_ff = 32;
    classify.epochs = 2;
    classify.mlm_pretrain_epochs = 1;
    align.max_len = 32;
    align.bert_layers = 1;
    align.bert_heads = 2;
    align.bert_ff = 32;
    align.epochs = 2;
    align.mlm_pretrain_epochs = 0;
    recommend.epochs = 3;
  }
};

/// The trained downstream models plus everything the serving side needs to
/// execute them: the canonical per-item title catalog and the id spaces the
/// load generator draws from. Move-only (the bundles own their models).
struct InferBundle {
  tasks::PkgmVariant variant = tasks::PkgmVariant::kBase;
  /// item index -> TitleGenerator::Stable title, for every item of the PKG.
  std::vector<std::string> titles;
  uint32_t num_users = 0;
  uint32_t num_classes = 0;
  tasks::TrainedRecommender recommender;
  tasks::TrainedClassifier classifier;
  tasks::TrainedAligner aligner;
};

/// Builds the three downstream datasets over `pkgm`'s synthetic PKG and
/// trains one model per task through the exact offline task code
/// (ItemClassificationTask::Train etc.), so anything served from the bundle
/// is bit-identical to what offline evaluation would compute.
InferBundle TrainInferModels(const tasks::PretrainedPkgm& pkgm,
                             const InferPipelineOptions& options);

}  // namespace pkgm::infer

#endif  // PKGM_INFER_PIPELINE_H_
