#include "infer/engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "nn/activations.h"
#include "tasks/item_alignment.h"
#include "tasks/item_classification.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::infer {
namespace {

void FillCode(std::vector<serve::ServiceResponse>* responses,
              serve::ResponseCode code) {
  for (serve::ServiceResponse& response : *responses) response.code = code;
}

}  // namespace

InferenceEngine::InferenceEngine(const InferModelRegistry* models,
                                 const core::ServiceVectorProvider* provider,
                                 std::vector<std::string> item_titles)
    : models_(models),
      provider_(provider),
      item_titles_(std::move(item_titles)) {
  PKGM_CHECK(models != nullptr);
  PKGM_CHECK(provider != nullptr);
}

InferenceEngine::InferenceEngine(const InferModelRegistry* models,
                                 const store::ModelRegistry* registry,
                                 std::vector<std::string> item_titles)
    : models_(models),
      registry_(registry),
      item_titles_(std::move(item_titles)) {
  PKGM_CHECK(models != nullptr);
  PKGM_CHECK(registry != nullptr);
}

const core::ServiceVectorProvider* InferenceEngine::PinProvider(
    std::shared_ptr<const store::ServingGeneration>* pinned) const {
  if (registry_ == nullptr) return provider_;
  *pinned = registry_->Current();
  PKGM_CHECK(*pinned != nullptr)
      << "InferenceEngine executing against an empty ModelRegistry";
  return (*pinned)->provider.get();
}

void InferenceEngine::ExecuteBatch(
    serve::TaskKind task,
    const std::vector<const serve::ServiceRequest*>& requests,
    std::vector<serve::ServiceResponse>* responses) {
  PKGM_CHECK_EQ(responses->size(), requests.size());
  switch (task) {
    case serve::TaskKind::kRecommend:
      ExecuteRecommend(requests, responses);
      return;
    case serve::TaskKind::kClassify:
      ExecuteClassify(requests, responses);
      return;
    case serve::TaskKind::kAlign:
      ExecuteAlign(requests, responses);
      return;
    case serve::TaskKind::kLookup:
      break;  // the KnowledgeServer serves lookups itself
  }
  FillCode(responses, serve::ResponseCode::kRejected);
}

void InferenceEngine::ExecuteRecommend(
    const std::vector<const serve::ServiceRequest*>& requests,
    std::vector<serve::ServiceResponse>* responses) {
  auto gen = models_->recommender();
  if (gen == nullptr) {
    // No model published for the task: shed like admission control does.
    FillCode(responses, serve::ResponseCode::kRejected);
    return;
  }
  std::shared_ptr<const store::ServingGeneration> pinned;
  const core::ServiceVectorProvider* provider = PinProvider(&pinned);
  const rec::NcfConfig& cfg = gen->model.config;

  // The *model's* trained variant decides which service vectors join the
  // MLP input — a request cannot ask a PKGM-all model to score with
  // PKGM-T features (request.mode only selects vectors on the lookup
  // path).
  const bool uses_pkgm = cfg.pkgm_dim > 0;
  const core::ServiceMode mode =
      uses_pkgm ? tasks::VariantServiceMode(gen->variant)
                : core::ServiceMode::kAll;
  if (uses_pkgm && provider->CondensedDim(mode) != cfg.pkgm_dim) {
    // Embedding backend incompatible with the published model (e.g. a
    // swap to a different dim). Shed instead of computing garbage.
    FillCode(responses, serve::ResponseCode::kRejected);
    return;
  }

  std::vector<size_t> valid;
  valid.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const serve::ServiceRequest& request = *requests[i];
    if (request.user >= cfg.num_users || request.item >= cfg.num_items ||
        (uses_pkgm && request.item >= provider->num_items())) {
      (*responses)[i].code = serve::ResponseCode::kInvalidItem;
    } else {
      valid.push_back(i);
    }
  }
  if (valid.empty()) return;

  std::vector<uint32_t> users, items;
  users.reserve(valid.size());
  items.reserve(valid.size());
  for (size_t i : valid) {
    users.push_back(requests[i]->user);
    items.push_back(requests[i]->item);
  }
  Mat pkgm;
  const Mat* pkgm_ptr = nullptr;
  if (uses_pkgm) {
    pkgm = Mat(valid.size(), cfg.pkgm_dim);
    for (size_t b = 0; b < valid.size(); ++b) {
      const Vec s = provider->Condensed(items[b], mode);
      float* dst = pkgm.Row(b);
      for (uint32_t j = 0; j < cfg.pkgm_dim; ++j) dst[j] = s[j];
    }
    pkgm_ptr = &pkgm;
  }

  Mat logits;
  {
    std::lock_guard<std::mutex> lock(gen->mu);
    gen->model.model->Forward(users, items, pkgm_ptr, &logits);
  }
  for (size_t b = 0; b < valid.size(); ++b) {
    (*responses)[valid[b]].score = nn::SigmoidScalar(logits(b, 0));
  }
}

void InferenceEngine::ExecuteClassify(
    const std::vector<const serve::ServiceRequest*>& requests,
    std::vector<serve::ServiceResponse>* responses) {
  auto gen = models_->classifier();
  if (gen == nullptr) {
    FillCode(responses, serve::ResponseCode::kRejected);
    return;
  }
  std::shared_ptr<const store::ServingGeneration> pinned;
  const core::ServiceVectorProvider* provider = PinProvider(&pinned);
  const text::TinyBertConfig& cfg = gen->model.config;
  const uint32_t num_classes = gen->model.num_classes;
  const bool uses_pkgm = gen->variant != tasks::PkgmVariant::kBase;
  if (uses_pkgm && provider->dim() != cfg.dim) {
    FillCode(responses, serve::ResponseCode::kRejected);
    return;
  }
  const core::ServiceVectorProvider* services =
      uses_pkgm ? provider : nullptr;

  std::lock_guard<std::mutex> lock(gen->mu);
  std::vector<float> probs(num_classes);
  std::vector<uint32_t> order(num_classes);
  for (size_t i = 0; i < requests.size(); ++i) {
    const serve::ServiceRequest& request = *requests[i];
    serve::ServiceResponse& response = (*responses)[i];
    if (request.item >= item_titles_.size() ||
        (uses_pkgm && request.item >= provider->num_items())) {
      response.code = serve::ResponseCode::kInvalidItem;
      continue;
    }
    data::ClassificationSample sample;
    sample.item_index = request.item;
    sample.title = item_titles_[request.item];
    text::EncodedInput input = tasks::EncodeClassificationSample(
        sample, gen->model.tokenizer, services, gen->variant, cfg.max_len);

    Vec cls;
    gen->model.bert->EncodeCls(input, &cls);
    Mat cls_mat(1, cfg.dim);
    for (uint32_t j = 0; j < cfg.dim; ++j) cls_mat(0, j) = cls[j];
    Mat logits;
    gen->model.head->Forward(cls_mat, &logits);

    std::copy(logits.Row(0), logits.Row(0) + num_classes, probs.begin());
    SoftmaxInplace(num_classes, probs.data());

    const uint32_t k =
        std::min(request.top_k == 0 ? 1u : request.top_k, num_classes);
    std::iota(order.begin(), order.end(), 0u);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](uint32_t a, uint32_t b) {
                        if (probs[a] != probs[b]) return probs[a] > probs[b];
                        return a < b;  // deterministic tie-break
                      });
    response.class_ids.assign(order.begin(), order.begin() + k);
    response.class_probs.reserve(k);
    for (uint32_t j = 0; j < k; ++j) {
      response.class_probs.push_back(probs[order[j]]);
    }
  }
}

void InferenceEngine::ExecuteAlign(
    const std::vector<const serve::ServiceRequest*>& requests,
    std::vector<serve::ServiceResponse>* responses) {
  auto gen = models_->aligner();
  if (gen == nullptr) {
    FillCode(responses, serve::ResponseCode::kRejected);
    return;
  }
  std::shared_ptr<const store::ServingGeneration> pinned;
  const core::ServiceVectorProvider* provider = PinProvider(&pinned);
  const text::TinyBertConfig& cfg = gen->model.config;
  const bool uses_pkgm = gen->variant != tasks::PkgmVariant::kBase;
  if (uses_pkgm && provider->dim() != cfg.dim) {
    FillCode(responses, serve::ResponseCode::kRejected);
    return;
  }
  const core::ServiceVectorProvider* services =
      uses_pkgm ? provider : nullptr;

  std::lock_guard<std::mutex> lock(gen->mu);
  for (size_t i = 0; i < requests.size(); ++i) {
    const serve::ServiceRequest& request = *requests[i];
    serve::ServiceResponse& response = (*responses)[i];
    const uint32_t limit = static_cast<uint32_t>(item_titles_.size());
    if (request.item >= limit || request.item_b >= limit ||
        (uses_pkgm && (request.item >= provider->num_items() ||
                       request.item_b >= provider->num_items()))) {
      response.code = serve::ResponseCode::kInvalidItem;
      continue;
    }
    data::AlignmentPair pair;
    pair.item_a = request.item;
    pair.item_b = request.item_b;
    pair.title_a = item_titles_[request.item];
    pair.title_b = item_titles_[request.item_b];
    text::EncodedInput input = tasks::EncodeAlignmentPair(
        pair, gen->model.tokenizer, services, gen->variant, cfg.max_len);

    Vec cls;
    gen->model.bert->EncodeCls(input, &cls);
    Mat cls_mat(1, cfg.dim);
    for (uint32_t j = 0; j < cfg.dim; ++j) cls_mat(0, j) = cls[j];
    Mat logits;
    gen->model.head->Forward(cls_mat, &logits);
    response.score = logits(0, 0);
  }
}

}  // namespace pkgm::infer
