#ifndef PKGM_INFER_MODEL_FILE_H_
#define PKGM_INFER_MODEL_FILE_H_

#include <cstdint>
#include <string>

#include "tasks/item_alignment.h"
#include "tasks/item_classification.h"
#include "tasks/recommendation.h"
#include "tasks/variant.h"
#include "util/status.h"

namespace pkgm::infer {

/// Which downstream model a .pkgi file carries. Values are stable on disk.
enum class InferTask : uint32_t { kRecommend = 1, kClassify = 2, kAlign = 3 };

inline const char* InferTaskName(InferTask task) {
  switch (task) {
    case InferTask::kRecommend: return "recommend";
    case InferTask::kClassify: return "classify";
    case InferTask::kAlign: return "align";
  }
  return "unknown";
}

// "PKGI" — distinct from the embedding-store magic "PKGS" and the model
// checkpoint magic "PKGM", so the three on-disk formats can never be
// confused for one another.
constexpr uint32_t kInferModelMagic = 0x49474b50u;
constexpr uint32_t kInferModelVersion = 1;

/// Fixed little-endian header at offset 0 of a .pkgi downstream-model file.
///
/// Byte layout:
///   [ 0,  4) magic "PKGI"            [ 4,  8) format version
///   [ 8, 12) task (InferTask)        [12, 16) variant (tasks::PkgmVariant)
///   [16, 24) model generation        [24, 32) payload bytes
///   [32, 40) FNV-1a64 payload checksum
///   [40, 48) reserved (must be 0)
///
/// The payload is a sequential run of three sections (no alignment):
///   config   task-specific hyper-parameters including every training seed,
///            so the loader can reconstruct the exact model shapes by
///            invoking the normal constructors;
///   vocab    (classify/align only) u32 count then count length-prefixed
///            token names — the tokenizer's full id-ordered list including
///            the 5 special tokens;
///   params   u32 count then count records of
///            {u32 name_len, name, u32 rows, u32 cols, rows*cols f32},
///            one per trainable parameter, plus (recommend only) the fixed
///            per-item condensed feature matrix as record "item_features".
///
/// The checksum covers every payload byte, so any bit flip in the weights
/// is detected at load time.
struct InferModelHeader {
  uint32_t magic = kInferModelMagic;
  uint32_t version = kInferModelVersion;
  uint32_t task = 0;
  uint32_t variant = 0;
  uint64_t generation = 0;
  uint64_t payload_bytes = 0;
  uint64_t payload_checksum = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(InferModelHeader) == 48,
              "InferModelHeader must be packed to 48B");

/// Serializers for the three trained bundles. `generation` is recorded in
/// the header (and reported by inspect) so a refresher pipeline can tag
/// exports monotonically.
Status SaveRecommenderModel(const tasks::TrainedRecommender& model,
                            tasks::PkgmVariant variant, uint64_t generation,
                            const std::string& path);
Status SaveClassifierModel(const tasks::TrainedClassifier& model,
                           tasks::PkgmVariant variant, uint64_t generation,
                           const std::string& path);
Status SaveAlignerModel(const tasks::TrainedAligner& model,
                        tasks::PkgmVariant variant, uint64_t generation,
                        const std::string& path);

/// A deserialized .pkgi: exactly one of the three bundles is populated,
/// per `task`. Move-only (the bundles own their models).
struct LoadedInferModel {
  InferTask task = InferTask::kRecommend;
  tasks::PkgmVariant variant = tasks::PkgmVariant::kBase;
  uint64_t generation = 0;
  uint64_t file_bytes = 0;
  tasks::TrainedRecommender recommender;
  tasks::TrainedClassifier classifier;
  tasks::TrainedAligner aligner;
};

/// Reads, checksums and reconstructs a .pkgi model: the config section
/// rebuilds the model through its normal constructor (seeds reproduce the
/// shapes), then every parameter is overwritten by name with shape checks.
/// Loaded weights are bit-identical to the saved ones.
StatusOr<LoadedInferModel> LoadInferModel(const std::string& path);

/// One-line-per-field JSON summary of a .pkgi file (header, config, param
/// count/bytes) without reconstructing the model. Verifies the checksum.
StatusOr<std::string> InspectInferModel(const std::string& path);

}  // namespace pkgm::infer

#endif  // PKGM_INFER_MODEL_FILE_H_
