#include "infer/registry.h"

#include <utility>

namespace pkgm::infer {
namespace {

template <typename Generation, typename TrainedModel>
uint64_t PublishTo(std::atomic<std::shared_ptr<Generation>>* slot,
                   std::atomic<uint64_t>* next, TrainedModel model,
                   tasks::PkgmVariant variant) {
  const uint64_t number = next->fetch_add(1, std::memory_order_relaxed);
  auto generation = std::make_shared<Generation>();
  generation->generation = number;
  generation->variant = variant;
  generation->model = std::move(model);
  slot->store(std::move(generation), std::memory_order_release);
  return number;
}

}  // namespace

uint64_t InferModelRegistry::PublishRecommender(tasks::TrainedRecommender model,
                                                tasks::PkgmVariant variant) {
  return PublishTo(&recommender_, &next_recommender_, std::move(model),
                   variant);
}

uint64_t InferModelRegistry::PublishClassifier(tasks::TrainedClassifier model,
                                               tasks::PkgmVariant variant) {
  return PublishTo(&classifier_, &next_classifier_, std::move(model), variant);
}

uint64_t InferModelRegistry::PublishAligner(tasks::TrainedAligner model,
                                            tasks::PkgmVariant variant) {
  return PublishTo(&aligner_, &next_aligner_, std::move(model), variant);
}

}  // namespace pkgm::infer
