#ifndef PKGM_INFER_ENGINE_H_
#define PKGM_INFER_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/service.h"
#include "infer/registry.h"
#include "serve/infer_executor.h"
#include "serve/request.h"
#include "store/model_registry.h"

namespace pkgm::infer {

/// The model-inference backend behind the wire protocol's Recommend /
/// Classify / Align frames (paper §III): a serve::InferExecutor that runs
/// full downstream-model forwards server-side, so clients get scores — not
/// vectors — while triple data stays behind the service boundary.
///
/// Parameter flow mirrors the lookup path exactly. Service vectors are
/// pulled per request through the same ServiceVectorProvider seam the
/// KnowledgeServer uses — a fixed provider or a store::ModelRegistry
/// snapshot — so embedding hot swaps and int8 mmap stores flow through
/// inference unchanged. Model weights come from the InferModelRegistry,
/// snapshotted once per batch: per-task weight refreshes are zero-downtime
/// and an in-flight batch always finishes on the generation it pinned.
///
/// Task execution (per batch, under the pinned generation's mutex because
/// the models cache forward activations):
///   recommend  NCF forward over the (user, item) rows; the condensed
///              service vector joins the MLP tower input (Eq. 21);
///              score = sigmoid(logit).
///   classify   TinyBert over the item's catalog title with service vectors
///              injected after [SEP] (Fig. 2), head logits, SIMD-dispatched
///              softmax, top-k classes.
///   align      TinyBert pair encoding of both items' titles and vectors
///              (Fig. 5); score = raw head logit (> 0 means same product).
///
/// The title catalog is fixed at construction: item i's canonical title —
/// the same text::TitleGenerator::Stable output the training datasets used,
/// which is what makes server-side encoder inputs bit-identical to offline
/// evaluation's.
class InferenceEngine : public serve::InferExecutor {
 public:
  /// Fixed-provider backend; `provider`, `models` and the titles referenced
  /// must outlive the engine.
  InferenceEngine(const InferModelRegistry* models,
                  const core::ServiceVectorProvider* provider,
                  std::vector<std::string> item_titles);
  /// Hot-swappable embedding backend: service vectors come from the
  /// registry's current generation, snapshotted once per batch.
  InferenceEngine(const InferModelRegistry* models,
                  const store::ModelRegistry* registry,
                  std::vector<std::string> item_titles);

  void ExecuteBatch(serve::TaskKind task,
                    const std::vector<const serve::ServiceRequest*>& requests,
                    std::vector<serve::ServiceResponse>* responses) override;

  const InferModelRegistry* models() const { return models_; }
  const std::vector<std::string>& item_titles() const { return item_titles_; }

 private:
  /// Snapshots the embedding backend for one batch. In registry mode,
  /// `pinned` keeps the generation alive until the batch completes.
  const core::ServiceVectorProvider* PinProvider(
      std::shared_ptr<const store::ServingGeneration>* pinned) const;

  void ExecuteRecommend(
      const std::vector<const serve::ServiceRequest*>& requests,
      std::vector<serve::ServiceResponse>* responses);
  void ExecuteClassify(
      const std::vector<const serve::ServiceRequest*>& requests,
      std::vector<serve::ServiceResponse>* responses);
  void ExecuteAlign(const std::vector<const serve::ServiceRequest*>& requests,
                    std::vector<serve::ServiceResponse>* responses);

  const InferModelRegistry* models_;
  const core::ServiceVectorProvider* provider_ = nullptr;
  const store::ModelRegistry* registry_ = nullptr;
  std::vector<std::string> item_titles_;
};

}  // namespace pkgm::infer

#endif  // PKGM_INFER_ENGINE_H_
