#ifndef PKGM_INFER_REGISTRY_H_
#define PKGM_INFER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "tasks/item_alignment.h"
#include "tasks/item_classification.h"
#include "tasks/recommendation.h"
#include "tasks/variant.h"

namespace pkgm::infer {

/// One published downstream-model generation. The model classes cache
/// per-batch activations (NcfModel::Forward, TinyBert::EncodeCls), so every
/// forward pass on a generation must hold its `mu` — the InferenceEngine
/// takes it once per batch. Everything else is immutable after Publish.
///
/// The shared_ptr handed out by InferModelRegistry pins the generation for
/// the duration of a batch, so a hot swap never frees weights under an
/// in-flight forward (same discipline as store::ServingGeneration).
template <typename TrainedModel>
struct InferGeneration {
  uint64_t generation = 0;
  tasks::PkgmVariant variant = tasks::PkgmVariant::kBase;
  TrainedModel model;
  std::mutex mu;
};

using RecommenderGeneration = InferGeneration<tasks::TrainedRecommender>;
using ClassifierGeneration = InferGeneration<tasks::TrainedClassifier>;
using AlignerGeneration = InferGeneration<tasks::TrainedAligner>;

/// Atomic publication point for the three downstream models, mirroring
/// store::ModelRegistry: each task slot is an atomic shared_ptr, a publish
/// is one pointer exchange, and serving batches snapshot the current
/// generation once — so per-task weight refreshes are zero-downtime and
/// independent (swapping the classifier never perturbs recommend traffic).
/// Generation numbers are per-task and monotonically increasing.
class InferModelRegistry {
 public:
  InferModelRegistry() = default;
  InferModelRegistry(const InferModelRegistry&) = delete;
  InferModelRegistry& operator=(const InferModelRegistry&) = delete;

  /// Latest published generation for the task; null until first publish.
  std::shared_ptr<RecommenderGeneration> recommender() const {
    return recommender_.load(std::memory_order_acquire);
  }
  std::shared_ptr<ClassifierGeneration> classifier() const {
    return classifier_.load(std::memory_order_acquire);
  }
  std::shared_ptr<AlignerGeneration> aligner() const {
    return aligner_.load(std::memory_order_acquire);
  }

  /// Publish a trained bundle; returns its generation number.
  uint64_t PublishRecommender(tasks::TrainedRecommender model,
                              tasks::PkgmVariant variant);
  uint64_t PublishClassifier(tasks::TrainedClassifier model,
                             tasks::PkgmVariant variant);
  uint64_t PublishAligner(tasks::TrainedAligner model,
                          tasks::PkgmVariant variant);

 private:
  std::atomic<std::shared_ptr<RecommenderGeneration>> recommender_;
  std::atomic<std::shared_ptr<ClassifierGeneration>> classifier_;
  std::atomic<std::shared_ptr<AlignerGeneration>> aligner_;
  std::atomic<uint64_t> next_recommender_{1};
  std::atomic<uint64_t> next_classifier_{1};
  std::atomic<uint64_t> next_aligner_{1};
};

}  // namespace pkgm::infer

#endif  // PKGM_INFER_REGISTRY_H_
