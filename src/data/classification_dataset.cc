#include "data/classification_dataset.h"

#include "util/logging.h"

namespace pkgm::data {

ClassificationDataset BuildClassificationDataset(
    const kg::SyntheticPkg& pkg, const text::TitleGenerator& titles,
    const ClassificationDatasetOptions& options) {
  PKGM_CHECK_LE(options.train_fraction + options.test_fraction, 1.0);
  Rng rng(options.seed);

  // Bucket item indexes by category, cap each bucket.
  std::vector<std::vector<uint32_t>> by_category(pkg.num_categories);
  for (uint32_t i = 0; i < pkg.items.size(); ++i) {
    by_category[pkg.items[i].category].push_back(i);
  }

  std::vector<ClassificationSample> all;
  for (uint32_t c = 0; c < pkg.num_categories; ++c) {
    std::vector<uint32_t>& bucket = by_category[c];
    rng.Shuffle(&bucket);
    const size_t keep =
        std::min<size_t>(bucket.size(), options.max_per_category);
    for (size_t i = 0; i < keep; ++i) {
      ClassificationSample s;
      s.item_index = bucket[i];
      s.title = titles.Stable(bucket[i]);
      s.label = c;
      all.push_back(std::move(s));
    }
  }
  rng.Shuffle(&all);

  ClassificationDataset ds;
  ds.num_classes = pkg.num_categories;
  const size_t n = all.size();
  const size_t n_train = static_cast<size_t>(options.train_fraction * n);
  const size_t n_test = static_cast<size_t>(options.test_fraction * n);
  ds.train.assign(all.begin(), all.begin() + n_train);
  ds.test.assign(all.begin() + n_train, all.begin() + n_train + n_test);
  ds.dev.assign(all.begin() + n_train + n_test, all.end());
  return ds;
}

}  // namespace pkgm::data
