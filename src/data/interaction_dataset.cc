#include "data/interaction_dataset.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace pkgm::data {

InteractionDataset BuildInteractionDataset(
    const kg::SyntheticPkg& pkg, const InteractionDatasetOptions& options) {
  PKGM_CHECK_GE(options.max_interactions_per_user,
                options.min_interactions_per_user);
  PKGM_CHECK_GE(options.min_interactions_per_user, 3u)
      << "need >= 3 so train keeps >= 1 after holding out test + valid";
  Rng rng(options.seed);

  const uint32_t num_items = static_cast<uint32_t>(pkg.items.size());
  PKGM_CHECK_GT(num_items, options.candidates_per_draw);

  // Flatten the value universe to sample user preferences from.
  std::vector<kg::EntityId> all_values;
  for (const auto& [rel, values] : pkg.property_values) {
    all_values.insert(all_values.end(), values.begin(), values.end());
  }
  PKGM_CHECK(!all_values.empty());

  // Global Zipf-shaped popularity: a random permutation assigns each item a
  // popularity rank; weight decays with rank as real click logs do.
  std::vector<double> popularity(num_items);
  {
    std::vector<uint32_t> ranks(num_items);
    for (uint32_t i = 0; i < num_items; ++i) ranks[i] = i;
    rng.Shuffle(&ranks);
    for (uint32_t i = 0; i < num_items; ++i) {
      popularity[i] =
          1.0 / std::pow(static_cast<double>(ranks[i] + 1),
                         options.popularity_zipf);
    }
  }

  InteractionDataset ds;
  ds.num_users = options.num_users;
  ds.num_items = num_items;
  ds.train.resize(options.num_users);
  ds.test.resize(options.num_users);
  ds.valid.resize(options.num_users);

  for (uint32_t u = 0; u < options.num_users; ++u) {
    // Latent preference: a set of attribute values this user favors.
    std::unordered_set<kg::EntityId> preferred;
    while (preferred.size() < options.preferred_values_per_user) {
      preferred.insert(all_values[rng.Uniform(all_values.size())]);
    }

    auto affinity = [&](uint32_t item_index) {
      double overlap = 0.0;
      for (const auto& [rel, value] : pkg.items[item_index].attributes) {
        if (preferred.count(value)) overlap += 1.0;
      }
      return options.preference_strength * overlap +
             options.popularity_weight * popularity[item_index] +
             rng.UniformDouble();
    };

    const uint32_t target =
        options.min_interactions_per_user +
        static_cast<uint32_t>(rng.Uniform(options.max_interactions_per_user -
                                          options.min_interactions_per_user +
                                          1));
    std::unordered_set<uint32_t> seen;
    std::vector<uint32_t> interactions;
    // Bound total draws: with enough items the target is reached long
    // before this, but duplicate-heavy preferences must not loop forever.
    const uint32_t max_draws = target * 20;
    for (uint32_t draw = 0;
         interactions.size() < target && draw < max_draws; ++draw) {
      // Best-of-candidates draw biased toward preferred attributes.
      uint32_t best = 0;
      double best_score = -1.0;
      for (uint32_t c = 0; c < options.candidates_per_draw; ++c) {
        const uint32_t cand = static_cast<uint32_t>(rng.Uniform(num_items));
        const double s = affinity(cand);
        if (s > best_score) {
          best_score = s;
          best = cand;
        }
      }
      if (seen.insert(best).second) interactions.push_back(best);
    }
    // Fallback: top up uniformly if the preference draw stalled.
    while (interactions.size() < options.min_interactions_per_user) {
      const uint32_t cand = static_cast<uint32_t>(rng.Uniform(num_items));
      if (seen.insert(cand).second) interactions.push_back(cand);
    }

    // Leave-one-out: the "latest" interaction is the test item, one random
    // earlier one is validation (paper §III-D4).
    ds.test[u] = interactions.back();
    interactions.pop_back();
    const size_t v = rng.Uniform(interactions.size());
    ds.valid[u] = interactions[v];
    interactions.erase(interactions.begin() + static_cast<long>(v));
    ds.total_interactions += interactions.size() + 2;
    ds.train[u] = std::move(interactions);
  }
  return ds;
}

}  // namespace pkgm::data
