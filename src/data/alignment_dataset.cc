#include "data/alignment_dataset.h"

#include <unordered_map>

#include "util/logging.h"

namespace pkgm::data {

namespace {

/// Items of one category grouped by product, keeping only the groups that
/// can form positive pairs.
struct CategoryItems {
  std::vector<uint32_t> all;                      // item indexes
  std::vector<std::vector<uint32_t>> multi_item;  // products with >= 2 items
};

CategoryItems CollectCategory(const kg::SyntheticPkg& pkg, uint32_t category) {
  CategoryItems out;
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_product;
  for (uint32_t i = 0; i < pkg.items.size(); ++i) {
    if (pkg.items[i].category != category) continue;
    out.all.push_back(i);
    by_product[pkg.items[i].product].push_back(i);
  }
  for (auto& [product, items] : by_product) {
    if (items.size() >= 2) out.multi_item.push_back(items);
  }
  return out;
}

AlignmentPair MakePair(const kg::SyntheticPkg& pkg,
                       const text::TitleGenerator& titles, uint32_t a,
                       uint32_t b, Rng* /*rng*/) {
  AlignmentPair p;
  p.item_a = a;
  p.item_b = b;
  p.title_a = titles.Stable(a);
  p.title_b = titles.Stable(b);
  p.label =
      pkg.items[a].product == pkg.items[b].product ? 1.0f : 0.0f;
  return p;
}

// Draws a positive pair (two distinct items of one multi-item product).
std::pair<uint32_t, uint32_t> DrawPositive(const CategoryItems& cat,
                                           Rng* rng) {
  const auto& group = cat.multi_item[rng->Uniform(cat.multi_item.size())];
  const uint32_t a_idx = static_cast<uint32_t>(rng->Uniform(group.size()));
  uint32_t b_idx;
  do {
    b_idx = static_cast<uint32_t>(rng->Uniform(group.size()));
  } while (b_idx == a_idx);
  return {group[a_idx], group[b_idx]};
}

// Draws an item of the category with a different product than `anchor`.
uint32_t DrawNegativeFor(const kg::SyntheticPkg& pkg,
                         const CategoryItems& cat, uint32_t anchor,
                         Rng* rng) {
  for (int tries = 0; tries < 64; ++tries) {
    uint32_t candidate = cat.all[rng->Uniform(cat.all.size())];
    if (pkg.items[candidate].product != pkg.items[anchor].product) {
      return candidate;
    }
  }
  return cat.all[rng->Uniform(cat.all.size())];
}

}  // namespace

std::vector<AlignmentDataset> BuildAlignmentDatasets(
    const kg::SyntheticPkg& pkg, const text::TitleGenerator& titles,
    const std::vector<uint32_t>& categories,
    const AlignmentDatasetOptions& options) {
  PKGM_CHECK_LE(options.train_fraction + options.test_fraction, 1.0);
  Rng rng(options.seed);
  std::vector<AlignmentDataset> out;

  for (uint32_t category : categories) {
    CategoryItems cat = CollectCategory(pkg, category);
    if (cat.multi_item.empty() || cat.all.size() < 4) continue;

    AlignmentDataset ds;
    ds.category = category;

    // Balanced classification pairs.
    std::vector<AlignmentPair> pairs;
    pairs.reserve(options.pairs_per_category);
    for (uint32_t i = 0; i < options.pairs_per_category; ++i) {
      if (i % 2 == 0) {
        auto [a, b] = DrawPositive(cat, &rng);
        pairs.push_back(MakePair(pkg, titles, a, b, &rng));
      } else {
        uint32_t a = cat.all[rng.Uniform(cat.all.size())];
        uint32_t b = DrawNegativeFor(pkg, cat, a, &rng);
        pairs.push_back(MakePair(pkg, titles, a, b, &rng));
      }
    }
    rng.Shuffle(&pairs);
    const size_t n = pairs.size();
    const size_t n_train = static_cast<size_t>(options.train_fraction * n);
    const size_t n_test = static_cast<size_t>(options.test_fraction * n);
    ds.train.assign(pairs.begin(), pairs.begin() + n_train);
    ds.test_c.assign(pairs.begin() + n_train, pairs.begin() + n_train + n_test);
    ds.dev_c.assign(pairs.begin() + n_train + n_test, pairs.end());

    // Ranking cases: positive + `ranking_negatives` corrupted pairs.
    auto build_ranking = [&](uint32_t count) {
      std::vector<AlignmentRankingCase> cases;
      cases.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        AlignmentRankingCase rc;
        auto [a, b] = DrawPositive(cat, &rng);
        rc.positive = MakePair(pkg, titles, a, b, &rng);
        rc.negatives.reserve(options.ranking_negatives);
        for (uint32_t j = 0; j < options.ranking_negatives; ++j) {
          uint32_t nb = DrawNegativeFor(pkg, cat, a, &rng);
          rc.negatives.push_back(MakePair(pkg, titles, a, nb, &rng));
        }
        cases.push_back(std::move(rc));
      }
      return cases;
    };
    ds.test_r = build_ranking(options.ranking_cases);
    ds.dev_r = build_ranking(options.ranking_cases);

    out.push_back(std::move(ds));
  }
  return out;
}

}  // namespace pkgm::data
