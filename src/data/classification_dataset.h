#ifndef PKGM_DATA_CLASSIFICATION_DATASET_H_
#define PKGM_DATA_CLASSIFICATION_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/synthetic_pkg.h"
#include "text/title_generator.h"
#include "util/rng.h"

namespace pkgm::data {

/// One item-classification example: an item's seller-written title and its
/// category label (the paper's §III-B task with categories as classes).
struct ClassificationSample {
  uint32_t item_index = 0;  ///< index into pkg.items
  std::string title;
  uint32_t label = 0;       ///< category id
};

/// Train/test/dev split of classification samples.
struct ClassificationDataset {
  std::vector<ClassificationSample> train;
  std::vector<ClassificationSample> test;
  std::vector<ClassificationSample> dev;
  uint32_t num_classes = 0;
};

/// Builder options mirroring the paper's data preparation (Table III):
/// instances per category are capped (paper: < 100) to probe the low-data
/// regime where pre-training helps most.
struct ClassificationDatasetOptions {
  uint32_t max_per_category = 100;
  double train_fraction = 0.70;
  double test_fraction = 0.15;  // remainder goes to dev
  uint64_t seed = 101;
};

/// Samples items per category, generates one title per item, splits.
ClassificationDataset BuildClassificationDataset(
    const kg::SyntheticPkg& pkg, const text::TitleGenerator& titles,
    const ClassificationDatasetOptions& options);

}  // namespace pkgm::data

#endif  // PKGM_DATA_CLASSIFICATION_DATASET_H_
