#ifndef PKGM_DATA_ALIGNMENT_DATASET_H_
#define PKGM_DATA_ALIGNMENT_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/synthetic_pkg.h"
#include "text/title_generator.h"
#include "util/rng.h"

namespace pkgm::data {

/// One item-alignment example (paper §III-C): two item titles and whether
/// they describe the same product.
struct AlignmentPair {
  uint32_t item_a = 0;
  uint32_t item_b = 0;
  std::string title_a;
  std::string title_b;
  float label = 0.0f;  ///< 1 = same product
};

/// A ranking test case (Table VI): one aligned pair plus negatives formed
/// by replacing item_b with items that are NOT the same product; Hit@k is
/// computed over the 1 + negatives candidates (paper: 99 negatives).
struct AlignmentRankingCase {
  AlignmentPair positive;
  std::vector<AlignmentPair> negatives;
};

/// Per-category alignment dataset with the paper's 7:1.5:1.5 split
/// (Table V). Test-C/Dev-C are classification (accuracy) sets; Test-R/Dev-R
/// are ranking sets.
struct AlignmentDataset {
  uint32_t category = 0;
  std::vector<AlignmentPair> train;
  std::vector<AlignmentPair> test_c;
  std::vector<AlignmentPair> dev_c;
  std::vector<AlignmentRankingCase> test_r;
  std::vector<AlignmentRankingCase> dev_r;
};

struct AlignmentDatasetOptions {
  /// Number of (positive + negative) classification pairs to draw per
  /// category (balanced 1:1, like the paper's datasets of a few thousand).
  uint32_t pairs_per_category = 2000;
  double train_fraction = 0.70;
  double test_fraction = 0.15;  // dev gets the remainder
  /// Negatives per ranking case (paper: 99).
  uint32_t ranking_negatives = 99;
  /// Ranking cases per split (paper Table V: a few hundred).
  uint32_t ranking_cases = 150;
  uint64_t seed = 211;
};

/// Builds alignment datasets for the given categories. Categories with too
/// few multi-item products to form positives are skipped (the returned
/// vector may be shorter than `categories`).
std::vector<AlignmentDataset> BuildAlignmentDatasets(
    const kg::SyntheticPkg& pkg, const text::TitleGenerator& titles,
    const std::vector<uint32_t>& categories,
    const AlignmentDatasetOptions& options);

}  // namespace pkgm::data

#endif  // PKGM_DATA_ALIGNMENT_DATASET_H_
