#ifndef PKGM_DATA_INTERACTION_DATASET_H_
#define PKGM_DATA_INTERACTION_DATASET_H_

#include <cstdint>
#include <vector>

#include "kg/synthetic_pkg.h"
#include "util/rng.h"

namespace pkgm::data {

/// Implicit-feedback log (paper Table IX): user-item interactions with at
/// least `min_interactions_per_user` per user, already split leave-one-out:
/// one held-out test item and one validation item per user, the rest train.
struct InteractionDataset {
  uint32_t num_users = 0;
  uint32_t num_items = 0;  ///< item-index space = pkg.items indexes
  /// train[u] = item indexes user u interacted with (excl. test/valid).
  std::vector<std::vector<uint32_t>> train;
  /// test[u] / valid[u] = the held-out items.
  std::vector<uint32_t> test;
  std::vector<uint32_t> valid;
  uint64_t total_interactions = 0;
};

/// Generator options. Interactions are sampled from a latent-preference
/// model — each user prefers certain attribute *values*; an item's affinity
/// is the overlap between the user's preferred values and the item's
/// ground-truth attributes plus a popularity prior and noise. This keeps the
/// property Table VIII depends on: interactions correlate with item
/// attributes, so PKGM's knowledge adds signal beyond pure collaboration.
struct InteractionDatasetOptions {
  uint32_t num_users = 500;
  uint32_t min_interactions_per_user = 10;  // paper: >= 10
  uint32_t max_interactions_per_user = 25;
  /// Preferred attribute values per user.
  uint32_t preferred_values_per_user = 12;
  /// Candidate items scored per interaction draw (softmax-free top-1 of a
  /// small random candidate set keeps generation O(n)).
  uint32_t candidates_per_draw = 12;
  /// Weight of attribute-overlap affinity vs uniform noise.
  double preference_strength = 2.0;
  /// Weight of global item popularity (Zipf-shaped, as real click logs
  /// are). Gives collaborative models a popularity prior to learn.
  double popularity_weight = 2.0;
  /// Zipf exponent of the popularity distribution.
  double popularity_zipf = 0.8;
  uint64_t seed = 307;
};

/// Builds the interaction log from the synthetic PKG ground truth.
InteractionDataset BuildInteractionDataset(
    const kg::SyntheticPkg& pkg, const InteractionDatasetOptions& options);

}  // namespace pkgm::data

#endif  // PKGM_DATA_INTERACTION_DATASET_H_
