#ifndef PKGM_SERVE_COALESCER_H_
#define PKGM_SERVE_COALESCER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/service.h"
#include "tensor/vec.h"

namespace pkgm::serve {

/// Counters for HotKeyCoalescer (monotonic, read with stats()).
struct CoalescerStats {
  /// Fetches that registered a flight and ran the compute themselves.
  uint64_t leaders = 0;
  /// Fetches that found a same-generation flight in progress and waited
  /// for its result instead of computing — backend work saved.
  uint64_t joined = 0;
  /// Fetches that found a flight from a *different* cache generation
  /// (a hot swap landed mid-flight) and computed independently rather
  /// than adopt a possibly-stale result.
  uint64_t bypassed = 0;
};

/// Request coalescing ("single-flight") for hot condensed-vector keys:
/// when N workers miss the cache on the same (item, mode) at once — the
/// steady state for Zipf head items right after a cache invalidation —
/// only the first runs the backend compute; the other N-1 park on the
/// flight and share its result. Cuts the post-swap thundering herd from
/// N redundant computes to 1 per hot key.
///
/// Generation tagging keeps hot swap correct: a flight is stamped with the
/// cache generation its leader snapshotted *before* pinning the model. A
/// follower holding a different generation snapshot must not adopt the
/// leader's value (it may come from the other side of the swap), so it
/// bypasses and computes against its own pinned model.
///
/// Thread-safe; shards the flight table by key to keep concurrent distinct
/// keys off one lock.
class HotKeyCoalescer {
 public:
  explicit HotKeyCoalescer(size_t num_shards = 16);

  HotKeyCoalescer(const HotKeyCoalescer&) = delete;
  HotKeyCoalescer& operator=(const HotKeyCoalescer&) = delete;

  /// Computes a vector for `key` via `compute`, coalescing with any
  /// in-flight computation of the same key at the same `generation`.
  /// Exactly one caller (the leader) runs `compute`; joiners block until
  /// the leader publishes. Returns true iff this caller was the leader —
  /// the one who should insert the value into the cache.
  bool Fetch(uint64_t key, uint64_t generation,
             const std::function<Vec()>& compute, Vec* out);

  CoalescerStats stats() const;

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Vec value;
    uint64_t generation = 0;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<Flight>> flights;
  };

  Shard& ShardFor(uint64_t key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> leaders_{0};
  std::atomic<uint64_t> joined_{0};
  std::atomic<uint64_t> bypassed_{0};
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_COALESCER_H_
