#include "serve/server_stats.h"

#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm::serve {

void ServerStats::RecordCompleted(ResponseCode code, double queue_micros,
                                  double compute_micros) {
  switch (code) {
    case ResponseCode::kOk: ++ok_; break;
    case ResponseCode::kDeadlineExceeded: ++deadline_exceeded_; break;
    case ResponseCode::kInvalidItem: ++invalid_item_; break;
    case ResponseCode::kRejected: break;  // counted at admission, not here
  }
  std::lock_guard<std::mutex> lock(histo_mu_);
  queue_micros_.Record(queue_micros);
  compute_micros_.Record(compute_micros);
}

Histogram ServerStats::QueueLatency() const {
  std::lock_guard<std::mutex> lock(histo_mu_);
  return queue_micros_;
}

Histogram ServerStats::ComputeLatency() const {
  std::lock_guard<std::mutex> lock(histo_mu_);
  return compute_micros_;
}

void ServerStats::SetBackend(std::string description) {
  std::lock_guard<std::mutex> lock(backend_mu_);
  backend_ = std::move(description);
}

std::string ServerStats::backend() const {
  std::lock_guard<std::mutex> lock(backend_mu_);
  return backend_;
}

std::string ServerStats::ToTable(uint64_t queue_depth,
                                 const CacheStats* cache) const {
  TablePrinter counters({"counter", "value"});
  {
    std::lock_guard<std::mutex> lock(backend_mu_);
    if (!backend_.empty()) counters.AddRow({"backend", backend_});
  }
  counters.AddRow({"requests accepted", std::to_string(accepted())});
  counters.AddRow({"requests rejected", std::to_string(rejected())});
  counters.AddRow({"responses ok", std::to_string(ok())});
  counters.AddRow({"deadline exceeded", std::to_string(deadline_exceeded())});
  counters.AddRow({"invalid item", std::to_string(invalid_item())});
  counters.AddRow({"queue depth (requests)", std::to_string(queue_depth)});
  if (cache != nullptr) {
    counters.AddSeparator();
    counters.AddRow({"cache hits", std::to_string(cache->hits)});
    counters.AddRow({"cache misses", std::to_string(cache->misses)});
    counters.AddRow({"cache hit rate",
                     StrFormat("%.1f%%", 100.0 * cache->HitRate())});
    counters.AddRow({"cache evictions", std::to_string(cache->evictions)});
    counters.AddRow({"cache entries", std::to_string(cache->entries)});
    counters.AddRow({"cache stale inserts dropped",
                     std::to_string(cache->stale_inserts)});
  }

  TablePrinter latency(
      {"stage", "count", "p50 us", "p95 us", "p99 us", "mean us"});
  auto add = [&latency](const char* stage, const Histogram& h) {
    if (h.count() == 0) {
      latency.AddRow({stage, "0", "-", "-", "-", "-"});
      return;
    }
    latency.AddRow({stage, std::to_string(h.count()),
                    StrFormat("%.2f", h.Percentile(0.5)),
                    StrFormat("%.2f", h.Percentile(0.95)),
                    StrFormat("%.2f", h.Percentile(0.99)),
                    StrFormat("%.2f", h.Mean())});
  };
  {
    std::lock_guard<std::mutex> lock(histo_mu_);
    add("queue wait", queue_micros_);
    add("execute", compute_micros_);
  }
  return counters.ToString() + "\n" + latency.ToString();
}

}  // namespace pkgm::serve
