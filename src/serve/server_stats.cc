#include "serve/server_stats.h"

#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm::serve {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HistogramJson(const Histogram& h) {
  if (h.count() == 0) return "{\"count\":0}";
  return StrFormat(
      "{\"count\":%llu,\"p50_us\":%.2f,\"p95_us\":%.2f,\"p99_us\":%.2f,"
      "\"mean_us\":%.2f}",
      static_cast<unsigned long long>(h.count()), h.Percentile(0.5),
      h.Percentile(0.95), h.Percentile(0.99), h.Mean());
}

}  // namespace

void ServerStats::RecordCompleted(ResponseCode code, double queue_micros,
                                  double compute_micros) {
  switch (code) {
    case ResponseCode::kOk: ++ok_; break;
    case ResponseCode::kDeadlineExceeded: ++deadline_exceeded_; break;
    case ResponseCode::kInvalidItem: ++invalid_item_; break;
    case ResponseCode::kRejected: break;  // counted at admission, not here
    case ResponseCode::kNetworkError: break;  // client-side only
  }
  std::lock_guard<std::mutex> lock(histo_mu_);
  queue_micros_.Record(queue_micros);
  compute_micros_.Record(compute_micros);
}

Histogram ServerStats::QueueLatency() const {
  std::lock_guard<std::mutex> lock(histo_mu_);
  return queue_micros_;
}

Histogram ServerStats::ComputeLatency() const {
  std::lock_guard<std::mutex> lock(histo_mu_);
  return compute_micros_;
}

void ServerStats::SetBackend(std::string description) {
  std::lock_guard<std::mutex> lock(backend_mu_);
  backend_ = std::move(description);
}

std::string ServerStats::backend() const {
  std::lock_guard<std::mutex> lock(backend_mu_);
  return backend_;
}

std::string ServerStats::ToTable(uint64_t queue_depth, const CacheStats* cache,
                                 const NetCounters* net) const {
  TablePrinter counters({"counter", "value"});
  {
    std::lock_guard<std::mutex> lock(backend_mu_);
    if (!backend_.empty()) counters.AddRow({"backend", backend_});
  }
  counters.AddRow({"requests accepted", std::to_string(accepted())});
  counters.AddRow({"requests rejected", std::to_string(rejected())});
  counters.AddRow({"responses ok", std::to_string(ok())});
  counters.AddRow({"deadline exceeded", std::to_string(deadline_exceeded())});
  counters.AddRow({"invalid item", std::to_string(invalid_item())});
  counters.AddRow({"queue depth (requests)", std::to_string(queue_depth)});
  if (cache != nullptr) {
    counters.AddSeparator();
    counters.AddRow({"cache hits", std::to_string(cache->hits)});
    counters.AddRow({"cache misses", std::to_string(cache->misses)});
    counters.AddRow({"cache hit rate",
                     StrFormat("%.1f%%", 100.0 * cache->HitRate())});
    counters.AddRow({"cache evictions", std::to_string(cache->evictions)});
    counters.AddRow({"cache entries", std::to_string(cache->entries)});
    counters.AddRow({"cache stale inserts dropped",
                     std::to_string(cache->stale_inserts)});
  }
  if (net != nullptr) {
    counters.AddSeparator();
    counters.AddRow({"net connections accepted",
                     std::to_string(net->connections_accepted)});
    counters.AddRow({"net connections active",
                     std::to_string(net->connections_active)});
    counters.AddRow({"net frames in", std::to_string(net->frames_in)});
    counters.AddRow({"net frames out", std::to_string(net->frames_out)});
    counters.AddRow({"net bytes in", std::to_string(net->bytes_in)});
    counters.AddRow({"net bytes out", std::to_string(net->bytes_out)});
    counters.AddRow({"net requests decoded", std::to_string(net->requests_in)});
    counters.AddRow({"net protocol errors",
                     std::to_string(net->protocol_errors)});
    counters.AddRow({"net backpressure disconnects",
                     std::to_string(net->backpressure_disconnects)});
    counters.AddRow({"net idle disconnects",
                     std::to_string(net->idle_disconnects)});
  }

  TablePrinter latency(
      {"stage", "count", "p50 us", "p95 us", "p99 us", "mean us"});
  auto add = [&latency](const char* stage, const Histogram& h) {
    if (h.count() == 0) {
      latency.AddRow({stage, "0", "-", "-", "-", "-"});
      return;
    }
    latency.AddRow({stage, std::to_string(h.count()),
                    StrFormat("%.2f", h.Percentile(0.5)),
                    StrFormat("%.2f", h.Percentile(0.95)),
                    StrFormat("%.2f", h.Percentile(0.99)),
                    StrFormat("%.2f", h.Mean())});
  };
  {
    std::lock_guard<std::mutex> lock(histo_mu_);
    add("queue wait", queue_micros_);
    add("execute", compute_micros_);
  }
  return counters.ToString() + "\n" + latency.ToString();
}

std::string ServerStats::StatsJson(uint64_t queue_depth,
                                   const CacheStats* cache,
                                   const NetCounters* net) const {
  auto u64 = [](uint64_t v) {
    return std::to_string(static_cast<unsigned long long>(v));
  };
  std::string json = "{";
  json += "\"backend\":\"" + JsonEscape(backend()) + "\"";
  json += ",\"accepted\":" + u64(accepted());
  json += ",\"rejected\":" + u64(rejected());
  json += ",\"ok\":" + u64(ok());
  json += ",\"deadline_exceeded\":" + u64(deadline_exceeded());
  json += ",\"invalid_item\":" + u64(invalid_item());
  json += ",\"queue_depth\":" + u64(queue_depth);
  if (cache != nullptr) {
    json += StrFormat(
        ",\"cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,"
        "\"evictions\":%llu,\"entries\":%llu,\"stale_inserts\":%llu}",
        static_cast<unsigned long long>(cache->hits),
        static_cast<unsigned long long>(cache->misses), cache->HitRate(),
        static_cast<unsigned long long>(cache->evictions),
        static_cast<unsigned long long>(cache->entries),
        static_cast<unsigned long long>(cache->stale_inserts));
  }
  if (net != nullptr) {
    json += ",\"net\":{";
    json += "\"connections_accepted\":" + u64(net->connections_accepted);
    json += ",\"connections_closed\":" + u64(net->connections_closed);
    json += ",\"connections_active\":" + u64(net->connections_active);
    json += ",\"frames_in\":" + u64(net->frames_in);
    json += ",\"frames_out\":" + u64(net->frames_out);
    json += ",\"bytes_in\":" + u64(net->bytes_in);
    json += ",\"bytes_out\":" + u64(net->bytes_out);
    json += ",\"requests_in\":" + u64(net->requests_in);
    json += ",\"protocol_errors\":" + u64(net->protocol_errors);
    json += ",\"backpressure_disconnects\":" +
            u64(net->backpressure_disconnects);
    json += ",\"idle_disconnects\":" + u64(net->idle_disconnects);
    json += "}";
  }
  json += ",\"latency\":{\"queue\":" + HistogramJson(QueueLatency()) +
          ",\"execute\":" + HistogramJson(ComputeLatency()) + "}";
  json += "}";
  return json;
}

}  // namespace pkgm::serve
