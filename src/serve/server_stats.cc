#include "serve/server_stats.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pkgm::serve {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// 0.5 → "p50", 0.99 → "p99", 0.999 → "p999", 0.9999 → "p9999".
std::string QuantileLabel(double q) {
  std::string digits = StrFormat("%g", q * 100.0);
  digits.erase(std::remove(digits.begin(), digits.end(), '.'), digits.end());
  return "p" + digits;
}

std::string HistogramJson(const Histogram& h,
                          const std::vector<double>& quantiles) {
  if (h.count() == 0) return "{\"count\":0}";
  std::string json =
      StrFormat("{\"count\":%llu", static_cast<unsigned long long>(h.count()));
  std::vector<double> values = h.Percentiles(quantiles);
  for (size_t i = 0; i < quantiles.size(); ++i) {
    json += StrFormat(",\"%s_us\":%.2f", QuantileLabel(quantiles[i]).c_str(),
                      values[i]);
  }
  json += StrFormat(",\"mean_us\":%.2f}", h.Mean());
  return json;
}

}  // namespace

void ServerStats::RecordCompleted(ResponseCode code, double queue_micros,
                                  double compute_micros) {
  switch (code) {
    case ResponseCode::kOk: ++ok_; break;
    case ResponseCode::kDeadlineExceeded: ++deadline_exceeded_; break;
    case ResponseCode::kInvalidItem: ++invalid_item_; break;
    // Admission-time rejections never reach a worker (Enqueue resolves them
    // directly), so a kRejected here is a post-admission shed and must be
    // counted or in_flight() drifts.
    case ResponseCode::kRejected: ++exec_rejected_; break;
    case ResponseCode::kQuotaExceeded: break;  // counted at admission
    case ResponseCode::kNetworkError: break;  // client-side only
  }
  std::lock_guard<std::mutex> lock(histo_mu_);
  queue_micros_.Record(queue_micros);
  compute_micros_.Record(compute_micros);
}

Histogram ServerStats::QueueLatency() const {
  std::lock_guard<std::mutex> lock(histo_mu_);
  return queue_micros_;
}

Histogram ServerStats::ComputeLatency() const {
  std::lock_guard<std::mutex> lock(histo_mu_);
  return compute_micros_;
}

void ServerStats::SetQuantiles(std::vector<double> quantiles) {
  PKGM_CHECK(!quantiles.empty());
  for (size_t i = 0; i < quantiles.size(); ++i) {
    PKGM_CHECK_GT(quantiles[i], 0.0);
    PKGM_CHECK_LE(quantiles[i], 1.0);
    if (i > 0) {
      PKGM_CHECK_GT(quantiles[i], quantiles[i - 1]);
    }
  }
  quantiles_ = std::move(quantiles);
}

void ServerStats::SetBackend(std::string description) {
  std::lock_guard<std::mutex> lock(backend_mu_);
  backend_ = std::move(description);
}

std::string ServerStats::backend() const {
  std::lock_guard<std::mutex> lock(backend_mu_);
  return backend_;
}

std::string ServerStats::ToTable(uint64_t queue_depth, const CacheStats* cache,
                                 const NetCounters* net,
                                 const CoalescerStats* coalescer) const {
  TablePrinter counters({"counter", "value"});
  {
    std::lock_guard<std::mutex> lock(backend_mu_);
    if (!backend_.empty()) counters.AddRow({"backend", backend_});
  }
  counters.AddRow({"requests accepted", std::to_string(accepted())});
  counters.AddRow({"requests rejected", std::to_string(rejected())});
  counters.AddRow({"quota rejected", std::to_string(quota_rejected())});
  counters.AddRow({"responses ok", std::to_string(ok())});
  counters.AddRow({"deadline exceeded", std::to_string(deadline_exceeded())});
  counters.AddRow({"invalid item", std::to_string(invalid_item())});
  counters.AddRow({"rejected at execute", std::to_string(exec_rejected())});
  counters.AddRow({"backend fetches", std::to_string(backend_fetches())});
  counters.AddRow({"coalesced requests", std::to_string(coalesced())});
  counters.AddRow({"queue depth (requests)", std::to_string(queue_depth)});
  for (uint8_t t = 0; t <= kMaxTaskKind; ++t) {
    const TaskKind task = static_cast<TaskKind>(t);
    counters.AddRow({StrFormat("completed %s", TaskKindName(task)),
                     std::to_string(task_completed(task))});
  }
  if (cache != nullptr) {
    counters.AddSeparator();
    counters.AddRow({"cache hits", std::to_string(cache->hits)});
    counters.AddRow({"cache misses", std::to_string(cache->misses)});
    counters.AddRow({"cache hit rate",
                     StrFormat("%.1f%%", 100.0 * cache->HitRate())});
    counters.AddRow({"cache evictions", std::to_string(cache->evictions)});
    counters.AddRow({"cache entries", std::to_string(cache->entries)});
    counters.AddRow({"cache stale inserts dropped",
                     std::to_string(cache->stale_inserts)});
  }
  if (coalescer != nullptr) {
    counters.AddSeparator();
    counters.AddRow({"coalesce leaders", std::to_string(coalescer->leaders)});
    counters.AddRow({"coalesce joined", std::to_string(coalescer->joined)});
    counters.AddRow(
        {"coalesce gen bypassed", std::to_string(coalescer->bypassed)});
  }
  if (net != nullptr) {
    counters.AddSeparator();
    counters.AddRow({"net connections accepted",
                     std::to_string(net->connections_accepted)});
    counters.AddRow({"net connections active",
                     std::to_string(net->connections_active)});
    counters.AddRow({"net frames in", std::to_string(net->frames_in)});
    counters.AddRow({"net frames out", std::to_string(net->frames_out)});
    counters.AddRow({"net bytes in", std::to_string(net->bytes_in)});
    counters.AddRow({"net bytes out", std::to_string(net->bytes_out)});
    counters.AddRow({"net requests decoded", std::to_string(net->requests_in)});
    counters.AddRow({"net protocol errors",
                     std::to_string(net->protocol_errors)});
    counters.AddRow({"net backpressure disconnects",
                     std::to_string(net->backpressure_disconnects)});
    counters.AddRow({"net idle disconnects",
                     std::to_string(net->idle_disconnects)});
    counters.AddRow({"net io backend", net->io_backend.empty()
                                           ? std::string("-")
                                           : net->io_backend});
    counters.AddRow({"net io wait calls", std::to_string(net->io_wait_calls)});
    counters.AddRow(
        {"net io recv syscalls", std::to_string(net->io_recv_syscalls)});
    counters.AddRow(
        {"net io send syscalls", std::to_string(net->io_send_syscalls)});
    counters.AddRow(
        {"net io recv submissions", std::to_string(net->io_recv_submissions)});
    counters.AddRow(
        {"net io send submissions", std::to_string(net->io_send_submissions)});
    counters.AddRow(
        {"net frames per syscall", StrFormat("%.2f", net->FramesPerSyscall())});
  }

  std::vector<std::string> headers = {"stage", "count"};
  for (double q : quantiles_) headers.push_back(QuantileLabel(q) + " us");
  headers.push_back("mean us");
  TablePrinter latency(headers);
  auto add = [this, &latency](const char* stage, const Histogram& h) {
    std::vector<std::string> row = {stage, std::to_string(h.count())};
    if (h.count() == 0) {
      for (size_t i = 0; i < quantiles_.size() + 1; ++i) row.push_back("-");
    } else {
      for (double v : h.Percentiles(quantiles_)) {
        row.push_back(StrFormat("%.2f", v));
      }
      row.push_back(StrFormat("%.2f", h.Mean()));
    }
    latency.AddRow(row);
  };
  {
    std::lock_guard<std::mutex> lock(histo_mu_);
    add("queue wait", queue_micros_);
    add("execute", compute_micros_);
  }
  return counters.ToString() + "\n" + latency.ToString();
}

std::string ServerStats::StatsJson(uint64_t queue_depth,
                                   const CacheStats* cache,
                                   const NetCounters* net,
                                   const CoalescerStats* coalescer) const {
  auto u64 = [](uint64_t v) {
    return std::to_string(static_cast<unsigned long long>(v));
  };
  std::string json = "{";
  json += "\"backend\":\"" + JsonEscape(backend()) + "\"";
  json += ",\"accepted\":" + u64(accepted());
  json += ",\"rejected\":" + u64(rejected());
  json += ",\"quota_rejected\":" + u64(quota_rejected());
  json += ",\"ok\":" + u64(ok());
  json += ",\"deadline_exceeded\":" + u64(deadline_exceeded());
  json += ",\"invalid_item\":" + u64(invalid_item());
  json += ",\"exec_rejected\":" + u64(exec_rejected());
  json += ",\"backend_fetches\":" + u64(backend_fetches());
  json += ",\"coalesced\":" + u64(coalesced());
  json += ",\"queue_depth\":" + u64(queue_depth);
  json += ",\"tasks\":{";
  for (uint8_t t = 0; t <= kMaxTaskKind; ++t) {
    const TaskKind task = static_cast<TaskKind>(t);
    if (t > 0) json += ",";
    json += StrFormat("\"%s\":", TaskKindName(task)) + u64(task_completed(task));
  }
  json += "}";
  if (cache != nullptr) {
    json += StrFormat(
        ",\"cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f,"
        "\"evictions\":%llu,\"entries\":%llu,\"stale_inserts\":%llu}",
        static_cast<unsigned long long>(cache->hits),
        static_cast<unsigned long long>(cache->misses), cache->HitRate(),
        static_cast<unsigned long long>(cache->evictions),
        static_cast<unsigned long long>(cache->entries),
        static_cast<unsigned long long>(cache->stale_inserts));
  }
  if (coalescer != nullptr) {
    json += StrFormat(
        ",\"coalescer\":{\"leaders\":%llu,\"joined\":%llu,\"bypassed\":%llu}",
        static_cast<unsigned long long>(coalescer->leaders),
        static_cast<unsigned long long>(coalescer->joined),
        static_cast<unsigned long long>(coalescer->bypassed));
  }
  if (net != nullptr) {
    json += ",\"net\":{";
    json += "\"connections_accepted\":" + u64(net->connections_accepted);
    json += ",\"connections_closed\":" + u64(net->connections_closed);
    json += ",\"connections_active\":" + u64(net->connections_active);
    json += ",\"frames_in\":" + u64(net->frames_in);
    json += ",\"frames_out\":" + u64(net->frames_out);
    json += ",\"bytes_in\":" + u64(net->bytes_in);
    json += ",\"bytes_out\":" + u64(net->bytes_out);
    json += ",\"requests_in\":" + u64(net->requests_in);
    json += ",\"protocol_errors\":" + u64(net->protocol_errors);
    json += ",\"backpressure_disconnects\":" +
            u64(net->backpressure_disconnects);
    json += ",\"idle_disconnects\":" + u64(net->idle_disconnects);
    json += ",\"io_backend\":\"" + JsonEscape(net->io_backend) + "\"";
    json += ",\"io_wait_calls\":" + u64(net->io_wait_calls);
    json += ",\"io_recv_syscalls\":" + u64(net->io_recv_syscalls);
    json += ",\"io_send_syscalls\":" + u64(net->io_send_syscalls);
    json += ",\"io_recv_submissions\":" + u64(net->io_recv_submissions);
    json += ",\"io_send_submissions\":" + u64(net->io_send_submissions);
    json += ",\"frames_per_syscall\":" +
            StrFormat("%.3f", net->FramesPerSyscall());
    json += "}";
  }
  json += ",\"latency\":{\"queue\":" + HistogramJson(QueueLatency(), quantiles_) +
          ",\"execute\":" + HistogramJson(ComputeLatency(), quantiles_) + "}";
  json += "}";
  return json;
}

}  // namespace pkgm::serve
