#ifndef PKGM_SERVE_BOUNDED_QUEUE_H_
#define PKGM_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.h"

namespace pkgm::serve {

/// Bounded multi-producer / multi-consumer queue. Producers never block:
/// TryPush fails immediately when the queue is at capacity (the server's
/// admission-control point — backpressure is surfaced to clients as a
/// rejection, not as an unbounded pile-up). Consumers block in Pop until
/// an element arrives or the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PKGM_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues if there is room. Returns false (and leaves `item` moved-from
  /// only on success) when full or closed.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed AND empty.
  /// Returns false only in the closed-and-drained case (consumer shutdown).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  /// Stops accepting new elements and wakes all blocked consumers. Elements
  /// already queued are still handed out by Pop (graceful drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_BOUNDED_QUEUE_H_
