#ifndef PKGM_SERVE_LOAD_GEN_H_
#define PKGM_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/request.h"
#include "util/histogram.h"

namespace pkgm::serve {

/// Arrival process shaping the offered load.
enum class ArrivalProcess {
  /// Evenly spaced arrivals at exactly `rate_qps`.
  kUniform,
  /// Memoryless (exponential inter-arrival) — the standard model for
  /// independent user traffic.
  kPoisson,
  /// Square-wave modulated Poisson: `burst_factor`× the base rate during
  /// the on-half of each `burst_period_s`, throttled during the off-half
  /// so the average stays `rate_qps`. Models flash-sale / diurnal spikes.
  kBurst,
};

const char* ArrivalProcessName(ArrivalProcess arrival);

struct LoadGenOptions {
  /// Offered load, requests/second, across all generator threads.
  double rate_qps = 1000.0;
  uint64_t total_requests = 10000;
  /// Generator threads; arrival i is owned by thread i % threads, each
  /// thread drawing its slice of the process from a forked seeded Rng, so
  /// a run is replayable for any thread count.
  size_t threads = 2;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Zipf exponent over the item catalog (rank 0 hottest).
  double zipf_s = 0.99;
  uint32_t num_items = 1000;
  /// Tenants round-robin over requests; each tenant's Zipf head is offset
  /// into a distinct slice of the catalog (distinct hot sets).
  uint16_t num_tenants = 1;
  /// Per-request deadline; 0 = none.
  uint32_t deadline_us = 0;
  /// Per-task-kind mix weights, indexed by TaskKind (lookup, recommend,
  /// classify, align). Normalised at run time over their sum; all-lookup
  /// by default. The inference kinds only come back kOk when the target
  /// server has an InferExecutor attached.
  double mix[kMaxTaskKind + 1] = {1.0, 0.0, 0.0, 0.0};
  /// User-id space for kRecommend requests (drawn uniformly).
  uint32_t num_users = 60;
  /// top_k carried on kClassify requests.
  uint32_t top_k = 3;
  uint64_t seed = 42;
  double burst_factor = 4.0;
  double burst_period_s = 0.25;
  /// Open loop (default): arrivals fire at their scheduled instant no
  /// matter how slow responses are, and latency is measured from the
  /// *intended* send time — queueing delay the server causes is charged to
  /// the server (no coordinated omission). Closed loop: each thread waits
  /// for the response before the next send and measures from the actual
  /// send — the flawed-but-common methodology, kept for the honesty check.
  bool open_loop = true;
};

/// Everything a run produced, merged across generator threads.
struct LoadGenReport {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t quota_rejected = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t invalid_item = 0;
  uint64_t network_error = 0;
  uint64_t cache_hits = 0;
  double elapsed_s = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  /// End-to-end latency, µs, bucketed. Open loop: completion − intended
  /// send. Closed loop: completion − actual send.
  Histogram latency_us{HistogramMode::kBucketed};
  /// The same latency split by TaskKind (all codes), plus per-kind
  /// completion counts — the per-task tail picture for mixed workloads.
  Histogram task_latency_us[kMaxTaskKind + 1] = {
      Histogram{HistogramMode::kBucketed}, Histogram{HistogramMode::kBucketed},
      Histogram{HistogramMode::kBucketed}, Histogram{HistogramMode::kBucketed}};
  uint64_t task_completed[kMaxTaskKind + 1] = {};
  uint64_t task_ok[kMaxTaskKind + 1] = {};
  /// Time kOk responses spent inside the server (queue + compute), µs —
  /// the portion the serving stack controls, excluding generator
  /// scheduling lateness that the end-to-end number honestly charges.
  /// This is what deadline + quota shedding bound: a request the server
  /// cannot answer inside its deadline is shed, not served late.
  Histogram server_ok_us{HistogramMode::kBucketed};
};

/// Submission seam: the generator hands over single-request batches and a
/// completion callback (index within the batch, response). Both the
/// in-process KnowledgeServer (SubmitBatchAsync) and the socket NetClient
/// (SubmitBatch futures drained by collector threads) fit behind it.
using AsyncSubmitFn = std::function<void(
    std::vector<ServiceRequest>,
    std::function<void(size_t, ServiceResponse)>)>;

/// Drives `submit` with the configured traffic and blocks until every
/// response has arrived. Deterministic request stream for a given
/// (seed, threads, options); actual timing is as close to the schedule as
/// the host allows.
LoadGenReport RunLoadGen(const LoadGenOptions& options,
                         const AsyncSubmitFn& submit);

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_LOAD_GEN_H_
