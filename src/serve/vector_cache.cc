#include "serve/vector_cache.h"

#include "util/logging.h"

namespace pkgm::serve {

ShardedVectorCache::ShardedVectorCache(size_t capacity, size_t num_shards) {
  PKGM_CHECK(capacity > 0);
  PKGM_CHECK(num_shards > 0);
  // Never let striping round a shard down to zero slots.
  if (num_shards > capacity) num_shards = capacity;
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedVectorCache::Shard& ShardedVectorCache::ShardFor(uint64_t key) {
  // Fibonacci multiplicative mix so consecutive item ids spread across
  // shards instead of striding through one.
  const uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
  return *shards_[(mixed >> 32) % shards_.size()];
}

bool ShardedVectorCache::Lookup(uint32_t item, core::ServiceMode mode,
                                Vec* out) {
  const uint64_t key = Key(item, mode);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  *out = it->second->second;
  return true;
}

void ShardedVectorCache::Insert(uint32_t item, core::ServiceMode mode,
                                const Vec& value, uint64_t generation) {
  const uint64_t key = Key(item, mode);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Invalidate() bumps generation_ before clearing any shard, so under the
  // shard lock this check is authoritative: a stale tag can never land
  // after its shard was cleared.
  if (generation != generation_.load(std::memory_order_acquire)) {
    ++shard.stale_inserts;
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key, value);
  shard.index[key] = shard.lru.begin();
}

void ShardedVectorCache::Invalidate() {
  // Generation first: an in-flight Insert tagged with the old generation
  // must be rejected even if it reaches a shard we have not cleared yet.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheStats ShardedVectorCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
    stats.stale_inserts += shard->stale_inserts;
  }
  return stats;
}

}  // namespace pkgm::serve
