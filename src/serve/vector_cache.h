#ifndef PKGM_SERVE_VECTOR_CACHE_H_
#define PKGM_SERVE_VECTOR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/service.h"
#include "tensor/vec.h"

namespace pkgm::serve {

/// Aggregated cache counters (summed across shards).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  /// Inserts dropped because the cache was invalidated between the
  /// caller's generation() snapshot and its Insert (stale values computed
  /// against a replaced model).
  uint64_t stale_inserts = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Sharded, mutex-striped LRU cache of condensed service vectors keyed by
/// (item, mode). Serving traffic is Zipf-skewed (a few head items absorb
/// most queries), so a small cache short-circuits the S_T/S_R computation
/// for the hot set; striping keeps concurrent workers off one lock.
///
/// Values are immutable snapshots of the model's output — after a model
/// refresh (new checkpoint swapped in) callers must Invalidate().
///
/// Invalidation is raced against by in-flight computations: a value
/// computed against the old model could land *after* Invalidate() and be
/// served stale forever. The generation counter closes that window —
/// callers snapshot generation() *before* taking the model snapshot they
/// compute from, and Insert drops the value if an Invalidate happened in
/// between (counted as `stale_inserts`).
class ShardedVectorCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` (>= 1) independent LRU shards.
  ShardedVectorCache(size_t capacity, size_t num_shards = 8);

  ShardedVectorCache(const ShardedVectorCache&) = delete;
  ShardedVectorCache& operator=(const ShardedVectorCache&) = delete;

  /// Copies the cached vector into `*out` and returns true on a hit;
  /// returns false (and bumps the miss counter) otherwise.
  bool Lookup(uint32_t item, core::ServiceMode mode, Vec* out);

  /// Inserts or refreshes (item, mode) → value, evicting the shard's
  /// least-recently-used entry when the shard is at capacity. `generation`
  /// must be a generation() snapshot taken before the model state `value`
  /// was computed from; the insert is dropped if the cache has been
  /// invalidated since.
  void Insert(uint32_t item, core::ServiceMode mode, const Vec& value,
              uint64_t generation);

  /// Drops every entry in every shard and advances the generation (model
  /// refresh). Hit/miss/eviction counters are preserved; `entries` drops
  /// to zero.
  void Invalidate();

  /// Current invalidation generation; pass to Insert.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Sums counters across shards. Consistent per-shard, approximate
  /// globally (shards are locked one at a time).
  CacheStats Stats() const;

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  size_t num_shards() const { return shards_.size(); }

 private:
  // Key layout: item in the high bits, mode in the low 2 bits.
  static uint64_t Key(uint32_t item, core::ServiceMode mode) {
    return (static_cast<uint64_t>(item) << 2) |
           static_cast<uint64_t>(mode);
  }

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<uint64_t, Vec>> lru;
    std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Vec>>::iterator>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t stale_inserts = 0;
  };

  Shard& ShardFor(uint64_t key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Bumped by Invalidate() before the shards are cleared, so any insert
  /// tagged with an older generation is rejected under the shard lock.
  std::atomic<uint64_t> generation_{0};
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_VECTOR_CACHE_H_
