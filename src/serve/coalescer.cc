#include "serve/coalescer.h"

#include "util/logging.h"

namespace pkgm::serve {

HotKeyCoalescer::HotKeyCoalescer(size_t num_shards) {
  PKGM_CHECK_GE(num_shards, 1u);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

HotKeyCoalescer::Shard& HotKeyCoalescer::ShardFor(uint64_t key) {
  // Fibonacci multiplicative mix, same idiom as ShardedVectorCache, so
  // adjacent item ids spread across shards.
  const uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
  return *shards_[(mixed >> 32) % shards_.size()];
}

bool HotKeyCoalescer::Fetch(uint64_t key, uint64_t generation,
                            const std::function<Vec()>& compute, Vec* out) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.flights.find(key);
    if (it != shard.flights.end()) {
      if (it->second->generation == generation) {
        flight = it->second;  // join the in-flight compute
      }
      // else: a hot swap landed between this caller's generation snapshot
      // and the leader's — the leader's value may be from the wrong side
      // of the swap. Fall through with no flight: compute independently.
    } else {
      flight = std::make_shared<Flight>();
      flight->generation = generation;
      shard.flights.emplace(key, flight);
      leader = true;
    }
  }

  if (flight == nullptr) {
    ++bypassed_;
    *out = compute();
    return true;  // caller computed fresh; it may cache the value
  }

  if (leader) {
    ++leaders_;
    Vec value = compute();
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->value = value;
      flight->done = true;
    }
    flight->cv.notify_all();
    {
      // Deregister — but only if the table still points at *our* flight.
      // A bypasser-turned-new-leader may have replaced the entry already.
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.flights.find(key);
      if (it != shard.flights.end() && it->second == flight) {
        shard.flights.erase(it);
      }
    }
    *out = std::move(value);
    return true;
  }

  ++joined_;
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [&flight] { return flight->done; });
  *out = flight->value;
  return false;
}

CoalescerStats HotKeyCoalescer::stats() const {
  CoalescerStats s;
  s.leaders = leaders_.load();
  s.joined = joined_.load();
  s.bypassed = bypassed_.load();
  return s;
}

}  // namespace pkgm::serve
