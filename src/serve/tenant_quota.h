#ifndef PKGM_SERVE_TENANT_QUOTA_H_
#define PKGM_SERVE_TENANT_QUOTA_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "serve/request.h"

namespace pkgm::serve {

/// Per-tenant admission quotas: one token bucket per tenant id, so a single
/// tenant's burst is shed at admission instead of queueing behind — and
/// blowing the SLO of — every other tenant's traffic.
///
/// Buckets refill continuously at `rate_per_sec` tokens/second up to
/// `burst` tokens; each admitted request spends one token. A tenant first
/// seen mid-run starts with a full bucket. With rate_per_sec == 0 a tenant
/// gets exactly `burst` admissions ever — the deterministic configuration
/// the unit tests use.
///
/// Thread-safe: the tenant map is striped across kStripes mutexes
/// (tenant id picks the stripe), so concurrent submitters for different
/// tenants rarely contend.
class TenantQuotas {
 public:
  /// Requires burst >= 1 and rate_per_sec >= 0.
  TenantQuotas(double rate_per_sec, double burst);

  /// Spends one token from `tenant`'s bucket if available. Returns false —
  /// caller sheds the request with kQuotaExceeded — when the bucket is dry.
  bool TryAdmit(uint16_t tenant, ServeClock::time_point now);

  /// Total requests shed across all tenants.
  uint64_t shed_count() const;

 private:
  static constexpr size_t kStripes = 16;

  struct Bucket {
    double tokens = 0.0;
    ServeClock::time_point last_refill;
    bool initialized = false;
  };
  struct Stripe {
    std::mutex mu;
    std::unordered_map<uint16_t, Bucket> buckets;
    uint64_t shed = 0;
  };

  const double rate_per_sec_;
  const double burst_;
  mutable std::array<Stripe, kStripes> stripes_;
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_TENANT_QUOTA_H_
