#ifndef PKGM_SERVE_REQUEST_H_
#define PKGM_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/service.h"
#include "tensor/vec.h"

namespace pkgm::serve {

/// Which service form the client wants: the sequence of per-key-relation
/// vectors (Fig. 2, for sequence-input models) or the single condensed
/// vector (Fig. 3 / Eq. 20, for single-input models).
enum class ServiceForm { kSequence, kCondensed };

/// Terminal status of a served request.
enum class ResponseCode {
  kOk = 0,
  /// Admission control: the request queue was full at submit time.
  kRejected,
  /// The request expired in the queue before a worker picked it up.
  kDeadlineExceeded,
  /// Item id outside the provider's item range.
  kInvalidItem,
  /// Client-side only (src/net/): the connection failed before a response
  /// arrived — connect error, write error, or disconnect with the request
  /// in flight. Never produced by the server.
  kNetworkError,
  /// Admission control: the request's tenant exhausted its token bucket.
  /// Distinct from kRejected (global queue saturation) so one tenant's
  /// burst is visibly shed without implicating overall capacity.
  kQuotaExceeded,
};

/// Human-readable name ("Ok", "Rejected", ...).
inline const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return "Ok";
    case ResponseCode::kRejected: return "Rejected";
    case ResponseCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ResponseCode::kInvalidItem: return "InvalidItem";
    case ResponseCode::kNetworkError: return "NetworkError";
    case ResponseCode::kQuotaExceeded: return "QuotaExceeded";
  }
  return "Unknown";
}

/// Clock used for request deadlines and latency accounting.
using ServeClock = std::chrono::steady_clock;

/// What the request asks the server to compute. kLookup is the original
/// service-vector fetch; the three inference kinds (wire v3) run a full
/// downstream-model forward on the server — the paper's serving story.
enum class TaskKind : uint8_t {
  /// Service vectors for one item (sequence or condensed form).
  kLookup = 0,
  /// NCF forward for (user, item): score = P(interaction) (§III-D).
  kRecommend = 1,
  /// TinyBert + head forward over the item's title (+ injected service
  /// vectors): top-k class probabilities (§III-B).
  kClassify = 2,
  /// Pair-encoder forward over (item, item_b): same-product score (§III-C).
  kAlign = 3,
};

/// Human-readable name ("lookup", "recommend", ...).
inline const char* TaskKindName(TaskKind task) {
  switch (task) {
    case TaskKind::kLookup: return "lookup";
    case TaskKind::kRecommend: return "recommend";
    case TaskKind::kClassify: return "classify";
    case TaskKind::kAlign: return "align";
  }
  return "unknown";
}

inline constexpr uint8_t kMaxTaskKind = static_cast<uint8_t>(TaskKind::kAlign);

/// One knowledge-service query: "item `item`'s service vectors under
/// `mode`, in `form`" — the online call downstream systems make instead of
/// touching triple data (§II-D/E, triple data independency). The inference
/// kinds reuse `item` + `mode` and add their task-specific operands.
struct ServiceRequest {
  TaskKind task = TaskKind::kLookup;
  uint32_t item = 0;
  core::ServiceMode mode = core::ServiceMode::kAll;
  ServiceForm form = ServiceForm::kCondensed;
  /// kRecommend: the user the item is scored for.
  uint32_t user = 0;
  /// kAlign: the second item of the pair.
  uint32_t item_b = 0;
  /// kClassify: number of top classes wanted (clamped to num_classes;
  /// 0 = 1).
  uint32_t top_k = 1;
  /// Originating tenant, carried through the wire protocol (the ex-reserved
  /// u16 in each GetVectors entry) and checked against per-tenant admission
  /// quotas when the server has them configured. 0 = default tenant.
  uint16_t tenant = 0;
  /// Absolute expiry. A worker that dequeues the request after this instant
  /// answers kDeadlineExceeded without computing. time_point::max() = none.
  ServeClock::time_point deadline = ServeClock::time_point::max();
};

/// Result delivered through the future obtained at submit time.
struct ServiceResponse {
  ResponseCode code = ResponseCode::kOk;
  /// kLookup only. Sequence form: 2k (kAll) or k vectors of dim d, triple
  /// block first. Condensed form: exactly one vector of CondensedDim(mode).
  /// Empty on any non-Ok code.
  std::vector<Vec> vectors;
  /// kRecommend: sigmoid(NCF logit). kAlign: raw pair-encoder logit
  /// (monotone in P(same product); > 0 means "same"). 0 otherwise.
  float score = 0.0f;
  /// kClassify: the top-k class ids, most probable first, with their
  /// softmax probabilities. Empty for other kinds / non-Ok codes.
  std::vector<uint32_t> class_ids;
  std::vector<float> class_probs;
  /// True iff a condensed vector was served from the cache.
  bool cache_hit = false;
  /// Time the request spent queued / executing, microseconds.
  double queue_micros = 0.0;
  double compute_micros = 0.0;
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_REQUEST_H_
