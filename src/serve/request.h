#ifndef PKGM_SERVE_REQUEST_H_
#define PKGM_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/service.h"
#include "tensor/vec.h"

namespace pkgm::serve {

/// Which service form the client wants: the sequence of per-key-relation
/// vectors (Fig. 2, for sequence-input models) or the single condensed
/// vector (Fig. 3 / Eq. 20, for single-input models).
enum class ServiceForm { kSequence, kCondensed };

/// Terminal status of a served request.
enum class ResponseCode {
  kOk = 0,
  /// Admission control: the request queue was full at submit time.
  kRejected,
  /// The request expired in the queue before a worker picked it up.
  kDeadlineExceeded,
  /// Item id outside the provider's item range.
  kInvalidItem,
  /// Client-side only (src/net/): the connection failed before a response
  /// arrived — connect error, write error, or disconnect with the request
  /// in flight. Never produced by the server.
  kNetworkError,
  /// Admission control: the request's tenant exhausted its token bucket.
  /// Distinct from kRejected (global queue saturation) so one tenant's
  /// burst is visibly shed without implicating overall capacity.
  kQuotaExceeded,
};

/// Human-readable name ("Ok", "Rejected", ...).
inline const char* ResponseCodeName(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk: return "Ok";
    case ResponseCode::kRejected: return "Rejected";
    case ResponseCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ResponseCode::kInvalidItem: return "InvalidItem";
    case ResponseCode::kNetworkError: return "NetworkError";
    case ResponseCode::kQuotaExceeded: return "QuotaExceeded";
  }
  return "Unknown";
}

/// Clock used for request deadlines and latency accounting.
using ServeClock = std::chrono::steady_clock;

/// One knowledge-service query: "item `item`'s service vectors under
/// `mode`, in `form`" — the online call downstream systems make instead of
/// touching triple data (§II-D/E, triple data independency).
struct ServiceRequest {
  uint32_t item = 0;
  core::ServiceMode mode = core::ServiceMode::kAll;
  ServiceForm form = ServiceForm::kCondensed;
  /// Originating tenant, carried through the wire protocol (the ex-reserved
  /// u16 in each GetVectors entry) and checked against per-tenant admission
  /// quotas when the server has them configured. 0 = default tenant.
  uint16_t tenant = 0;
  /// Absolute expiry. A worker that dequeues the request after this instant
  /// answers kDeadlineExceeded without computing. time_point::max() = none.
  ServeClock::time_point deadline = ServeClock::time_point::max();
};

/// Result delivered through the future obtained at submit time.
struct ServiceResponse {
  ResponseCode code = ResponseCode::kOk;
  /// Sequence form: 2k (kAll) or k vectors of dim d, triple block first.
  /// Condensed form: exactly one vector of CondensedDim(mode).
  /// Empty on any non-Ok code.
  std::vector<Vec> vectors;
  /// True iff a condensed vector was served from the cache.
  bool cache_hit = false;
  /// Time the request spent queued / executing, microseconds.
  double queue_micros = 0.0;
  double compute_micros = 0.0;
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_REQUEST_H_
