#ifndef PKGM_SERVE_KNOWLEDGE_SERVER_H_
#define PKGM_SERVE_KNOWLEDGE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/service.h"
#include "serve/bounded_queue.h"
#include "serve/request.h"
#include "serve/server_stats.h"
#include "serve/vector_cache.h"
#include "util/thread_pool.h"

namespace pkgm::serve {

struct KnowledgeServerOptions {
  /// Worker threads executing requests (>= 1).
  size_t num_workers = 2;
  /// Request-queue capacity in *batches*; a SubmitBatch call that finds the
  /// queue full is rejected wholesale (admission control / backpressure).
  size_t queue_capacity = 256;
  /// Serve condensed vectors through the sharded LRU cache.
  bool enable_cache = true;
  /// Total cached (item, mode) entries across all shards.
  size_t cache_capacity = 8192;
  /// Mutex stripes in the cache.
  size_t cache_shards = 8;
};

/// The online knowledge-serving front end of the paper's deployment story
/// (§II-D/E): downstream systems submit ServiceRequest batches and get
/// back service vectors, never triples.
///
/// Request lifecycle:
///   Submit/SubmitBatch  → admission control against a bounded MPMC queue
///                         (full ⇒ every request in the batch resolves
///                         immediately with kRejected)
///   worker Pop          → per-request deadline check (expired ⇒
///                         kDeadlineExceeded, no compute)
///   execute             → condensed requests consult the sharded LRU
///                         cache; misses compute via ServiceVectorProvider
///                         and populate it; sequence requests always
///                         compute
///   promise.set_value   → the future returned at submit time becomes
///                         ready
///
/// Thread-safe: any number of client threads may submit concurrently with
/// the worker pool draining. The provider (and the model under it) must
/// outlive the server and stay immutable while serving; on a model
/// refresh, call InvalidateCache().
class KnowledgeServer {
 public:
  KnowledgeServer(const core::ServiceVectorProvider* provider,
                  KnowledgeServerOptions options = {});
  ~KnowledgeServer();

  KnowledgeServer(const KnowledgeServer&) = delete;
  KnowledgeServer& operator=(const KnowledgeServer&) = delete;

  /// Spawns the worker pool. Requests may be submitted before Start();
  /// they wait in the queue (subject to capacity) until workers run.
  void Start();

  /// Closes the queue, drains every already-accepted request and joins the
  /// workers. Idempotent. Submissions after Stop() are rejected.
  void Stop();

  /// Enqueues one request. The returned future always becomes ready:
  /// immediately with kRejected when the queue is full, otherwise when a
  /// worker completes the request.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Enqueues `requests` as one unit of work (one queue slot, executed
  /// back-to-back by one worker — the batching that amortizes queue and
  /// wake-up overhead). All-or-nothing admission.
  std::vector<std::future<ServiceResponse>> SubmitBatch(
      std::vector<ServiceRequest> requests);

  /// Requests accepted but not yet completed.
  size_t queue_depth() const { return pending_requests_.load(); }

  const ServerStats& stats() const { return stats_; }
  /// Null when the cache is disabled.
  const ShardedVectorCache* cache() const { return cache_.get(); }

  /// Drops all cached vectors (call after swapping in a new model).
  void InvalidateCache();

  /// Counters + queue gauge + cache + latency percentiles as ASCII tables.
  std::string StatsReport() const;

  const core::ServiceVectorProvider* provider() const { return provider_; }

 private:
  struct PendingRequest {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    ServeClock::time_point enqueue_time;
  };
  using Batch = std::vector<PendingRequest>;

  void WorkerLoop();
  /// Runs the query modules (through the cache for condensed requests).
  ServiceResponse Execute(const ServiceRequest& request);

  const core::ServiceVectorProvider* provider_;
  const KnowledgeServerOptions options_;
  BoundedQueue<Batch> queue_;
  std::unique_ptr<ShardedVectorCache> cache_;
  ServerStats stats_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<size_t> pending_requests_{0};
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_KNOWLEDGE_SERVER_H_
