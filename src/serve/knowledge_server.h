#ifndef PKGM_SERVE_KNOWLEDGE_SERVER_H_
#define PKGM_SERVE_KNOWLEDGE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/service.h"
#include "serve/bounded_queue.h"
#include "serve/coalescer.h"
#include "serve/infer_executor.h"
#include "serve/request.h"
#include "serve/server_stats.h"
#include "serve/tenant_quota.h"
#include "serve/vector_cache.h"
#include "store/model_registry.h"
#include "util/thread_pool.h"

namespace pkgm::serve {

struct KnowledgeServerOptions {
  /// Worker threads executing requests (>= 1).
  size_t num_workers = 2;
  /// Request-queue capacity in *batches*; a SubmitBatch call that finds the
  /// queue full is rejected wholesale (admission control / backpressure).
  size_t queue_capacity = 256;
  /// Serve condensed vectors through the sharded LRU cache.
  bool enable_cache = true;
  /// Total cached (item, mode) entries across all shards.
  size_t cache_capacity = 8192;
  /// Mutex stripes in the cache.
  size_t cache_shards = 8;
  /// Coalesce concurrent condensed-path cache misses on the same
  /// (item, mode): one backend fetch serves every waiter. Requires the
  /// cache to be enabled (coalescing exists to shield the backend behind
  /// it; without a cache each request must compute anyway).
  bool enable_coalescing = false;
  /// Per-tenant admission quotas: each tenant's token bucket refills at
  /// `tenant_rate` tokens/sec up to `tenant_burst`. tenant_burst == 0
  /// (default) disables quotas entirely.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
};

/// The online knowledge-serving front end of the paper's deployment story
/// (§II-D/E): downstream systems submit ServiceRequest batches and get
/// back service vectors, never triples.
///
/// Request lifecycle:
///   Submit/SubmitBatch  → admission control against a bounded MPMC queue
///                         (full ⇒ every request in the batch resolves
///                         immediately with kRejected)
///   worker Pop          → per-request deadline check (expired ⇒
///                         kDeadlineExceeded, no compute)
///   execute             → condensed requests consult the sharded LRU
///                         cache; misses compute via ServiceVectorProvider
///                         and populate it; sequence requests always
///                         compute
///   promise.set_value   → the future returned at submit time becomes
///                         ready
///
/// Thread-safe: any number of client threads may submit concurrently with
/// the worker pool draining.
///
/// Two parameter-backend modes:
///   * fixed provider — the provider (and the model under it) must outlive
///     the server and stay immutable while serving; on an external model
///     refresh, call InvalidateCache().
///   * registry — each request snapshots the registry's current
///     ServingGeneration (one atomic shared_ptr load), so a Publish() hot-
///     swaps the model with zero downtime: in-flight requests finish on
///     the generation they snapshotted, the first worker to observe a new
///     generation invalidates the condensed-vector cache, and the cache's
///     generation tag keeps racing stale inserts out (see
///     ShardedVectorCache).
class KnowledgeServer {
 public:
  KnowledgeServer(const core::ServiceVectorProvider* provider,
                  KnowledgeServerOptions options = {});
  /// Hot-swappable backend: serves whatever generation `registry`
  /// currently publishes. The registry must outlive the server and have
  /// at least one published generation before the first request executes.
  KnowledgeServer(const store::ModelRegistry* registry,
                  KnowledgeServerOptions options = {});
  ~KnowledgeServer();

  KnowledgeServer(const KnowledgeServer&) = delete;
  KnowledgeServer& operator=(const KnowledgeServer&) = delete;

  /// Plugs in the model-inference backend serving the kRecommend /
  /// kClassify / kAlign request kinds (wire v3). Inference requests ride
  /// the same admission control, tenant quotas, deadlines and queue as
  /// lookups; a worker groups each dequeued batch by task kind and hands
  /// every inference kind to the executor in one ExecuteBatch call.
  /// Without an executor those kinds complete with kRejected. Must be
  /// called before Start(); `executor` must outlive the server.
  void AttachInferExecutor(InferExecutor* executor);

  /// Spawns the worker pool. Requests may be submitted before Start();
  /// they wait in the queue (subject to capacity) until workers run.
  void Start();

  /// Closes the queue, drains every already-accepted request and joins the
  /// workers. Idempotent. Submissions after Stop() are rejected.
  void Stop();

  /// Enqueues one request. The returned future always becomes ready:
  /// immediately with kRejected when the queue is full, otherwise when a
  /// worker completes the request.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Enqueues `requests` as one unit of work (one queue slot, executed
  /// back-to-back by one worker — the batching that amortizes queue and
  /// wake-up overhead). All-or-nothing admission.
  std::vector<std::future<ServiceResponse>> SubmitBatch(
      std::vector<ServiceRequest> requests);

  /// Completion callback for the async submit path: invoked exactly once
  /// per request with its index in the submitted batch. Runs on a worker
  /// thread — or synchronously on the submitting thread when the whole
  /// batch is rejected at admission — so it must be fast and must not
  /// block (the network front end posts the response to an event loop).
  using BatchCallback = std::function<void(size_t, ServiceResponse)>;

  /// Future-free submission used by the epoll front end (src/net/): same
  /// admission control and batching as SubmitBatch, but completion is
  /// delivered through `done` instead of futures, so no thread ever parks
  /// waiting for a response.
  void SubmitBatchAsync(std::vector<ServiceRequest> requests,
                        BatchCallback done);

  /// Requests accepted but not yet completed.
  size_t queue_depth() const { return pending_requests_.load(); }

  const ServerStats& stats() const { return stats_; }
  /// Null when the cache is disabled.
  const ShardedVectorCache* cache() const { return cache_.get(); }
  /// Null when coalescing is disabled.
  const HotKeyCoalescer* coalescer() const { return coalescer_.get(); }
  /// Null when tenant quotas are disabled.
  const TenantQuotas* quotas() const { return quotas_.get(); }

  /// Drops all cached vectors (call after swapping in a new model).
  void InvalidateCache();

  /// Counters + queue gauge + cache + latency percentiles as ASCII tables.
  std::string StatsReport() const;

  /// Machine-readable counterpart to StatsReport() (no net section; the
  /// NetServer wrapping this server emits the combined blob).
  std::string StatsJson() const;

  /// The fixed provider; null in registry mode (use registry()->Current()).
  const core::ServiceVectorProvider* provider() const { return provider_; }
  /// The registry; null in fixed-provider mode.
  const store::ModelRegistry* registry() const { return registry_; }

 private:
  struct PendingRequest {
    ServiceRequest request;
    /// Completion sink; invoked exactly once. The future-returning submit
    /// paths wrap a promise in here.
    std::function<void(ServiceResponse)> done;
    ServeClock::time_point enqueue_time;
  };
  using Batch = std::vector<PendingRequest>;

  /// Shared ctor tail: builds the cache, coalescer and tenant quotas from
  /// options_.
  void InitAdmissionAndCache();

  /// Shared admission + enqueue path behind SubmitBatch/SubmitBatchAsync.
  void Enqueue(Batch batch);

  void WorkerLoop();
  /// One grouped executor call for the batch's requests of `task` kind
  /// (`indices` into `batch`); completes each of them.
  void ExecuteInferGroup(TaskKind task, const std::vector<size_t>& indices,
                         ServeClock::time_point dequeue_time, Batch* batch);
  /// Runs the query modules (through the cache for condensed requests).
  ServiceResponse Execute(const ServiceRequest& request);
  /// Registry mode: invalidate the cache and refresh the stats backend
  /// label the first time a worker sees generation `gen`.
  void ObserveGeneration(const store::ServingGeneration& gen);

  const core::ServiceVectorProvider* provider_;
  const store::ModelRegistry* registry_ = nullptr;
  /// Backend for the inference request kinds; null until attached.
  InferExecutor* infer_ = nullptr;
  /// Highest registry generation any worker has observed (registry mode).
  std::atomic<uint64_t> observed_generation_{0};
  const KnowledgeServerOptions options_;
  BoundedQueue<Batch> queue_;
  std::unique_ptr<ShardedVectorCache> cache_;
  std::unique_ptr<HotKeyCoalescer> coalescer_;
  std::unique_ptr<TenantQuotas> quotas_;
  ServerStats stats_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<size_t> pending_requests_{0};
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_KNOWLEDGE_SERVER_H_
