#include "serve/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"

namespace pkgm::serve {
namespace {

double MicrosBetween(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

ServeClock::duration SecondsToDuration(double s) {
  return std::chrono::duration_cast<ServeClock::duration>(
      std::chrono::duration<double>(s));
}

/// Completion sink striped across slots to keep worker-thread callbacks
/// off one mutex; merged into the report at the end of the run.
struct Sink {
  std::mutex mu;
  Histogram latency_us{HistogramMode::kBucketed};
  Histogram server_ok_us{HistogramMode::kBucketed};
  Histogram task_latency_us[kMaxTaskKind + 1] = {
      Histogram{HistogramMode::kBucketed}, Histogram{HistogramMode::kBucketed},
      Histogram{HistogramMode::kBucketed}, Histogram{HistogramMode::kBucketed}};
  uint64_t task_completed[kMaxTaskKind + 1] = {};
  uint64_t task_ok[kMaxTaskKind + 1] = {};
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t quota_rejected = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t invalid_item = 0;
  uint64_t network_error = 0;
  uint64_t cache_hits = 0;
};
constexpr size_t kSinks = 16;

void RecordCompletion(Sink* sink, TaskKind task, const ServiceResponse& response,
                      double latency_micros) {
  const uint8_t kind = static_cast<uint8_t>(task);
  std::lock_guard<std::mutex> lock(sink->mu);
  sink->latency_us.Record(latency_micros);
  sink->task_latency_us[kind].Record(latency_micros);
  ++sink->task_completed[kind];
  if (response.code == ResponseCode::kOk) {
    sink->server_ok_us.Record(response.queue_micros + response.compute_micros);
    ++sink->task_ok[kind];
  }
  switch (response.code) {
    case ResponseCode::kOk: ++sink->ok; break;
    case ResponseCode::kRejected: ++sink->rejected; break;
    case ResponseCode::kQuotaExceeded: ++sink->quota_rejected; break;
    case ResponseCode::kDeadlineExceeded: ++sink->deadline_exceeded; break;
    case ResponseCode::kInvalidItem: ++sink->invalid_item; break;
    case ResponseCode::kNetworkError: ++sink->network_error; break;
  }
  if (response.cache_hit) ++sink->cache_hits;
}

/// Draws the next inter-arrival gap (seconds) for one thread's slice of
/// the process. Each of `threads` threads runs an independent process at
/// rate/threads; superposed they form the configured offered load (exactly
/// for uniform with per-thread phase offsets; by the superposition theorem
/// for Poisson).
double NextGap(const LoadGenOptions& options, double thread_rate,
               double elapsed_s, Rng* rng) {
  switch (options.arrival) {
    case ArrivalProcess::kUniform:
      return 1.0 / thread_rate;
    case ArrivalProcess::kPoisson: {
      double u = rng->UniformDouble();
      if (u < 1e-12) u = 1e-12;
      return -std::log(u) / thread_rate;
    }
    case ArrivalProcess::kBurst: {
      // Square wave: rate × burst_factor during the on-half of the period,
      // rate × max(0.05, 2 − burst_factor) during the off-half, keeping
      // the average near the configured rate for burst_factor <= 2 and
      // front-loading it beyond that (the point is the spike).
      const double phase = std::fmod(elapsed_s, options.burst_period_s);
      const bool on = phase < options.burst_period_s * 0.5;
      const double factor =
          on ? options.burst_factor : std::max(0.05, 2.0 - options.burst_factor);
      double u = rng->UniformDouble();
      if (u < 1e-12) u = 1e-12;
      return -std::log(u) / (thread_rate * factor);
    }
  }
  return 1.0 / thread_rate;
}

}  // namespace

const char* ArrivalProcessName(ArrivalProcess arrival) {
  switch (arrival) {
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBurst: return "burst";
  }
  return "unknown";
}

LoadGenReport RunLoadGen(const LoadGenOptions& options,
                         const AsyncSubmitFn& submit) {
  PKGM_CHECK_GT(options.rate_qps, 0.0);
  PKGM_CHECK_GT(options.total_requests, 0u);
  PKGM_CHECK_GE(options.threads, 1u);
  PKGM_CHECK_GT(options.num_items, 0u);
  PKGM_CHECK_GE(options.num_tenants, 1u);

  const size_t threads =
      std::min<size_t>(options.threads, options.total_requests);
  const double thread_rate = options.rate_qps / static_cast<double>(threads);
  const ZipfSampler zipf(options.num_items, options.zipf_s);

  // Normalised cumulative mix for kind drawing; degenerate mixes (all
  // zero/negative) fall back to all-lookup.
  double cum_mix[kMaxTaskKind + 1];
  {
    double total = 0.0;
    for (uint8_t k = 0; k <= kMaxTaskKind; ++k) {
      total += std::max(0.0, options.mix[k]);
    }
    double running = 0.0;
    for (uint8_t k = 0; k <= kMaxTaskKind; ++k) {
      running += total > 0.0 ? std::max(0.0, options.mix[k]) / total
                             : (k == 0 ? 1.0 : 0.0);
      cum_mix[k] = running;
    }
    cum_mix[kMaxTaskKind] = 1.0;  // absorb rounding
  }

  std::vector<Sink> sinks(kSinks);
  std::atomic<uint64_t> outstanding{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  // Small lead-in so thread 0's first arrival isn't already in the past by
  // the time the last thread has spawned.
  const auto t0 = ServeClock::now() + std::chrono::milliseconds(5);

  Rng root(options.seed);
  std::vector<Rng> thread_rngs;
  thread_rngs.reserve(threads);
  for (size_t t = 0; t < threads; ++t) thread_rngs.push_back(root.Fork());

  std::vector<std::thread> gens;
  gens.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    gens.emplace_back([&, t] {
      Rng rng = thread_rngs[t];
      // Thread t owns arrivals t, t+threads, t+2*threads, ...
      uint64_t quota = options.total_requests / threads +
                       (t < options.total_requests % threads ? 1 : 0);
      // Phase-offset the uniform grid so threads interleave evenly.
      double next_s = (options.arrival == ArrivalProcess::kUniform)
                          ? static_cast<double>(t) / options.rate_qps
                          : NextGap(options, thread_rate, 0.0, &rng);
      for (uint64_t i = 0; i < quota; ++i) {
        const auto intended = t0 + SecondsToDuration(next_s);
        std::this_thread::sleep_until(intended);

        const uint16_t tenant = static_cast<uint16_t>(
            (t + i * threads) % options.num_tenants);
        // Distinct per-tenant hot sets: offset each tenant's Zipf head
        // into its own slice of the catalog.
        const uint64_t rank = zipf.Sample(&rng);
        const uint64_t offset = static_cast<uint64_t>(tenant) *
                                (options.num_items / options.num_tenants);
        ServiceRequest request;
        request.item =
            static_cast<uint32_t>((rank + offset) % options.num_items);
        request.tenant = tenant;
        // Draw the task kind from the cumulative mix; the Zipf item above
        // is the (first) operand for every kind.
        const double kind_draw = rng.UniformDouble();
        for (uint8_t k = 0; k <= kMaxTaskKind; ++k) {
          if (kind_draw < cum_mix[k]) {
            request.task = static_cast<TaskKind>(k);
            break;
          }
        }
        switch (request.task) {
          case TaskKind::kLookup:
            break;
          case TaskKind::kRecommend:
            request.user = static_cast<uint32_t>(
                rng.Uniform(std::max<uint32_t>(1, options.num_users)));
            break;
          case TaskKind::kClassify:
            request.top_k = options.top_k;
            break;
          case TaskKind::kAlign:
            // Second item of the pair, drawn from the same skewed catalog.
            request.item_b = static_cast<uint32_t>(
                (zipf.Sample(&rng) + offset) % options.num_items);
            break;
        }
        const auto send_time = ServeClock::now();
        if (options.deadline_us > 0) {
          request.deadline =
              send_time + std::chrono::microseconds(options.deadline_us);
        }
        // Open loop charges the server for any lateness between intended
        // and actual send (the generator itself is only late when the host
        // can't schedule threads, which the offered-vs-achieved gap in the
        // report exposes); closed loop measures from the actual send.
        const auto measure_from = options.open_loop ? intended : send_time;

        Sink* sink = &sinks[(t + i) % kSinks];
        outstanding.fetch_add(1, std::memory_order_relaxed);

        if (options.open_loop) {
          const TaskKind task = request.task;
          std::vector<ServiceRequest> batch{request};
          submit(std::move(batch),
                 [sink, task, measure_from, &outstanding, &done_mu, &done_cv](
                     size_t, ServiceResponse response) {
                   RecordCompletion(
                       sink, task, response,
                       MicrosBetween(measure_from, ServeClock::now()));
                   if (outstanding.fetch_sub(1, std::memory_order_acq_rel) ==
                       1) {
                     std::lock_guard<std::mutex> lock(done_mu);
                     done_cv.notify_all();
                   }
                 });
        } else {
          // Closed loop: park this generator thread until the response
          // lands, so a slow response delays every later arrival this
          // thread owns — exactly the coordinated omission being modeled.
          std::mutex mu;
          std::condition_variable cv;
          bool done = false;
          std::vector<ServiceRequest> batch{request};
          submit(std::move(batch),
                 [&, task = request.task](size_t, ServiceResponse response) {
                   RecordCompletion(
                       sink, task, response,
                       MicrosBetween(measure_from, ServeClock::now()));
                   {
                     std::lock_guard<std::mutex> lock(mu);
                     done = true;
                   }
                   cv.notify_one();
                   if (outstanding.fetch_sub(1, std::memory_order_acq_rel) ==
                       1) {
                     std::lock_guard<std::mutex> lock(done_mu);
                     done_cv.notify_all();
                   }
                 });
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&done] { return done; });
        }
        next_s += NextGap(options, thread_rate, next_s, &rng);
      }
    });
  }
  for (auto& g : gens) g.join();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&outstanding] {
      return outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  const auto t_end = ServeClock::now();

  LoadGenReport report;
  report.submitted = options.total_requests;
  report.offered_qps = options.rate_qps;
  report.elapsed_s = std::chrono::duration<double>(t_end - t0).count();
  for (Sink& sink : sinks) {
    std::lock_guard<std::mutex> lock(sink.mu);
    report.latency_us.Merge(sink.latency_us);
    report.server_ok_us.Merge(sink.server_ok_us);
    for (uint8_t k = 0; k <= kMaxTaskKind; ++k) {
      report.task_latency_us[k].Merge(sink.task_latency_us[k]);
      report.task_completed[k] += sink.task_completed[k];
      report.task_ok[k] += sink.task_ok[k];
    }
    report.ok += sink.ok;
    report.rejected += sink.rejected;
    report.quota_rejected += sink.quota_rejected;
    report.deadline_exceeded += sink.deadline_exceeded;
    report.invalid_item += sink.invalid_item;
    report.network_error += sink.network_error;
    report.cache_hits += sink.cache_hits;
  }
  report.completed = report.latency_us.count();
  report.achieved_qps = report.elapsed_s > 0.0
                            ? static_cast<double>(report.completed) /
                                  report.elapsed_s
                            : 0.0;
  return report;
}

}  // namespace pkgm::serve
