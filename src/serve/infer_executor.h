#ifndef PKGM_SERVE_INFER_EXECUTOR_H_
#define PKGM_SERVE_INFER_EXECUTOR_H_

#include <vector>

#include "serve/request.h"

namespace pkgm::serve {

/// Executes homogeneous batches of inference requests (TaskKind other than
/// kLookup) on behalf of the KnowledgeServer. The seam keeps serve/ free of
/// a dependency on the downstream models: the concrete implementation is
/// infer::InferenceEngine, attached via KnowledgeServer::AttachInferExecutor.
///
/// Contract: `requests` all share `task` and have already passed admission
/// and deadline checks; `responses` arrives sized to requests.size() with
/// default (kOk) entries and must be filled positionally. Implementations
/// must be thread-safe — every server worker calls into the same executor.
class InferExecutor {
 public:
  virtual ~InferExecutor() = default;

  virtual void ExecuteBatch(TaskKind task,
                            const std::vector<const ServiceRequest*>& requests,
                            std::vector<ServiceResponse>* responses) = 0;
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_INFER_EXECUTOR_H_
