#include "serve/tenant_quota.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace pkgm::serve {

TenantQuotas::TenantQuotas(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec), burst_(burst) {
  PKGM_CHECK_GE(rate_per_sec, 0.0);
  PKGM_CHECK_GE(burst, 1.0);
}

bool TenantQuotas::TryAdmit(uint16_t tenant, ServeClock::time_point now) {
  Stripe& stripe = stripes_[tenant % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  Bucket& bucket = stripe.buckets[tenant];
  if (!bucket.initialized) {
    bucket.tokens = burst_;
    bucket.last_refill = now;
    bucket.initialized = true;
  } else if (now > bucket.last_refill) {
    const double elapsed =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.tokens = std::min(burst_, bucket.tokens + elapsed * rate_per_sec_);
    bucket.last_refill = now;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  ++stripe.shed;
  return false;
}

uint64_t TenantQuotas::shed_count() const {
  uint64_t total = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.shed;
  }
  return total;
}

}  // namespace pkgm::serve
