#ifndef PKGM_SERVE_SERVER_STATS_H_
#define PKGM_SERVE_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/coalescer.h"
#include "serve/request.h"
#include "serve/vector_cache.h"
#include "util/histogram.h"

namespace pkgm::serve {

/// Snapshot of the network front end's counters (src/net/NetServer), folded
/// into ServerStats reports so one table/JSON blob covers the whole serving
/// path: sockets, frames, and the compute behind them.
struct NetCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_active = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Wire-level requests decoded out of kGetVectors frames.
  uint64_t requests_in = 0;
  /// Malformed frames (bad magic/version/CRC/oversize/garbled payload);
  /// each one closes exactly the offending connection.
  uint64_t protocol_errors = 0;
  /// Slow readers dropped because their outbox exceeded the bound.
  uint64_t backpressure_disconnects = 0;
  /// Connections reaped by the idle timeout.
  uint64_t idle_disconnects = 0;

  /// I/O backend the event loops run on ("epoll" / "io_uring").
  std::string io_backend;
  /// Blocking waits (epoll_wait or io_uring_enter — every enter is one
  /// syscall), summed across I/O threads.
  uint64_t io_wait_calls = 0;
  /// Per-chunk recv/send syscalls (epoll path; 0 on io_uring, where the
  /// ops ride the ring as submissions).
  uint64_t io_recv_syscalls = 0;
  uint64_t io_send_syscalls = 0;
  /// RECV / SENDMSG SQEs submitted to the ring (io_uring path).
  uint64_t io_recv_submissions = 0;
  uint64_t io_send_submissions = 0;
  /// Cross-thread wakeup signals consumed by the loops.
  uint64_t io_wakeups = 0;

  /// Frames moved (in + out) per I/O syscall (waits + recvs + sends): the
  /// batched-submission win in one number — higher is better.
  double FramesPerSyscall() const {
    const uint64_t syscalls =
        io_wait_calls + io_recv_syscalls + io_send_syscalls;
    return static_cast<double>(frames_in + frames_out) /
           static_cast<double>(syscalls > 0 ? syscalls : 1);
  }
};

/// Thread-safe metrics for the knowledge server: request counters by
/// outcome, plus per-stage latency histograms (queue wait vs execution).
/// Counters are lock-free atomics; histograms are guarded by one mutex and
/// use the bounded log-linear bucket mode, so memory stays O(1) however
/// long the server runs and tail quantiles (p999/p9999) stay readable.
class ServerStats {
 public:
  ServerStats() = default;

  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  /// `n` requests passed admission control.
  void RecordAccepted(uint64_t n) { accepted_ += n; }
  /// `n` requests were turned away with kRejected (queue saturation).
  void RecordRejected(uint64_t n) { rejected_ += n; }
  /// `n` requests were shed with kQuotaExceeded (per-tenant token bucket).
  void RecordQuotaRejected(uint64_t n) { quota_rejected_ += n; }
  /// One request reached a terminal state on a worker.
  void RecordCompleted(ResponseCode code, double queue_micros,
                       double compute_micros);
  /// The completed request was of `task` kind (wire v3 mixes lookups with
  /// inference requests; per-task counts make the mix visible in reports).
  void RecordTaskCompleted(TaskKind task) {
    ++task_completed_[static_cast<uint8_t>(task)];
  }
  /// One condensed-vector compute hit the parameter backend (a cache miss
  /// that actually ran provider->Condensed). Coalesced joiners don't count.
  void RecordBackendFetch() { ++backend_fetches_; }
  /// One condensed request joined another's in-flight backend fetch.
  void RecordCoalesced() { ++coalesced_; }

  uint64_t accepted() const { return accepted_.load(); }
  uint64_t rejected() const { return rejected_.load(); }
  uint64_t quota_rejected() const { return quota_rejected_.load(); }
  uint64_t ok() const { return ok_.load(); }
  uint64_t deadline_exceeded() const { return deadline_exceeded_.load(); }
  uint64_t invalid_item() const { return invalid_item_.load(); }
  uint64_t backend_fetches() const { return backend_fetches_.load(); }
  uint64_t coalesced() const { return coalesced_.load(); }
  /// Requests that passed admission but were shed on a worker (e.g. an
  /// inference kind with no model published). Disjoint from rejected(),
  /// which counts admission-time queue saturation.
  uint64_t exec_rejected() const { return exec_rejected_.load(); }
  uint64_t task_completed(TaskKind task) const {
    return task_completed_[static_cast<uint8_t>(task)].load();
  }
  /// Accepted requests that have not yet completed.
  uint64_t in_flight() const {
    return accepted_.load() - ok_.load() - deadline_exceeded_.load() -
           invalid_item_.load() - exec_rejected_.load();
  }

  /// Snapshots of the stage histograms (copies, safe to interrogate).
  Histogram QueueLatency() const;
  Histogram ComputeLatency() const;

  /// Quantiles reported by ToTable/StatsJson, ascending in (0, 1]. The
  /// default {0.5, 0.95, 0.99, 0.999} keeps every historical JSON key
  /// (p50_us/p95_us/p99_us) and adds p999_us; callers wanting p9999 pass
  /// a longer list. Call before serving starts (not synchronized against
  /// concurrent report reads).
  void SetQuantiles(std::vector<double> quantiles);
  const std::vector<double>& quantiles() const { return quantiles_; }

  /// Describes the parameter backend serving this run (store dtype, load
  /// mode, generation, file size). Set at server start and again on every
  /// hot-swap, so reports always show which backend answered.
  void SetBackend(std::string description);
  std::string backend() const;

  /// Renders counters, the queue-depth gauge, optional cache counters,
  /// optional network-front-end counters and the per-stage latency
  /// percentiles as two aligned ASCII tables.
  std::string ToTable(uint64_t queue_depth, const CacheStats* cache,
                      const NetCounters* net = nullptr,
                      const CoalescerStats* coalescer = nullptr) const;

  /// Machine-readable counterpart to ToTable: one JSON object with the same
  /// counters/gauges/percentiles, consumed by the load generator, the CI
  /// smoke job and bench artifacts instead of regex-scraping the tables.
  std::string StatsJson(uint64_t queue_depth, const CacheStats* cache,
                        const NetCounters* net = nullptr,
                        const CoalescerStats* coalescer = nullptr) const;

 private:
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> quota_rejected_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> invalid_item_{0};
  std::atomic<uint64_t> backend_fetches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> exec_rejected_{0};
  std::atomic<uint64_t> task_completed_[kMaxTaskKind + 1] = {};

  std::vector<double> quantiles_{0.5, 0.95, 0.99, 0.999};

  mutable std::mutex histo_mu_;
  Histogram queue_micros_{HistogramMode::kBucketed};
  Histogram compute_micros_{HistogramMode::kBucketed};

  mutable std::mutex backend_mu_;
  std::string backend_;
};

}  // namespace pkgm::serve

#endif  // PKGM_SERVE_SERVER_STATS_H_
