#include "serve/knowledge_server.h"

#include <chrono>
#include <string>
#include <utility>

#include "tensor/simd/kernel_dispatch.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::serve {
namespace {

double MicrosBetween(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

ServiceResponse RejectedResponse() {
  ServiceResponse response;
  response.code = ResponseCode::kRejected;
  return response;
}

}  // namespace

KnowledgeServer::KnowledgeServer(const core::ServiceVectorProvider* provider,
                                 KnowledgeServerOptions options)
    : provider_(provider),
      options_(options),
      queue_(options.queue_capacity) {
  PKGM_CHECK(provider != nullptr);
  PKGM_CHECK(options_.num_workers >= 1);
  InitAdmissionAndCache();
  stats_.SetBackend(StrFormat("fixed provider (heap-fp32), kernels=%s",
                              simd::ActiveIsaName()));
}

KnowledgeServer::KnowledgeServer(const store::ModelRegistry* registry,
                                 KnowledgeServerOptions options)
    : provider_(nullptr),
      registry_(registry),
      options_(options),
      queue_(options.queue_capacity) {
  PKGM_CHECK(registry != nullptr);
  PKGM_CHECK(options_.num_workers >= 1);
  InitAdmissionAndCache();
  if (auto gen = registry->Current()) ObserveGeneration(*gen);
}

void KnowledgeServer::InitAdmissionAndCache() {
  if (options_.enable_cache) {
    cache_ = std::make_unique<ShardedVectorCache>(options_.cache_capacity,
                                                  options_.cache_shards);
  }
  if (options_.enable_coalescing) {
    // Coalescing shields the backend behind the cache; without a cache
    // every request recomputes anyway and the flight table is pure cost.
    PKGM_CHECK(options_.enable_cache)
        << "enable_coalescing requires enable_cache";
    coalescer_ = std::make_unique<HotKeyCoalescer>();
  }
  if (options_.tenant_burst > 0.0) {
    quotas_ = std::make_unique<TenantQuotas>(options_.tenant_rate,
                                             options_.tenant_burst);
  }
}

KnowledgeServer::~KnowledgeServer() { Stop(); }

void KnowledgeServer::AttachInferExecutor(InferExecutor* executor) {
  PKGM_CHECK(workers_ == nullptr)
      << "AttachInferExecutor must be called before Start()";
  PKGM_CHECK(executor != nullptr);
  infer_ = executor;
}

void KnowledgeServer::Start() {
  if (workers_ != nullptr) return;
  PKGM_CHECK(!queue_.closed());
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_->Submit([this] { WorkerLoop(); });
  }
}

void KnowledgeServer::Stop() {
  queue_.Close();
  if (workers_ != nullptr) {
    workers_->Wait();
    workers_.reset();
  }
}

std::future<ServiceResponse> KnowledgeServer::Submit(ServiceRequest request) {
  std::vector<ServiceRequest> one;
  one.push_back(request);
  auto futures = SubmitBatch(std::move(one));
  return std::move(futures.front());
}

std::vector<std::future<ServiceResponse>> KnowledgeServer::SubmitBatch(
    std::vector<ServiceRequest> requests) {
  const auto now = ServeClock::now();
  Batch batch;
  batch.reserve(requests.size());
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(requests.size());
  for (ServiceRequest& request : requests) {
    PendingRequest pending;
    pending.request = request;
    pending.enqueue_time = now;
    auto promise = std::make_shared<std::promise<ServiceResponse>>();
    futures.push_back(promise->get_future());
    pending.done = [promise](ServiceResponse response) {
      promise->set_value(std::move(response));
    };
    batch.push_back(std::move(pending));
  }
  Enqueue(std::move(batch));
  return futures;
}

void KnowledgeServer::SubmitBatchAsync(std::vector<ServiceRequest> requests,
                                       BatchCallback done) {
  const auto now = ServeClock::now();
  auto shared_done = std::make_shared<BatchCallback>(std::move(done));
  Batch batch;
  batch.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    PendingRequest pending;
    pending.request = requests[i];
    pending.enqueue_time = now;
    pending.done = [shared_done, i](ServiceResponse response) {
      (*shared_done)(i, std::move(response));
    };
    batch.push_back(std::move(pending));
  }
  Enqueue(std::move(batch));
}

void KnowledgeServer::Enqueue(Batch batch) {
  if (batch.empty()) return;
  if (quotas_ != nullptr) {
    // Quota shedding is per-request (one tenant's dry bucket must not take
    // down a mixed batch), unlike queue admission which stays batch-level.
    const auto now = ServeClock::now();
    Batch admitted;
    admitted.reserve(batch.size());
    uint64_t shed = 0;
    for (PendingRequest& pending : batch) {
      if (quotas_->TryAdmit(pending.request.tenant, now)) {
        admitted.push_back(std::move(pending));
      } else {
        ++shed;
        ServiceResponse response;
        response.code = ResponseCode::kQuotaExceeded;
        pending.done(std::move(response));
      }
    }
    if (shed > 0) stats_.RecordQuotaRejected(shed);
    batch = std::move(admitted);
    if (batch.empty()) return;
  }
  // Count the batch as pending *before* pushing: a worker may finish (and
  // decrement) before TryPush even returns.
  const size_t n = batch.size();
  pending_requests_ += n;
  if (queue_.TryPush(std::move(batch))) {
    stats_.RecordAccepted(n);
  } else {
    pending_requests_ -= n;
    // Admission control: the queue (or the server) is saturated — resolve
    // every request in the batch immediately instead of piling up work.
    stats_.RecordRejected(n);
    for (PendingRequest& pending : batch) {
      pending.done(RejectedResponse());
    }
  }
}

void KnowledgeServer::WorkerLoop() {
  Batch batch;
  while (queue_.Pop(&batch)) {
    const auto dequeue_time = ServeClock::now();
    // Lookups execute per request (each one takes its own path through the
    // cache/coalescer); inference kinds are grouped so one model forward
    // serves every request of that kind in the batch — the batching that
    // makes the gemm kernels pay for themselves.
    std::vector<size_t> grouped[kMaxTaskKind + 1];
    for (size_t i = 0; i < batch.size(); ++i) {
      PendingRequest& pending = batch[i];
      if (pending.request.task != TaskKind::kLookup &&
          pending.request.deadline >= dequeue_time) {
        grouped[static_cast<uint8_t>(pending.request.task)].push_back(i);
        continue;
      }
      const double queue_micros =
          MicrosBetween(pending.enqueue_time, dequeue_time);
      ServiceResponse response;
      double compute_micros = 0.0;
      if (pending.request.deadline < dequeue_time) {
        response.code = ResponseCode::kDeadlineExceeded;
      } else {
        const auto start = ServeClock::now();
        response = Execute(pending.request);
        compute_micros = MicrosBetween(start, ServeClock::now());
      }
      response.queue_micros = queue_micros;
      response.compute_micros = compute_micros;
      stats_.RecordCompleted(response.code, queue_micros, compute_micros);
      stats_.RecordTaskCompleted(pending.request.task);
      --pending_requests_;
      pending.done(std::move(response));
    }
    for (uint8_t kind = 1; kind <= kMaxTaskKind; ++kind) {
      if (grouped[kind].empty()) continue;
      ExecuteInferGroup(static_cast<TaskKind>(kind), grouped[kind],
                        dequeue_time, &batch);
    }
    batch.clear();
  }
}

void KnowledgeServer::ExecuteInferGroup(TaskKind task,
                                        const std::vector<size_t>& indices,
                                        ServeClock::time_point dequeue_time,
                                        Batch* batch) {
  std::vector<const ServiceRequest*> requests;
  requests.reserve(indices.size());
  for (size_t i : indices) requests.push_back(&(*batch)[i].request);
  std::vector<ServiceResponse> responses(indices.size());
  double compute_micros = 0.0;
  if (infer_ == nullptr) {
    // The deployment serves lookups only: shed the inference kinds the way
    // admission control would, instead of failing the process.
    for (ServiceResponse& response : responses) {
      response.code = ResponseCode::kRejected;
    }
  } else {
    const auto start = ServeClock::now();
    infer_->ExecuteBatch(task, requests, &responses);
    // Per-request share of the grouped forward, so per-task latencies stay
    // comparable with the per-request lookup path.
    compute_micros =
        MicrosBetween(start, ServeClock::now()) / indices.size();
  }
  for (size_t b = 0; b < indices.size(); ++b) {
    PendingRequest& pending = (*batch)[indices[b]];
    ServiceResponse& response = responses[b];
    response.queue_micros =
        MicrosBetween(pending.enqueue_time, dequeue_time);
    response.compute_micros = compute_micros;
    stats_.RecordCompleted(response.code, response.queue_micros,
                           compute_micros);
    stats_.RecordTaskCompleted(task);
    --pending_requests_;
    pending.done(std::move(response));
  }
}

void KnowledgeServer::ObserveGeneration(const store::ServingGeneration& gen) {
  // Only the worker that *raises* the observed generation invalidates, so
  // one swap costs one invalidation no matter how many workers race here;
  // a worker still holding an older snapshot can never lower it (its
  // compare_exchange fails), which would otherwise re-trigger the swap.
  uint64_t prev = observed_generation_.load(std::memory_order_acquire);
  while (gen.generation > prev) {
    if (observed_generation_.compare_exchange_weak(
            prev, gen.generation, std::memory_order_acq_rel)) {
      InvalidateCache();
      const auto& info = gen.info;
      std::string backend =
          StrFormat("%s gen %llu", info.load_mode.c_str(),
                    static_cast<unsigned long long>(gen.generation));
      if (info.file_bytes > 0) {
        backend += StrFormat(" (%s, %s bytes)", StoreDtypeName(info.dtype),
                             WithThousandsSeparators(info.file_bytes).c_str());
      }
      // The kernel ISA serving this process, so a perf regression in a
      // report is attributable to a kernel change (PKGM_KERNEL override
      // round-trips through here).
      backend += StrFormat(", kernels=%s", simd::ActiveIsaName());
      stats_.SetBackend(std::move(backend));
      break;
    }
  }
}

ServiceResponse KnowledgeServer::Execute(const ServiceRequest& request) {
  // Ordering matters for hot-swap correctness: the cache generation is
  // snapshotted *before* the model generation. If a swap (publish +
  // invalidate) lands between the two, the value we compute from the new
  // model is tagged stale and dropped — harmless. The reverse order would
  // let a value computed from the *old* model carry the *new* cache
  // generation and be served stale indefinitely.
  const uint64_t cache_generation =
      cache_ != nullptr ? cache_->generation() : 0;
  std::shared_ptr<const store::ServingGeneration> pinned;
  const core::ServiceVectorProvider* provider = provider_;
  if (registry_ != nullptr) {
    pinned = registry_->Current();
    PKGM_CHECK(pinned != nullptr)
        << "KnowledgeServer executing against an empty ModelRegistry";
    ObserveGeneration(*pinned);
    provider = pinned->provider.get();
  }

  ServiceResponse response;
  if (request.item >= provider->num_items()) {
    response.code = ResponseCode::kInvalidItem;
    return response;
  }
  if (request.form == ServiceForm::kCondensed) {
    Vec condensed;
    if (cache_ != nullptr &&
        cache_->Lookup(request.item, request.mode, &condensed)) {
      response.cache_hit = true;
    } else {
      auto compute = [&] {
        stats_.RecordBackendFetch();
        return provider->Condensed(request.item, request.mode);
      };
      if (coalescer_ != nullptr) {
        // Same key layout as the cache: item in the high bits, mode low.
        const uint64_t key = (static_cast<uint64_t>(request.item) << 2) |
                             static_cast<uint64_t>(request.mode);
        // The flight carries the cache generation snapshotted above, so a
        // joiner from the other side of a hot swap bypasses instead of
        // adopting a value computed against the wrong model.
        const bool leader =
            coalescer_->Fetch(key, cache_generation, compute, &condensed);
        if (leader) {
          cache_->Insert(request.item, request.mode, condensed,
                         cache_generation);
        } else {
          stats_.RecordCoalesced();
        }
      } else {
        condensed = compute();
        if (cache_ != nullptr) {
          cache_->Insert(request.item, request.mode, condensed,
                         cache_generation);
        }
      }
    }
    response.vectors.push_back(std::move(condensed));
  } else {
    response.vectors = provider->Sequence(request.item, request.mode);
  }
  return response;
}

void KnowledgeServer::InvalidateCache() {
  if (cache_ != nullptr) cache_->Invalidate();
}

std::string KnowledgeServer::StatsReport() const {
  CacheStats cache_stats;
  const CacheStats* cache_ptr = nullptr;
  if (cache_ != nullptr) {
    cache_stats = cache_->Stats();
    cache_ptr = &cache_stats;
  }
  CoalescerStats co_stats;
  const CoalescerStats* co_ptr = nullptr;
  if (coalescer_ != nullptr) {
    co_stats = coalescer_->stats();
    co_ptr = &co_stats;
  }
  return stats_.ToTable(queue_depth(), cache_ptr, nullptr, co_ptr);
}

std::string KnowledgeServer::StatsJson() const {
  CacheStats cache_stats;
  const CacheStats* cache_ptr = nullptr;
  if (cache_ != nullptr) {
    cache_stats = cache_->Stats();
    cache_ptr = &cache_stats;
  }
  CoalescerStats co_stats;
  const CoalescerStats* co_ptr = nullptr;
  if (coalescer_ != nullptr) {
    co_stats = coalescer_->stats();
    co_ptr = &co_stats;
  }
  return stats_.StatsJson(queue_depth(), cache_ptr, nullptr, co_ptr);
}

}  // namespace pkgm::serve
