#include "serve/knowledge_server.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace pkgm::serve {
namespace {

double MicrosBetween(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

ServiceResponse RejectedResponse() {
  ServiceResponse response;
  response.code = ResponseCode::kRejected;
  return response;
}

}  // namespace

KnowledgeServer::KnowledgeServer(const core::ServiceVectorProvider* provider,
                                 KnowledgeServerOptions options)
    : provider_(provider),
      options_(options),
      queue_(options.queue_capacity) {
  PKGM_CHECK(provider != nullptr);
  PKGM_CHECK(options_.num_workers >= 1);
  if (options_.enable_cache) {
    cache_ = std::make_unique<ShardedVectorCache>(options_.cache_capacity,
                                                  options_.cache_shards);
  }
}

KnowledgeServer::~KnowledgeServer() { Stop(); }

void KnowledgeServer::Start() {
  if (workers_ != nullptr) return;
  PKGM_CHECK(!queue_.closed());
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_->Submit([this] { WorkerLoop(); });
  }
}

void KnowledgeServer::Stop() {
  queue_.Close();
  if (workers_ != nullptr) {
    workers_->Wait();
    workers_.reset();
  }
}

std::future<ServiceResponse> KnowledgeServer::Submit(ServiceRequest request) {
  std::vector<ServiceRequest> one;
  one.push_back(request);
  auto futures = SubmitBatch(std::move(one));
  return std::move(futures.front());
}

std::vector<std::future<ServiceResponse>> KnowledgeServer::SubmitBatch(
    std::vector<ServiceRequest> requests) {
  const auto now = ServeClock::now();
  Batch batch;
  batch.reserve(requests.size());
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(requests.size());
  for (ServiceRequest& request : requests) {
    PendingRequest pending;
    pending.request = request;
    pending.enqueue_time = now;
    futures.push_back(pending.promise.get_future());
    batch.push_back(std::move(pending));
  }
  if (batch.empty()) return futures;

  // Count the batch as pending *before* pushing: a worker may finish (and
  // decrement) before TryPush even returns.
  const size_t n = batch.size();
  pending_requests_ += n;
  if (queue_.TryPush(std::move(batch))) {
    stats_.RecordAccepted(n);
  } else {
    pending_requests_ -= n;
    // Admission control: the queue (or the server) is saturated — resolve
    // every future in the batch immediately instead of piling up work.
    stats_.RecordRejected(n);
    for (PendingRequest& pending : batch) {
      pending.promise.set_value(RejectedResponse());
    }
  }
  return futures;
}

void KnowledgeServer::WorkerLoop() {
  Batch batch;
  while (queue_.Pop(&batch)) {
    const auto dequeue_time = ServeClock::now();
    for (PendingRequest& pending : batch) {
      const double queue_micros =
          MicrosBetween(pending.enqueue_time, dequeue_time);
      ServiceResponse response;
      double compute_micros = 0.0;
      if (pending.request.deadline < dequeue_time) {
        response.code = ResponseCode::kDeadlineExceeded;
      } else {
        const auto start = ServeClock::now();
        response = Execute(pending.request);
        compute_micros = MicrosBetween(start, ServeClock::now());
      }
      response.queue_micros = queue_micros;
      response.compute_micros = compute_micros;
      stats_.RecordCompleted(response.code, queue_micros, compute_micros);
      --pending_requests_;
      pending.promise.set_value(std::move(response));
    }
    batch.clear();
  }
}

ServiceResponse KnowledgeServer::Execute(const ServiceRequest& request) {
  ServiceResponse response;
  if (request.item >= provider_->num_items()) {
    response.code = ResponseCode::kInvalidItem;
    return response;
  }
  if (request.form == ServiceForm::kCondensed) {
    Vec condensed;
    if (cache_ != nullptr &&
        cache_->Lookup(request.item, request.mode, &condensed)) {
      response.cache_hit = true;
    } else {
      condensed = provider_->Condensed(request.item, request.mode);
      if (cache_ != nullptr) {
        cache_->Insert(request.item, request.mode, condensed);
      }
    }
    response.vectors.push_back(std::move(condensed));
  } else {
    response.vectors = provider_->Sequence(request.item, request.mode);
  }
  return response;
}

void KnowledgeServer::InvalidateCache() {
  if (cache_ != nullptr) cache_->Invalidate();
}

std::string KnowledgeServer::StatsReport() const {
  CacheStats cache_stats;
  const CacheStats* cache_ptr = nullptr;
  if (cache_ != nullptr) {
    cache_stats = cache_->Stats();
    cache_ptr = &cache_stats;
  }
  return stats_.ToTable(queue_depth(), cache_ptr);
}

}  // namespace pkgm::serve
