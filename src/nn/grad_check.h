#ifndef PKGM_NN_GRAD_CHECK_H_
#define PKGM_NN_GRAD_CHECK_H_

#include <functional>

#include "nn/parameter.h"

namespace pkgm::nn {

/// Result of a finite-difference gradient verification.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  size_t checked = 0;
};

/// Verifies `param`'s accumulated analytic gradient against central finite
/// differences of `loss_fn` (which must recompute the full forward loss
/// from current parameter values and MUST NOT mutate gradients).
///
/// The caller is expected to have already populated param->grad via one
/// backward pass. `stride` subsamples entries for large tensors. `epsilon`
/// is the perturbation.
GradCheckResult CheckParameterGradient(
    Parameter* param, const std::function<double()>& loss_fn,
    double epsilon = 1e-3, size_t stride = 1);

/// Verifies an analytic input-gradient `analytic` (same shape as `*input`)
/// against finite differences of `loss_fn` w.r.t. `*input`.
GradCheckResult CheckInputGradient(Mat* input, const Mat& analytic,
                                   const std::function<double()>& loss_fn,
                                   double epsilon = 1e-3, size_t stride = 1);

}  // namespace pkgm::nn

#endif  // PKGM_NN_GRAD_CHECK_H_
