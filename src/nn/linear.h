#ifndef PKGM_NN_LINEAR_H_
#define PKGM_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace pkgm::nn {

/// Fully connected layer: y = x W + b, with W: in x out (row-major) and
/// b: 1 x out. Operates on batches: x is B x in, y is B x out. Stateless
/// between calls — Backward takes the forward input explicitly, so one layer
/// instance can serve interleaved sequences as long as each Backward gets
/// the x of its own Forward.
class Linear {
 public:
  /// Xavier-initialized weights, zero bias.
  Linear(size_t in, size_t out, Rng* rng, std::string name);

  size_t in_dim() const { return w_.rows(); }
  size_t out_dim() const { return w_.cols(); }

  /// y = x W + b. Resizes y if needed.
  void Forward(const Mat& x, Mat* y) const;

  /// Accumulates dW += x^T dy, db += colsum(dy); writes dx = dy W^T when
  /// dx is non-null.
  void Backward(const Mat& x, const Mat& dy, Mat* dx);

  /// Registers W and b.
  void Params(std::vector<Parameter*>* out);

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weight() const { return w_; }
  const Parameter& bias() const { return b_; }

 private:
  Parameter w_;  // in x out
  Parameter b_;  // 1 x out
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_LINEAR_H_
