#ifndef PKGM_NN_ACTIVATIONS_H_
#define PKGM_NN_ACTIVATIONS_H_

#include "tensor/vec.h"

namespace pkgm::nn {

/// Supported elementwise activations.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid, kGelu };

/// y = act(x), elementwise over matrices of equal shape.
void ActivationForward(Activation act, const Mat& x, Mat* y);

/// dx = dy .* act'(x). `x` must be the same pre-activation tensor passed to
/// ActivationForward.
void ActivationBackward(Activation act, const Mat& x, const Mat& dy, Mat* dx);

/// Scalar helpers (used by losses and by the NCF output unit).
float SigmoidScalar(float x);
float GeluScalar(float x);

}  // namespace pkgm::nn

#endif  // PKGM_NN_ACTIVATIONS_H_
