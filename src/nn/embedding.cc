#include "nn/embedding.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::nn {

Embedding::Embedding(size_t vocab, size_t dim, Rng* rng, std::string name)
    : table_(std::move(name), vocab, dim) {
  NormalInit(table_.value.size(), 0.02f, rng, table_.value.data());
}

void Embedding::Forward(const std::vector<uint32_t>& ids, Mat* y) const {
  if (y->rows() != ids.size() || y->cols() != dim()) {
    *y = Mat(ids.size(), dim());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    PKGM_CHECK_LT(ids[i], table_.value.rows());
    const float* src = table_.value.Row(ids[i]);
    float* dst = y->Row(i);
    for (size_t j = 0; j < dim(); ++j) dst[j] = src[j];
  }
}

void Embedding::Backward(const std::vector<uint32_t>& ids, const Mat& dy) {
  PKGM_CHECK_EQ(dy.rows(), ids.size());
  PKGM_CHECK_EQ(dy.cols(), dim());
  for (size_t i = 0; i < ids.size(); ++i) {
    Axpy(dim(), 1.0f, dy.Row(i), table_.grad.Row(ids[i]));
  }
}

}  // namespace pkgm::nn
