#ifndef PKGM_NN_LAYER_NORM_H_
#define PKGM_NN_LAYER_NORM_H_

#include <string>
#include <vector>

#include "nn/parameter.h"

namespace pkgm::nn {

/// Row-wise layer normalization with learnable gain/bias:
///   y = (x - mean(x)) / sqrt(var(x) + eps) * gamma + beta
/// where the statistics are computed per row (per token). Backward
/// recomputes the statistics from the provided forward input, so the layer
/// holds no per-call state.
class LayerNorm {
 public:
  LayerNorm(size_t dim, std::string name, float eps = 1e-5f);

  size_t dim() const { return gamma_.cols(); }

  void Forward(const Mat& x, Mat* y) const;

  /// dx written (resized as needed); dgamma/dbeta accumulated.
  void Backward(const Mat& x, const Mat& dy, Mat* dx);

  void Params(std::vector<Parameter*>* out) {
    out->push_back(&gamma_);
    out->push_back(&beta_);
  }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  Parameter gamma_;  // 1 x dim, init 1
  Parameter beta_;   // 1 x dim, init 0
  float eps_;
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_LAYER_NORM_H_
