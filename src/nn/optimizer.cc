#include "nn/optimizer.h"

#include <cmath>

namespace pkgm::nn {

SgdOptimizer::SgdOptimizer(std::vector<Parameter*> params, float lr,
                           float weight_decay)
    : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void SgdOptimizer::Step() {
  for (Parameter* p : params_) {
    float* w = p->value.data();
    float* g = p->grad.data();
    const size_t n = p->size();
    for (size_t i = 0; i < n; ++i) {
      w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
      g[i] = 0.0f;
    }
  }
}

AdamOptimizer::AdamOptimizer(std::vector<Parameter*> params,
                             const Options& options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float corr1 =
      1.0f - static_cast<float>(std::pow(b1, static_cast<double>(t_)));
  const float corr2 =
      1.0f - static_cast<float>(std::pow(b2, static_cast<double>(t_)));
  const float alpha = options_.lr * std::sqrt(corr2) / corr1;

  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    const size_t n = p->size();
    for (size_t i = 0; i < n; ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      w[i] -= alpha * m[i] / (std::sqrt(v[i]) + options_.epsilon) +
              options_.lr * options_.weight_decay * w[i];
      g[i] = 0.0f;
    }
  }
}

}  // namespace pkgm::nn
