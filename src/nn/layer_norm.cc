#include "nn/layer_norm.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace pkgm::nn {

LayerNorm::LayerNorm(size_t dim, std::string name, float eps)
    : gamma_(name + ".gamma", 1, dim), beta_(name + ".beta", 1, dim), eps_(eps) {
  gamma_.value.Fill(1.0f);
}

void LayerNorm::Forward(const Mat& x, Mat* y) const {
  PKGM_CHECK_EQ(x.cols(), dim());
  if (y->rows() != x.rows() || y->cols() != x.cols()) {
    *y = Mat(x.rows(), x.cols());
  }
  const size_t n = dim();
  const float* g = gamma_.value.Row(0);
  const float* b = beta_.value.Row(0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    float* yr = y->Row(i);
    float mu = 0.0f;
    for (size_t j = 0; j < n; ++j) mu += xr[j];
    mu /= static_cast<float>(n);
    float var = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      float c = xr[j] - mu;
      var += c * c;
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    for (size_t j = 0; j < n; ++j) {
      yr[j] = (xr[j] - mu) * inv_std * g[j] + b[j];
    }
  }
}

void LayerNorm::Backward(const Mat& x, const Mat& dy, Mat* dx) {
  PKGM_CHECK_EQ(x.cols(), dim());
  PKGM_CHECK_EQ(dy.rows(), x.rows());
  PKGM_CHECK_EQ(dy.cols(), x.cols());
  if (dx->rows() != x.rows() || dx->cols() != x.cols()) {
    *dx = Mat(x.rows(), x.cols());
  }
  const size_t n = dim();
  const float* g = gamma_.value.Row(0);
  float* dg = gamma_.grad.Row(0);
  float* db = beta_.grad.Row(0);
  std::vector<float> xhat(n), dxhat(n);

  for (size_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.Row(i);
    const float* dyr = dy.Row(i);
    float* dxr = dx->Row(i);

    float mu = 0.0f;
    for (size_t j = 0; j < n; ++j) mu += xr[j];
    mu /= static_cast<float>(n);
    float var = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      float c = xr[j] - mu;
      var += c * c;
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + eps_);

    float mean_dxhat = 0.0f, mean_dxhat_xhat = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      xhat[j] = (xr[j] - mu) * inv_std;
      dxhat[j] = dyr[j] * g[j];
      dg[j] += dyr[j] * xhat[j];
      db[j] += dyr[j];
      mean_dxhat += dxhat[j];
      mean_dxhat_xhat += dxhat[j] * xhat[j];
    }
    mean_dxhat /= static_cast<float>(n);
    mean_dxhat_xhat /= static_cast<float>(n);
    for (size_t j = 0; j < n; ++j) {
      dxr[j] = inv_std * (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat);
    }
  }
}

}  // namespace pkgm::nn
