#ifndef PKGM_NN_DROPOUT_H_
#define PKGM_NN_DROPOUT_H_

#include <vector>

#include "tensor/vec.h"
#include "util/rng.h"

namespace pkgm::nn {

/// Inverted dropout: during training, zeroes each element with probability
/// p and scales survivors by 1/(1-p); during evaluation it is the identity.
/// The mask from the last Forward is retained for the matching Backward.
class Dropout {
 public:
  /// p in [0, 1).
  explicit Dropout(float p);

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// y = mask .* x / (1-p) in training, y = x otherwise.
  void Forward(const Mat& x, Mat* y, Rng* rng);

  /// dx = mask .* dy / (1-p) using the mask from the last Forward.
  void Backward(const Mat& dy, Mat* dx) const;

 private:
  float p_;
  bool training_ = true;
  std::vector<uint8_t> mask_;
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_DROPOUT_H_
