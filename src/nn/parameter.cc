#include "nn/parameter.h"

#include "tensor/ops.h"

namespace pkgm::nn {

void ZeroAllGrads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

double GradSquaredNorm(const std::vector<Parameter*>& params) {
  double acc = 0.0;
  for (const Parameter* p : params) {
    acc += SquaredL2Norm(p->grad.size(), p->grad.data());
  }
  return acc;
}

void ScaleAllGrads(const std::vector<Parameter*>& params, float factor) {
  for (Parameter* p : params) {
    Scale(p->grad.size(), factor, p->grad.data());
  }
}

}  // namespace pkgm::nn
