#ifndef PKGM_NN_TRANSFORMER_H_
#define PKGM_NN_TRANSFORMER_H_

#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/parameter.h"
#include "util/rng.h"

namespace pkgm::nn {

/// One post-LN transformer encoder block (BERT architecture):
///
///   h1 = LayerNorm1(x + SelfAttention(x))
///   y  = LayerNorm2(h1 + FFN(h1)),   FFN = Linear -> GELU -> Linear
///
/// Forward caches every intermediate needed by Backward; as with
/// MultiHeadSelfAttention, each Backward must directly follow its own
/// Forward on this instance.
class TransformerEncoderLayer {
 public:
  TransformerEncoderLayer(size_t dim, size_t heads, size_t ff_dim, Rng* rng,
                          std::string name);

  size_t dim() const { return ln1_.dim(); }

  void Forward(const Mat& x, size_t valid_len, Mat* y);

  /// dx resized and overwritten; parameter grads accumulated.
  void Backward(const Mat& x, const Mat& dy, Mat* dx);

  void Params(std::vector<Parameter*>* out);

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm ln1_, ln2_;
  Linear ff1_, ff2_;

  // Forward caches.
  Mat attn_out_;   // SelfAttention(x)
  Mat res1_;       // x + attn_out
  Mat h1_;         // LN1(res1)
  Mat ff_pre_;     // ff1(h1)
  Mat ff_act_;     // GELU(ff_pre)
  Mat ff_out_;     // ff2(ff_act)
  Mat res2_;       // h1 + ff_out
};

/// A stack of encoder layers sharing one interface. The embedding layer and
/// pooling live in pkgm::text::TinyBert; this class is the pure encoder.
class TransformerEncoder {
 public:
  TransformerEncoder(size_t layers, size_t dim, size_t heads, size_t ff_dim,
                     Rng* rng, const std::string& name);

  size_t num_layers() const { return layers_.size(); }
  size_t dim() const { return layers_.empty() ? 0 : layers_[0].dim(); }

  /// y = L_n(...L_1(x)). Caches per-layer inputs for Backward.
  void Forward(const Mat& x, size_t valid_len, Mat* y);

  /// Backpropagates through all layers; dx may be null if the caller does
  /// not need gradients w.r.t. the input embeddings (it almost always
  /// does, for the embedding tables).
  void Backward(const Mat& dy, Mat* dx);

  void Params(std::vector<Parameter*>* out);

 private:
  std::vector<TransformerEncoderLayer> layers_;
  std::vector<Mat> layer_inputs_;  // input to each layer from last Forward
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_TRANSFORMER_H_
