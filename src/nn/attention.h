#ifndef PKGM_NN_ATTENTION_H_
#define PKGM_NN_ATTENTION_H_

#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/parameter.h"
#include "util/rng.h"

namespace pkgm::nn {

/// Multi-head scaled dot-product self-attention over one sequence.
///
/// Input x is T x d (T tokens); `valid_len` marks the unpadded prefix —
/// attention only attends over keys j < valid_len (BERT-style padding
/// mask). Output y is T x d.
///
/// Forward caches Q, K, V and the per-head attention probabilities, so each
/// Backward must follow its own Forward on the same instance (the training
/// loops in this codebase process one sequence at a time).
class MultiHeadSelfAttention {
 public:
  /// dim must be divisible by heads.
  MultiHeadSelfAttention(size_t dim, size_t heads, Rng* rng, std::string name);

  size_t dim() const { return wq_.in_dim(); }
  size_t heads() const { return heads_; }

  void Forward(const Mat& x, size_t valid_len, Mat* y);

  /// dx resized and overwritten; parameter grads accumulated.
  void Backward(const Mat& x, const Mat& dy, Mat* dx);

  void Params(std::vector<Parameter*>* out);

 private:
  size_t heads_;
  size_t head_dim_;
  Linear wq_, wk_, wv_, wo_;

  // Forward caches.
  size_t valid_len_ = 0;
  Mat q_, k_, v_;            // T x d projections
  Mat concat_;               // T x d pre-output-projection
  std::vector<Mat> probs_;   // per head: T x T (cols < valid_len_ used)
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_ATTENTION_H_
