#ifndef PKGM_NN_PARAMETER_H_
#define PKGM_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "tensor/vec.h"

namespace pkgm::nn {

/// A trainable tensor: value plus accumulated gradient of identical shape.
/// Layers register their parameters so optimizers can iterate over them.
struct Parameter {
  std::string name;
  Mat value;
  Mat grad;

  Parameter() = default;
  Parameter(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  size_t rows() const { return value.rows(); }
  size_t cols() const { return value.cols(); }
  size_t size() const { return value.size(); }

  void ZeroGrad() { grad.Zero(); }
};

/// Convenience: zeroes the gradients of every parameter in the list.
void ZeroAllGrads(const std::vector<Parameter*>& params);

/// Sum of squared gradient entries across parameters (for grad-norm
/// logging/clipping).
double GradSquaredNorm(const std::vector<Parameter*>& params);

/// Scales all gradients by `factor` (used for global-norm clipping).
void ScaleAllGrads(const std::vector<Parameter*>& params, float factor);

}  // namespace pkgm::nn

#endif  // PKGM_NN_PARAMETER_H_
