#ifndef PKGM_NN_EMBEDDING_H_
#define PKGM_NN_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace pkgm::nn {

/// Lookup table: maps ids to d-dimensional rows. Backward scatter-adds into
/// the dense gradient table, so ids may repeat within a batch.
class Embedding {
 public:
  /// Normal(0, 0.02) init, BERT-style.
  Embedding(size_t vocab, size_t dim, Rng* rng, std::string name);

  size_t vocab() const { return table_.rows(); }
  size_t dim() const { return table_.cols(); }

  /// y[i] = table[ids[i]]; y resized to ids.size() x dim.
  void Forward(const std::vector<uint32_t>& ids, Mat* y) const;

  /// table.grad[ids[i]] += dy[i].
  void Backward(const std::vector<uint32_t>& ids, const Mat& dy);

  /// Row accessor (e.g. to overwrite a slot with an external service
  /// vector, or to tie weights).
  float* Row(uint32_t id) { return table_.value.Row(id); }
  const float* Row(uint32_t id) const { return table_.value.Row(id); }

  void Params(std::vector<Parameter*>* out) { out->push_back(&table_); }

  Parameter& table() { return table_; }

 private:
  Parameter table_;  // vocab x dim
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_EMBEDDING_H_
