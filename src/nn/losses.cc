#include "nn/losses.h"

#include <cmath>

#include "nn/activations.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::nn {

float SoftmaxCrossEntropy(const Mat& logits,
                          const std::vector<uint32_t>& labels, Mat* dlogits) {
  PKGM_CHECK_EQ(logits.rows(), labels.size());
  const size_t b = logits.rows();
  const size_t c = logits.cols();
  PKGM_CHECK_GT(b, 0u);
  if (dlogits != nullptr &&
      (dlogits->rows() != b || dlogits->cols() != c)) {
    *dlogits = Mat(b, c);
  }
  const float inv_b = 1.0f / static_cast<float>(b);
  float loss = 0.0f;
  std::vector<float> probs(c);
  for (size_t i = 0; i < b; ++i) {
    PKGM_CHECK_LT(labels[i], c);
    const float* row = logits.Row(i);
    for (size_t j = 0; j < c; ++j) probs[j] = row[j];
    const float lse = LogSumExp(c, probs.data());
    loss += lse - row[labels[i]];
    if (dlogits != nullptr) {
      float* drow = dlogits->Row(i);
      for (size_t j = 0; j < c; ++j) {
        drow[j] = std::exp(row[j] - lse) * inv_b;
      }
      drow[labels[i]] -= inv_b;
    }
  }
  return loss * inv_b;
}

float BinaryCrossEntropyWithLogits(const Mat& logits,
                                   const std::vector<float>& labels,
                                   Mat* dlogits) {
  PKGM_CHECK_EQ(logits.rows(), labels.size());
  PKGM_CHECK_EQ(logits.cols(), 1u);
  const size_t b = logits.rows();
  PKGM_CHECK_GT(b, 0u);
  if (dlogits != nullptr && (dlogits->rows() != b || dlogits->cols() != 1)) {
    *dlogits = Mat(b, 1);
  }
  const float inv_b = 1.0f / static_cast<float>(b);
  float loss = 0.0f;
  for (size_t i = 0; i < b; ++i) {
    const float x = logits(i, 0);
    const float y = labels[i];
    // Stable form: max(x,0) - x*y + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0f) - x * y + std::log1p(std::exp(-std::fabs(x)));
    if (dlogits != nullptr) {
      (*dlogits)(i, 0) = (SigmoidScalar(x) - y) * inv_b;
    }
  }
  return loss * inv_b;
}

std::vector<float> SoftmaxRow(const float* logits, size_t n) {
  std::vector<float> out(logits, logits + n);
  SoftmaxInplace(n, out.data());
  return out;
}

}  // namespace pkgm::nn
