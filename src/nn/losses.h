#ifndef PKGM_NN_LOSSES_H_
#define PKGM_NN_LOSSES_H_

#include <cstdint>
#include <vector>

#include "tensor/vec.h"

namespace pkgm::nn {

/// Mean softmax cross-entropy over a batch of logits (B x C) and integer
/// labels (size B). Writes dL/dlogits (already divided by B) into `dlogits`
/// when non-null. Returns the mean loss.
float SoftmaxCrossEntropy(const Mat& logits, const std::vector<uint32_t>& labels,
                          Mat* dlogits);

/// Mean binary cross-entropy with logits over a batch (B x 1 logits,
/// labels in {0,1}). Numerically stable log-sum-exp form. Writes
/// dL/dlogits into `dlogits` when non-null. Returns the mean loss.
float BinaryCrossEntropyWithLogits(const Mat& logits,
                                   const std::vector<float>& labels,
                                   Mat* dlogits);

/// Softmax probabilities for a single logit row (convenience for eval).
std::vector<float> SoftmaxRow(const float* logits, size_t n);

}  // namespace pkgm::nn

#endif  // PKGM_NN_LOSSES_H_
