#include "nn/activations.h"

#include <cmath>

#include "util/logging.h"

namespace pkgm::nn {

namespace {
// tanh-approximation GELU constants (as used by BERT).
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCubic = 0.044715f;
}  // namespace

float SigmoidScalar(float x) {
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

float GeluScalar(float x) {
  float inner = kSqrt2OverPi * (x + kGeluCubic * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

namespace {

float GeluGradScalar(float x) {
  float x3 = x * x * x;
  float inner = kSqrt2OverPi * (x + kGeluCubic * x3);
  float t = std::tanh(inner);
  float sech2 = 1.0f - t * t;
  float dinner = kSqrt2OverPi * (1.0f + 3.0f * kGeluCubic * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}

}  // namespace

void ActivationForward(Activation act, const Mat& x, Mat* y) {
  PKGM_CHECK_EQ(x.rows(), y->rows());
  PKGM_CHECK_EQ(x.cols(), y->cols());
  const size_t n = x.size();
  const float* xs = x.data();
  float* ys = y->data();
  switch (act) {
    case Activation::kIdentity:
      for (size_t i = 0; i < n; ++i) ys[i] = xs[i];
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) ys[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) ys[i] = std::tanh(xs[i]);
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) ys[i] = SigmoidScalar(xs[i]);
      break;
    case Activation::kGelu:
      for (size_t i = 0; i < n; ++i) ys[i] = GeluScalar(xs[i]);
      break;
  }
}

void ActivationBackward(Activation act, const Mat& x, const Mat& dy, Mat* dx) {
  PKGM_CHECK_EQ(x.size(), dy.size());
  PKGM_CHECK_EQ(x.size(), dx->size());
  const size_t n = x.size();
  const float* xs = x.data();
  const float* dys = dy.data();
  float* dxs = dx->data();
  switch (act) {
    case Activation::kIdentity:
      for (size_t i = 0; i < n; ++i) dxs[i] = dys[i];
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) dxs[i] = xs[i] > 0.0f ? dys[i] : 0.0f;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) {
        float t = std::tanh(xs[i]);
        dxs[i] = dys[i] * (1.0f - t * t);
      }
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) {
        float s = SigmoidScalar(xs[i]);
        dxs[i] = dys[i] * s * (1.0f - s);
      }
      break;
    case Activation::kGelu:
      for (size_t i = 0; i < n; ++i) dxs[i] = dys[i] * GeluGradScalar(xs[i]);
      break;
  }
}

}  // namespace pkgm::nn
