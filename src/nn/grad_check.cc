#include "nn/grad_check.h"

#include <cmath>

namespace pkgm::nn {

namespace {

GradCheckResult CheckSpan(float* values, const float* analytic, size_t n,
                          const std::function<double()>& loss_fn,
                          double epsilon, size_t stride) {
  GradCheckResult result;
  for (size_t i = 0; i < n; i += stride) {
    const float saved = values[i];
    values[i] = saved + static_cast<float>(epsilon);
    const double plus = loss_fn();
    values[i] = saved - static_cast<float>(epsilon);
    const double minus = loss_fn();
    values[i] = saved;

    const double numeric = (plus - minus) / (2.0 * epsilon);
    const double a = static_cast<double>(analytic[i]);
    const double abs_err = std::fabs(numeric - a);
    const double denom = std::max(1.0, std::max(std::fabs(numeric), std::fabs(a)));
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    ++result.checked;
  }
  return result;
}

}  // namespace

GradCheckResult CheckParameterGradient(Parameter* param,
                                       const std::function<double()>& loss_fn,
                                       double epsilon, size_t stride) {
  return CheckSpan(param->value.data(), param->grad.data(), param->size(),
                   loss_fn, epsilon, stride);
}

GradCheckResult CheckInputGradient(Mat* input, const Mat& analytic,
                                   const std::function<double()>& loss_fn,
                                   double epsilon, size_t stride) {
  return CheckSpan(input->data(), analytic.data(), input->size(), loss_fn,
                   epsilon, stride);
}

}  // namespace pkgm::nn
