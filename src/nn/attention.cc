#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t dim, size_t heads,
                                               Rng* rng, std::string name)
    : heads_(heads),
      head_dim_(dim / heads),
      wq_(dim, dim, rng, name + ".Wq"),
      wk_(dim, dim, rng, name + ".Wk"),
      wv_(dim, dim, rng, name + ".Wv"),
      wo_(dim, dim, rng, name + ".Wo") {
  PKGM_CHECK_EQ(dim % heads, 0u);
  probs_.resize(heads);
}

void MultiHeadSelfAttention::Forward(const Mat& x, size_t valid_len, Mat* y) {
  const size_t t = x.rows();
  const size_t d = dim();
  PKGM_CHECK_EQ(x.cols(), d);
  PKGM_CHECK_GT(valid_len, 0u);
  PKGM_CHECK_LE(valid_len, t);
  valid_len_ = valid_len;

  wq_.Forward(x, &q_);
  wk_.Forward(x, &k_);
  wv_.Forward(x, &v_);

  if (concat_.rows() != t || concat_.cols() != d) concat_ = Mat(t, d);
  concat_.Zero();

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (size_t h = 0; h < heads_; ++h) {
    const size_t off = h * head_dim_;
    Mat& p = probs_[h];
    if (p.rows() != t || p.cols() != t) p = Mat(t, t);
    for (size_t i = 0; i < t; ++i) {
      float* prow = p.Row(i);
      // Scores against unpadded keys only.
      for (size_t j = 0; j < valid_len; ++j) {
        prow[j] =
            Dot(head_dim_, q_.Row(i) + off, k_.Row(j) + off) * inv_sqrt;
      }
      SoftmaxInplace(valid_len, prow);
      for (size_t j = valid_len; j < t; ++j) prow[j] = 0.0f;
      // Weighted value sum.
      float* out = concat_.Row(i) + off;
      for (size_t j = 0; j < valid_len; ++j) {
        Axpy(head_dim_, prow[j], v_.Row(j) + off, out);
      }
    }
  }
  wo_.Forward(concat_, y);
}

void MultiHeadSelfAttention::Backward(const Mat& x, const Mat& dy, Mat* dx) {
  const size_t t = x.rows();
  const size_t d = dim();
  PKGM_CHECK_EQ(dy.rows(), t);
  PKGM_CHECK_EQ(dy.cols(), d);
  const size_t valid_len = valid_len_;

  Mat dconcat;
  wo_.Backward(concat_, dy, &dconcat);

  Mat dq(t, d), dk(t, d), dv(t, d);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<float> dp(t), ds(t);

  for (size_t h = 0; h < heads_; ++h) {
    const size_t off = h * head_dim_;
    const Mat& p = probs_[h];
    for (size_t i = 0; i < t; ++i) {
      const float* do_i = dconcat.Row(i) + off;
      const float* prow = p.Row(i);
      // dP_ij = <dO_i, V_j>, dV_j += P_ij dO_i.
      float dot_dp_p = 0.0f;
      for (size_t j = 0; j < valid_len; ++j) {
        dp[j] = Dot(head_dim_, do_i, v_.Row(j) + off);
        Axpy(head_dim_, prow[j], do_i, dv.Row(j) + off);
        dot_dp_p += dp[j] * prow[j];
      }
      // Softmax backward, then the 1/sqrt(dh) scale.
      for (size_t j = 0; j < valid_len; ++j) {
        ds[j] = prow[j] * (dp[j] - dot_dp_p) * inv_sqrt;
      }
      // dQ_i += ds_ij K_j; dK_j += ds_ij Q_i.
      float* dq_i = dq.Row(i) + off;
      for (size_t j = 0; j < valid_len; ++j) {
        if (ds[j] == 0.0f) continue;
        Axpy(head_dim_, ds[j], k_.Row(j) + off, dq_i);
        Axpy(head_dim_, ds[j], q_.Row(i) + off, dk.Row(j) + off);
      }
    }
  }

  Mat dx_q, dx_k, dx_v;
  wq_.Backward(x, dq, &dx_q);
  wk_.Backward(x, dk, &dx_k);
  wv_.Backward(x, dv, &dx_v);

  if (dx->rows() != t || dx->cols() != d) *dx = Mat(t, d);
  for (size_t i = 0; i < t; ++i) {
    float* out = dx->Row(i);
    const float* a = dx_q.Row(i);
    const float* b = dx_k.Row(i);
    const float* c = dx_v.Row(i);
    for (size_t j = 0; j < d; ++j) out[j] = a[j] + b[j] + c[j];
  }
}

void MultiHeadSelfAttention::Params(std::vector<Parameter*>* out) {
  wq_.Params(out);
  wk_.Params(out);
  wv_.Params(out);
  wo_.Params(out);
}

}  // namespace pkgm::nn
