#include "nn/linear.h"

#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace pkgm::nn {

Linear::Linear(size_t in, size_t out, Rng* rng, std::string name)
    : w_(name + ".W", in, out), b_(name + ".b", 1, out) {
  XavierInit(&w_.value, rng);
}

void Linear::Forward(const Mat& x, Mat* y) const {
  PKGM_CHECK_EQ(x.cols(), w_.value.rows());
  if (y->rows() != x.rows() || y->cols() != w_.value.cols()) {
    *y = Mat(x.rows(), w_.value.cols());
  }
  // Fused forward on the dispatched gemm_bias kernel — bit-identical to the
  // previous Gemm + per-row bias Axpy composition within a kernel table.
  GemmBiasRaw(x.rows(), x.cols(), y->cols(), x.data(), w_.value.data(),
              b_.value.Row(0), y->data());
}

void Linear::Backward(const Mat& x, const Mat& dy, Mat* dx) {
  PKGM_CHECK_EQ(dy.rows(), x.rows());
  PKGM_CHECK_EQ(dy.cols(), w_.value.cols());
  // dW += x^T dy
  GemmAtbAccum(x, dy, &w_.grad);
  // db += column sums of dy
  float* db = b_.grad.Row(0);
  for (size_t i = 0; i < dy.rows(); ++i) {
    Axpy(dy.cols(), 1.0f, dy.Row(i), db);
  }
  // dx = dy W^T
  if (dx != nullptr) {
    if (dx->rows() != x.rows() || dx->cols() != x.cols()) {
      *dx = Mat(x.rows(), x.cols());
    }
    GemmAbt(dy, w_.value, dx);
  }
}

void Linear::Params(std::vector<Parameter*>* out) {
  out->push_back(&w_);
  out->push_back(&b_);
}

}  // namespace pkgm::nn
