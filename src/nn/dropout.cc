#include "nn/dropout.h"

#include "util/logging.h"

namespace pkgm::nn {

Dropout::Dropout(float p) : p_(p) {
  PKGM_CHECK_GE(p, 0.0f);
  PKGM_CHECK_LT(p, 1.0f);
}

void Dropout::Forward(const Mat& x, Mat* y, Rng* rng) {
  if (y->rows() != x.rows() || y->cols() != x.cols()) {
    *y = Mat(x.rows(), x.cols());
  }
  const size_t n = x.size();
  if (!training_ || p_ == 0.0f) {
    for (size_t i = 0; i < n; ++i) y->data()[i] = x.data()[i];
    return;
  }
  mask_.resize(n);
  const float scale = 1.0f / (1.0f - p_);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(p_)) {
      mask_[i] = 0;
      y->data()[i] = 0.0f;
    } else {
      mask_[i] = 1;
      y->data()[i] = x.data()[i] * scale;
    }
  }
}

void Dropout::Backward(const Mat& dy, Mat* dx) const {
  if (dx->rows() != dy.rows() || dx->cols() != dy.cols()) {
    *dx = Mat(dy.rows(), dy.cols());
  }
  const size_t n = dy.size();
  if (!training_ || p_ == 0.0f) {
    for (size_t i = 0; i < n; ++i) dx->data()[i] = dy.data()[i];
    return;
  }
  PKGM_CHECK_EQ(mask_.size(), n);
  const float scale = 1.0f / (1.0f - p_);
  for (size_t i = 0; i < n; ++i) {
    dx->data()[i] = mask_[i] ? dy.data()[i] * scale : 0.0f;
  }
}

}  // namespace pkgm::nn
