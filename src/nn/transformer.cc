#include "nn/transformer.h"

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::nn {

TransformerEncoderLayer::TransformerEncoderLayer(size_t dim, size_t heads,
                                                 size_t ff_dim, Rng* rng,
                                                 std::string name)
    : attn_(dim, heads, rng, name + ".attn"),
      ln1_(dim, name + ".ln1"),
      ln2_(dim, name + ".ln2"),
      ff1_(dim, ff_dim, rng, name + ".ff1"),
      ff2_(ff_dim, dim, rng, name + ".ff2") {}

void TransformerEncoderLayer::Forward(const Mat& x, size_t valid_len, Mat* y) {
  const size_t t = x.rows();
  const size_t d = x.cols();

  attn_.Forward(x, valid_len, &attn_out_);

  if (res1_.rows() != t || res1_.cols() != d) res1_ = Mat(t, d);
  Add(x.size(), x.data(), attn_out_.data(), res1_.data());

  ln1_.Forward(res1_, &h1_);

  ff1_.Forward(h1_, &ff_pre_);
  if (ff_act_.rows() != ff_pre_.rows() || ff_act_.cols() != ff_pre_.cols()) {
    ff_act_ = Mat(ff_pre_.rows(), ff_pre_.cols());
  }
  ActivationForward(Activation::kGelu, ff_pre_, &ff_act_);
  ff2_.Forward(ff_act_, &ff_out_);

  if (res2_.rows() != t || res2_.cols() != d) res2_ = Mat(t, d);
  Add(h1_.size(), h1_.data(), ff_out_.data(), res2_.data());

  ln2_.Forward(res2_, y);
}

void TransformerEncoderLayer::Backward(const Mat& x, const Mat& dy, Mat* dx) {
  // y = LN2(res2), res2 = h1 + ff_out.
  Mat dres2;
  ln2_.Backward(res2_, dy, &dres2);

  // FFN branch: ff_out = ff2(GELU(ff1(h1))).
  Mat dff_act;
  ff2_.Backward(ff_act_, dres2, &dff_act);
  Mat dff_pre(ff_pre_.rows(), ff_pre_.cols());
  ActivationBackward(Activation::kGelu, ff_pre_, dff_act, &dff_pre);
  Mat dh1_ffn;
  ff1_.Backward(h1_, dff_pre, &dh1_ffn);

  // dh1 = residual path + FFN path.
  Mat dh1(dres2.rows(), dres2.cols());
  Add(dres2.size(), dres2.data(), dh1_ffn.data(), dh1.data());

  // h1 = LN1(res1), res1 = x + attn(x).
  Mat dres1;
  ln1_.Backward(res1_, dh1, &dres1);

  Mat dx_attn;
  attn_.Backward(x, dres1, &dx_attn);

  if (dx->rows() != x.rows() || dx->cols() != x.cols()) {
    *dx = Mat(x.rows(), x.cols());
  }
  Add(dres1.size(), dres1.data(), dx_attn.data(), dx->data());
}

void TransformerEncoderLayer::Params(std::vector<Parameter*>* out) {
  attn_.Params(out);
  ln1_.Params(out);
  ln2_.Params(out);
  ff1_.Params(out);
  ff2_.Params(out);
}

TransformerEncoder::TransformerEncoder(size_t layers, size_t dim, size_t heads,
                                       size_t ff_dim, Rng* rng,
                                       const std::string& name) {
  PKGM_CHECK_GT(layers, 0u);
  layers_.reserve(layers);
  for (size_t l = 0; l < layers; ++l) {
    layers_.emplace_back(dim, heads, ff_dim, rng,
                         StrFormat("%s.layer%zu", name.c_str(), l));
  }
  layer_inputs_.resize(layers);
}

void TransformerEncoder::Forward(const Mat& x, size_t valid_len, Mat* y) {
  Mat current = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layer_inputs_[l] = current;
    Mat next;
    layers_[l].Forward(layer_inputs_[l], valid_len, &next);
    current = std::move(next);
  }
  *y = std::move(current);
}

void TransformerEncoder::Backward(const Mat& dy, Mat* dx) {
  Mat current = dy;
  for (size_t l = layers_.size(); l-- > 0;) {
    Mat prev;
    layers_[l].Backward(layer_inputs_[l], current, &prev);
    current = std::move(prev);
  }
  if (dx != nullptr) *dx = std::move(current);
}

void TransformerEncoder::Params(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer.Params(out);
}

}  // namespace pkgm::nn
