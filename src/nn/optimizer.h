#ifndef PKGM_NN_OPTIMIZER_H_
#define PKGM_NN_OPTIMIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace pkgm::nn {

/// Vanilla SGD with optional L2 weight decay: w -= lr * (g + wd * w).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(std::vector<Parameter*> params, float lr,
                        float weight_decay = 0.0f);

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

  /// Applies gradients and zeroes them.
  void Step();

 private:
  std::vector<Parameter*> params_;
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba, 2015) with bias correction and optional decoupled
/// weight decay. Moment buffers are allocated per parameter at construction.
class AdamOptimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;  // decoupled (AdamW-style)
  };

  AdamOptimizer(std::vector<Parameter*> params, const Options& options);

  void set_learning_rate(float lr) { options_.lr = lr; }
  float learning_rate() const { return options_.lr; }
  uint64_t step_count() const { return t_; }

  /// Applies gradients and zeroes them.
  void Step();

 private:
  std::vector<Parameter*> params_;
  Options options_;
  uint64_t t_ = 0;
  std::vector<Mat> m_;  // index-aligned with params_
  std::vector<Mat> v_;
};

}  // namespace pkgm::nn

#endif  // PKGM_NN_OPTIMIZER_H_
