#include "kg/query_engine.h"

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pkgm::kg {

IdSpan QueryEngine::TripleQuery(EntityId h, RelationId r) {
  Stopwatch sw;
  const IdSpan result = source_->Tails(h, r);
  // Empty answers are recorded too: a miss costs the same index probe as a
  // hit, and leaving misses out would skew the latency distribution toward
  // whatever the workload happens to know.
  latency_micros_.Record(sw.ElapsedSeconds() * 1e6);
  ++num_triple_queries_;
  if (result.empty()) ++num_empty_triple_results_;
  return result;
}

IdSpan QueryEngine::RelationQuery(EntityId h) {
  Stopwatch sw;
  const IdSpan result = source_->RelationsOf(h);
  latency_micros_.Record(sw.ElapsedSeconds() * 1e6);
  ++num_relation_queries_;
  if (result.empty()) ++num_empty_relation_results_;
  return result;
}

std::string QueryEngine::StatsJson() const {
  const Histogram& h = latency_micros_;
  const std::string latency =
      h.count() == 0
          ? "{\"count\":0}"
          : StrFormat("{\"count\":%llu,\"p50_us\":%.2f,\"p95_us\":%.2f,"
                      "\"p99_us\":%.2f,\"mean_us\":%.2f}",
                      static_cast<unsigned long long>(h.count()),
                      h.Percentile(0.5), h.Percentile(0.95),
                      h.Percentile(0.99), h.Mean());
  return StrFormat(
      "{\"triple_queries\":%llu,\"relation_queries\":%llu,"
      "\"empty_triple_results\":%llu,\"empty_relation_results\":%llu,"
      "\"latency\":%s}",
      static_cast<unsigned long long>(num_triple_queries_),
      static_cast<unsigned long long>(num_relation_queries_),
      static_cast<unsigned long long>(num_empty_triple_results_),
      static_cast<unsigned long long>(num_empty_relation_results_),
      latency.c_str());
}

}  // namespace pkgm::kg
