#include "kg/query_engine.h"

#include "util/stopwatch.h"

namespace pkgm::kg {

const std::vector<EntityId>& QueryEngine::TripleQuery(EntityId h,
                                                      RelationId r) {
  Stopwatch sw;
  const std::vector<EntityId>& result = store_->Tails(h, r);
  latency_micros_.Record(sw.ElapsedSeconds() * 1e6);
  ++num_triple_queries_;
  return result;
}

const std::vector<RelationId>& QueryEngine::RelationQuery(EntityId h) {
  Stopwatch sw;
  const std::vector<RelationId>& result = store_->RelationsOf(h);
  latency_micros_.Record(sw.ElapsedSeconds() * 1e6);
  ++num_relation_queries_;
  return result;
}

}  // namespace pkgm::kg
