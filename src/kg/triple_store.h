#ifndef PKGM_KG_TRIPLE_STORE_H_
#define PKGM_KG_TRIPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/triple.h"

namespace pkgm::kg {

/// In-memory triple store with the two access paths PKGM models:
///
///   * triple queries   (h, r, ?t)  -> Tails(h, r)
///   * relation queries (h, ?r)     -> RelationsOf(h)
///
/// plus the inverse index Heads(r, t) needed for filtered link-prediction
/// ranking. Duplicate inserts are ignored. Not thread-safe for writes;
/// reads are safe once loading is done.
class TripleStore {
 public:
  TripleStore() = default;

  /// Inserts a triple; returns false if it was already present.
  bool Add(const Triple& t);
  bool Add(EntityId h, RelationId r, EntityId t) { return Add(Triple{h, r, t}); }

  /// Number of distinct triples.
  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// All triples in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Exact membership test.
  bool Contains(const Triple& t) const { return set_.count(t) > 0; }
  bool Contains(EntityId h, RelationId r, EntityId t) const {
    return Contains(Triple{h, r, t});
  }

  /// True if head h has at least one triple with relation r.
  bool HasRelation(EntityId h, RelationId r) const;

  /// Tail entities of (h, r); empty if none. The returned reference is
  /// valid until the next Add.
  const std::vector<EntityId>& Tails(EntityId h, RelationId r) const;

  /// Head entities of (r, t); empty if none.
  const std::vector<EntityId>& Heads(RelationId r, EntityId t) const;

  /// Distinct relations attached to head h, in first-seen order.
  const std::vector<RelationId>& RelationsOf(EntityId h) const;

  /// Number of triples per relation (index = relation id; absent = 0).
  std::vector<uint64_t> RelationFrequencies(uint32_t num_relations) const;

  /// Largest entity id referenced + 1 (0 if empty).
  EntityId MaxEntityId() const { return max_entity_id_; }
  /// Largest relation id referenced + 1 (0 if empty).
  RelationId MaxRelationId() const { return max_relation_id_; }

 private:
  static uint64_t PairKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  std::unordered_map<uint64_t, std::vector<EntityId>> hr_to_tails_;
  std::unordered_map<uint64_t, std::vector<EntityId>> rt_to_heads_;
  std::unordered_map<EntityId, std::vector<RelationId>> head_relations_;
  EntityId max_entity_id_ = 0;
  RelationId max_relation_id_ = 0;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_TRIPLE_STORE_H_
