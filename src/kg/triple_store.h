#ifndef PKGM_KG_TRIPLE_STORE_H_
#define PKGM_KG_TRIPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/triple.h"
#include "kg/triple_source.h"

namespace pkgm::kg {

/// In-memory triple store with the two access paths PKGM models:
///
///   * triple queries   (h, r, ?t)  -> Tails(h, r)
///   * relation queries (h, ?r)     -> RelationsOf(h)
///
/// plus the inverse index Heads(r, t) needed for filtered link-prediction
/// ranking. Duplicate inserts are ignored. Not thread-safe for writes;
/// reads are safe once loading is done.
///
/// Implements TripleSource, so every consumer (negative sampling, filtered
/// ranking, the query engines, the trainers) runs identically against this
/// store and against a memory-mapped `.pkgt` MmapTripleIndex.
class TripleStore : public TripleSource {
 public:
  TripleStore() = default;

  /// Inserts a triple; returns false if it was already present.
  bool Add(const Triple& t);
  bool Add(EntityId h, RelationId r, EntityId t) { return Add(Triple{h, r, t}); }

  /// Number of distinct triples.
  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// All triples in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  // TripleSource.
  uint64_t NumTriples() const override { return triples_.size(); }
  /// Largest entity id referenced + 1 (0 if empty).
  EntityId MaxEntityId() const override { return max_entity_id_; }
  /// Largest relation id referenced + 1 (0 if empty).
  RelationId MaxRelationId() const override { return max_relation_id_; }

  /// Exact membership test.
  bool Contains(EntityId h, RelationId r, EntityId t) const override {
    return set_.count(Triple{h, r, t}) > 0;
  }
  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  /// True if head h has at least one triple with relation r.
  bool HasRelation(EntityId h, RelationId r) const override;

  /// Tail entities of (h, r) in insertion order; empty if none. The span is
  /// valid until the next Add.
  IdSpan Tails(EntityId h, RelationId r) const override;

  /// Head entities of (r, t); empty if none.
  IdSpan Heads(RelationId r, EntityId t) const override;

  /// Distinct relations attached to head h, in first-seen order.
  IdSpan RelationsOf(EntityId h) const override;

  /// Number of triples with relation r.
  uint64_t RelationCount(RelationId r) const override {
    return r < relation_counts_.size() ? relation_counts_[r] : 0;
  }

  /// Appends all triples in insertion order.
  void AppendTriples(std::vector<Triple>* out) const override {
    out->insert(out->end(), triples_.begin(), triples_.end());
  }

  /// Number of triples per relation (index = relation id; absent = 0). The
  /// result always covers every relation the store has seen: its size is
  /// max(num_relations, MaxRelationId()), so out-of-range relation ids are
  /// reported instead of silently dropped.
  std::vector<uint64_t> RelationFrequencies(uint32_t num_relations) const;

 private:
  static uint64_t PairKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  std::unordered_map<uint64_t, std::vector<EntityId>> hr_to_tails_;
  std::unordered_map<uint64_t, std::vector<EntityId>> rt_to_heads_;
  std::unordered_map<EntityId, std::vector<RelationId>> head_relations_;
  std::vector<uint64_t> relation_counts_;
  EntityId max_entity_id_ = 0;
  RelationId max_relation_id_ = 0;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_TRIPLE_STORE_H_
