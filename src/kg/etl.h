#ifndef PKGM_KG_ETL_H_
#define PKGM_KG_ETL_H_

#include <cstdint>

#include "kg/triple_store.h"

namespace pkgm::kg {

/// Statistics reported by an ETL pass, in the spirit of the paper's
/// MaxCompute preprocessing (§III-A1).
struct EtlStats {
  uint64_t input_triples = 0;
  uint64_t output_triples = 0;
  uint64_t dropped_triples = 0;
  uint32_t input_relations = 0;
  uint32_t output_relations = 0;
  uint32_t dropped_relations = 0;
};

/// Drops every triple whose relation occurs fewer than `min_occurrence`
/// times in `input` (the paper removes attributes with < 5000 occurrences
/// because they are noisy, inflate model size, and hurt quality). Entity and
/// relation ids are preserved. `stats` may be null.
TripleStore FilterByRelationFrequency(const TripleStore& input,
                                      uint32_t num_relations,
                                      uint32_t min_occurrence,
                                      EtlStats* stats);

}  // namespace pkgm::kg

#endif  // PKGM_KG_ETL_H_
