#ifndef PKGM_KG_SPLIT_H_
#define PKGM_KG_SPLIT_H_

#include <vector>

#include "kg/triple_store.h"
#include "util/rng.h"

namespace pkgm::kg {

/// Train/valid/test triple split for link-prediction evaluation.
struct TripleSplit {
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;
};

/// Randomly partitions the triples of `store` into train/valid/test with the
/// given fractions (test gets the remainder). Deterministic given the rng
/// state. Fractions must be non-negative and sum to <= 1.
TripleSplit SplitTriples(const TripleStore& store, double train_fraction,
                         double valid_fraction, Rng* rng);

}  // namespace pkgm::kg

#endif  // PKGM_KG_SPLIT_H_
