#ifndef PKGM_KG_PKGT_FORMAT_H_
#define PKGM_KG_PKGT_FORMAT_H_

#include <cstdint>

#include "store/store_format.h"  // AlignUpToSection / Fnv1a64 / alignment

namespace pkgm::kg {

// "PKGT" — distinct from the .pkgs embedding-store magic "PKGS" and the
// PkgmModel checkpoint magic "PKGM", so the three on-disk formats can never
// be confused for one another.
constexpr uint32_t kPkgtMagic = 0x504b4754u;
constexpr uint32_t kPkgtFormatVersion = 1;

/// One sorted permutation sub-index of the triple set. Triples are
/// dictionary-encoded (dense uint32 ids) and grouped into *runs*: all
/// triples sharing the permutation's leading pair collapse to one run.
///
///   keys    uint64[num_runs]      (first << 32) | second, strictly increasing
///   offsets uint64[num_runs + 1]  run i's values are values[offsets[i],
///                                 offsets[i+1]); offsets[num_runs] = N
///   values  uint32[N]             the third component, ascending per run
///
/// SPO: key (head, relation)   -> tail values   (triple queries, Contains)
/// POS: key (relation, tail)   -> head values   (inverse lookups, joins)
/// OSP: key (tail, head)       -> relation vals (entity-pair probes)
struct PkgtPermutation {
  uint64_t num_runs = 0;
  uint64_t keys_offset = 0;
  uint64_t offsets_offset = 0;
  uint64_t values_offset = 0;
};

/// Fixed little-endian header at offset 0 of a .pkgt triple index.
///
/// Byte layout (also documented in DESIGN.md §13):
///   [  0,  4) magic "PKGT"        [  4,  8) format version
///   [  8, 12) flags (reserved)    [ 12, 16) num_entities
///   [ 16, 20) num_relations       [ 20, 24) padding (zero)
///   [ 24, 32) num_triples
///   [ 32, 64) SPO permutation     [ 64, 96) POS permutation
///   [ 96,128) OSP permutation
///   [128,136) spo_run_relations section offset — uint32[spo.num_runs],
///             the relation half of each SPO run key, so RelationsOf(h) is
///             one zero-copy slice of this array
///   [136,144) pred_runs section offset — uint64[num_relations + 1], the
///             per-predicate range of POS run indices (POS keys lead with
///             the relation, so each predicate's runs are contiguous)
///   [144,152) total file size     [152,160) FNV-1a64 payload checksum
///
/// Every section offset is a multiple of kStoreSectionAlignment (64), and
/// the checksum covers every byte after the header, mirroring the `.pkgs`
/// embedding-store discipline so any truncation or bit flip is detected at
/// open.
struct PkgtHeader {
  uint32_t magic = kPkgtMagic;
  uint32_t version = kPkgtFormatVersion;
  uint32_t flags = 0;
  uint32_t num_entities = 0;   // max entity id + 1
  uint32_t num_relations = 0;  // max relation id + 1
  uint32_t pad = 0;
  uint64_t num_triples = 0;
  PkgtPermutation spo;
  PkgtPermutation pos;
  PkgtPermutation osp;
  uint64_t spo_run_relations_offset = 0;
  uint64_t pred_runs_offset = 0;
  uint64_t file_size = 0;
  uint64_t payload_checksum = 0;
};
static_assert(sizeof(PkgtPermutation) == 32,
              "PkgtPermutation must be packed to 32B");
static_assert(sizeof(PkgtHeader) == 160, "PkgtHeader must be packed to 160B");

/// Composes/decomposes the uint64 run key of a permutation.
inline uint64_t PkgtRunKey(uint32_t first, uint32_t second) {
  return (static_cast<uint64_t>(first) << 32) | second;
}
inline uint32_t PkgtKeyFirst(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline uint32_t PkgtKeySecond(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffu);
}

}  // namespace pkgm::kg

#endif  // PKGM_KG_PKGT_FORMAT_H_
