#include "kg/mmap_triple_index.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace pkgm::kg {
namespace {

/// Section bounds check: the whole [offset, offset + bytes) range must sit
/// inside the payload region of the mapped file, 64-byte aligned.
Status CheckSection(const char* name, uint64_t offset, uint64_t bytes,
                    uint64_t file_size) {
  if (offset < sizeof(PkgtHeader) ||
      offset % store::kStoreSectionAlignment != 0 || offset > file_size ||
      bytes > file_size - offset) {
    return Status::Corruption(
        StrFormat("%s section [%llu, +%llu) escapes the %llu-byte index",
                  name, static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(file_size)));
  }
  return Status::Ok();
}

}  // namespace

uint64_t MmapTripleIndex::Permutation::FindRun(uint64_t key) const {
  const uint64_t* end = keys + num_runs;
  const uint64_t* it = std::lower_bound(keys, end, key);
  return (it != end && *it == key) ? static_cast<uint64_t>(it - keys)
                                   : num_runs;
}

void MmapTripleIndex::Permutation::FirstRange(uint32_t first, uint64_t* begin,
                                              uint64_t* end) const {
  const uint64_t* last = keys + num_runs;
  const uint64_t* lo = std::lower_bound(keys, last, PkgtRunKey(first, 0));
  const uint64_t* hi =
      std::upper_bound(lo, last, PkgtRunKey(first, 0xffffffffu));
  *begin = static_cast<uint64_t>(lo - keys);
  *end = static_cast<uint64_t>(hi - keys);
}

Status MmapTripleIndex::MapPermutation(const PkgtPermutation& section,
                                       const char* name,
                                       Permutation* out) const {
  const uint64_t n = header_.num_triples;
  if (section.num_runs == 0 || section.num_runs > n) {
    return Status::Corruption(
        StrFormat("%s permutation has %llu runs for %llu triples", name,
                  static_cast<unsigned long long>(section.num_runs),
                  static_cast<unsigned long long>(n)));
  }
  PKGM_RETURN_IF_ERROR(CheckSection(name, section.keys_offset,
                                    section.num_runs * sizeof(uint64_t),
                                    header_.file_size));
  PKGM_RETURN_IF_ERROR(CheckSection(name, section.offsets_offset,
                                    (section.num_runs + 1) * sizeof(uint64_t),
                                    header_.file_size));
  PKGM_RETURN_IF_ERROR(CheckSection(name, section.values_offset,
                                    n * sizeof(uint32_t), header_.file_size));
  out->keys = reinterpret_cast<const uint64_t*>(base_ + section.keys_offset);
  out->offsets =
      reinterpret_cast<const uint64_t*>(base_ + section.offsets_offset);
  out->values =
      reinterpret_cast<const uint32_t*>(base_ + section.values_offset);
  out->num_runs = section.num_runs;

  // Structural invariants binary search relies on: strictly increasing run
  // keys, and a monotone offset table that starts at 0, ends at the triple
  // count, and gives every run at least one value. O(num_runs).
  if (out->offsets[0] != 0 || out->offsets[out->num_runs] != n) {
    return Status::Corruption(
        StrFormat("%s permutation offsets do not span the value array", name));
  }
  for (uint64_t i = 0; i < out->num_runs; ++i) {
    if (i + 1 < out->num_runs && out->keys[i] >= out->keys[i + 1]) {
      return Status::Corruption(StrFormat(
          "%s permutation run keys out of order at run %llu", name,
          static_cast<unsigned long long>(i)));
    }
    if (out->offsets[i] >= out->offsets[i + 1]) {
      return Status::Corruption(
          StrFormat("%s permutation has an empty or reversed run %llu", name,
                    static_cast<unsigned long long>(i)));
    }
  }
  return Status::Ok();
}

StatusOr<MmapTripleIndex> MmapTripleIndex::Open(
    const std::string& path, MmapTripleIndexOptions options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(StrFormat("cannot stat %s", path.c_str()));
  }
  const uint64_t actual_size = static_cast<uint64_t>(st.st_size);
  if (actual_size < sizeof(PkgtHeader)) {
    ::close(fd);
    return Status::Corruption(
        StrFormat("%s: %llu bytes is too short for a triple index header",
                  path.c_str(), static_cast<unsigned long long>(actual_size)));
  }

  void* mapping = ::mmap(nullptr, actual_size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::IoError(StrFormat("mmap failed for %s", path.c_str()));
  }

  MmapTripleIndex index;
  index.base_ = static_cast<const unsigned char*>(mapping);
  index.mapped_bytes_ = actual_size;
  index.path_ = path;
  std::memcpy(&index.header_, index.base_, sizeof(PkgtHeader));
  const PkgtHeader& h = index.header_;

  if (h.magic != kPkgtMagic) {
    return Status::Corruption(
        StrFormat("%s is not a triple index (bad magic)", path.c_str()));
  }
  if (h.version != kPkgtFormatVersion) {
    return Status::Corruption(
        StrFormat("unsupported triple index format version %u", h.version));
  }
  if (h.flags != 0) {
    return Status::Corruption(
        StrFormat("unknown triple index flags %#x", h.flags));
  }
  if (h.num_triples == 0 || h.num_entities == 0 || h.num_relations == 0) {
    return Status::Corruption("triple index header has empty tables");
  }
  if (h.file_size != actual_size) {
    return Status::Corruption(StrFormat(
        "index %s is truncated: header says %llu bytes, file has %llu",
        path.c_str(), static_cast<unsigned long long>(h.file_size),
        static_cast<unsigned long long>(actual_size)));
  }

  PKGM_RETURN_IF_ERROR(index.MapPermutation(h.spo, "SPO", &index.spo_));
  PKGM_RETURN_IF_ERROR(index.MapPermutation(h.pos, "POS", &index.pos_));
  PKGM_RETURN_IF_ERROR(index.MapPermutation(h.osp, "OSP", &index.osp_));

  PKGM_RETURN_IF_ERROR(CheckSection("SPO run relations",
                                    h.spo_run_relations_offset,
                                    h.spo.num_runs * sizeof(uint32_t),
                                    actual_size));
  index.spo_run_relations_ = reinterpret_cast<const uint32_t*>(
      index.base_ + h.spo_run_relations_offset);
  PKGM_RETURN_IF_ERROR(
      CheckSection("predicate runs", h.pred_runs_offset,
                   (h.num_relations + 1) * sizeof(uint64_t), actual_size));
  index.pred_runs_ =
      reinterpret_cast<const uint64_t*>(index.base_ + h.pred_runs_offset);
  for (uint32_t r = 0; r < h.num_relations; ++r) {
    if (index.pred_runs_[r] > index.pred_runs_[r + 1] ||
        index.pred_runs_[r + 1] > h.pos.num_runs) {
      return Status::Corruption(
          StrFormat("predicate run table out of order at relation %u", r));
    }
  }

  if (options.verify_checksum) {
    PKGM_RETURN_IF_ERROR(index.VerifyChecksum());
  }
  return index;
}

Status MmapTripleIndex::VerifyChecksum() const {
  const uint64_t computed = store::Fnv1a64(base_ + sizeof(PkgtHeader),
                                           mapped_bytes_ - sizeof(PkgtHeader));
  if (computed != header_.payload_checksum) {
    return Status::Corruption(StrFormat(
        "index %s payload checksum mismatch: header %016llx, computed %016llx",
        path_.c_str(),
        static_cast<unsigned long long>(header_.payload_checksum),
        static_cast<unsigned long long>(computed)));
  }
  return Status::Ok();
}

Status MmapTripleIndex::Validate() const {
  const auto check_runs = [](const Permutation& p,
                             const char* name) -> Status {
    for (uint64_t i = 0; i < p.num_runs; ++i) {
      const IdSpan run = p.Run(i);
      for (size_t j = 1; j < run.size(); ++j) {
        if (run[j - 1] >= run[j]) {
          return Status::Corruption(StrFormat(
              "%s permutation run %llu values out of order", name,
              static_cast<unsigned long long>(i)));
        }
      }
    }
    return Status::Ok();
  };
  PKGM_RETURN_IF_ERROR(check_runs(spo_, "SPO"));
  PKGM_RETURN_IF_ERROR(check_runs(pos_, "POS"));
  PKGM_RETURN_IF_ERROR(check_runs(osp_, "OSP"));
  for (uint64_t i = 0; i < spo_.num_runs; ++i) {
    if (spo_run_relations_[i] != PkgtKeySecond(spo_.keys[i])) {
      return Status::Corruption(StrFormat(
          "SPO run relation array disagrees with run key %llu",
          static_cast<unsigned long long>(i)));
    }
  }
  for (uint64_t i = 0; i < pos_.num_runs; ++i) {
    const uint32_t r = PkgtKeyFirst(pos_.keys[i]);
    if (r >= header_.num_relations || i < pred_runs_[r] ||
        i >= pred_runs_[r + 1]) {
      return Status::Corruption(StrFormat(
          "predicate run table misplaces POS run %llu",
          static_cast<unsigned long long>(i)));
    }
  }
  return Status::Ok();
}

bool MmapTripleIndex::Contains(EntityId h, RelationId r, EntityId t) const {
  const IdSpan tails = Tails(h, r);
  return std::binary_search(tails.begin(), tails.end(), t);
}

bool MmapTripleIndex::HasRelation(EntityId h, RelationId r) const {
  return spo_.FindRun(PkgtRunKey(h, r)) != spo_.num_runs;
}

IdSpan MmapTripleIndex::Tails(EntityId h, RelationId r) const {
  const uint64_t run = spo_.FindRun(PkgtRunKey(h, r));
  return run == spo_.num_runs ? IdSpan{} : spo_.Run(run);
}

IdSpan MmapTripleIndex::Heads(RelationId r, EntityId t) const {
  const uint64_t run = pos_.FindRun(PkgtRunKey(r, t));
  return run == pos_.num_runs ? IdSpan{} : pos_.Run(run);
}

IdSpan MmapTripleIndex::RelationsOf(EntityId h) const {
  uint64_t begin = 0, end = 0;
  spo_.FirstRange(h, &begin, &end);
  return {spo_run_relations_ + begin, static_cast<size_t>(end - begin)};
}

uint64_t MmapTripleIndex::RelationCount(RelationId r) const {
  if (r >= header_.num_relations) return 0;
  return pos_.offsets[pred_runs_[r + 1]] - pos_.offsets[pred_runs_[r]];
}

uint64_t MmapTripleIndex::PredRunBegin(RelationId r) const {
  return r >= header_.num_relations ? pos_.num_runs : pred_runs_[r];
}

uint64_t MmapTripleIndex::PredRunEnd(RelationId r) const {
  return r >= header_.num_relations ? pos_.num_runs : pred_runs_[r + 1];
}

uint64_t MmapTripleIndex::SpoRunLowerBound(EntityId h) const {
  const uint64_t* end = spo_.keys + spo_.num_runs;
  const uint64_t* it =
      std::lower_bound(spo_.keys, end, PkgtRunKey(h, 0));
  return static_cast<uint64_t>(it - spo_.keys);
}

IdSpan MmapTripleIndex::PosRunValues(uint64_t run) const {
  PKGM_CHECK_LT(run, pos_.num_runs);
  return pos_.Run(run);
}

uint32_t MmapTripleIndex::PosRunTail(uint64_t run) const {
  PKGM_CHECK_LT(run, pos_.num_runs);
  return PkgtKeySecond(pos_.keys[run]);
}

void MmapTripleIndex::AppendTriples(std::vector<Triple>* out) const {
  out->reserve(out->size() + header_.num_triples);
  for (uint64_t i = 0; i < spo_.num_runs; ++i) {
    const EntityId h = PkgtKeyFirst(spo_.keys[i]);
    const RelationId r = PkgtKeySecond(spo_.keys[i]);
    for (uint32_t t : spo_.Run(i)) out->push_back(Triple{h, r, t});
  }
}

void MmapTripleIndex::Release() noexcept {
  if (base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(base_), mapped_bytes_);
    base_ = nullptr;
    mapped_bytes_ = 0;
  }
}

MmapTripleIndex::~MmapTripleIndex() { Release(); }

MmapTripleIndex::MmapTripleIndex(MmapTripleIndex&& other) noexcept
    : header_(other.header_),
      path_(std::move(other.path_)),
      base_(other.base_),
      mapped_bytes_(other.mapped_bytes_),
      spo_(other.spo_),
      pos_(other.pos_),
      osp_(other.osp_),
      spo_run_relations_(other.spo_run_relations_),
      pred_runs_(other.pred_runs_) {
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
}

MmapTripleIndex& MmapTripleIndex::operator=(MmapTripleIndex&& other) noexcept {
  if (this != &other) {
    Release();
    header_ = other.header_;
    path_ = std::move(other.path_);
    base_ = other.base_;
    mapped_bytes_ = other.mapped_bytes_;
    spo_ = other.spo_;
    pos_ = other.pos_;
    osp_ = other.osp_;
    spo_run_relations_ = other.spo_run_relations_;
    pred_runs_ = other.pred_runs_;
    other.base_ = nullptr;
    other.mapped_bytes_ = 0;
  }
  return *this;
}

}  // namespace pkgm::kg
