#ifndef PKGM_KG_SYNTHETIC_PKG_H_
#define PKGM_KG_SYNTHETIC_PKG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kg/triple_store.h"
#include "kg/vocab.h"
#include "util/rng.h"

namespace pkgm::kg {

/// Configuration for the synthetic e-commerce product KG. Defaults give a
/// laptop-scale graph (~10^5 triples) whose *shape* matches the paper's
/// PKG-sub (Table II): a category tree, per-category attribute schemas,
/// Zipf-skewed value popularity, seller-filled sparsity, and a tail of rare
/// noisy attributes for the ETL frequency filter to remove.
struct SyntheticPkgOptions {
  uint64_t seed = 42;

  /// Number of leaf categories in the item category tree.
  uint32_t num_categories = 20;
  /// Mean number of items per category (actual counts are Zipf-skewed
  /// across categories, mimicking head/tail categories).
  uint32_t items_per_category = 200;
  /// Properties in each category's schema (the paper selects the top 10 as
  /// key relations, so schemas should be >= 10).
  uint32_t properties_per_category = 12;
  /// Size of the global property pool shared across categories (brand,
  /// color, material, ...). Schemas draw from this pool first, then add
  /// category-specific properties.
  uint32_t shared_property_pool = 16;
  /// Distinct values per property (per category), e.g. brands in a category.
  uint32_t values_per_property = 40;
  /// Zipf exponent for value popularity within a property (1.0+ = strong
  /// head, 0 = uniform).
  double value_zipf_exponent = 1.0;
  /// Probability a seller actually filled a ground-truth attribute. The
  /// unfilled remainder becomes the held-out completion set.
  double observed_fill_rate = 0.75;
  /// Products per category; items of the same product share the values of
  /// the identity properties (used by the alignment task).
  uint32_t products_per_category = 40;
  /// Number of leading schema properties whose values define product
  /// identity.
  uint32_t identity_properties = 3;
  /// Probability that a non-identity attribute takes the product's
  /// canonical value rather than an item-specific draw. Items of one
  /// product are the same physical good, so their specs agree almost
  /// everywhere; the remainder models seller-specific variation.
  double shared_attribute_prob = 0.85;
  /// Probability that a non-identity schema property *applies* to a given
  /// product at all (e.g. "heel height" applies to some shoes only).
  /// Ownership therefore varies item-to-item within a category, which is
  /// exactly the signal the relation query module encodes.
  double property_applicability = 0.8;
  /// Extra rare/noisy attributes (occurrence below any sane ETL threshold).
  uint32_t noise_properties = 8;
  /// Number of items each noise property is attached to.
  uint32_t noise_property_occurrences = 3;
  /// If true, adds sparse item-item `similarTo` edges within categories
  /// (the paper's R' relation set).
  bool add_item_item_relations = true;
  /// ETL frequency threshold: properties with fewer occurrences than this
  /// are dropped before pre-training (paper: 5000 on the full PKG).
  uint32_t etl_min_occurrence = 10;
};

/// Per-item ground truth retained by the generator for downstream dataset
/// construction and for evaluating completion.
struct ItemInfo {
  EntityId entity = 0;
  uint32_t category = 0;
  /// Global product index; items with equal product refer to the same
  /// real-world product (alignment positives).
  uint32_t product = 0;
  /// Complete ground-truth attribute assignment (relation -> value entity),
  /// regardless of whether the seller filled it in the observed KG.
  std::vector<std::pair<RelationId, EntityId>> attributes;
};

/// A generated product knowledge graph plus all ground truth needed by the
/// downstream tasks and by evaluation.
struct SyntheticPkg {
  Vocab entities;
  Vocab relations;

  /// Observed, ETL-filtered KG: what PKGM pre-trains on.
  TripleStore observed;
  /// True attribute triples the seller did not fill (completion targets).
  std::vector<Triple> held_out;
  /// Noisy triples removed by the ETL frequency filter.
  uint64_t etl_dropped_triples = 0;
  uint32_t etl_dropped_relations = 0;

  std::vector<ItemInfo> items;
  uint32_t num_categories = 0;
  uint32_t num_products = 0;
  std::vector<std::string> category_names;
  /// Property relation ids in each category's schema (identity properties
  /// first).
  std::vector<std::vector<RelationId>> category_schema;
  /// All attribute (property) relation ids, i.e. the P subset of R.
  std::vector<RelationId> property_relations;
  /// Item-item relation ids, i.e. the R' subset of R.
  std::vector<RelationId> item_relations;
  /// Value universe per (category, property) pair is folded into this
  /// per-property union, used for corrupting triples plausibly.
  std::unordered_map<RelationId, std::vector<EntityId>> property_values;

  /// True ground-truth check: should item (by index) have relation r?
  /// (= r applies to the item's product, i.e. appears in its complete
  /// ground-truth attribute list — regardless of whether the seller filled
  /// it). Used to evaluate the relation query module's three-way behaviour
  /// (§II-D2).
  bool ItemShouldHaveRelation(uint32_t item_index, RelationId r) const;

  /// Ground-truth tail for (item, r), or kInvalidId if r is not in the
  /// item's schema.
  EntityId GroundTruthTail(uint32_t item_index, RelationId r) const;
};

/// Generates a SyntheticPkg per the options. Deterministic given the seed.
class SyntheticPkgGenerator {
 public:
  explicit SyntheticPkgGenerator(SyntheticPkgOptions options)
      : options_(options) {}

  /// Builds the graph: categories -> schemas -> products -> items ->
  /// observed/held-out split -> noise -> ETL filter.
  SyntheticPkg Generate() const;

 private:
  SyntheticPkgOptions options_;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_SYNTHETIC_PKG_H_
