#include "kg/rule_miner.h"

#include <algorithm>

#include "util/logging.h"

namespace pkgm::kg {

namespace {

// Packs an (relation, value) attribute atom into one 64-bit key.
uint64_t AtomKey(RelationId r, EntityId v) {
  return (static_cast<uint64_t>(r) << 32) | v;
}

}  // namespace

std::vector<Rule> MineRules(const TripleStore& store,
                            const std::vector<EntityId>& items,
                            const RuleMinerOptions& options) {
  // Count per-atom frequency and per-ordered-atom-pair co-occurrence over
  // items. An item's attribute set is its outgoing (relation, tail) pairs.
  std::unordered_map<uint64_t, uint64_t> atom_count;
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint64_t>>
      pair_count;  // body atom -> head atom -> co-occurrences

  std::vector<uint64_t> atoms;
  for (EntityId item : items) {
    atoms.clear();
    for (RelationId r : store.RelationsOf(item)) {
      for (EntityId v : store.Tails(item, r)) {
        atoms.push_back(AtomKey(r, v));
      }
    }
    for (uint64_t a : atoms) ++atom_count[a];
    for (uint64_t body : atoms) {
      auto& heads = pair_count[body];
      for (uint64_t head : atoms) {
        if (head == body) continue;
        // Rules across the same relation (r, v) => (r, v') are tautologies
        // or contradictions for functional attributes; skip same-relation
        // pairs.
        if ((head >> 32) == (body >> 32)) continue;
        ++heads[head];
      }
    }
  }

  std::vector<Rule> rules;
  for (const auto& [body, heads] : pair_count) {
    const uint64_t body_n = atom_count[body];
    if (body_n == 0) continue;
    for (const auto& [head, support] : heads) {
      if (support < options.min_support) continue;
      const double confidence =
          static_cast<double>(support) / static_cast<double>(body_n);
      if (confidence < options.min_confidence) continue;
      Rule rule;
      rule.body_relation = static_cast<RelationId>(body >> 32);
      rule.body_value = static_cast<EntityId>(body & 0xffffffffu);
      rule.head_relation = static_cast<RelationId>(head >> 32);
      rule.head_value = static_cast<EntityId>(head & 0xffffffffu);
      rule.support = support;
      rule.confidence = confidence;
      rules.push_back(rule);
    }
  }

  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    return a.support > b.support;
  });
  if (rules.size() > options.max_rules) rules.resize(options.max_rules);
  return rules;
}

RuleInferencer::RuleInferencer(std::vector<Rule> rules)
    : rules_(std::move(rules)) {
  for (uint32_t i = 0; i < rules_.size(); ++i) {
    body_index_[Key(rules_[i].body_relation, rules_[i].body_value)].push_back(
        i);
  }
}

std::vector<std::pair<EntityId, double>> RuleInferencer::PredictTails(
    const TripleStore& store, EntityId h, RelationId r) const {
  // Noisy-or vote per candidate tail: 1 - prod(1 - confidence_i).
  std::unordered_map<EntityId, double> complement;  // value -> prod(1 - c)
  for (RelationId br : store.RelationsOf(h)) {
    for (EntityId bv : store.Tails(h, br)) {
      auto it = body_index_.find(Key(br, bv));
      if (it == body_index_.end()) continue;
      for (uint32_t idx : it->second) {
        const Rule& rule = rules_[idx];
        if (rule.head_relation != r) continue;
        auto [entry, inserted] = complement.try_emplace(rule.head_value, 1.0);
        entry->second *= 1.0 - rule.confidence;
      }
    }
  }
  std::vector<std::pair<EntityId, double>> out;
  out.reserve(complement.size());
  for (const auto& [value, comp] : complement) {
    out.emplace_back(value, 1.0 - comp);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::pair<double, double> RuleInferencer::EvaluateTails(
    const TripleStore& store, const std::vector<Triple>& test,
    uint32_t universe_size) const {
  if (test.empty()) return {0.0, 0.0};
  double rr_sum = 0.0, hits1 = 0.0;
  for (const Triple& t : test) {
    auto predicted = PredictTails(store, t.head, t.relation);
    double rank = 0.0;
    bool found = false;
    for (size_t i = 0; i < predicted.size(); ++i) {
      if (predicted[i].first == t.tail) {
        rank = static_cast<double>(i + 1);
        found = true;
        break;
      }
    }
    if (!found) {
      // Expected rank among the candidates the rules said nothing about.
      const double remaining = std::max<double>(
          1.0, static_cast<double>(universe_size) -
                   static_cast<double>(predicted.size()));
      rank = static_cast<double>(predicted.size()) + (remaining + 1.0) / 2.0;
    }
    rr_sum += 1.0 / rank;
    if (found && rank == 1.0) hits1 += 1.0;
  }
  const double n = static_cast<double>(test.size());
  return {rr_sum / n, hits1 / n};
}

}  // namespace pkgm::kg
