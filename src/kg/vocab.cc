#include "kg/vocab.h"

#include "util/logging.h"

namespace pkgm::kg {

uint32_t Vocab::GetOrAdd(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

uint32_t Vocab::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidId : it->second;
}

const std::string& Vocab::Name(uint32_t id) const {
  PKGM_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace pkgm::kg
