#ifndef PKGM_KG_TRIPLE_SOURCE_H_
#define PKGM_KG_TRIPLE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kg/triple.h"

namespace pkgm::kg {

/// Non-owning view of a run of 32-bit ids (entities or relations). The
/// backing storage is an in-memory vector (TripleStore) or a sorted run
/// inside a memory-mapped `.pkgt` index (MmapTripleIndex); either way the
/// span stays valid as long as its source does and no triples are added.
struct IdSpan {
  const uint32_t* ptr = nullptr;
  size_t count = 0;

  const uint32_t* begin() const { return ptr; }
  const uint32_t* end() const { return ptr + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  uint32_t operator[](size_t i) const { return ptr[i]; }
};

/// Read-only access to a triple set — the seam between the KG storage
/// backends and everything that consumes facts: negative-sampling filters,
/// filtered link-prediction ranking, the symbolic query engines, and the
/// trainers' epoch iteration.
///
/// Implemented by the in-memory TripleStore (hash maps over vectors) and by
/// MmapTripleIndex (zero-copy binary search over sorted permutation runs of
/// a `.pkgt` file), so consumers scale from laptop graphs to indexes far
/// larger than RAM without code changes. Implementations must be safe for
/// concurrent readers once loading is done.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// Number of distinct triples.
  virtual uint64_t NumTriples() const = 0;
  /// Largest entity id referenced + 1 (0 if empty).
  virtual EntityId MaxEntityId() const = 0;
  /// Largest relation id referenced + 1 (0 if empty).
  virtual RelationId MaxRelationId() const = 0;

  /// Exact membership test.
  virtual bool Contains(EntityId h, RelationId r, EntityId t) const = 0;
  bool Contains(const Triple& t) const {
    return Contains(t.head, t.relation, t.tail);
  }

  /// True if head h has at least one triple with relation r.
  virtual bool HasRelation(EntityId h, RelationId r) const = 0;

  /// Tail entities of (h, r); empty if none. Order is backend-defined
  /// (insertion order in memory, sorted ascending on disk) — consumers that
  /// need a canonical order must sort.
  virtual IdSpan Tails(EntityId h, RelationId r) const = 0;

  /// Head entities of (r, t); empty if none.
  virtual IdSpan Heads(RelationId r, EntityId t) const = 0;

  /// Distinct relations attached to head h.
  virtual IdSpan RelationsOf(EntityId h) const = 0;

  /// Number of triples whose relation is r.
  virtual uint64_t RelationCount(RelationId r) const = 0;

  /// Appends every triple to `out` in the backend's iteration order
  /// (insertion order in memory, SPO order on disk). Trainers materialize
  /// their epoch working set through this.
  virtual void AppendTriples(std::vector<Triple>* out) const = 0;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_TRIPLE_SOURCE_H_
