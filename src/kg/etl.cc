#include "kg/etl.h"

#include <vector>

namespace pkgm::kg {

TripleStore FilterByRelationFrequency(const TripleStore& input,
                                      uint32_t num_relations,
                                      uint32_t min_occurrence,
                                      EtlStats* stats) {
  std::vector<uint64_t> freq = input.RelationFrequencies(num_relations);

  TripleStore output;
  uint64_t dropped = 0;
  for (const Triple& t : input.triples()) {
    if (t.relation < num_relations && freq[t.relation] >= min_occurrence) {
      output.Add(t);
    } else {
      ++dropped;
    }
  }

  if (stats != nullptr) {
    stats->input_triples = input.size();
    stats->output_triples = output.size();
    stats->dropped_triples = dropped;
    uint32_t in_rel = 0, out_rel = 0;
    for (uint32_t r = 0; r < num_relations; ++r) {
      if (freq[r] > 0) {
        ++in_rel;
        if (freq[r] >= min_occurrence) ++out_rel;
      }
    }
    stats->input_relations = in_rel;
    stats->output_relations = out_rel;
    stats->dropped_relations = in_rel - out_rel;
  }
  return output;
}

}  // namespace pkgm::kg
