#ifndef PKGM_KG_INDEXED_QUERY_ENGINE_H_
#define PKGM_KG_INDEXED_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/mmap_triple_index.h"
#include "util/histogram.h"

namespace pkgm::kg {

/// Query engine over a memory-mapped `.pkgt` triple index. Answers the
/// paper's two point-query shapes (§II) zero-copy, plus the conjunctive /
/// multi-hop patterns the symbolic serving tier needs but a hash-map store
/// cannot answer without materializing intermediates:
///
///   TripleQuery(h, r)        SELECT ?t WHERE { h r ?t }
///   RelationQuery(h)         SELECT ?r WHERE { h ?r ?t }
///   ConjunctiveQuery(atoms)  SELECT ?x WHERE { atom1(?x) . atom2(?x) ... }
///   Expand(frontier, r)      one hop: all tails reachable from a frontier
///
/// Conjunctions are solved with a leapfrog-style intersection over the
/// index's sorted runs: every atom contributes a sorted cursor (a single
/// run, or a k-way merge of a predicate's POS runs), the join repeatedly
/// seeks all cursors to the current maximum, and negated atoms filter the
/// survivors with O(log) probes. No intermediate result is materialized
/// beyond the output, and the canonical e-commerce audit query — "items of
/// category C missing relation r" — is two atoms.
class IndexedQueryEngine {
 public:
  /// One atom of a conjunctive pattern over a single entity variable ?x.
  struct Atom {
    enum class Kind {
      kHasTail,          ///< (?x, relation, fixed)
      kHasHead,          ///< (fixed, relation, ?x)
      kHasRelation,      ///< (?x, relation, ?) — at least one edge
      kMissingRelation,  ///< no (?x, relation, ?) edge exists
    };
    Kind kind = Kind::kHasTail;
    RelationId relation = 0;
    /// Tail for kHasTail, head for kHasHead; unused otherwise.
    EntityId fixed = 0;

    static Atom HasTail(RelationId r, EntityId t) {
      return {Kind::kHasTail, r, t};
    }
    static Atom HasHead(EntityId h, RelationId r) {
      return {Kind::kHasHead, r, h};
    }
    static Atom HasRelation(RelationId r) {
      return {Kind::kHasRelation, r, 0};
    }
    static Atom MissingRelation(RelationId r) {
      return {Kind::kMissingRelation, r, 0};
    }
  };

  /// Does not take ownership; `index` must outlive the engine.
  explicit IndexedQueryEngine(const MmapTripleIndex* index);

  /// Tail entities for (h, r, ?t), sorted ascending, zero-copy.
  IdSpan TripleQuery(EntityId h, RelationId r);

  /// Distinct relations of h for (h, ?r), zero-copy.
  IdSpan RelationQuery(EntityId h);

  /// All ?x satisfying every atom, sorted ascending. With no positive atom
  /// the candidate universe is every subject in the graph (a sorted scan of
  /// the SPO runs), so purely negative audits still work.
  std::vector<EntityId> ConjunctiveQuery(const std::vector<Atom>& atoms);

  /// One multi-hop step: sorted distinct union of Tails(e, r) over the
  /// frontier. Chain calls for longer paths.
  std::vector<EntityId> Expand(const std::vector<EntityId>& frontier,
                               RelationId r);

  uint64_t num_triple_queries() const { return num_triple_queries_; }
  uint64_t num_relation_queries() const { return num_relation_queries_; }
  uint64_t num_conjunctive_queries() const { return num_conjunctive_queries_; }
  uint64_t num_expand_queries() const { return num_expand_queries_; }
  uint64_t num_empty_results() const { return num_empty_results_; }
  const Histogram& point_micros() const { return point_micros_; }
  const Histogram& join_micros() const { return join_micros_; }

  /// Machine-readable snapshot of counters and latency percentiles, same
  /// conventions as serve::ServerStats::StatsJson().
  std::string StatsJson() const;

 private:
  const MmapTripleIndex* index_;
  uint64_t num_triple_queries_ = 0;
  uint64_t num_relation_queries_ = 0;
  uint64_t num_conjunctive_queries_ = 0;
  uint64_t num_expand_queries_ = 0;
  uint64_t num_empty_results_ = 0;
  Histogram point_micros_;  ///< TripleQuery / RelationQuery
  Histogram join_micros_;   ///< ConjunctiveQuery / Expand
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_INDEXED_QUERY_ENGINE_H_
