#include "kg/indexed_query_engine.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pkgm::kg {
namespace {

/// Sorted strictly-increasing stream of entity ids with leapfrog seek.
class EntityCursor {
 public:
  virtual ~EntityCursor() = default;
  virtual bool AtEnd() const = 0;
  /// Current id; only valid while !AtEnd().
  virtual EntityId Value() const = 0;
  virtual void Next() = 0;
  /// Advance to the first id >= v (may be the current one).
  virtual void SeekGeq(EntityId v) = 0;
};

/// Cursor over one sorted run slice (a Tails or Heads span). Seeks by
/// galloping then binary search, so a leapfrog pass over the whole span
/// costs O(k log(n/k)) comparisons for k survivors.
class SpanCursor : public EntityCursor {
 public:
  explicit SpanCursor(IdSpan span) : span_(span) {}

  bool AtEnd() const override { return pos_ >= span_.size(); }
  EntityId Value() const override { return span_[pos_]; }
  void Next() override { ++pos_; }
  void SeekGeq(EntityId v) override {
    if (AtEnd() || span_[pos_] >= v) return;
    size_t step = 1, hi = pos_ + 1;
    while (hi < span_.size() && span_[hi] < v) {
      pos_ = hi;
      hi += step;
      step *= 2;
    }
    hi = std::min(hi, span_.size());
    pos_ = static_cast<size_t>(
        std::lower_bound(span_.begin() + pos_, span_.begin() + hi, v) -
        span_.begin());
  }

 private:
  IdSpan span_;
  size_t pos_ = 0;
};

/// Distinct heads carrying relation r: a k-way merge over the predicate's
/// POS runs (each run = sorted heads of one (r, tail) pair). The fronts of
/// all runs are scanned for the minimum; duplicates across runs collapse
/// because Next()/SeekGeq() always move past the emitted value in every run.
class PredMergeCursor : public EntityCursor {
 public:
  PredMergeCursor(const MmapTripleIndex* index, RelationId r) {
    const uint64_t begin = index->PredRunBegin(r);
    const uint64_t end = index->PredRunEnd(r);
    runs_.reserve(end - begin);
    for (uint64_t run = begin; run < end; ++run) {
      runs_.push_back(SpanCursor(index->PosRunValues(run)));
    }
    Settle();
  }

  bool AtEnd() const override { return at_end_; }
  EntityId Value() const override { return value_; }
  void Next() override {
    if (value_ == std::numeric_limits<EntityId>::max()) {
      at_end_ = true;
      return;
    }
    SeekGeq(value_ + 1);
  }
  void SeekGeq(EntityId v) override {
    if (at_end_ || value_ >= v) return;
    for (auto& run : runs_) run.SeekGeq(v);
    Settle();
  }

 private:
  void Settle() {
    at_end_ = true;
    for (const auto& run : runs_) {
      if (!run.AtEnd() && (at_end_ || run.Value() < value_)) {
        value_ = run.Value();
        at_end_ = false;
      }
    }
  }

  std::vector<SpanCursor> runs_;
  EntityId value_ = 0;
  bool at_end_ = false;
};

/// Every distinct subject in the graph, ascending: walks the SPO run keys
/// (sorted by (head, relation)) skipping repeated heads. The universe
/// cursor for purely-negative conjunctions.
class SubjectsCursor : public EntityCursor {
 public:
  explicit SubjectsCursor(const MmapTripleIndex* index) : index_(index) {}

  bool AtEnd() const override { return run_ >= index_->NumSpoRuns(); }
  EntityId Value() const override { return index_->SpoRunHead(run_); }
  void Next() override {
    const EntityId h = Value();
    while (!AtEnd() && index_->SpoRunHead(run_) == h) ++run_;
  }
  void SeekGeq(EntityId v) override {
    if (AtEnd() || Value() >= v) return;
    run_ = index_->SpoRunLowerBound(v);
  }

 private:
  const MmapTripleIndex* index_;
  uint64_t run_ = 0;
};

}  // namespace

IndexedQueryEngine::IndexedQueryEngine(const MmapTripleIndex* index)
    : index_(index) {
  PKGM_CHECK(index != nullptr);
}

IdSpan IndexedQueryEngine::TripleQuery(EntityId h, RelationId r) {
  Stopwatch sw;
  const IdSpan result = index_->Tails(h, r);
  point_micros_.Record(sw.ElapsedSeconds() * 1e6);
  ++num_triple_queries_;
  if (result.empty()) ++num_empty_results_;
  return result;
}

IdSpan IndexedQueryEngine::RelationQuery(EntityId h) {
  Stopwatch sw;
  const IdSpan result = index_->RelationsOf(h);
  point_micros_.Record(sw.ElapsedSeconds() * 1e6);
  ++num_relation_queries_;
  if (result.empty()) ++num_empty_results_;
  return result;
}

std::vector<EntityId> IndexedQueryEngine::ConjunctiveQuery(
    const std::vector<Atom>& atoms) {
  Stopwatch sw;
  ++num_conjunctive_queries_;

  std::vector<std::unique_ptr<EntityCursor>> cursors;
  std::vector<RelationId> missing;
  for (const Atom& atom : atoms) {
    switch (atom.kind) {
      case Atom::Kind::kHasTail:
        cursors.push_back(std::make_unique<SpanCursor>(
            index_->Heads(atom.relation, atom.fixed)));
        break;
      case Atom::Kind::kHasHead:
        cursors.push_back(std::make_unique<SpanCursor>(
            index_->Tails(atom.fixed, atom.relation)));
        break;
      case Atom::Kind::kHasRelation:
        cursors.push_back(
            std::make_unique<PredMergeCursor>(index_, atom.relation));
        break;
      case Atom::Kind::kMissingRelation:
        // Negation can't drive the join (its complement is huge); it
        // filters survivors with one O(log) probe each below.
        missing.push_back(atom.relation);
        break;
    }
  }
  if (cursors.empty()) {
    cursors.push_back(std::make_unique<SubjectsCursor>(index_));
  }

  // Leapfrog intersection: repeatedly raise every cursor to the running
  // maximum; when all agree the id satisfies every positive atom.
  std::vector<EntityId> result;
  while (true) {
    EntityId hi = 0;
    bool done = false;
    for (const auto& c : cursors) {
      if (c->AtEnd()) {
        done = true;
        break;
      }
      hi = std::max(hi, c->Value());
    }
    if (done) break;

    bool all_equal = true;
    for (const auto& c : cursors) {
      c->SeekGeq(hi);
      if (c->AtEnd()) {
        done = true;
        break;
      }
      if (c->Value() != hi) all_equal = false;
    }
    if (done) break;
    if (!all_equal) continue;  // someone overshot; chase the new max

    bool keep = true;
    for (RelationId r : missing) {
      if (index_->HasRelation(hi, r)) {
        keep = false;
        break;
      }
    }
    if (keep) result.push_back(hi);
    for (const auto& c : cursors) c->Next();
  }

  join_micros_.Record(sw.ElapsedSeconds() * 1e6);
  if (result.empty()) ++num_empty_results_;
  return result;
}

std::vector<EntityId> IndexedQueryEngine::Expand(
    const std::vector<EntityId>& frontier, RelationId r) {
  Stopwatch sw;
  ++num_expand_queries_;

  std::vector<EntityId> out;
  for (EntityId h : frontier) {
    const IdSpan tails = index_->Tails(h, r);
    out.insert(out.end(), tails.begin(), tails.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());

  join_micros_.Record(sw.ElapsedSeconds() * 1e6);
  if (out.empty()) ++num_empty_results_;
  return out;
}

std::string IndexedQueryEngine::StatsJson() const {
  const auto latency_json = [](const Histogram& h) -> std::string {
    if (h.count() == 0) return "{\"count\":0}";
    return StrFormat("{\"count\":%llu,\"p50_us\":%.2f,\"p95_us\":%.2f,"
                     "\"p99_us\":%.2f,\"mean_us\":%.2f}",
                     static_cast<unsigned long long>(h.count()),
                     h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99),
                     h.Mean());
  };
  return StrFormat(
      "{\"triple_queries\":%llu,\"relation_queries\":%llu,"
      "\"conjunctive_queries\":%llu,\"expand_queries\":%llu,"
      "\"empty_results\":%llu,\"point_latency\":%s,\"join_latency\":%s}",
      static_cast<unsigned long long>(num_triple_queries_),
      static_cast<unsigned long long>(num_relation_queries_),
      static_cast<unsigned long long>(num_conjunctive_queries_),
      static_cast<unsigned long long>(num_expand_queries_),
      static_cast<unsigned long long>(num_empty_results_),
      latency_json(point_micros_).c_str(), latency_json(join_micros_).c_str());
}

}  // namespace pkgm::kg
