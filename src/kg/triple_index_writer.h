#ifndef PKGM_KG_TRIPLE_INDEX_WRITER_H_
#define PKGM_KG_TRIPLE_INDEX_WRITER_H_

#include <string>
#include <vector>

#include "kg/triple.h"
#include "kg/triple_source.h"
#include "util/status.h"

namespace pkgm::kg {

/// Build statistics returned by a successful index write.
struct TripleIndexBuildStats {
  uint64_t num_triples = 0;
  uint64_t spo_runs = 0;
  uint64_t pos_runs = 0;
  uint64_t osp_runs = 0;
  uint64_t file_bytes = 0;
  double seconds = 0.0;
};

/// Builds the three sorted permutation sub-indices (SPO, POS, OSP) of a
/// triple set and streams them into a versioned, checksummed `.pkgt` file
/// (see pkgt_format.h). Duplicates in the input are collapsed; build memory
/// is one Triple vector (sorted in place, once per permutation) plus the
/// current permutation's run/value arrays.
class TripleIndexWriter {
 public:
  TripleIndexWriter() = default;

  /// Indexes every triple of `source`.
  StatusOr<TripleIndexBuildStats> Write(const TripleSource& source,
                                        const std::string& path) const;

  /// Indexes an explicit triple list (consumed: sorted and deduped in
  /// place). Fails with InvalidArgument on an empty input.
  StatusOr<TripleIndexBuildStats> WriteTriples(std::vector<Triple> triples,
                                               const std::string& path) const;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_TRIPLE_INDEX_WRITER_H_
