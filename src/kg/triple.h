#ifndef PKGM_KG_TRIPLE_H_
#define PKGM_KG_TRIPLE_H_

#include <cstdint>
#include <functional>

#include "kg/vocab.h"

namespace pkgm::kg {

/// A fact (head, relation, tail) in the product knowledge graph, e.g.
/// (iPhone, brandIs, Apple) with all three parts interned to dense ids.
struct Triple {
  EntityId head = 0;
  RelationId relation = 0;
  EntityId tail = 0;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.head == b.head && a.relation == b.relation && a.tail == b.tail;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.head != b.head) return a.head < b.head;
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.tail < b.tail;
  }
};

/// Hash functor for Triple (for unordered containers of facts).
struct TripleHash {
  size_t operator()(const Triple& t) const {
    // 64-bit mix of the three 32-bit fields.
    uint64_t x = (static_cast<uint64_t>(t.head) << 32) | t.tail;
    x ^= static_cast<uint64_t>(t.relation) * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_TRIPLE_H_
