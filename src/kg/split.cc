#include "kg/split.h"

#include "util/logging.h"

namespace pkgm::kg {

TripleSplit SplitTriples(const TripleStore& store, double train_fraction,
                         double valid_fraction, Rng* rng) {
  PKGM_CHECK_GE(train_fraction, 0.0);
  PKGM_CHECK_GE(valid_fraction, 0.0);
  PKGM_CHECK_LE(train_fraction + valid_fraction, 1.0);

  std::vector<Triple> shuffled = store.triples();
  rng->Shuffle(&shuffled);

  const size_t n = shuffled.size();
  const size_t n_train = static_cast<size_t>(train_fraction * n);
  const size_t n_valid = static_cast<size_t>(valid_fraction * n);

  TripleSplit split;
  split.train.assign(shuffled.begin(), shuffled.begin() + n_train);
  split.valid.assign(shuffled.begin() + n_train,
                     shuffled.begin() + n_train + n_valid);
  split.test.assign(shuffled.begin() + n_train + n_valid, shuffled.end());
  return split;
}

}  // namespace pkgm::kg
