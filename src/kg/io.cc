#include "kg/io.h"

#include <fstream>

#include "util/string_util.h"

namespace pkgm::kg {

Status ExportTriplesTsv(const TripleStore& store, const Vocab& entities,
                        const Vocab& relations, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  for (const Triple& t : store.triples()) {
    out << entities.Name(t.head) << '\t' << relations.Name(t.relation) << '\t'
        << entities.Name(t.tail) << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError(StrFormat("write failure on %s", path.c_str()));
  }
  return Status::Ok();
}

StatusOr<TripleStore> ImportTriplesTsv(const std::string& path,
                                       Vocab* entities, Vocab* relations) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError(StrFormat("cannot open %s for reading", path.c_str()));
  }
  TripleStore store;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    if (fields.size() != 3 || fields[0].empty() || fields[1].empty() ||
        fields[2].empty()) {
      return Status::InvalidArgument(StrFormat(
          "%s:%llu: expected 3 tab-separated fields", path.c_str(),
          static_cast<unsigned long long>(line_number)));
    }
    store.Add(entities->GetOrAdd(fields[0]), relations->GetOrAdd(fields[1]),
              entities->GetOrAdd(fields[2]));
  }
  return store;
}

Status SaveVocab(const Vocab& vocab, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  for (uint32_t id = 0; id < vocab.size(); ++id) {
    out << vocab.Name(id) << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError(StrFormat("write failure on %s", path.c_str()));
  }
  return Status::Ok();
}

StatusOr<Vocab> LoadVocab(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError(StrFormat("cannot open %s for reading", path.c_str()));
  }
  Vocab vocab;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const uint32_t id = vocab.GetOrAdd(line);
    if (id != line_number - 1) {
      return Status::Corruption(StrFormat(
          "%s:%llu: duplicate vocab entry '%s'", path.c_str(),
          static_cast<unsigned long long>(line_number), line.c_str()));
    }
  }
  return vocab;
}

}  // namespace pkgm::kg
