#ifndef PKGM_KG_MMAP_TRIPLE_INDEX_H_
#define PKGM_KG_MMAP_TRIPLE_INDEX_H_

#include <cstdint>
#include <string>

#include "kg/pkgt_format.h"
#include "kg/triple_source.h"
#include "util/status.h"

namespace pkgm::kg {

struct MmapTripleIndexOptions {
  /// Verify the FNV-1a payload checksum at open. Touches every page once
  /// (streaming read) — the safe default; disable for very large indexes
  /// where lazily faulting pages in is the point.
  bool verify_checksum = true;
};

/// Read-only memory-mapped view of a `.pkgt` triple index.
///
/// Implements TripleSource entirely by binary search over the sorted
/// permutation runs in the mapping — Tails/Heads/RelationsOf hand out
/// zero-copy IdSpans, Contains is two binary searches, and nothing is
/// materialized in RAM beyond the page cache, so the index serves graphs
/// far larger than memory.
///
/// Opening validates the header (magic, version, section bounds against
/// the real file size) and the structural invariants binary search relies
/// on (strictly increasing run keys, monotone offset tables) before any
/// query runs, plus optionally the payload checksum; a truncated,
/// bit-flipped, or out-of-order index fails with a clear Status instead of
/// answering queries wrong. The mapping is immutable and safe for any
/// number of concurrent reader threads.
class MmapTripleIndex : public TripleSource {
 public:
  static StatusOr<MmapTripleIndex> Open(const std::string& path,
                                        MmapTripleIndexOptions options = {});

  ~MmapTripleIndex() override;
  MmapTripleIndex(MmapTripleIndex&& other) noexcept;
  MmapTripleIndex& operator=(MmapTripleIndex&& other) noexcept;
  MmapTripleIndex(const MmapTripleIndex&) = delete;
  MmapTripleIndex& operator=(const MmapTripleIndex&) = delete;

  // TripleSource.
  uint64_t NumTriples() const override { return header_.num_triples; }
  EntityId MaxEntityId() const override { return header_.num_entities; }
  RelationId MaxRelationId() const override { return header_.num_relations; }
  bool Contains(EntityId h, RelationId r, EntityId t) const override;
  using TripleSource::Contains;
  bool HasRelation(EntityId h, RelationId r) const override;
  IdSpan Tails(EntityId h, RelationId r) const override;
  IdSpan Heads(RelationId r, EntityId t) const override;
  IdSpan RelationsOf(EntityId h) const override;
  uint64_t RelationCount(RelationId r) const override;
  void AppendTriples(std::vector<Triple>* out) const override;

  // Index metadata.
  const PkgtHeader& header() const { return header_; }
  uint64_t file_size() const { return header_.file_size; }
  const std::string& path() const { return path_; }

  /// Per-predicate range of POS runs [first, last): each run is one
  /// distinct (r, tail) pair whose values are the sorted head entities.
  /// The query engine's merge joins iterate these directly.
  uint64_t PredRunBegin(RelationId r) const;
  uint64_t PredRunEnd(RelationId r) const;
  /// Values of POS run `run` (sorted ascending head ids) and its tail key.
  IdSpan PosRunValues(uint64_t run) const;
  uint32_t PosRunTail(uint64_t run) const;

  /// SPO run enumeration for subject scans: runs are sorted by
  /// (head, relation), so walking them yields every subject in ascending
  /// order (with one run per relation the subject has).
  uint64_t NumSpoRuns() const { return spo_.num_runs; }
  uint32_t SpoRunHead(uint64_t run) const {
    return PkgtKeyFirst(spo_.keys[run]);
  }
  /// First SPO run whose head is >= h (num_runs if none).
  uint64_t SpoRunLowerBound(EntityId h) const;

  /// Recomputes the payload checksum against the header (reads the whole
  /// mapping). Used by `pkgm_tool inspect-kg-index`.
  Status VerifyChecksum() const;

  /// Deep structural validation beyond what Open checks: every value run
  /// sorted ascending, per-predicate table consistent with the POS keys.
  /// O(num_triples) — used by the inspect tool and the corruption tests.
  Status Validate() const;

 private:
  /// One permutation's mapped arrays.
  struct Permutation {
    const uint64_t* keys = nullptr;
    const uint64_t* offsets = nullptr;
    const uint32_t* values = nullptr;
    uint64_t num_runs = 0;

    /// Index of the run with exactly `key`, or num_runs if absent.
    uint64_t FindRun(uint64_t key) const;
    /// Values slice of run i.
    IdSpan Run(uint64_t i) const {
      return {values + offsets[i],
              static_cast<size_t>(offsets[i + 1] - offsets[i])};
    }
    /// Run-index range whose keys lead with `first`.
    void FirstRange(uint32_t first, uint64_t* begin, uint64_t* end) const;
  };

  MmapTripleIndex() = default;

  void Release() noexcept;
  Status MapPermutation(const PkgtPermutation& section, const char* name,
                        Permutation* out) const;

  PkgtHeader header_;
  std::string path_;
  const unsigned char* base_ = nullptr;  // whole-file mapping
  uint64_t mapped_bytes_ = 0;

  Permutation spo_, pos_, osp_;
  const uint32_t* spo_run_relations_ = nullptr;
  const uint64_t* pred_runs_ = nullptr;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_MMAP_TRIPLE_INDEX_H_
