#ifndef PKGM_KG_IO_H_
#define PKGM_KG_IO_H_

#include <string>

#include "kg/triple_store.h"
#include "kg/vocab.h"
#include "util/status.h"

namespace pkgm::kg {

/// Writes the store as tab-separated "head\trelation\ttail" lines using the
/// vocab names, one triple per line, in insertion order.
Status ExportTriplesTsv(const TripleStore& store, const Vocab& entities,
                        const Vocab& relations, const std::string& path);

/// Reads a TSV triple file produced by ExportTriplesTsv (or by any external
/// ETL), interning names into the vocabs as they appear. Lines that are
/// empty or start with '#' are skipped; any other malformed line fails with
/// InvalidArgument naming the line number. On error the vocabs may contain
/// partially interned names; the returned store is only valid on OK.
StatusOr<TripleStore> ImportTriplesTsv(const std::string& path,
                                       Vocab* entities, Vocab* relations);

/// Writes a vocab as one name per line (id = line number).
Status SaveVocab(const Vocab& vocab, const std::string& path);

/// Reads a vocab written by SaveVocab.
StatusOr<Vocab> LoadVocab(const std::string& path);

}  // namespace pkgm::kg

#endif  // PKGM_KG_IO_H_
