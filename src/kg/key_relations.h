#ifndef PKGM_KG_KEY_RELATIONS_H_
#define PKGM_KG_KEY_RELATIONS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "kg/synthetic_pkg.h"
#include "kg/triple_store.h"

namespace pkgm::kg {

/// Implements the paper's key-relation selection (§III-A1): for each
/// category, count the frequency of each property over the items observed in
/// that category and keep the top-k most frequent. After pre-training, PKGM
/// serves vectors for exactly these relations per item.
class KeyRelationSelector {
 public:
  /// `k` is the number of key relations per category (paper: 10).
  /// `allowed` restricts counting to property relations (item-item
  /// relations are not attributes); empty means all relations count.
  KeyRelationSelector(uint32_t k, std::unordered_set<RelationId> allowed)
      : k_(k), allowed_(std::move(allowed)) {}

  /// Returns, per category, the top-k relations sorted by descending
  /// frequency (ties broken by relation id for determinism). Categories with
  /// fewer than k observed properties get all of them.
  std::vector<std::vector<RelationId>> SelectPerCategory(
      const SyntheticPkg& pkg) const;

  /// Convenience: key relations for each item (index-aligned with
  /// pkg.items), i.e. its category's key relations.
  std::vector<std::vector<RelationId>> SelectPerItem(
      const SyntheticPkg& pkg) const;

 private:
  uint32_t k_;
  std::unordered_set<RelationId> allowed_;
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_KEY_RELATIONS_H_
