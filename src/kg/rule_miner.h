#ifndef PKGM_KG_RULE_MINER_H_
#define PKGM_KG_RULE_MINER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kg/triple_store.h"

namespace pkgm::kg {

/// A mined attribute-association Horn rule with constants:
///
///     (x, body_relation, body_value)  =>  (x, head_relation, head_value)
///
/// e.g. "(x, brandIs, Apple) => (x, osIs, iOS)". The paper's production KG
/// ships with 3+ million such rules; this is the AMIE-style miner that
/// provides the symbolic-completion baseline the benches compare PKGM
/// against.
struct Rule {
  RelationId body_relation = 0;
  EntityId body_value = 0;
  RelationId head_relation = 0;
  EntityId head_value = 0;
  /// #items satisfying body AND head.
  uint64_t support = 0;
  /// support / #items satisfying the body.
  double confidence = 0.0;
};

struct RuleMinerOptions {
  /// Minimum co-occurrence count for a rule to be kept.
  uint64_t min_support = 5;
  /// Minimum confidence for a rule to be kept.
  double min_confidence = 0.5;
  /// Hard cap on emitted rules (highest-confidence first).
  uint32_t max_rules = 200000;
};

/// Mines rules from the observed attribute triples of the given head
/// entities (items). Complexity is O(sum_i a_i^2) over per-item attribute
/// counts a_i.
std::vector<Rule> MineRules(const TripleStore& store,
                            const std::vector<EntityId>& items,
                            const RuleMinerOptions& options);

/// Applies mined rules to answer tail queries symbolically: for (h, r, ?),
/// every rule whose body matches one of h's observed attributes and whose
/// head relation is r votes for its head value with its confidence
/// (noisy-or aggregation across rules).
class RuleInferencer {
 public:
  explicit RuleInferencer(std::vector<Rule> rules);

  size_t num_rules() const { return rules_.size(); }

  /// Candidate tails with aggregated confidence, highest first. `store`
  /// supplies h's observed attributes.
  std::vector<std::pair<EntityId, double>> PredictTails(
      const TripleStore& store, EntityId h, RelationId r) const;

  /// Link-prediction-style evaluation on test triples against a candidate
  /// universe of `universe_size` per query: rank of the true tail is its
  /// position in the prediction list when predicted, otherwise the expected
  /// rank among the unranked remainder. Returns {mrr, hits@1}.
  std::pair<double, double> EvaluateTails(const TripleStore& store,
                                          const std::vector<Triple>& test,
                                          uint32_t universe_size) const;

 private:
  std::vector<Rule> rules_;
  // (body_relation, body_value) -> rule indexes, for fast matching.
  std::unordered_map<uint64_t, std::vector<uint32_t>> body_index_;

  static uint64_t Key(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
};

}  // namespace pkgm::kg

#endif  // PKGM_KG_RULE_MINER_H_
